"""Package metadata.

Metadata intentionally lives here (not pyproject.toml): the presence of
a pyproject.toml makes pip use PEP 517 build isolation, which requires
network access to fetch setuptools/wheel — this project targets offline
environments, where the legacy ``setup.py develop`` editable path works
out of the box.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of ArchGym: An Open-Source Gymnasium for "
        "ML-Assisted Architecture Design (ISCA 2023)"
    ),
    long_description=open("README.md").read(),
    long_description_content_type="text/markdown",
    license="Apache-2.0",
    author="ArchGym Reproduction Authors",
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9", "networkx>=2.8"],
    extras_require={"dev": ["pytest", "pytest-benchmark", "hypothesis"]},
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
