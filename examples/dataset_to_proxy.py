"""From exploration data to a fast proxy cost model (paper §7, Fig. 9).

1. Runs four agents on DRAMGym, logging every interaction into one
   standardized multi-source dataset.
2. Trains random-forest proxy models for latency / power / energy, and
   contrasts a *diverse* (all agents) dataset against a *single-source*
   (ACO-only) dataset of the same size.
3. Wraps the proxy in a `ProxyEnv` and searches against it — simulator
   queries drop to zero while the found design validates on the real
   simulator.

Run:  python examples/dataset_to_proxy.py
"""

import time

import numpy as np

import repro
from repro.agents import make_agent, run_agent
from repro.core.dataset import ArchGymDataset
from repro.proxy import ProxyCostModel, ProxyEnv

TARGETS = ["latency", "power", "energy"]


def collect(env, agent_names, samples_per_agent, seed):
    dataset = ArchGymDataset()
    env.attach_dataset(dataset)
    for name in agent_names:
        agent = make_agent(name, env.action_space, seed=seed)
        run_agent(agent, env, n_samples=samples_per_agent, seed=seed)
    env.detach_dataset()
    return dataset


def main() -> None:
    env = repro.make("DRAMGym-v0", workload="cloud-1", objective="power",
                     n_requests=400, cache_size=0)
    rng = np.random.default_rng(0)

    print("collecting exploration data (4 agents x 200 samples)...")
    diverse = collect(env, ("rw", "ga", "aco", "bo"), 200, seed=5)
    print(f"  diverse dataset: {diverse!r}")
    aco_only = collect(env, ("aco",), 800, seed=6)
    print(f"  single-source dataset: {aco_only!r}")

    print("\ntraining proxies (same size, different diversity)...")
    size = 600
    proxy_div = ProxyCostModel(env.action_space, TARGETS).fit_with_search(
        diverse.sample_balanced(size, rng), n_trials=4, seed=0
    )
    proxy_single = ProxyCostModel(env.action_space, TARGETS).fit_with_search(
        aco_only.sample(size, rng), n_trials=4, seed=0
    )

    # score both proxies on the SAME uniform, simulator-labeled test set —
    # generalization over the whole design space is what Fig. 10 measures
    test_actions = [env.action_space.sample(rng) for _ in range(150)]
    X_test = np.stack([env.action_space.to_unit_vector(a) for a in test_actions])
    Y_test = np.array(
        [[env.evaluate(a)[t] for t in TARGETS] for a in test_actions]
    )
    rel_div = proxy_div.evaluate_relative(X_test, Y_test)
    rel_single = proxy_single.evaluate_relative(X_test, Y_test)
    print(f"{'target':10s} {'diverse RMSE%':>14s} {'ACO-only RMSE%':>15s}")
    for t in TARGETS:
        print(f"{t:10s} {rel_div[t]*100:14.2f} {rel_single[t]*100:15.2f}")

    print("\nsearching against the proxy (zero simulator queries)...")
    proxy_env = ProxyEnv.from_env(env, proxy_div)
    agent = make_agent("ga", proxy_env.action_space, seed=9)
    t0 = time.perf_counter()
    result = run_agent(agent, proxy_env, n_samples=2000, seed=9)
    print(f"  2000 proxy evaluations in {time.perf_counter() - t0:.2f}s")

    # validate the proxy-found design on the real simulator
    true_metrics = env.evaluate(result.best_action)
    print(f"  proxy predicted power {result.best_metrics['power']:.3f} W; "
          f"simulator says {true_metrics['power']:.3f} W")


if __name__ == "__main__":
    main()
