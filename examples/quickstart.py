"""Quickstart: the ArchGym loop in ~30 lines.

Builds the DRAM memory-controller environment, runs a random-walker
agent for a few hundred simulator queries, and prints the best design
found for a 1 W power target.

Run:  python examples/quickstart.py
"""

import repro
from repro.agents import RandomWalkerAgent, run_agent


def main() -> None:
    # 1. An environment = architecture cost model + workload + objective.
    env = repro.make(
        "DRAMGym-v0",
        workload="pointer_chase",   # the Table 4 trace
        objective="power",
        power_target_w=1.0,         # the paper's Table 4 goal
        n_requests=800,
    )
    print(f"environment: {env!r}")
    print(f"action space: {env.action_space.dimension} parameters, "
          f"{env.action_space.cardinality:.3g} design points")

    # 2. An agent = policy + hyperparameters, speaking the gym interface.
    agent = RandomWalkerAgent(env.action_space, seed=0, locality=0.3)

    # 3. The driver loop: propose -> simulate -> observe.
    result = run_agent(agent, env, n_samples=300, seed=0)

    # 4. Results.
    print(f"\nbest reward: {result.best_reward:.3f}  "
          f"(power = {result.best_metrics['power']:.3f} W, "
          f"target met: {result.target_met})")
    print("best design:")
    for name, value in sorted(result.best_action.items()):
        print(f"  {name:22s} = {value}")


if __name__ == "__main__":
    main()
