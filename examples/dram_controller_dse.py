"""Design a 1-Watt DRAM memory controller with all five agents.

Reproduces the Table 4 experiment: each agent searches the memory
controller space for a pointer-chasing trace with a 1 W power target,
and the script prints the per-agent designed hardware side by side —
the paper's observation is that *every* agent finds at least one design
meeting the target, while disagreeing on the parameters that don't
matter for power.

Run:  python examples/dram_controller_dse.py
"""

import repro
from repro.agents import AGENT_NAMES, make_agent, run_agent

N_SAMPLES = 400


def main() -> None:
    results = {}
    for name in AGENT_NAMES:
        env = repro.make(
            "DRAMGym-v0", workload="pointer_chase", objective="power",
            power_target_w=1.0, n_requests=800,
        )
        agent = make_agent(name, env.action_space, seed=7)
        results[name] = run_agent(agent, env, n_samples=N_SAMPLES, seed=7)

    agents = sorted(results)
    print(f"=== designed 1 W memory controllers ({N_SAMPLES} samples/agent) ===\n")
    header = f"{'Parameter':24s}" + "".join(f"{a.upper():>16s}" for a in agents)
    print(header)
    print("-" * len(header))
    params = sorted(results[agents[0]].best_action)
    for p in params:
        row = f"{p:24s}" + "".join(
            f"{str(results[a].best_action[p]):>16s}" for a in agents
        )
        print(row)
    print("-" * len(header))
    print(
        f"{'achieved power (W)':24s}"
        + "".join(f"{results[a].best_metrics['power']:>16.4f}" for a in agents)
    )
    print(
        f"{'target met':24s}"
        + "".join(f"{str(results[a].target_met):>16s}" for a in agents)
    )


if __name__ == "__main__":
    main()
