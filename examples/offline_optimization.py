"""Data-driven offline optimization from logged ArchGym datasets (§8).

The paper argues ArchGym's standardized datasets unlock data-driven
offline methods (PRIME-style optimization, offline RL): learn the cost
surface from *logged* exploration, then spend only a handful of live
simulator queries. This example:

1. replays a previously collected multi-agent dataset (collected here
   for self-containedness),
2. warm-starts an `OfflineAgent` from it,
3. gives it a tiny online budget (25 simulator queries) and compares
   against agents that must start from scratch.

Run:  python examples/offline_optimization.py
"""

import repro
from repro.agents import OfflineAgent, make_agent, run_agent
from repro.core.dataset import ArchGymDataset

ONLINE_BUDGET = 25


def make_env():
    return repro.make("TimeloopGym-v0", workload="resnet50", objective="latency")


def main() -> None:
    # 1. offline phase: log exploration from cheap agents
    env = make_env()
    logged = ArchGymDataset()
    env.attach_dataset(logged)
    for name in ("rw", "ga", "aco"):
        agent = make_agent(name, env.action_space, seed=4)
        run_agent(agent, env, n_samples=250, seed=4)
    env.detach_dataset()
    print(f"logged dataset: {len(logged)} transitions, "
          f"{len(logged.sources)} sources")

    # 2. online phase: tiny simulator budget
    print(f"\nonline budget: {ONLINE_BUDGET} simulator queries")
    contenders = {}

    offline_env = make_env()
    offline = OfflineAgent(offline_env.action_space, seed=9, dataset=logged,
                           exploration=0.1)
    contenders["offline (warm)"] = run_agent(
        offline, offline_env, n_samples=ONLINE_BUDGET, seed=9
    )

    for name in ("rw", "ga", "bo"):
        cold_env = make_env()
        agent = make_agent(name, cold_env.action_space, seed=9)
        contenders[f"{name} (cold)"] = run_agent(
            agent, cold_env, n_samples=ONLINE_BUDGET, seed=9
        )

    print(f"\n{'agent':16s} {'best latency (ms)':>18s} {'reward':>10s}")
    for label, result in sorted(
        contenders.items(), key=lambda kv: kv[1].best_metrics["latency"]
    ):
        print(f"{label:16s} {result.best_metrics['latency']:>18.3f} "
              f"{result.best_reward:>10.3f}")


if __name__ == "__main__":
    main()
