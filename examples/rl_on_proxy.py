"""Unlocking sample-hungry RL with a fast proxy cost model (§6.2, §7).

The paper's Fig. 7 implication: "a faster architecture cost model
allows sample inefficient learning-based algorithms (e.g., RL) to
shine". This example makes that concrete:

1. an RL agent gets a realistic *simulator* budget (300 queries) — it
   barely learns,
2. the same RL agent runs against a random-forest proxy where 10,000
   queries cost seconds — its policy converges,
3. the proxy-trained policy's best design is validated on the real
   simulator.

Run:  python examples/rl_on_proxy.py
"""

import time

import repro
from repro.agents import RLAgent, make_agent, run_agent
from repro.core.dataset import ArchGymDataset
from repro.proxy import ProxyCostModel, ProxyEnv

TARGETS = ["latency", "power", "energy"]


def main() -> None:
    env = repro.make("DRAMGym-v0", workload="cloud-2", objective="latency",
                     n_requests=400, cache_size=0)

    # --- RL with a simulator budget -------------------------------------
    rl_sim = RLAgent(env.action_space, seed=1, lr=0.05, batch_size=16)
    res_sim = run_agent(rl_sim, env, n_samples=300, seed=1)
    print(f"RL on simulator  (300 samples): best latency "
          f"{res_sim.best_metrics['latency']:.1f} ns, "
          f"policy entropy {rl_sim.policy_entropy():.3f}")

    # --- build a proxy from cheap multi-agent exploration ----------------
    dataset = ArchGymDataset()
    env.attach_dataset(dataset)
    for name in ("rw", "ga", "aco"):
        run_agent(make_agent(name, env.action_space, seed=2), env,
                  n_samples=300, seed=2)
    env.detach_dataset()
    proxy = ProxyCostModel(env.action_space, TARGETS).fit(dataset, seed=0,
                                                          n_estimators=20)
    print(f"proxy trained on {len(dataset)} logged transitions "
          f"(power hold-out RMSE {proxy.test_rmse_relative['power']*100:.1f}%)")

    # --- the same RL agent, free to burn 10K proxy queries ---------------
    proxy_env = ProxyEnv.from_env(env, proxy)
    rl_proxy = RLAgent(proxy_env.action_space, seed=1, lr=0.05, batch_size=16)
    t0 = time.perf_counter()
    res_proxy = run_agent(rl_proxy, proxy_env, n_samples=10_000, seed=1)
    print(f"RL on proxy (10000 samples in {time.perf_counter()-t0:.1f}s): "
          f"policy entropy {rl_proxy.policy_entropy():.3f}")

    # --- validate the proxy-found design on the real simulator ------------
    true_metrics = env.evaluate(res_proxy.best_action)
    print(f"proxy-found design validated on simulator: "
          f"latency {true_metrics['latency']:.1f} ns "
          f"(proxy predicted {res_proxy.best_metrics['latency']:.1f} ns)")
    improvement = res_sim.best_metrics["latency"] - true_metrics["latency"]
    print(f"improvement over simulator-budget RL: {improvement:+.1f} ns")


if __name__ == "__main__":
    main()
