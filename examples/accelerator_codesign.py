"""DNN accelerator design space exploration on TimeloopGym.

Searches for an Eyeriss-like accelerator for MobileNet under a joint
latency+energy objective, comparing a tuned GA against Bayesian
optimization, and reports the architectures each one settles on —
the paper's IP-level experiment (§6.1).

Run:  python examples/accelerator_codesign.py
"""

import repro
from repro.agents import make_agent, run_agent


def main() -> None:
    contenders = {
        "ga": dict(population_size=16, mutation_rate=0.1, crossover_rate=0.8),
        "bo": dict(acquisition="ei", lengthscale=0.2, n_init=12),
        "rw": dict(locality=0.0),
    }
    results = {}
    for name, hyperparams in contenders.items():
        env = repro.make("TimeloopGym-v0", workload="mobilenet", objective="joint")
        agent = make_agent(name, env.action_space, seed=11, **hyperparams)
        results[name] = run_agent(agent, env, n_samples=250, seed=11)
        print(f"{name}: best joint reward {results[name].best_reward:.4f}")

    print("\n=== designed accelerators (mobilenet, joint latency+energy) ===\n")
    agents = sorted(results)
    header = f"{'Parameter':24s}" + "".join(f"{a.upper():>12s}" for a in agents)
    print(header)
    print("-" * len(header))
    for p in sorted(results[agents[0]].best_action):
        print(
            f"{p:24s}"
            + "".join(f"{str(results[a].best_action[p]):>12s}" for a in agents)
        )
    print("-" * len(header))
    for metric in ("latency", "energy", "area"):
        print(
            f"{metric:24s}"
            + "".join(f"{results[a].best_metrics[metric]:>12.3f}" for a in agents)
        )


if __name__ == "__main__":
    main()
