"""Budget-driven SoC design for an AR/VR workload on FARSIGym.

Searches for an SoC that meets the edge-detection pipeline's
performance / power / area budgets (FARSI's distance-to-budget reward,
lower is better; 0 means all budgets met). Prints the winning SoC's PE
allocation and the task-to-PE schedule — the paper's SoC-level
experiment (§6.1).

Run:  python examples/soc_for_arvr.py
"""

import repro
from repro.agents import ACOAgent, run_agent
from repro.farsi import FarsiSimulator, SoCConfig, get_farsi_workload


def main() -> None:
    workload = "edge_detection"
    env = repro.make("FARSIGym-v0", workload=workload)
    wl = get_farsi_workload(workload)
    print(f"budgets: perf <= {wl.perf_budget_ms} ms, "
          f"power <= {wl.power_budget_mw} mW, area <= {wl.area_budget_mm2} mm^2")

    agent = ACOAgent(env.action_space, seed=3, n_ants=12,
                     evaporation_rate=0.2, greediness=0.2)
    result = run_agent(agent, env, n_samples=400, seed=3)

    print(f"\nbest distance-to-budget: {result.best_reward:.4f} "
          f"({'all budgets met' if result.best_reward == 0 else 'violations remain'})")
    print("observed: " + ", ".join(
        f"{k}={result.best_metrics[k]:.2f}" for k in ("performance", "power", "area")
    ))

    config = SoCConfig.from_action(result.best_action)
    print(f"\nSoC: slots={config.slots}")
    print(f"     noc={config.noc_bus_width_bits}b @ {config.noc_freq_ghz} GHz, "
          f"mem={config.mem_channels}ch @ {config.mem_freq_ghz} GHz")

    schedule = FarsiSimulator().simulate(config, wl.graph)
    print("\ntask schedule:")
    for task, pe in schedule.assignment.items():
        print(f"  {task:20s} -> {pe}")


if __name__ == "__main__":
    main()
