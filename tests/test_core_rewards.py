"""Unit tests for repro.core.rewards (Table 3 formulations)."""

import pytest

from repro.core.errors import ArchGymError
from repro.core.rewards import (
    REWARD_CAP,
    BudgetDistanceReward,
    InverseReward,
    JointTargetReward,
    TargetReward,
)


class TestTargetReward:
    def test_formula(self):
        r = TargetReward("power", target=1.0)
        # r = target / |target - obs| = 1 / |1 - 3| = 0.5
        assert r.compute({"power": 3.0}) == pytest.approx(0.5)

    def test_closer_is_better(self):
        r = TargetReward("latency", target=10.0)
        assert r.compute({"latency": 11.0}) > r.compute({"latency": 15.0})

    def test_symmetric_around_target(self):
        r = TargetReward("latency", target=10.0)
        assert r.compute({"latency": 8.0}) == pytest.approx(r.compute({"latency": 12.0}))

    def test_exact_hit_is_capped(self):
        r = TargetReward("power", target=2.0)
        assert r.compute({"power": 2.0}) == REWARD_CAP

    def test_meets_target_tolerance(self):
        r = TargetReward("power", target=1.0, tolerance=0.05)
        assert r.meets_target({"power": 1.04})
        assert not r.meets_target({"power": 1.2})

    def test_missing_metric_raises(self):
        r = TargetReward("power", target=1.0)
        with pytest.raises(ArchGymError, match="power"):
            r.compute({"latency": 1.0})

    def test_nonpositive_target_rejected(self):
        with pytest.raises(ArchGymError):
            TargetReward("power", target=0.0)

    def test_higher_is_better_flag(self):
        assert TargetReward("power", 1.0).higher_is_better


class TestJointTargetReward:
    def test_needs_components(self):
        with pytest.raises(ArchGymError):
            JointTargetReward(components=())

    def test_harmonic_combination(self):
        joint = JointTargetReward(
            components=(
                TargetReward("latency", target=10.0),
                TargetReward("power", target=1.0),
            )
        )
        # both off by 100% of target -> each reward 1.0 -> harmonic mean 1.0
        value = joint.compute({"latency": 20.0, "power": 2.0})
        assert value == pytest.approx(1.0)

    def test_cannot_game_one_objective(self):
        joint = JointTargetReward(
            components=(
                TargetReward("latency", target=10.0),
                TargetReward("power", target=1.0),
            )
        )
        balanced = joint.compute({"latency": 12.0, "power": 1.2})
        lopsided = joint.compute({"latency": 10.0001, "power": 100.0})
        assert balanced > lopsided

    def test_meets_target_requires_all(self):
        joint = JointTargetReward(
            components=(
                TargetReward("latency", target=10.0, tolerance=0.1),
                TargetReward("power", target=1.0, tolerance=0.1),
            )
        )
        assert joint.meets_target({"latency": 10.0, "power": 1.0})
        assert not joint.meets_target({"latency": 10.0, "power": 5.0})

    def test_weight_mismatch_rejected(self):
        with pytest.raises(ArchGymError):
            JointTargetReward(
                components=(TargetReward("a", 1.0),), weights=(1.0, 2.0)
            )


class TestBudgetDistanceReward:
    def test_within_budget_distance_zero(self):
        r = BudgetDistanceReward(budgets={"power": 1.0, "area": 10.0})
        assert r.compute({"power": 0.5, "area": 9.0}) == 0.0

    def test_excess_accumulates(self):
        r = BudgetDistanceReward(budgets={"power": 1.0, "area": 10.0})
        # power 100% over, area 50% over -> 1.0 + 0.5
        assert r.compute({"power": 2.0, "area": 15.0}) == pytest.approx(1.5)

    def test_alpha_weighting(self):
        r = BudgetDistanceReward(
            budgets={"power": 1.0}, alphas={"power": 3.0}
        )
        assert r.compute({"power": 2.0}) == pytest.approx(3.0)

    def test_signed_mode(self):
        r = BudgetDistanceReward(
            budgets={"power": 1.0}, penalize_only_excess=False
        )
        assert r.compute({"power": 0.5}) == pytest.approx(-0.5)

    def test_lower_is_better_flag(self):
        assert not BudgetDistanceReward(budgets={"p": 1.0}).higher_is_better

    def test_meets_target(self):
        r = BudgetDistanceReward(budgets={"power": 1.0, "area": 10.0})
        assert r.meets_target({"power": 1.0, "area": 10.0})
        assert not r.meets_target({"power": 1.1, "area": 5.0})

    def test_empty_budgets_rejected(self):
        with pytest.raises(ArchGymError):
            BudgetDistanceReward(budgets={})

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ArchGymError):
            BudgetDistanceReward(budgets={"p": -1.0})


class TestInverseReward:
    def test_formula(self):
        r = InverseReward("runtime")
        assert r.compute({"runtime": 4.0}) == pytest.approx(0.25)

    def test_lower_metric_is_higher_reward(self):
        r = InverseReward("runtime")
        assert r.compute({"runtime": 1.0}) > r.compute({"runtime": 2.0})

    def test_zero_metric_capped(self):
        r = InverseReward("runtime")
        assert r.compute({"runtime": 0.0}) == REWARD_CAP

    def test_meets_target(self):
        r = InverseReward("runtime", target=5.0)
        assert r.meets_target({"runtime": 4.0})
        assert not r.meets_target({"runtime": 6.0})

    def test_no_target_never_met(self):
        r = InverseReward("runtime")
        assert not r.meets_target({"runtime": 0.001})
