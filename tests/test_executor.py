"""Tests for the parallel sweep executor and the evaluation cache.

The two load-bearing guarantees of the execution engine:

1. **Worker invariance** — ``run_lottery_sweep`` returns bit-identical
   reports (fitness distributions, hyperparameters, datasets) for any
   ``workers`` count, because every trial's seeds are drawn up front in
   serial order.
2. **Cache exactness** — the design-point cache answers repeated
   queries without touching the cost model, with exact hit/miss
   accounting, and never changes any result.
"""

import time

import numpy as np
import pytest

import pickle

from repro.core.dataset import ArchGymDataset, Transition
from repro.core.env import ArchGymEnv, canonical_action_key
from repro.core.errors import ArchGymError, ExecutorError
from repro.core.rewards import TargetReward
from repro.core.spaces import Categorical, CompositeSpace, Discrete
from repro.sweeps import BackendSpec, TrialTask, execute_trials, run_lottery_sweep
from repro.sweeps.executor import run_trial


class CountingEnv(ArchGymEnv):
    """16-point space; counts real cost-model invocations."""

    env_id = "Counting-v0"

    def __init__(self):
        super().__init__(
            action_space=CompositeSpace(
                [Discrete("x", 0, 7, 1), Categorical("m", ("a", "b"))]
            ),
            observation_metrics=["cost"],
            reward_spec=TargetReward("cost", target=1.0),
            episode_length=10_000,
        )
        self.evaluations = 0

    def evaluate(self, action):
        self.evaluations += 1
        return {"cost": 1.0 + abs(action["x"] - 5) + (action["m"] == "a")}


class SlowEnv(CountingEnv):
    """Same model, but every real evaluation pays a simulator delay."""

    env_id = "Slow-v0"
    DELAY_S = 0.004

    def evaluate(self, action):
        time.sleep(self.DELAY_S)
        return super().evaluate(action)


class CallCountingFactory:
    """Env factory that records how many environments were built."""

    def __init__(self):
        self.calls = 0

    def __call__(self):
        self.calls += 1
        return CountingEnv()


class ClosableEnv(CountingEnv):
    """Records close() calls (the executor must not leak environments)."""

    env_id = "Closable-v0"

    def __init__(self):
        super().__init__()
        self.closed = False

    def close(self):
        self.closed = True


class PoisonedFactory:
    """Raises on construction — a trial that dies immediately."""

    def __call__(self):
        raise RuntimeError("poisoned env factory")


class VerySlowEnv(CountingEnv):
    """Each evaluation pays a long simulator delay (fail-fast timing)."""

    env_id = "VerySlow-v0"

    def evaluate(self, action):
        time.sleep(0.25)
        return super().evaluate(action)


class TestCanonicalActionKey:
    def test_order_insensitive(self):
        assert canonical_action_key({"a": 1, "b": 2}) == canonical_action_key(
            {"b": 2, "a": 1}
        )

    def test_numpy_scalars_unwrapped(self):
        assert canonical_action_key({"x": np.int64(4)}) == canonical_action_key(
            {"x": 4}
        )

    def test_distinct_designs_distinct_keys(self):
        assert canonical_action_key({"x": 1}) != canonical_action_key({"x": 2})

    def test_sequence_values_hashable(self):
        key = canonical_action_key({"perm": [1, 2, 3]})
        assert hash(key) == hash(canonical_action_key({"perm": (1, 2, 3)}))

    def test_ndarray_and_nested_values_hashable(self):
        key = canonical_action_key({"w": np.array([1, 2]), "n": [[1], [2]]})
        assert hash(key) == hash(
            canonical_action_key({"w": [1, 2], "n": ((1,), (2,))})
        )


class TestEvaluationCache:
    def test_replayed_trajectory_exact_counters(self):
        env = CountingEnv()
        env.enable_cache()
        rng = np.random.default_rng(0)
        trajectory = [env.action_space.sample(rng) for _ in range(25)]
        distinct = len({canonical_action_key(a) for a in trajectory})

        env.reset(seed=0)
        first = [env.step(a)[0].copy() for a in trajectory]
        assert env.stats.cache_misses == distinct
        assert env.stats.cache_hits == len(trajectory) - distinct
        assert env.evaluations == distinct

        # full replay: every step is a hit, the cost model never runs
        replay = [env.step(a)[0].copy() for a in trajectory]
        assert env.stats.cache_hits == 2 * len(trajectory) - distinct
        assert env.stats.cache_misses == distinct
        assert env.evaluations == distinct
        for obs_a, obs_b in zip(first, replay):
            assert np.array_equal(obs_a, obs_b)

    def test_cache_disabled_by_default(self):
        env = CountingEnv()
        env.reset(seed=0)
        action = {"x": 3, "m": "a"}
        env.step(action)
        env.step(action)
        assert env.evaluations == 2
        assert env.stats.cache_hits == 0 and env.stats.cache_misses == 0

    def test_clear_and_disable(self):
        env = CountingEnv()
        env.enable_cache()
        env.reset(seed=0)
        env.step({"x": 3, "m": "a"})
        assert env.cache_info()["size"] == 1
        env.clear_cache()
        assert env.cache_info()["size"] == 0
        assert env.cache_enabled
        env.disable_cache()
        assert not env.cache_enabled

    def test_cached_steps_still_logged(self):
        env = CountingEnv()
        env.enable_cache()
        dataset = ArchGymDataset()
        env.attach_dataset(dataset)
        env.reset(seed=0)
        env.step({"x": 3, "m": "a"})
        env.step({"x": 3, "m": "a"})
        assert len(dataset) == 2  # the hit is still a real agent step

    def test_cache_does_not_change_results(self):
        kw = dict(agents=("rw", "ga"), n_trials=2, n_samples=30, seed=3)
        plain = run_lottery_sweep(CountingEnv, cache=False, **kw)
        cached = run_lottery_sweep(CountingEnv, cache=True, **kw)
        for agent in kw["agents"]:
            assert plain.fitness_distribution(agent) == cached.fitness_distribution(
                agent
            )
        assert plain.cache_hits == 0
        assert cached.cache_hits > 0

    def test_cached_sweep_is_faster(self):
        """The acceptance benchmark: on a small design space the cache
        skips most simulator calls, beating the uncached serial path."""
        kw = dict(agents=("rw", "ga"), n_trials=2, n_samples=60, seed=0)
        t0 = time.perf_counter()
        plain = run_lottery_sweep(SlowEnv, cache=False, **kw)
        t_plain = time.perf_counter() - t0
        t0 = time.perf_counter()
        cached = run_lottery_sweep(SlowEnv, cache=True, **kw)
        t_cached = time.perf_counter() - t0

        # every trial revisits designs: 60 samples over a 16-point space
        assert cached.cache_hits >= 4 * (60 - 16)
        assert cached.sim_time_s < plain.sim_time_s
        assert t_cached < t_plain * 0.8, (
            f"cached sweep {t_cached:.3f}s not faster than uncached {t_plain:.3f}s"
        )


class TestCacheBound:
    def test_lru_eviction(self):
        env = CountingEnv()
        env.enable_cache(maxsize=2)
        env.reset(seed=0)
        a1, a2, a3 = ({"x": i, "m": "a"} for i in (1, 2, 3))
        env.step(a1)
        env.step(a2)
        env.step(a3)  # evicts a1
        assert env.cache_info()["size"] == 2
        env.step(a1)  # re-simulated, not served stale
        assert env.evaluations == 4
        assert env.stats.cache_hits == 0

    def test_nonpositive_maxsize_is_noop(self):
        env = CountingEnv()
        env.enable_cache(maxsize=0)
        assert not env.cache_enabled


class TestBuiltinEnvSingleCacheLayer:
    """The envs' old inner ``EvaluationCache`` was folded into the base
    class: counters must reflect *actual* simulator runs, and
    ``cache=False`` must really pay the simulator."""

    def test_builtin_env_counters_are_exact(self):
        from repro.envs.dram import DRAMGymEnv

        env = DRAMGymEnv(workload="stream", n_requests=50)
        env.reset(seed=0)
        action = env.random_action()
        env.step(action)
        sim_time_after_first = env.stats.total_sim_time
        env.reset()
        env.step(action)
        assert env.stats.cache_hits == 1 and env.stats.cache_misses == 1
        assert env.stats.total_sim_time == sim_time_after_first

    def test_no_cache_trial_disables_builtin_memo(self):
        import functools

        from repro.envs.maestro_env import MaestroGymEnv

        factory = functools.partial(MaestroGymEnv, workload="resnet18")
        task = TrialTask(
            index=0, agent="rw", hyperparams={"locality": 0.0},
            agent_seed=1, run_seed=1, n_samples=8,
            env_factory=factory, cache=False,
        )
        res = run_trial(task).result
        assert res.cache_hits == 0 and res.cache_misses == 0

    def test_factory_cache_opt_out_respected_by_default(self):
        """A factory passing cache_size=0 (the Fig. 8 methodology) must
        stay uncached unless the caller forces cache=True."""
        import functools

        from repro.envs.maestro_env import MaestroGymEnv

        factory = functools.partial(MaestroGymEnv, cache_size=0)
        task = TrialTask(
            index=0, agent="rw", hyperparams={"locality": 0.0},
            agent_seed=1, run_seed=1, n_samples=8, env_factory=factory,
        )
        res = run_trial(task).result
        assert res.cache_hits == 0 and res.cache_misses == 0

    def test_custom_cache_size_survives_executor(self):
        from repro.envs.maestro_env import MaestroGymEnv

        built = []

        def factory():
            built.append(MaestroGymEnv(cache_size=10_000))
            return built[-1]

        task = TrialTask(
            index=0, agent="rw", hyperparams={"locality": 0.0},
            agent_seed=1, run_seed=1, n_samples=4,
            env_factory=factory, cache=True,
        )
        run_trial(task)
        assert built[0]._eval_cache_maxsize == 10_000  # not shrunk to default


class TestExecutor:
    def _tasks(self, n=4, collect=False, factory=CountingEnv):
        return [
            TrialTask(
                index=i, agent="rw", hyperparams={"locality": 0.2},
                agent_seed=100 + i, run_seed=200 + i, n_samples=10,
                env_factory=factory, collect=collect, cache=True,
            )
            for i in range(n)
        ]

    def test_empty_tasks(self):
        assert execute_trials([], workers=2) == []

    def test_bad_worker_count(self):
        with pytest.raises(ExecutorError):
            execute_trials(self._tasks(), workers=0)

    def test_unpicklable_factory_fails_fast(self):
        tasks = self._tasks(factory=lambda: CountingEnv())
        with pytest.raises(ExecutorError, match="pickl"):
            execute_trials(tasks, workers=2)
        # the in-process path has no pickling requirement
        outcomes = execute_trials(tasks, workers=1)
        assert len(outcomes) == len(tasks)

    def test_outcomes_ordered_and_tagged(self):
        outcomes = execute_trials(self._tasks(n=5, collect=True), workers=2)
        assert [o.index for o in outcomes] == list(range(5))
        assert all(o.env_id == "Counting-v0" for o in outcomes)
        assert all(len(o.transitions) == 10 for o in outcomes)
        assert all(isinstance(o.transitions[0], Transition) for o in outcomes)

    def test_run_trial_is_self_contained(self):
        task = self._tasks(n=1, collect=True)[0]
        a = run_trial(task)
        b = run_trial(task)
        assert a.result.best_fitness == b.result.best_fitness
        assert [t.to_record() for t in a.transitions] == [
            t.to_record() for t in b.transitions
        ]

    def test_search_result_carries_env_accounting(self):
        outcome = run_trial(self._tasks(n=1)[0])
        res = outcome.result
        assert res.cache_hits + res.cache_misses == res.n_samples
        assert res.sim_time_s >= 0.0

    def test_run_trial_closes_its_env(self):
        built = []

        def factory():
            built.append(ClosableEnv())
            return built[-1]

        run_trial(self._tasks(n=1, factory=factory)[0])
        assert built[0].closed

    def test_run_trial_closes_env_on_failure(self):
        class BrokenEnv(ClosableEnv):
            def evaluate(self, action):
                raise RuntimeError("simulator crashed")

        built = []

        def factory():
            built.append(BrokenEnv())
            return built[-1]

        task = TrialTask(
            index=0, agent="rw", hyperparams={"locality": 0.2},
            agent_seed=1, run_seed=1, n_samples=4, env_factory=factory,
        )
        with pytest.raises(RuntimeError, match="simulator crashed"):
            run_trial(task)
        assert built and built[0].closed

    def test_on_outcome_streams_every_trial(self):
        streamed = []
        outcomes = execute_trials(
            self._tasks(n=4), workers=1, on_outcome=streamed.append
        )
        assert [o.index for o in streamed] == [0, 1, 2, 3]
        assert outcomes == streamed

    def test_keep_outcomes_false_drops_results(self):
        streamed = []
        result = execute_trials(
            self._tasks(n=3), workers=1,
            on_outcome=streamed.append, keep_outcomes=False,
        )
        assert result == []
        assert len(streamed) == 3

    def test_on_outcome_streams_under_process_pool(self):
        streamed = []
        outcomes = execute_trials(
            self._tasks(n=4), workers=2, on_outcome=streamed.append
        )
        # completion order may vary; the streamed set must not
        assert sorted(o.index for o in streamed) == [0, 1, 2, 3]
        assert [o.index for o in outcomes] == [0, 1, 2, 3]


class TestBackendSpec:
    """The serializable "where does evaluate() run" half of a task.

    Live service integration is covered in tests/test_service.py; this
    battery pins the spec's validation and pickle contract, which the
    process pool depends on.
    """

    def test_default_is_local(self):
        spec = BackendSpec()
        assert spec.kind == "local"
        assert spec.build() is None

    def test_task_without_backend_runs_locally(self):
        task = TrialTask(
            index=0, agent="rw", hyperparams={"locality": 0.2},
            agent_seed=1, run_seed=1, n_samples=5, env_factory=CountingEnv,
        )
        assert run_trial(task).result.remote_evals == 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ExecutorError, match="kind"):
            BackendSpec(kind="carrier-pigeon")

    def test_remote_requires_service_url(self):
        with pytest.raises(ExecutorError, match="service_url"):
            BackendSpec(kind="remote")

    def test_remote_spec_builds_remote_backend(self):
        from repro.service import RemoteBackend

        spec = BackendSpec(
            kind="remote", service_url="http://127.0.0.1:1",
            env_kwargs={"workload": "stream"}, timeout_s=5.0, retries=1,
        )
        backend = spec.build()
        assert isinstance(backend, RemoteBackend)
        assert backend.env_kwargs == {"workload": "stream"}
        assert backend.client.timeout_s == 5.0
        assert backend.client.retries == 1

    def test_resolve_execution_backend_precedence(self):
        from repro.sweeps import resolve_execution_backend

        # no service: no backend; shared cache falls back to the out-dir
        backend, cache_url, cache_dir = resolve_execution_backend(
            None, True, "/tmp/run"
        )
        assert backend is None and cache_url is None
        assert cache_dir.endswith("shared-cache")
        # service + shared cache: the service hosts the cache, even
        # when an out-dir is also present (cross-machine reuse wins)
        backend, cache_url, cache_dir = resolve_execution_backend(
            "http://127.0.0.1:1", True, "/tmp/run",
            env_kwargs={"workload": "stream"},
        )
        assert backend.kind == "remote"
        assert backend.env_kwargs == {"workload": "stream"}
        assert cache_url == "http://127.0.0.1:1" and cache_dir is None

    def test_batch_without_service_url_rejected(self):
        """--service-batch rides POST /evaluate_batch; silently dropping
        it for an in-process sweep would hide a misconfiguration."""
        from repro.sweeps import resolve_execution_backend

        with pytest.raises(ExecutorError, match="service_url"):
            resolve_execution_backend(None, False, None, batch=True)

    def test_resolve_execution_backend_policy_overrides(self):
        from repro.sweeps import resolve_execution_backend

        backend, _, _ = resolve_execution_backend(
            "http://127.0.0.1:1", False, None, timeout_s=5.0, retries=0
        )
        assert backend.timeout_s == 5.0 and backend.retries == 0
        defaulted, _, _ = resolve_execution_backend(
            "http://127.0.0.1:1", False, None
        )
        assert defaulted.timeout_s == BackendSpec().timeout_s
        assert defaulted.retries == BackendSpec().retries

    def test_spec_and_task_pickle(self):
        """The whole point of a spec: it crosses the process boundary
        even though a live HTTP client would not."""
        spec = BackendSpec(kind="remote", service_url="http://127.0.0.1:1")
        task = TrialTask(
            index=0, agent="rw", hyperparams={}, agent_seed=1, run_seed=1,
            n_samples=5, env_factory=CountingEnv, backend=spec,
            server_cache_url="http://127.0.0.1:1",
        )
        clone = pickle.loads(pickle.dumps(task))
        assert clone.backend == spec
        assert clone.server_cache_url == "http://127.0.0.1:1"


class TestFailFastShutdown:
    def test_worker_failure_propagates(self):
        tasks = [
            TrialTask(
                index=0, agent="rw", hyperparams={"locality": 0.2},
                agent_seed=1, run_seed=1, n_samples=2,
                env_factory=PoisonedFactory(),
            )
        ]
        with pytest.raises(RuntimeError, match="poisoned"):
            execute_trials(tasks, workers=2)

    def test_poisoned_trial_aborts_without_draining_pool(self):
        """One bad trial must abort the sweep promptly — not wait out
        every already-running slow worker on pool exit."""
        slow = [
            TrialTask(
                index=i, agent="rw", hyperparams={"locality": 0.2},
                agent_seed=i, run_seed=i, n_samples=10,  # ~2.5s each
                env_factory=VerySlowEnv,
            )
            for i in range(1, 4)
        ]
        poisoned = TrialTask(
            index=0, agent="rw", hyperparams={"locality": 0.2},
            agent_seed=0, run_seed=0, n_samples=2,
            env_factory=PoisonedFactory(),
        )
        start = time.perf_counter()
        with pytest.raises(RuntimeError, match="poisoned"):
            execute_trials([poisoned] + slow, workers=2)
        elapsed = time.perf_counter() - start
        assert elapsed < 1.5, (
            f"fail-fast abort took {elapsed:.2f}s — the executor waited "
            "for in-flight slow trials instead of shutting down"
        )

    def test_failed_sweep_process_exits_promptly(self):
        """In-flight workers are terminated on failure — otherwise the
        interpreter's exit hook joins them and `python -m repro sweep`
        hangs for up to a full trial after printing the error."""
        import os
        import subprocess
        import sys

        script = (
            "import time\n"
            "from repro.core.rewards import TargetReward\n"
            "from repro.core.spaces import CompositeSpace, Discrete\n"
            "from repro.core.env import ArchGymEnv\n"
            "from repro.sweeps import TrialTask, execute_trials\n"
            "class Slow(ArchGymEnv):\n"
            "    env_id = 'Slow-v0'\n"
            "    def __init__(self):\n"
            "        super().__init__(CompositeSpace([Discrete('x', 0, 7, 1)]),\n"
            "                         ['cost'], TargetReward('cost', target=1.0),\n"
            "                         episode_length=10_000)\n"
            "    def evaluate(self, action):\n"
            "        time.sleep(1.0)\n"
            "        return {'cost': 1.0}\n"
            "def boom():\n"
            "    raise RuntimeError('poisoned')\n"
            "tasks = [TrialTask(index=0, agent='rw', hyperparams={},\n"
            "                   agent_seed=0, run_seed=0, n_samples=2,\n"
            "                   env_factory=boom)] + [\n"
            "    TrialTask(index=i, agent='rw', hyperparams={}, agent_seed=i,\n"
            "              run_seed=i, n_samples=8, env_factory=Slow)\n"
            "    for i in range(1, 4)]\n"
            "try:\n"
            "    execute_trials(tasks, workers=2)\n"
            "except RuntimeError:\n"
            "    pass\n"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        start = time.perf_counter()
        subprocess.run(
            [sys.executable, "-c", script], check=True, timeout=30, env=env
        )
        elapsed = time.perf_counter() - start
        # in-flight trials are ~8s each; a prompt exit is well under that
        assert elapsed < 5.0, (
            f"process took {elapsed:.1f}s to exit after a failed sweep — "
            "orphaned workers were joined instead of terminated"
        )


class TestParallelSweep:
    KW = dict(agents=("rw", "ga"), n_trials=2, n_samples=15, seed=9)

    def test_workers_1_vs_4_identical_distributions(self):
        serial = run_lottery_sweep(CountingEnv, workers=1, **self.KW)
        parallel = run_lottery_sweep(CountingEnv, workers=4, **self.KW)
        for agent in self.KW["agents"]:
            assert serial.fitness_distribution(agent) == parallel.fitness_distribution(
                agent
            )
            assert [r.hyperparameters for r in serial.results[agent]] == [
                r.hyperparameters for r in parallel.results[agent]
            ]
            assert [r.best_action for r in serial.results[agent]] == [
                r.best_action for r in parallel.results[agent]
            ]
        assert serial.cache_hits == parallel.cache_hits
        assert serial.cache_misses == parallel.cache_misses

    def test_dataset_worker_invariant(self):
        serial = run_lottery_sweep(
            CountingEnv, workers=1, collect_dataset=True, **self.KW
        )
        parallel = run_lottery_sweep(
            CountingEnv, workers=3, collect_dataset=True, **self.KW
        )
        assert serial.dataset is not None and parallel.dataset is not None
        assert [t.to_record() for t in serial.dataset] == [
            t.to_record() for t in parallel.dataset
        ]
        assert serial.dataset.sources == parallel.dataset.sources

    def test_report_records_execution_metadata(self):
        report = run_lottery_sweep(CountingEnv, workers=2, cache=True, **self.KW)
        assert report.workers == 2
        assert report.wall_time_s > 0.0
        assert "eval cache" in report.print_table()


class TestFailFastValidation:
    def test_unknown_agent_rejected_before_any_trial(self):
        factory = CallCountingFactory()
        with pytest.raises(ArchGymError, match="nope"):
            run_lottery_sweep(
                factory, agents=("rw", "ga", "nope"), n_trials=2, n_samples=10
            )
        assert factory.calls == 0  # no environment was even built

    def test_empty_agents_rejected(self):
        with pytest.raises(ArchGymError, match="at least one"):
            run_lottery_sweep(CountingEnv, agents=(), n_trials=1, n_samples=5)

    def test_valid_agents_accepted(self):
        report = run_lottery_sweep(
            CountingEnv, agents=("gamma",), n_trials=1, n_samples=8
        )
        assert len(report.results["gamma"]) == 1


class TestDatasetMergeHelpers:
    def test_renumber_steps(self):
        ds = ArchGymDataset(
            "Counting-v0",
            [
                Transition(action={"x": i}, metrics={"c": 1.0}, reward=0.0, step=1)
                for i in range(4)
            ],
        )
        ds.renumber_steps()
        assert [t.step for t in ds] == [1, 2, 3, 4]

    def test_merge_all_empty_with_env_id(self):
        merged = ArchGymDataset.merge_all([], env_id="Counting-v0")
        assert len(merged) == 0 and merged.env_id == "Counting-v0"

    def test_merge_all_empty_without_env_id_raises(self):
        with pytest.raises(ArchGymError):
            ArchGymDataset.merge_all([])
