"""Tests for durable sweep execution: shards, resume, shared cache.

The acceptance contract: a sweep run with ``out_dir`` set, killed
after k of n trials, and re-run with ``resume=True`` produces a report
(results, stats, merged dataset) identical to an uninterrupted run of
the same arguments — and the shared cache changes counters, never
fitness.
"""

import json

import pytest

from repro.core.errors import ArchGymError, ShardError
from repro.sweeps import (
    SweepReport,
    TrialTask,
    execute_trials,
    iter_shards,
    load_manifest,
    load_shard,
    prepare_sweep_dir,
    run_lottery_sweep,
    scan_completed,
    sweep_fingerprint,
    write_shard,
)
from repro.sweeps.executor import run_trial
from repro.sweeps.shards import shard_path
from tests.test_sweeps import TinyEnv

SWEEP_KW = dict(
    agents=("rw", "ga"), n_trials=2, n_samples=25, seed=13, collect_dataset=True
)


class ExplodingFactory:
    """Builds real environments until the fuse runs out, then raises —
    an in-process stand-in for `kill -9` at trial k."""

    def __init__(self, budget):
        self.budget = budget  # number of env constructions allowed
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls > self.budget:
            raise RuntimeError("simulated crash")
        return TinyEnv()


def _report_records(report):
    """Every deterministic field of a report, JSON-normalized."""
    def strip_timing(record):
        record = dict(record)
        record.pop("wall_time_s", None)
        record.pop("sim_time_s", None)
        return record

    return {
        "env_id": report.env_id,
        "n_samples": report.n_samples,
        "results": {
            agent: [strip_timing(r.to_record()) for r in rs]
            for agent, rs in report.results.items()
        },
        "dataset": [t.to_record() for t in report.dataset]
        if report.dataset is not None
        else None,
    }


class TestFingerprint:
    def test_deterministic(self):
        a = sweep_fingerprint(env_id="X", agents=["rw"], seed=0)
        b = sweep_fingerprint(env_id="X", agents=["rw"], seed=0)
        assert a == b

    @pytest.mark.parametrize(
        "override",
        [{"env_id": "Y"}, {"agents": ["ga"]}, {"seed": 1}, {"n_samples": 9}],
    )
    def test_sensitive_to_every_field(self, override):
        base = dict(env_id="X", agents=["rw"], seed=0, n_samples=8)
        assert sweep_fingerprint(**base) != sweep_fingerprint(**{**base, **override})


class TestShardIO:
    def _outcome(self, index=3):
        task = TrialTask(
            index=index, agent="rw", hyperparams={"locality": 0.2},
            agent_seed=7, run_seed=8, n_samples=12,
            env_factory=TinyEnv, collect=True,
        )
        return run_trial(task)

    def test_write_load_roundtrip(self, tmp_path):
        outcome = self._outcome()
        path = write_shard(tmp_path, outcome)
        assert path == shard_path(tmp_path, 3)
        loaded = load_shard(path)
        assert loaded.index == 3 and loaded.agent == "rw"
        assert loaded.env_id == "Tiny-v0"
        assert loaded.result.to_record() == outcome.result.to_record()
        assert [t.to_record() for t in loaded.transitions] == [
            t.to_record() for t in outcome.transitions
        ]

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        write_shard(tmp_path, self._outcome())
        assert [p.name for p in tmp_path.glob("*.tmp.*")] == []

    def test_foreign_json_rejected(self, tmp_path):
        path = tmp_path / "trial-00000.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ShardError, match="not an ArchGym trial shard"):
            load_shard(path)

    def test_scan_completed(self, tmp_path):
        for i in (0, 2, 5):
            write_shard(tmp_path, self._outcome(index=i))
        (tmp_path / "notes.txt").write_text("ignored")
        assert scan_completed(tmp_path) == {0, 2, 5}

    def test_iter_shards_in_index_order(self, tmp_path):
        for i in (4, 1, 2):
            write_shard(tmp_path, self._outcome(index=i))
        assert [o.index for o in iter_shards(tmp_path)] == [1, 2, 4]


class TestPrepareSweepDir:
    MANIFEST = {
        "fingerprint": "abc123", "env_id": "Tiny-v0", "agents": ["rw"],
        "n_trials": 1, "n_samples": 5, "seed": 0, "collect": False,
        "n_tasks": 1,
    }

    def test_fresh_dir_writes_manifest(self, tmp_path):
        out = tmp_path / "sweep"
        assert prepare_sweep_dir(out, dict(self.MANIFEST)) == set()
        assert load_manifest(out)["fingerprint"] == "abc123"

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        prepare_sweep_dir(tmp_path, dict(self.MANIFEST))
        other = {**self.MANIFEST, "fingerprint": "different"}
        with pytest.raises(ShardError, match="different sweep"):
            prepare_sweep_dir(tmp_path, other, resume=True)

    def test_existing_shards_require_resume(self, tmp_path):
        prepare_sweep_dir(tmp_path, dict(self.MANIFEST))
        write_shard(tmp_path, TestShardIO()._outcome(index=0))
        with pytest.raises(ShardError, match="resume"):
            prepare_sweep_dir(tmp_path, dict(self.MANIFEST))
        assert prepare_sweep_dir(tmp_path, dict(self.MANIFEST), resume=True) == {0}

    def test_foreign_dir_without_manifest_rejected(self, tmp_path):
        write_shard(tmp_path, TestShardIO()._outcome(index=0))
        with pytest.raises(ShardError, match="foreign"):
            prepare_sweep_dir(tmp_path, dict(self.MANIFEST))


class TestDurableSweep:
    def test_sharded_run_matches_in_memory_run(self, tmp_path):
        in_memory = run_lottery_sweep(TinyEnv, **SWEEP_KW)
        sharded = run_lottery_sweep(TinyEnv, out_dir=tmp_path / "s", **SWEEP_KW)
        assert _report_records(sharded) == _report_records(in_memory)

    def test_sharded_run_worker_invariant(self, tmp_path):
        serial = run_lottery_sweep(TinyEnv, out_dir=tmp_path / "w1", **SWEEP_KW)
        parallel = run_lottery_sweep(
            TinyEnv, out_dir=tmp_path / "w3", workers=3, **SWEEP_KW
        )
        assert _report_records(parallel) == _report_records(serial)

    def test_kill_resume_roundtrip_identical(self, tmp_path):
        """Crash after 2 of 4 trials; resume must complete the sweep and
        match an uninterrupted run on every deterministic field."""
        clean = run_lottery_sweep(
            TinyEnv, out_dir=tmp_path / "clean", **SWEEP_KW
        )

        out = tmp_path / "killed"
        # Budget: 1 probe env + 2 trial envs, then the "crash".
        with pytest.raises(RuntimeError, match="simulated crash"):
            run_lottery_sweep(ExplodingFactory(budget=3), out_dir=out, **SWEEP_KW)
        assert scan_completed(out) == {0, 1}  # progress survived the crash

        resumed = run_lottery_sweep(TinyEnv, out_dir=out, resume=True, **SWEEP_KW)
        assert scan_completed(out) == {0, 1, 2, 3}
        assert _report_records(resumed) == _report_records(clean)

    def test_resume_of_complete_sweep_runs_nothing(self, tmp_path):
        out = tmp_path / "s"
        run_lottery_sweep(TinyEnv, out_dir=out, **SWEEP_KW)
        factory = ExplodingFactory(budget=1)  # allows only the probe env
        report = run_lottery_sweep(factory, out_dir=out, resume=True, **SWEEP_KW)
        assert factory.calls == 1  # no trial re-ran
        assert set(report.results) == {"rw", "ga"}

    def test_reusing_dir_with_different_args_rejected(self, tmp_path):
        out = tmp_path / "s"
        run_lottery_sweep(TinyEnv, out_dir=out, **SWEEP_KW)
        with pytest.raises(ShardError, match="different sweep"):
            run_lottery_sweep(
                TinyEnv, out_dir=out, resume=True,
                **{**SWEEP_KW, "seed": SWEEP_KW["seed"] + 1},
            )

    def test_env_signature_mismatch_rejected(self, tmp_path):
        """env_id alone can't distinguish two factories building the
        same class with different construction args (e.g. workloads) —
        the signature must keep their shards from resume-merging."""
        out = tmp_path / "s"
        run_lottery_sweep(
            TinyEnv, out_dir=out, env_signature="workload=stream", **SWEEP_KW
        )
        with pytest.raises(ShardError, match="different sweep"):
            run_lottery_sweep(
                TinyEnv, out_dir=out, resume=True,
                env_signature="workload=random", **SWEEP_KW,
            )

    def test_factory_fingerprint_signature_attribute_used(self, tmp_path):
        class SignedFactory:
            def __init__(self, signature):
                self.fingerprint_signature = signature

            def __call__(self):
                return TinyEnv()

        out = tmp_path / "s"
        run_lottery_sweep(SignedFactory("workload=a"), out_dir=out, **SWEEP_KW)
        with pytest.raises(ShardError, match="different sweep"):
            run_lottery_sweep(
                SignedFactory("workload=b"), out_dir=out, resume=True, **SWEEP_KW
            )
        # same signature resumes fine
        run_lottery_sweep(
            SignedFactory("workload=a"), out_dir=out, resume=True, **SWEEP_KW
        )

    def test_rerun_without_resume_rejected(self, tmp_path):
        out = tmp_path / "s"
        run_lottery_sweep(TinyEnv, out_dir=out, **SWEEP_KW)
        with pytest.raises(ShardError, match="resume"):
            run_lottery_sweep(TinyEnv, out_dir=out, **SWEEP_KW)

    def test_resume_without_out_dir_rejected(self):
        with pytest.raises(ArchGymError, match="out_dir"):
            run_lottery_sweep(TinyEnv, resume=True, **SWEEP_KW)

    def test_from_shards_partial_vs_complete(self, tmp_path):
        out = tmp_path / "s"
        with pytest.raises(RuntimeError):
            run_lottery_sweep(ExplodingFactory(budget=3), out_dir=out, **SWEEP_KW)
        with pytest.raises(ShardError, match="2 of 4"):
            SweepReport.from_shards(out)
        partial = SweepReport.from_shards(out, allow_partial=True)
        assert len(partial.results["rw"]) == 2
        assert partial.results["ga"] == []


class TestSharedCacheSweep:
    def test_shared_hits_nonzero_and_fitness_unchanged(self, tmp_path):
        kw = dict(agents=("rw",), n_trials=3, n_samples=30, seed=4)
        plain = run_lottery_sweep(TinyEnv, **kw)
        shared = run_lottery_sweep(
            TinyEnv, out_dir=tmp_path / "s", shared_cache=True, **kw
        )
        # 3 trials × 30 samples over a 16-point space: trials 2 and 3
        # must revisit designs trial 1 already paid for.
        assert shared.shared_cache_hits > 0
        assert shared.fitness_distribution("rw") == plain.fitness_distribution("rw")
        assert "shared cache" in shared.print_table()
        assert "shared cache" not in plain.print_table()

    def test_second_trial_sees_first_trials_designs(self, tmp_path):
        """Cross-process: two single-task pools — separate OS processes
        sharing only the store directory."""
        def task(i):
            return TrialTask(
                index=i, agent="rw", hyperparams={"locality": 0.0},
                agent_seed=50 + i, run_seed=60 + i, n_samples=40,
                env_factory=TinyEnv, cache=True,
                shared_cache_dir=str(tmp_path / "cache"),
            )

        first = execute_trials([task(0)], workers=2)[0]
        second = execute_trials([task(1)], workers=2)[0]
        assert first.result.shared_cache_hits == 0
        assert second.result.shared_cache_hits > 0
        # shared hits replace simulator runs, never local-hit accounting:
        assert (
            second.result.cache_hits
            + second.result.cache_misses
            + second.result.shared_cache_hits
            == 40
        )

    def test_shared_cache_requires_out_dir(self):
        with pytest.raises(ArchGymError, match="out_dir"):
            run_lottery_sweep(
                TinyEnv, agents=("rw",), n_trials=1, n_samples=5,
                shared_cache=True,
            )

    def test_resume_reuses_shared_cache(self, tmp_path):
        kw = dict(
            agents=("rw",), n_trials=3, n_samples=30, seed=4,
            collect_dataset=True,
        )
        clean = run_lottery_sweep(TinyEnv, out_dir=tmp_path / "clean", **kw)
        out = tmp_path / "killed"
        with pytest.raises(RuntimeError):
            run_lottery_sweep(
                ExplodingFactory(budget=2), out_dir=out, shared_cache=True, **kw
            )
        resumed = run_lottery_sweep(
            TinyEnv, out_dir=out, resume=True, shared_cache=True, **kw
        )
        # Fitness and dataset identical to the clean run without a
        # shared cache; only the counters differ.
        assert resumed.fitness_distribution("rw") == clean.fitness_distribution("rw")
        assert [t.to_record() for t in resumed.dataset] == [
            t.to_record() for t in clean.dataset
        ]
        assert resumed.shared_cache_hits > 0
