"""Unit and property tests for repro.core.spaces."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SpaceError
from repro.core.spaces import Categorical, CompositeSpace, Continuous, Discrete


def make_space() -> CompositeSpace:
    return CompositeSpace(
        [
            Categorical("policy", ("Open", "Closed", "OpenAdaptive")),
            Discrete("buffer", low=1, high=8, step=1),
            Discrete("banks", low=2, high=16, step=2),
            Continuous("freq", low=0.5, high=2.0, resolution=16),
        ]
    )


class TestCategorical:
    def test_roundtrip_index(self):
        p = Categorical("x", ("a", "b", "c"))
        for i, v in enumerate(("a", "b", "c")):
            assert p.to_index(v) == i
            assert p.from_index(i) == v

    def test_contains(self):
        p = Categorical("x", ("a", "b"))
        assert p.contains("a")
        assert not p.contains("z")

    def test_bad_value_raises(self):
        p = Categorical("x", ("a",))
        with pytest.raises(SpaceError):
            p.to_index("nope")

    def test_bad_index_raises(self):
        p = Categorical("x", ("a", "b"))
        with pytest.raises(SpaceError):
            p.from_index(2)

    def test_empty_choices_rejected(self):
        with pytest.raises(SpaceError):
            Categorical("x", ())

    def test_duplicate_choices_rejected(self):
        with pytest.raises(SpaceError):
            Categorical("x", ("a", "a"))

    def test_unit_roundtrip(self):
        p = Categorical("x", ("a", "b", "c", "d"))
        for v in p.values():
            assert p.from_unit(p.to_unit(v)) == v


class TestDiscrete:
    def test_cardinality(self):
        assert Discrete("x", 1, 8, 1).cardinality == 8
        assert Discrete("x", 0, 10, 2).cardinality == 6
        assert Discrete("x", 5, 5, 1).cardinality == 1

    def test_values_on_grid(self):
        p = Discrete("x", 2, 10, 2)
        assert list(p.values()) == [2, 4, 6, 8, 10]

    def test_contains_grid_only(self):
        p = Discrete("x", 0, 10, 5)
        assert p.contains(0) and p.contains(5) and p.contains(10)
        assert not p.contains(3)
        assert not p.contains(11)
        assert not p.contains("hello")

    def test_roundtrip_index(self):
        p = Discrete("x", 3, 30, 3)
        for i in range(p.cardinality):
            assert p.to_index(p.from_index(i)) == i

    def test_pow2(self):
        p = Discrete.pow2("x", 1, 64)
        assert tuple(p.values()) == (1, 2, 4, 8, 16, 32, 64)

    def test_pow2_invalid(self):
        with pytest.raises(SpaceError):
            Discrete.pow2("x", 0, 8)

    def test_invalid_step(self):
        with pytest.raises(SpaceError):
            Discrete("x", 0, 10, 0)

    def test_high_below_low(self):
        with pytest.raises(SpaceError):
            Discrete("x", 10, 0, 1)

    def test_float_grid(self):
        p = Discrete("x", 0.5, 2.0, 0.5, integer=False)
        assert list(p.values()) == [0.5, 1.0, 1.5, 2.0]


class TestContinuous:
    def test_sample_in_range(self):
        p = Continuous("x", -1.0, 1.0)
        rng = np.random.default_rng(0)
        for _ in range(50):
            assert -1.0 <= p.sample(rng) <= 1.0

    def test_unit_roundtrip_exact(self):
        p = Continuous("x", 2.0, 6.0)
        assert p.from_unit(p.to_unit(4.0)) == pytest.approx(4.0)

    def test_index_quantization(self):
        p = Continuous("x", 0.0, 1.0, resolution=4)
        assert p.cardinality == 4
        # from_index returns bin centers
        assert p.from_index(0) == pytest.approx(0.125)
        assert p.from_index(3) == pytest.approx(0.875)

    def test_invalid_range(self):
        with pytest.raises(SpaceError):
            Continuous("x", 1.0, 1.0)


class TestCompositeSpace:
    def test_dimension_and_cardinality(self):
        space = make_space()
        assert space.dimension == 4
        assert space.cardinality == 3 * 8 * 8 * 16

    def test_duplicate_names_rejected(self):
        with pytest.raises(SpaceError):
            CompositeSpace([Categorical("a", ("x",)), Categorical("a", ("y",))])

    def test_sample_is_valid(self):
        space = make_space()
        rng = np.random.default_rng(1)
        for _ in range(100):
            action = space.sample(rng)
            assert space.contains(action)

    def test_encode_decode_roundtrip(self):
        space = make_space()
        rng = np.random.default_rng(2)
        for _ in range(100):
            action = space.sample(rng)
            decoded = space.decode(space.encode(action))
            # Continuous params quantize; compare through encoding.
            assert np.array_equal(space.encode(decoded), space.encode(action))

    def test_validate_missing_key(self):
        space = make_space()
        action = space.sample(np.random.default_rng(0))
        del action["policy"]
        with pytest.raises(SpaceError, match="missing"):
            space.validate(action)

    def test_validate_extra_key(self):
        space = make_space()
        action = space.sample(np.random.default_rng(0))
        action["bogus"] = 1
        with pytest.raises(SpaceError, match="unknown"):
            space.validate(action)

    def test_validate_bad_value(self):
        space = make_space()
        action = space.sample(np.random.default_rng(0))
        action["buffer"] = 99
        with pytest.raises(SpaceError):
            space.validate(action)

    def test_getitem(self):
        space = make_space()
        assert space["policy"].name == "policy"
        with pytest.raises(SpaceError):
            space["nope"]

    def test_neighbors_differ_in_one_param(self):
        space = make_space()
        rng = np.random.default_rng(3)
        action = space.sample(rng)
        for neighbor in space.neighbors(action, rng, n=20):
            diffs = [
                k for k in space.names
                if space[k].to_index(neighbor[k]) != space[k].to_index(action[k])
            ]
            assert len(diffs) == 1

    def test_mutate_rate_zero_is_identity(self):
        space = make_space()
        rng = np.random.default_rng(4)
        action = space.sample(rng)
        assert space.mutate(action, rng, rate=0.0) == action

    def test_mutate_rate_one_still_valid(self):
        space = make_space()
        rng = np.random.default_rng(5)
        action = space.sample(rng)
        mutated = space.mutate(action, rng, rate=1.0)
        assert space.contains(mutated)

    def test_decode_wrong_length(self):
        space = make_space()
        with pytest.raises(SpaceError):
            space.decode([0, 0])

    def test_unit_vector_wrong_length(self):
        space = make_space()
        with pytest.raises(SpaceError):
            space.from_unit_vector([0.5])


# -- property-based tests -------------------------------------------------------

index_vectors = st.tuples(
    st.integers(0, 2), st.integers(0, 7), st.integers(0, 7), st.integers(0, 15)
)


@given(index_vectors)
@settings(max_examples=200)
def test_prop_decode_encode_roundtrip(indices):
    """decode(encode(.)) is the identity on index vectors."""
    space = make_space()
    action = space.decode(list(indices))
    assert tuple(space.encode(action)) == indices


@given(index_vectors)
@settings(max_examples=200)
def test_prop_unit_vector_roundtrip(indices):
    """from_unit_vector(to_unit_vector(.)) preserves the design point."""
    space = make_space()
    action = space.decode(list(indices))
    recovered = space.from_unit_vector(space.to_unit_vector(action))
    assert tuple(space.encode(recovered)) == indices


@given(st.lists(st.floats(0.0, 1.0), min_size=4, max_size=4))
@settings(max_examples=200)
def test_prop_from_unit_vector_always_valid(vec):
    """Any point of the unit hypercube maps to a valid action."""
    space = make_space()
    action = space.from_unit_vector(vec)
    assert space.contains(action)


@given(st.integers(1, 20), st.integers(1, 100), st.integers(1, 7))
@settings(max_examples=200)
def test_prop_discrete_cardinality_matches_values(low, span, step):
    p = Discrete("x", low, low + span, step)
    values = list(p.values())
    assert len(values) == p.cardinality
    assert all(p.contains(v) for v in values)
    assert values[0] == low
    assert values[-1] <= low + span
