"""Unit + property tests for the Timeloop substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.dnn import WORKLOAD_NAMES, ConvLayer, get_workload
from repro.timeloop import (
    EYERISS_LIKE,
    INFEASIBLE_PENALTY,
    AcceleratorConfig,
    EnergyModel,
    TimeloopModel,
    accelerator_space,
)


class TestLayers:
    def test_all_workloads_available(self):
        for name in WORKLOAD_NAMES:
            layers = get_workload(name)
            assert len(layers) > 0

    def test_unknown_workload(self):
        with pytest.raises(SimulationError):
            get_workload("lenet-9000")

    def test_macs_formula(self):
        layer = ConvLayer("l", K=8, C=4, R=3, S=3, P=10, Q=10)
        assert layer.macs == 8 * 4 * 3 * 3 * 10 * 10

    def test_depthwise_macs(self):
        layer = ConvLayer("dw", K=16, C=16, R=3, S=3, P=10, Q=10, depthwise=True)
        assert layer.macs == 16 * 3 * 3 * 10 * 10

    def test_depthwise_requires_k_eq_c(self):
        with pytest.raises(SimulationError):
            ConvLayer("bad", K=8, C=16, R=3, S=3, P=4, Q=4, depthwise=True)

    def test_input_dims(self):
        layer = ConvLayer("l", K=1, C=1, R=3, S=3, P=10, Q=10, stride=2)
        assert layer.input_h == (10 - 1) * 2 + 3

    def test_invalid_dims(self):
        with pytest.raises(SimulationError):
            ConvLayer("l", K=0, C=1, R=1, S=1, P=1, Q=1)

    def test_vgg16_macs_order_of_magnitude(self):
        total = sum(layer.macs * layer.repeat for layer in get_workload("vgg16"))
        # VGG16 convs are ~15.3 GMACs
        assert 0.8e10 < total < 2.5e10

    def test_resnet18_macs_order_of_magnitude(self):
        total = sum(layer.macs * layer.repeat for layer in get_workload("resnet18"))
        # ResNet18 is ~1.8 GMACs
        assert 0.8e9 < total < 4e9


class TestArch:
    def test_default_is_eyeriss_like(self):
        assert EYERISS_LIKE.num_pes == 168

    def test_validation(self):
        with pytest.raises(SimulationError):
            AcceleratorConfig(pe_rows=0)
        with pytest.raises(SimulationError):
            AcceleratorConfig(clock_ghz=0.0)
        with pytest.raises(SimulationError):
            AcceleratorConfig(word_bytes=3)

    def test_energy_hierarchy_enforced(self):
        with pytest.raises(SimulationError):
            EnergyModel(e_spad=100.0)

    def test_area_grows_with_pes(self):
        small = AcceleratorConfig(pe_rows=4, pe_cols=4)
        big = AcceleratorConfig(pe_rows=32, pe_cols=32)
        assert big.area_mm2 > small.area_mm2

    def test_action_roundtrip(self):
        cfg = AcceleratorConfig(pe_rows=8, pe_cols=16, glb_kb=256)
        assert AcceleratorConfig.from_action(cfg.to_action()) == cfg

    def test_space_samples_valid_configs(self):
        space = accelerator_space()
        rng = np.random.default_rng(0)
        for _ in range(30):
            AcceleratorConfig.from_action(space.sample(rng))


class TestModel:
    model = TimeloopModel()

    def test_deterministic(self):
        layers = get_workload("alexnet")
        a = self.model.evaluate_network(EYERISS_LIKE, layers)
        b = self.model.evaluate_network(EYERISS_LIKE, layers)
        assert a == b

    def test_feasible_on_reference(self):
        for name in ("alexnet", "resnet50", "mobilenet"):
            m = self.model.evaluate_network(EYERISS_LIKE, get_workload(name))
            assert m["feasible"] == 1.0
            assert m["latency"] > 0
            assert m["energy"] > 0

    def test_metrics_keys(self):
        m = self.model.evaluate_network(EYERISS_LIKE, get_workload("alexnet"))
        for key in ("latency", "energy", "area", "feasible", "utilization"):
            assert key in m

    def test_more_pes_not_slower(self):
        layers = get_workload("resnet50")
        small = AcceleratorConfig(pe_rows=4, pe_cols=4, glb_bw=64, dram_bw=32)
        big = AcceleratorConfig(pe_rows=32, pe_cols=32, glb_bw=64, dram_bw=32)
        lat_small = self.model.evaluate_network(small, layers)["latency"]
        lat_big = self.model.evaluate_network(big, layers)["latency"]
        assert lat_big <= lat_small

    def test_higher_clock_not_slower(self):
        layers = get_workload("alexnet")
        slow = AcceleratorConfig(clock_ghz=0.6)
        fast = AcceleratorConfig(clock_ghz=1.8)
        assert (
            self.model.evaluate_network(fast, layers)["latency"]
            <= self.model.evaluate_network(slow, layers)["latency"]
        )

    def test_tiny_spads_infeasible(self):
        # a 1-PE design whose weight spad cannot hold even one 11x11 filter
        tiny = AcceleratorConfig(
            pe_rows=1, pe_cols=1, weight_spad_entries=16,
            ifmap_spad_entries=8, psum_spad_entries=8, glb_kb=1,
        )
        m = self.model.evaluate_network(tiny, get_workload("alexnet"))
        assert m["feasible"] == 0.0
        assert m["latency"] >= INFEASIBLE_PENALTY

    def test_layer_cost_fields(self):
        layer = get_workload("alexnet")[0]
        cost = self.model.evaluate_layer(EYERISS_LIKE, layer)
        assert cost.feasible
        assert cost.tile_k >= 1 and cost.tile_c >= 1 and cost.tile_p >= 1
        assert 0.0 < cost.utilization <= 1.0

    def test_depthwise_layer_evaluates(self):
        dw = ConvLayer("dw", K=32, C=32, R=3, S=3, P=56, Q=56, depthwise=True)
        cost = self.model.evaluate_layer(EYERISS_LIKE, dw)
        assert cost.feasible
        assert cost.tile_c == 1

    def test_bandwidth_bound_design(self):
        # starve DRAM bandwidth: latency must be dram-bound and rise
        layers = get_workload("resnet50")
        fast_mem = AcceleratorConfig(dram_bw=32)
        slow_mem = AcceleratorConfig(dram_bw=2)
        assert (
            self.model.evaluate_network(slow_mem, layers)["latency"]
            >= self.model.evaluate_network(fast_mem, layers)["latency"]
        )


# -- property-based tests ---------------------------------------------------------

arch_actions = st.builds(
    dict,
    NumPEsX=st.sampled_from((2, 4, 8, 16, 32)),
    NumPEsY=st.sampled_from((2, 4, 8, 16, 32)),
    IfmapSpadEntries=st.sampled_from((8, 16, 32, 64, 128)),
    WeightsSpadEntries=st.sampled_from((16, 32, 64, 128, 256, 512)),
    PsumSpadEntries=st.sampled_from((8, 16, 32, 64, 128)),
    GlbSizeKB=st.sampled_from((32, 64, 128, 256, 512, 1024, 2048)),
    GlbBwWordsPerCycle=st.sampled_from((4, 8, 16, 32, 64)),
    DramBwWordsPerCycle=st.sampled_from((2, 4, 8, 16, 32)),
    ClockGHz=st.sampled_from((0.6, 0.8, 1.0, 1.2, 1.4, 1.6, 1.8)),
)


@given(arch_actions)
@settings(max_examples=60, deadline=None)
def test_prop_model_invariants(action):
    """Every sampled architecture yields finite, positive costs (or a
    clean infeasibility penalty) on every workload family."""
    arch = AcceleratorConfig.from_action(action)
    model = TimeloopModel()
    m = model.evaluate_network(arch, get_workload("alexnet"))
    assert np.isfinite(m["latency"])
    assert m["latency"] > 0
    assert m["energy"] > 0
    assert m["area"] > 0
    assert 0.0 <= m["utilization"] <= 1.0


@given(arch_actions)
@settings(max_examples=30, deadline=None)
def test_prop_energy_scales_with_network_size(action):
    """A bigger network (more MACs) never costs less energy on the same
    architecture, when both are feasible."""
    arch = AcceleratorConfig.from_action(action)
    model = TimeloopModel()
    small = model.evaluate_network(arch, get_workload("resnet18"))
    big = model.evaluate_network(arch, get_workload("vgg16"))
    if small["feasible"] and big["feasible"]:
        assert big["energy"] >= small["energy"]
