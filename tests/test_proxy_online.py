"""Tests for proxy-in-the-loop search: the online surrogate, the
screened generation path, and the correctness fixes that ride along
(non-finite cache rejection, healthz snapshot, auto-weight windows)."""

import json
import math

import numpy as np
import pytest

from repro.agents.hyperparams import make_agent
from repro.core.cache_store import SharedCacheStore, encode_key
from repro.core.env import ArchGymEnv
from repro.core.errors import (
    AgentError,
    CacheStoreError,
    ExecutorError,
    ProxyModelError,
    ServiceError,
)
from repro.core.rewards import TargetReward
from repro.core.spaces import Categorical, CompositeSpace, Discrete
from repro.agents.base import run_agent
from repro.proxy import OnlineProxy
from repro.proxy.trainer import ProxyCostModel
from repro.service.wire import clean_metrics
from repro.sweeps import run_lottery_sweep
from repro.sweeps.executor import resolve_execution_backend


class RidgeEnv(ArchGymEnv):
    """A smooth, learnable cost surface big enough that a forest
    trained on a few dozen points generalizes — the proxy gate must
    open on real signal, not on memorized duplicates."""

    env_id = "Ridge-v0"

    def __init__(self):
        super().__init__(
            action_space=CompositeSpace(
                [
                    Discrete("x", 0, 31, 1),
                    Discrete("y", 0, 31, 1),
                    Categorical("m", ("a", "b")),
                ]
            ),
            observation_metrics=["cost"],
            reward_spec=TargetReward("cost", target=1.0),
            episode_length=10_000,
        )

    def evaluate(self, action):
        return {
            "cost": 1.0
            + 0.3 * abs(action["x"] - 20)
            + 0.2 * abs(action["y"] - 9)
            + 2.0 * (action["m"] == "a")
        }


def _space():
    return RidgeEnv().action_space


def _fill_store(store, env, n=96, seed=0):
    """Seed a cache store with n distinct ground-truth points."""
    rng = np.random.default_rng(seed)
    added = 0
    while added < n:
        action = env.action_space.sample(rng)
        key = encode_key(tuple(sorted(action.items())))
        if store.get_encoded(key) is None:
            store.put_encoded(key, env.evaluate(action))
            added += 1
    return store


def _canonical_put(store, action, metrics):
    from repro.core.env import canonical_action_key

    store.put_encoded(
        json.dumps(canonical_action_key(action), separators=(",", ":")),
        metrics,
    )


class TestOnlineProxy:
    def test_ctor_validation(self):
        with pytest.raises(ProxyModelError, match="min_corpus"):
            OnlineProxy(_space(), ["cost"], min_corpus=4)
        with pytest.raises(ProxyModelError, match="max_fit_samples"):
            OnlineProxy(_space(), ["cost"], min_corpus=64, max_fit_samples=32)

    def test_observe_dedupes_and_counts(self):
        proxy = OnlineProxy(_space(), ["cost"], min_corpus=8)
        action = {"x": 3, "y": 4, "m": "a"}
        assert proxy.observe(action, {"cost": 2.0}) is True
        assert proxy.observe(action, {"cost": 2.0}) is False  # duplicate key
        assert proxy.corpus_size == 1

    def test_observe_skips_unencodable_and_nonfinite(self):
        proxy = OnlineProxy(_space(), ["cost"], min_corpus=8)
        assert proxy.observe({"x": 3, "y": 4, "m": "a"}, {"cost": math.nan}) is False
        assert proxy.observe({"bogus": 1}, {"cost": 2.0}) is False
        assert proxy.observe({"x": 1, "y": 1, "m": "a"}, {"other": 2.0}) is False
        assert proxy.corpus_size == 0

    def test_cold_gate_then_opens_on_learnable_corpus(self, tmp_path):
        env = RidgeEnv()
        store = _fill_store(SharedCacheStore(tmp_path), env, n=96)
        proxy = OnlineProxy(env.action_space, ["cost"], min_corpus=64, seed=0)
        assert proxy.ready is False
        assert proxy.maybe_refit() is False  # empty corpus: below gate
        assert proxy.harvest(store) == 96
        assert proxy.maybe_refit() is True
        assert proxy.refits == 1
        assert proxy.ready is True  # smooth surface: RMSE clears 0.35
        assert 0.0 < proxy.last_rmse <= 0.35
        # the optimum predicts well below the surface's ~6.2 mean cost
        pred = proxy.predict_metrics({"x": 20, "y": 9, "m": "b"})
        assert pred["cost"] < 5.0

    def test_refit_policy_amortizes(self, tmp_path):
        env = RidgeEnv()
        store = _fill_store(SharedCacheStore(tmp_path), env, n=64)
        proxy = OnlineProxy(env.action_space, ["cost"], min_corpus=64)
        proxy.harvest(store)
        assert proxy.maybe_refit() is True
        # one fresh point is below the growth threshold: no refit
        proxy.observe({"x": 0, "y": 0, "m": "a"}, env.evaluate({"x": 0, "y": 0, "m": "a"}))
        assert proxy.maybe_refit() is False
        assert proxy.refits == 1

    def test_foreign_entries_skipped_not_fatal(self, tmp_path):
        env = RidgeEnv()
        store = SharedCacheStore(tmp_path)
        _canonical_put(store, {"x": 1, "y": 2, "m": "a"}, {"cost": 3.0})
        # a different env sharing the store: wrong names, wrong metrics
        store.put_encoded('[["alien",7]]', {"latency": 9.0})
        store.put_encoded("not json at all", {"cost": 1.0})
        proxy = OnlineProxy(env.action_space, ["cost"], min_corpus=8)
        assert proxy.ingest_store(store) == 1
        assert proxy.corpus_size == 1

    def test_warm_harvest_is_throttled(self, tmp_path):
        env = RidgeEnv()
        store = _fill_store(SharedCacheStore(tmp_path), env, n=64)
        proxy = OnlineProxy(env.action_space, ["cost"], min_corpus=64)
        proxy.harvest(store)
        proxy.maybe_refit()
        assert proxy.ready
        # gate open: back-to-back harvests skip the listing walk
        _canonical_put(store, {"x": 31, "y": 31, "m": "b"},
                       env.evaluate({"x": 31, "y": 31, "m": "b"}))
        assert proxy.harvest(store) == 0  # call 2 of the warm cycle
        calls = [proxy.harvest(store) for _ in range(8)]
        assert sum(calls) == 1  # exactly one re-page in a full cycle

    def test_predict_before_fit_raises(self):
        proxy = OnlineProxy(_space(), ["cost"], min_corpus=8)
        with pytest.raises(ProxyModelError, match="no fitted model"):
            proxy.predict_metrics({"x": 1, "y": 1, "m": "a"})
        with pytest.raises(ProxyModelError, match="no fitted model"):
            proxy.predict_batch([{"x": 1, "y": 1, "m": "a"}])

    def test_fit_matrices_validates_shape(self):
        model = ProxyCostModel(_space(), ["cost"])
        X = np.random.default_rng(0).random((32, 3))
        with pytest.raises(ProxyModelError, match="target matrix"):
            model.fit_matrices(X, np.random.default_rng(1).random((32, 2)))


class TestListEncodedPaging:
    def test_file_tier_pages_cover_store_exactly(self, tmp_path):
        env = RidgeEnv()
        store = _fill_store(SharedCacheStore(tmp_path), env, n=23)
        harvested = {}
        offset = 0
        while True:
            page, total = store.list_encoded(offset, limit=7)
            assert total == 23
            if not page:
                break
            harvested.update(page)
            offset += len(page)
            if offset >= total:
                break
        assert len(harvested) == 23
        assert sorted(harvested) == store.keys_encoded()


class TestNonFiniteRejection:
    def test_put_rejects_nan_and_inf(self, tmp_path):
        store = SharedCacheStore(tmp_path)
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(CacheStoreError, match="non-finite"):
                store.put_encoded('[["x",1]]', {"cost": bad})
        assert len(store) == 0  # nothing reached the shard files

    def test_wire_rejects_nan_and_inf(self):
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ServiceError, match="non-finite"):
                clean_metrics({"cost": bad})
        assert clean_metrics({"cost": 1.5}) == {"cost": 1.5}

    def test_refresh_skips_poisoned_lines(self, tmp_path):
        """A pre-guard shard holding NaN/Infinity JSON tokens must not
        poison readers: the bad entry is skipped, the good ones fold."""
        store = SharedCacheStore(tmp_path, n_shards=1)
        store.put_encoded('[["x",1]]', {"cost": 2.0})
        shard = store._shard_path(0)
        with shard.open("a") as f:
            f.write('{"k": "[[\\"x\\",2]]", "m": {"cost": NaN}}\n')
            f.write('{"k": "[[\\"x\\",3]]", "m": {"cost": Infinity}}\n')
        fresh = SharedCacheStore(tmp_path, n_shards=1)
        assert fresh.get_encoded('[["x",2]]') is None
        assert fresh.get_encoded('[["x",3]]') is None
        assert fresh.get_encoded('[["x",1]]') == {"cost": 2.0}
        assert len(fresh) == 1


class TestAutoWeightWindows:
    """Unit tests for the auto-weight rate windows: a zero-delta or
    sub-epsilon poll must not consume the accumulation window, and a
    counter reset (host restart) must re-baseline."""

    def _pool(self, healths):
        from repro.sweeps.hostpool import HostPool

        class _StubProbe:
            def __init__(self, feed):
                self.feed = list(feed)

            def healthz(self):
                return self.feed.pop(0)

        pool = HostPool(
            ["http://stub:1"], timeout_s=1.0, retries=0,
            auto_weights=True, auto_weights_interval_s=0.0,
        )
        pool._hosts[0].probe_client = _StubProbe(healths)
        return pool, pool._hosts[0]

    def test_zero_delta_poll_preserves_window(self):
        pool, host = self._pool([
            {"evaluations": 10, "busy_s": 1.0},
            {"evaluations": 10, "busy_s": 1.0},  # nothing happened
            {"evaluations": 20, "busy_s": 2.0},
        ])
        pool._refresh_auto_weights()
        assert host.rate_ewma == pytest.approx(10.0)
        pool._refresh_auto_weights()  # zero delta: no fold, no re-baseline
        assert host.rate_ewma == pytest.approx(10.0)
        assert host.seen_evals == 10
        pool._refresh_auto_weights()
        # the full 10-evals/1s window folds as rate 10, not 0 or a spike
        assert host.rate_ewma == pytest.approx(10.0)

    def test_sub_epsilon_busy_window_not_a_spike(self):
        pool, host = self._pool([
            {"evaluations": 10, "busy_s": 1.0},
            {"evaluations": 11, "busy_s": 1.0 + 1e-9},  # back-to-back poll
            {"evaluations": 20, "busy_s": 2.0},
        ])
        pool._refresh_auto_weights()
        pool._refresh_auto_weights()  # would be rate 1e9 without the guard
        assert host.rate_ewma == pytest.approx(10.0)
        pool._refresh_auto_weights()
        assert host.rate_ewma == pytest.approx(10.0)

    def test_counter_reset_rebaselines(self):
        pool, host = self._pool([
            {"evaluations": 10, "busy_s": 1.0},
            {"evaluations": 2, "busy_s": 0.2},  # host restarted
            {"evaluations": 12, "busy_s": 1.2},
        ])
        pool._refresh_auto_weights()
        pool._refresh_auto_weights()  # negative delta: re-baseline only
        assert host.rate_ewma == pytest.approx(10.0)
        assert host.seen_evals == 2
        pool._refresh_auto_weights()
        assert host.rate_ewma == pytest.approx(10.0)


def _normalized_records(report):
    rows = []
    for agent in sorted(report.results):
        for res in report.results[agent]:
            rec = res.to_record()
            rec["wall_time_s"] = 0.0
            rec["sim_time_s"] = 0.0
            rows.append(rec)
    return rows


SCREEN_KW = dict(
    agents=("rw", "ga"), n_trials=2, n_samples=40, seed=11,
    shared_cache=True, proxy_screen=True, proxy_min_corpus=24,
    proxy_oversample=2, proxy_refresh=0.25,
)


class TestScreenedSweeps:
    def test_proxy_screen_requires_shared_cache(self):
        with pytest.raises(ExecutorError, match="shared cache"):
            resolve_execution_backend(None, False, None, proxy_screen=True)
        with pytest.raises(ExecutorError, match="shared cache tier"):
            resolve_execution_backend(None, True, None, proxy_screen=True)

    def test_run_agent_knob_validation(self):
        env = RidgeEnv()
        agent = make_agent("ga", env.action_space, seed=0)
        for kw in (
            dict(proxy_oversample=0),
            dict(proxy_topk=0),
            dict(proxy_refresh=1.5),
        ):
            with pytest.raises(AgentError):
                run_agent(agent, env, n_samples=8, seed=0,
                          proxy_screen=True, **kw)

    def test_screened_sweep_deterministic_across_runs(self, tmp_path):
        first = run_lottery_sweep(
            RidgeEnv, out_dir=tmp_path / "a", **SCREEN_KW
        )
        second = run_lottery_sweep(
            RidgeEnv, out_dir=tmp_path / "b", **SCREEN_KW
        )
        assert _normalized_records(first) == _normalized_records(second)
        # shard bytes agree too (modulo timing fields inside results)
        shards_a = sorted((tmp_path / "a").glob("trial-*.json"))
        shards_b = sorted((tmp_path / "b").glob("trial-*.json"))
        assert len(shards_a) == len(shards_b) == 4

    def test_screened_counters_reconcile(self, tmp_path):
        report = run_lottery_sweep(
            RidgeEnv, out_dir=tmp_path / "s", **SCREEN_KW
        )
        assert report.proxy_screened > 0  # the gate opened mid-sweep
        assert 0 < report.proxy_accepted < report.proxy_screened
        assert report.proxy_refresh_evals <= report.proxy_accepted
        assert 0.0 < report.proxy_last_rmse <= 0.35
        for agent, results in report.results.items():
            for res in results:
                assert res.proxy_accepted <= res.proxy_screened
                assert res.proxy_refresh_evals <= res.proxy_accepted
        assert "proxy screen:" in report.print_table()

    def test_counters_survive_shard_roundtrip(self, tmp_path):
        run_lottery_sweep(RidgeEnv, out_dir=tmp_path / "s", **SCREEN_KW)
        records = [
            json.loads(p.read_text())["result"]
            for p in sorted((tmp_path / "s").glob("trial-*.json"))
        ]
        assert any(r["proxy_screened"] > 0 for r in records)
        for r in records:
            assert r["proxy_accepted"] <= r["proxy_screened"]
            assert r["proxy_refresh_evals"] <= r["proxy_accepted"]

    def test_cold_start_matches_plain_dispatch(self, tmp_path):
        """With an unreachable corpus gate the screened run must be
        byte-identical to plain generation dispatch — the fallback path
        IS the plain path."""
        kw = dict(agents=("rw", "ga"), n_trials=2, n_samples=30, seed=3,
                  shared_cache=True)
        baseline = run_lottery_sweep(
            RidgeEnv, out_dir=tmp_path / "plain",
            generation_dispatch=True, **kw
        )
        cold = run_lottery_sweep(
            RidgeEnv, out_dir=tmp_path / "cold",
            proxy_screen=True, proxy_min_corpus=10_000_000, **kw
        )
        assert _normalized_records(cold) == _normalized_records(baseline)
        assert cold.proxy_screened == 0
        assert cold.proxy_accepted == 0
        assert cold.proxy_refresh_evals == 0
        assert cold.proxy_last_rmse == 0.0

    def test_export_rows_carry_proxy_columns(self, tmp_path):
        from repro.sweeps.export import report_to_rows

        report = run_lottery_sweep(
            RidgeEnv, out_dir=tmp_path / "s", **SCREEN_KW
        )
        rows = report_to_rows(report)
        assert sum(r["proxy_screened"] for r in rows) == report.proxy_screened
        assert sum(r["proxy_accepted"] for r in rows) == report.proxy_accepted

    def test_proxy_fingerprint_differs_from_plain(self, tmp_path):
        """A screened sweep must not resume into a plain sweep's dir —
        the screening decision is part of the fingerprint."""
        from repro.core.errors import ShardError

        kw = dict(agents=("rw",), n_trials=1, n_samples=10, seed=0,
                  shared_cache=True)
        out = tmp_path / "s"
        run_lottery_sweep(RidgeEnv, out_dir=out, **kw)
        with pytest.raises(ShardError, match="different sweep"):
            run_lottery_sweep(
                RidgeEnv, out_dir=out, resume=True,
                proxy_screen=True, proxy_min_corpus=8, **kw
            )
