"""Tests for sweep-report export (repro.sweeps.export)."""

import csv
import json

import pytest

from repro.core.errors import ArchGymError
from repro.sweeps import SweepReport, run_lottery_sweep
from repro.sweeps.export import (
    load_report_json,
    report_to_rows,
    save_report_csv,
    save_report_json,
)
from tests.test_sweeps import TinyEnv


@pytest.fixture(scope="module")
def report():
    return run_lottery_sweep(
        TinyEnv, agents=("rw", "ga"), n_trials=3, n_samples=20, seed=0
    )


class TestRows:
    def test_one_row_per_trial(self, report):
        rows = report_to_rows(report)
        assert len(rows) == 6
        assert {r["agent"] for r in rows} == {"rw", "ga"}

    def test_row_fields(self, report):
        row = report_to_rows(report)[0]
        for key in ("env_id", "best_fitness", "hyperparameters", "best_action"):
            assert key in row
        assert row["env_id"] == "Tiny-v0"

    def test_empty_report_rejected(self):
        with pytest.raises(ArchGymError):
            report_to_rows(SweepReport(env_id="X", n_samples=1))


class TestJson:
    def test_roundtrip(self, report, tmp_path):
        path = tmp_path / "sweep.json"
        save_report_json(report, path)
        payload = load_report_json(path)
        assert payload["env_id"] == "Tiny-v0"
        assert len(payload["rows"]) == 6
        assert payload["rows"][0]["n_samples"] == 20

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ArchGymError):
            load_report_json(path)


class TestCsv:
    def test_csv_structure(self, report, tmp_path):
        path = tmp_path / "sweep.csv"
        save_report_csv(report, path)
        with path.open() as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 6
        # nested fields decode back to dicts
        hp = json.loads(rows[0]["hyperparameters"])
        assert isinstance(hp, dict)
        action = json.loads(rows[0]["best_action"])
        assert "x" in action
