"""Tests for the data-driven offline agent (paper §8 extension)."""

import numpy as np
import pytest

from repro.agents import OfflineAgent, make_agent, run_agent
from repro.core.dataset import ArchGymDataset, Transition
from repro.core.env import ArchGymEnv
from repro.core.errors import AgentError
from repro.core.rewards import TargetReward
from repro.core.spaces import Categorical, CompositeSpace, Discrete


def space():
    return CompositeSpace(
        [Discrete("x", 0, 15, 1), Discrete("y", 0, 15, 1),
         Categorical("m", ("a", "b"))]
    )


class BowlEnv(ArchGymEnv):
    env_id = "Bowl-v0"

    def __init__(self):
        super().__init__(
            action_space=space(),
            observation_metrics=["cost"],
            reward_spec=TargetReward("cost", target=1.0, tolerance=0.3),
            episode_length=10_000,
        )

    def evaluate(self, action):
        return {"cost": 1.0 + (action["x"] - 12) ** 2 + (action["y"] - 3) ** 2
                + (3.0 if action["m"] == "a" else 0.0)}


def make_offline_dataset(n=300, seed=0):
    """Logged random exploration with maximize-me rewards."""
    env = BowlEnv()
    rng = np.random.default_rng(seed)
    ds = ArchGymDataset("Bowl-v0")
    for __ in range(n):
        action = env.action_space.sample(rng)
        metrics = env.evaluate(action)
        ds.append(Transition(action=action, metrics=metrics,
                             reward=env.reward_spec.compute(metrics),
                             source="random_logger"))
    return ds


class TestOfflineAgent:
    def test_validation(self):
        with pytest.raises(AgentError):
            OfflineAgent(space(), exploration=2.0)
        with pytest.raises(AgentError):
            OfflineAgent(space(), candidate_pool=0)

    def test_cold_start_proposes_random(self):
        agent = OfflineAgent(space(), seed=0)
        assert agent.n_training_points == 0
        action = agent.propose()
        assert space().contains(action)

    def test_warm_start_ingests_dataset(self):
        ds = make_offline_dataset()
        agent = OfflineAgent(space(), seed=0, dataset=ds)
        assert agent.n_training_points == len(ds)

    def test_warm_start_beats_cold_random_walk(self):
        """With 300 logged points, the offline agent should immediately
        propose near-optimal designs, beating pure random search at a
        tiny online budget."""
        ds = make_offline_dataset(n=300, seed=1)
        env_offline = BowlEnv()
        offline = OfflineAgent(env_offline.action_space, seed=2, dataset=ds,
                               exploration=0.05)
        res_offline = run_agent(offline, env_offline, n_samples=20, seed=2)

        env_rw = BowlEnv()
        rw = make_agent("rw", env_rw.action_space, seed=2)
        res_rw = run_agent(rw, env_rw, n_samples=20, seed=2)

        assert res_offline.best_metrics["cost"] <= res_rw.best_metrics["cost"]

    def test_online_observations_accumulate_and_refit(self):
        env = BowlEnv()
        agent = OfflineAgent(env.action_space, seed=3, refit_every=5)
        run_agent(agent, env, n_samples=17, seed=3)
        assert agent.n_training_points == 17
        assert agent._fitted

    def test_factory_constructs(self):
        agent = make_agent("offline", space(), seed=0, exploration=0.25)
        assert isinstance(agent, OfflineAgent)
        assert agent.hyperparameters["exploration"] == 0.25

    def test_full_exploration_is_random_search(self):
        ds = make_offline_dataset(n=50)
        agent = OfflineAgent(space(), seed=0, dataset=ds, exploration=1.0)
        actions = [agent.propose() for __ in range(20)]
        assert all(space().contains(a) for a in actions)

    def test_proposals_valid_after_ingest(self):
        ds = make_offline_dataset(n=80)
        agent = OfflineAgent(space(), seed=4, dataset=ds, exploration=0.0)
        for __ in range(10):
            a = agent.propose()
            assert space().contains(a)
            agent.observe(a, 1.0, {})
