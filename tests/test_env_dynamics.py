"""Episode dynamics on the real environments.

Exercises multi-step episodes, early termination on target, observation
consistency with the info dict, and derived-target behavior — the env
mechanics the agents' driver loop relies on.
"""

import numpy as np
import pytest

from repro.envs.dram import DRAMGymEnv
from repro.envs.farsi_env import FARSIGymEnv
from repro.envs.timeloop_env import TimeloopGymEnv


class TestEpisodes:
    def test_multi_step_episode_truncates(self):
        env = DRAMGymEnv(workload="stream", n_requests=60, episode_length=3)
        env.reset(seed=0)
        rng = np.random.default_rng(0)
        flags = []
        for __ in range(3):
            *__rest, truncated, __info = env.step(env.action_space.sample(rng))
            flags.append(truncated)
        assert flags == [False, False, True]

    def test_terminate_on_target_real_env(self):
        env = DRAMGymEnv(
            workload="pointer_chase", objective="power", power_target_w=1.0,
            n_requests=300, episode_length=1000, terminate_on_target=True,
        )
        env.reset(seed=0)
        rng = np.random.default_rng(3)
        terminated = False
        for __ in range(200):
            __, __, terminated, truncated, info = env.step(
                env.action_space.sample(rng)
            )
            if terminated:
                assert info["target_met"]
                assert abs(info["metrics"]["power"] - 1.0) <= 0.02
                break
            if truncated:
                break
        assert terminated, "random search should hit the 1W +/- 2% band"

    def test_observation_matches_info_metrics(self):
        env = TimeloopGymEnv(workload="alexnet")
        env.reset(seed=0)
        rng = np.random.default_rng(1)
        for __ in range(5):
            obs, __, __, __, info = env.step(env.action_space.sample(rng))
            expected = [info["metrics"][m] for m in env.observation_metrics]
            assert np.allclose(obs, expected)
            env.reset()

    def test_episode_counts_in_stats(self):
        env = FARSIGymEnv(workload="audio_decoder", episode_length=2)
        rng = np.random.default_rng(2)
        for __ in range(3):
            env.reset(seed=None)
            env.step(env.action_space.sample(rng))
            env.step(env.action_space.sample(rng))
        assert env.stats.total_episodes == 3
        assert env.stats.total_steps == 6


class TestDerivedTargets:
    def test_dram_targets_derived_from_default_config(self):
        env = DRAMGymEnv(workload="stream", objective="latency", n_requests=200)
        # derived latency target is 80% of the default controller's latency
        default_metrics = env.evaluate(
            __import__("repro.dramsys.config", fromlist=["ControllerConfig"])
            .ControllerConfig().to_action()
        )
        assert env.latency_target_ns == pytest.approx(
            0.8 * default_metrics["latency"], rel=1e-6
        )

    def test_dram_targets_differ_across_workloads(self):
        stream = DRAMGymEnv(workload="stream", n_requests=200)
        chase = DRAMGymEnv(workload="pointer_chase", n_requests=200)
        assert stream.latency_target_ns != chase.latency_target_ns

    def test_explicit_targets_respected(self):
        env = DRAMGymEnv(workload="stream", objective="power",
                         power_target_w=1.23, n_requests=50)
        assert env.power_target_w == 1.23
        assert env.reward_spec.target == 1.23

    def test_timeloop_target_halves_reference(self):
        env = TimeloopGymEnv(workload="alexnet")
        from repro.timeloop import EYERISS_LIKE, TimeloopModel

        reference = TimeloopModel().evaluate_network(EYERISS_LIKE, env.layers)
        assert env.latency_target_ms == pytest.approx(0.5 * reference["latency"])
