"""Tests for ``repro.lint`` — the repo-specific invariant analyzer.

Each checker gets the same trio: a seeded true positive, a clean
snippet, and the true positive silenced by a ``# repro-lint:
allow(...)`` suppression. The finale runs the full suite over the
real tree and asserts it is (and stays) clean.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.cli import DEFAULT_ROOTS, main as lint_main
from repro.lint.core import checker_names, format_json

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_tree(tmp_path, files, checker):
    """Write ``{relpath: source}`` under ``tmp_path`` and lint it with
    one checker selected."""
    for relpath, source in files.items():
        path = tmp_path / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return run_lint([str(tmp_path)], select=[checker])


def rules(result):
    return [f.rule for f in result.findings]


# ---------------------------------------------------------------------------
# rng-discipline


class TestRngDiscipline:
    def test_flags_global_rng_call(self, tmp_path):
        result = lint_tree(tmp_path, {
            "agents/walker.py": """
                import random
                step = random.random()
            """,
        }, "rng-discipline")
        assert rules(result) == ["rng-discipline"]
        assert "random.random" in result.findings[0].message

    def test_flags_unseeded_and_legacy_numpy(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sweeps/draws.py": """
                import numpy as np
                rng = np.random.default_rng()
                noise = np.random.rand(3)
            """,
        }, "rng-discipline")
        assert rules(result) == ["rng-discipline"] * 2
        assert "unseeded" in result.findings[0].message

    def test_clean_when_seeded(self, tmp_path):
        result = lint_tree(tmp_path, {
            "core/env.py": """
                import numpy as np
                from numpy.random import default_rng

                def make(seed):
                    return np.random.default_rng(seed), default_rng(seed + 1)
            """,
        }, "rng-discipline")
        assert result.findings == []

    def test_out_of_scope_dirs_are_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {
            "proxy/train.py": """
                import random
                split = random.random()
            """,
        }, "rng-discipline")
        assert result.findings == []

    def test_suppression_comment(self, tmp_path):
        result = lint_tree(tmp_path, {
            "agents/walker.py": """
                import random
                step = random.random()  # repro-lint: allow(rng-discipline) demo
            """,
        }, "rng-discipline")
        assert result.findings == []
        assert rules_of(result.suppressed) == ["rng-discipline"]


def rules_of(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# lock-guard


LOCKED_CLASS = """
    import threading

    class Pool:
        def __init__(self):
            self._lock = threading.Lock()
            self.evals = 0

        def safe(self):
            with self._lock:
                self.evals += 1
"""


class TestLockGuard:
    def test_flags_unguarded_write_of_guarded_attr(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sweeps/hostpool.py": LOCKED_CLASS + """
        def racy(self):
            self.evals += 1
            """,
        }, "lock-guard")
        assert rules(result) == ["lock-guard"]
        assert "Pool.evals" in result.findings[0].message

    def test_flags_unguarded_mutating_call(self, tmp_path):
        result = lint_tree(tmp_path, {
            "service/server.py": """
                import threading

                class Registry:
                    def __init__(self):
                        self._state_lock = threading.Lock()
                        self._envs = {}

                    def put(self, k, v):
                        with self._state_lock:
                            self._envs[k] = v

                    def racy(self, k):
                        self._envs.pop(k)
            """,
        }, "lock-guard")
        assert rules(result) == ["lock-guard"]

    def test_clean_when_every_write_is_guarded(self, tmp_path):
        result = lint_tree(tmp_path, {
            "service/client.py": LOCKED_CLASS + """
        def also_safe(self):
            with self._lock:
                self.evals = 0
            """,
        }, "lock-guard")
        assert result.findings == []

    def test_unguarded_attrs_stay_unguarded(self, tmp_path):
        # An attribute never written under a lock (thread-local slots,
        # start/stop plumbing) is not shared state — no finding.
        result = lint_tree(tmp_path, {
            "service/server.py": """
                class Server:
                    def start(self):
                        self._thread = object()

                    def stop(self):
                        self._thread = None
            """,
        }, "lock-guard")
        assert result.findings == []

    def test_out_of_scope_files_are_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sweeps/runner.py": LOCKED_CLASS + """
        def racy(self):
            self.evals += 1
            """,
        }, "lock-guard")
        assert result.findings == []

    def test_inconsistent_lock_order(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sweeps/hostpool.py": """
                class Pool:
                    def forward(self):
                        with self._lock:
                            with self._cache_lock:
                                pass

                    def backward(self):
                        with self._cache_lock:
                            with self._lock:
                                pass
            """,
        }, "lock-guard")
        assert rules(result) == ["lock-guard"]
        assert "inconsistent lock order" in result.findings[0].message

    def test_suppression_comment(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sweeps/hostpool.py": LOCKED_CLASS + """
        def benign(self):
            # single-threaded teardown, workers already joined
            self.evals = 0  # repro-lint: allow(lock-guard)
            """,
        }, "lock-guard")
        assert result.findings == []
        assert rules_of(result.suppressed) == ["lock-guard"]


# ---------------------------------------------------------------------------
# counter-threading


def counter_tree(stats_extra="", result_extra="", record_extra="",
                 report_extra="", rows_extra=""):
    return {
        "core/env.py": f"""
            class EnvStats:
                def __init__(self):
                    self.cache_hits = 0
                    {stats_extra or 'pass'}
        """,
        "agents/base.py": f"""
            from dataclasses import dataclass

            @dataclass
            class SearchResult:
                cache_hits: int
                {result_extra}

                def to_record(self):
                    return {{"cache_hits": self.cache_hits{record_extra}}}

                @classmethod
                def from_record(cls, record):
                    return cls(record["cache_hits"]{record_extra and ', record["foo_hits"]'})
        """,
        "sweeps/runner.py": f"""
            class SweepReport:
                def cache_hits(self):
                    return sum(r.cache_hits for r in self.results)
                {report_extra}
        """,
        "sweeps/export.py": f"""
            def report_to_rows(report):
                return [{{"cache_hits": 0{rows_extra}}}]
        """,
    }


class TestCounterThreading:
    def test_clean_chain(self, tmp_path):
        result = lint_tree(tmp_path, counter_tree(), "counter-threading")
        assert result.findings == []

    def test_flags_counter_missing_downstream(self, tmp_path):
        result = lint_tree(
            tmp_path,
            counter_tree(stats_extra="self.foo_hits = 0"),
            "counter-threading",
        )
        assert rules(result) == ["counter-threading"] * 5
        stations = " / ".join(f.message for f in result.findings)
        assert "SearchResult field" in stations
        assert "to_record" in stations
        assert "report_to_rows" in stations
        # anchored where the counter is defined
        assert all(f.path.endswith("core/env.py") for f in result.findings)

    def test_fully_threaded_counter_is_clean(self, tmp_path):
        result = lint_tree(
            tmp_path,
            counter_tree(
                stats_extra="self.foo_hits = 0",
                result_extra="foo_hits: int = 0",
                record_extra=', "foo_hits": self.foo_hits',
                report_extra=(
                    "def foo_hits(self): "
                    "return sum(r.foo_hits for r in self.results)"
                ),
                rows_extra=', "foo_hits": 0',
            ),
            "counter-threading",
        )
        assert result.findings == []

    def test_suppression_on_definition_line(self, tmp_path):
        result = lint_tree(
            tmp_path,
            counter_tree(
                stats_extra="self.foo_hits = 0"
                "  # repro-lint: allow(counter-threading) env-local"
            ),
            "counter-threading",
        )
        assert result.findings == []
        assert len(result.suppressed) == 5


# ---------------------------------------------------------------------------
# fingerprint-coverage


FP_MODULE = """
    from dataclasses import dataclass


    @dataclass
    class TrialTask:
        n_samples: int
        seed: int
        {extra_field}

    def plan(parser):
        {exempt}
        return sweep_fingerprint(n_samples=4, seed=0)


    def _add_durability_args(parser):
        parser.add_argument({flag!r}, action="store_true")
"""


def fp_module(extra_field="", exempt="pass", flag="--seed"):
    return textwrap.dedent(FP_MODULE).format(
        extra_field=extra_field, exempt=exempt, flag=flag
    )


class TestFingerprintCoverage:
    def test_flags_unfingerprinted_field_and_flag(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sweeps/mini.py": fp_module(
                extra_field="frobnicate: bool = False", flag="--wobble"
            ),
        }, "fingerprint-coverage")
        assert rules(result) == ["fingerprint-coverage"] * 2
        messages = " / ".join(f.message for f in result.findings)
        assert "'frobnicate'" in messages and "'wobble'" in messages

    def test_clean_when_exempted_with_reason(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sweeps/mini.py": fp_module(
                extra_field="frobnicate: bool = False",
                exempt=(
                    'FINGERPRINT_EXEMPT = {"frobnicate": "wall-clock", '
                    '"wobble": "wall-clock"}'
                ),
                flag="--wobble",
            ),
        }, "fingerprint-coverage")
        assert result.findings == []

    def test_inert_without_fingerprint_call(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sweeps/mini.py": """
                from dataclasses import dataclass

                @dataclass
                class TrialTask:
                    mystery: int = 0
            """,
        }, "fingerprint-coverage")
        assert result.findings == []

    def test_suppression_comment(self, tmp_path):
        result = lint_tree(tmp_path, {
            "sweeps/mini.py": fp_module(
                extra_field="frobnicate: bool = False"
                "  # repro-lint: allow(fingerprint-coverage)"
            ),
        }, "fingerprint-coverage")
        assert result.findings == []
        assert rules_of(result.suppressed) == ["fingerprint-coverage"]


# ---------------------------------------------------------------------------
# wire-schema


def wire_tree(client_key="env", read_key="metrics"):
    return {
        "service/client.py": f"""
            class Client:
                def evaluate(self):
                    request = {{{client_key!r}: "DRAMGym-v0"}}
                    parsed = self._checked("POST", "/evaluate", request)
                    return parsed.get({read_key!r})
        """,
        "service/server.py": """
            class Handler:
                def handle(self, request):
                    env = request["env"]
                    self._reply(200, {"metrics": {}, "error": None})
        """,
    }


class TestWireSchema:
    def test_clean_when_keys_match(self, tmp_path):
        result = lint_tree(tmp_path, wire_tree(), "wire-schema")
        assert result.findings == []

    def test_flags_request_key_server_never_parses(self, tmp_path):
        result = lint_tree(tmp_path, wire_tree(client_key="mystery"),
                           "wire-schema")
        assert rules(result) == ["wire-schema"]
        assert "'mystery'" in result.findings[0].message

    def test_flags_response_key_server_never_produces(self, tmp_path):
        result = lint_tree(tmp_path, wire_tree(read_key="bogus"),
                           "wire-schema")
        assert rules(result) == ["wire-schema"]
        assert "'bogus'" in result.findings[0].message

    def test_inert_without_both_sides(self, tmp_path):
        files = wire_tree(client_key="mystery")
        del files["service/server.py"]
        result = lint_tree(tmp_path, files, "wire-schema")
        assert result.findings == []

    def test_suppression_comment(self, tmp_path):
        files = wire_tree()
        files["service/client.py"] = """
            class Client:
                def evaluate(self):
                    request = {"mystery": 1}  # repro-lint: allow(wire-schema)
                    parsed = self._checked("POST", "/evaluate", request)
                    return parsed.get("metrics")
        """
        result = lint_tree(tmp_path, files, "wire-schema")
        assert result.findings == []
        assert rules_of(result.suppressed) == ["wire-schema"]

    def test_async_client_held_to_same_schema(self, tmp_path):
        files = wire_tree()
        files["service/aio.py"] = """
            class AsyncClient:
                async def evaluate(self):
                    request = {"mystery": 1}
                    parsed = await self._checked("POST", "/evaluate", request)
                    return parsed.get("metrics")
        """
        result = lint_tree(tmp_path, files, "wire-schema")
        assert rules(result) == ["wire-schema"]
        assert "aio.py" in result.findings[0].path
        assert "'mystery'" in result.findings[0].message

    def test_shared_wire_parser_reads_checked(self, tmp_path):
        files = wire_tree()
        files["service/wire.py"] = """
            def parse_metrics_response(parsed):
                return parsed.get("phantom")
        """
        result = lint_tree(tmp_path, files, "wire-schema")
        assert rules(result) == ["wire-schema"]
        assert "'phantom'" in result.findings[0].message


# ---------------------------------------------------------------------------
# async-discipline


class TestAsyncDiscipline:
    def test_flags_blocking_calls_in_coroutines(self, tmp_path):
        result = lint_tree(tmp_path, {
            "repro/sweeps/pool.py": """
                import time
                import http.client

                async def refresh(host):
                    time.sleep(0.1)
                    conn = http.client.HTTPConnection("h")
                    host.probe_client.healthz()
            """,
        }, "async-discipline")
        assert rules(result) == ["async-discipline"] * 3
        assert "asyncio.sleep" in result.findings[0].message
        assert "AsyncServiceClient" in result.findings[1].message
        assert "probe_client.healthz" in result.findings[2].message

    def test_flags_local_sync_client_and_from_import_sleep(self, tmp_path):
        result = lint_tree(tmp_path, {
            "repro/service/thing.py": """
                from time import sleep
                from repro.service.client import ServiceClient

                async def probe(url):
                    client = ServiceClient(url)
                    sleep(1)
                    return client.cache_list()
            """,
        }, "async-discipline")
        assert rules(result) == ["async-discipline"] * 2
        messages = " ".join(f.message for f in result.findings)
        assert "time.sleep" in messages
        assert "client.cache_list" in messages

    def test_clean_async_transport_and_sync_defs(self, tmp_path):
        result = lint_tree(tmp_path, {
            "repro/sweeps/pool.py": """
                import asyncio
                import time

                async def refresh(host):
                    await asyncio.sleep(0.1)
                    await host.aio_probe.healthz()
                    got = await host.aio_client.evaluate_batch("E", [])

                    def helper():  # a value, not loop-thread code
                        time.sleep(1)
                    return got

                def sync_path(host):
                    time.sleep(0.1)  # fine outside coroutines
                    return host.probe_client.healthz()
            """,
        }, "async-discipline")
        assert result.findings == []

    def test_out_of_scope_tree_ignored(self, tmp_path):
        result = lint_tree(tmp_path, {
            "scripts/tool.py": """
                import time

                async def nap():
                    time.sleep(1)
            """,
        }, "async-discipline")
        assert result.findings == []

    def test_suppression_comment(self, tmp_path):
        result = lint_tree(tmp_path, {
            "repro/sweeps/pool.py": """
                import time

                async def handoff():
                    time.sleep(0)  # repro-lint: allow(async-discipline)
            """,
        }, "async-discipline")
        assert result.findings == []
        assert rules_of(result.suppressed) == ["async-discipline"]


# ---------------------------------------------------------------------------
# unused-import


class TestUnusedImport:
    def test_flags_unused_import(self, tmp_path):
        result = lint_tree(tmp_path, {
            "mod.py": """
                import os
                import json

                print(json.dumps({}))
            """,
        }, "unused-import")
        assert rules(result) == ["unused-import"]
        assert "'os'" in result.findings[0].message

    def test_string_constants_count_as_uses(self, tmp_path):
        # __all__ re-export idiom: the name only appears as a string.
        result = lint_tree(tmp_path, {
            "pkg.py": """
                from collections import OrderedDict

                __all__ = ["OrderedDict"]
            """,
        }, "unused-import")
        assert result.findings == []

    def test_noqa_still_suppresses(self, tmp_path):
        result = lint_tree(tmp_path, {
            "mod.py": """
                import os  # noqa: F401
            """,
        }, "unused-import")
        assert result.findings == []

    def test_repro_lint_suppression(self, tmp_path):
        result = lint_tree(tmp_path, {
            "mod.py": """
                import os  # repro-lint: allow(unused-import)
            """,
        }, "unused-import")
        assert result.findings == []
        assert rules_of(result.suppressed) == ["unused-import"]


# ---------------------------------------------------------------------------
# framework mechanics


class TestFramework:
    def test_checker_registry(self):
        assert checker_names() == [
            "async-discipline",
            "counter-threading",
            "fingerprint-coverage",
            "lock-guard",
            "rng-discipline",
            "unused-import",
            "wire-schema",
        ]

    def test_syntax_errors_become_findings(self, tmp_path):
        (tmp_path / "broken.py").write_text("def f(:\n")
        result = run_lint([str(tmp_path)])
        assert rules(result) == ["syntax"]

    def test_wildcard_suppression(self, tmp_path):
        result = lint_tree(tmp_path, {
            "mod.py": """
                import os  # repro-lint: allow(*) kept for doctest namespace
            """,
        }, "unused-import")
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_json_output_shape(self, tmp_path):
        result = lint_tree(tmp_path, {"mod.py": "import os\n"},
                           "unused-import")
        payload = json.loads(format_json(result))
        assert payload["counts"] == {"findings": 1, "suppressed": 0}
        finding = payload["findings"][0]
        assert finding["rule"] == "unused-import"
        assert finding["line"] == 1
        assert "mod.py" in finding["path"]

    def test_human_output_and_exit_codes(self, tmp_path, capsys):
        (tmp_path / "mod.py").write_text("import os\n")
        assert lint_main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "[unused-import]" in out and "1 finding(s)" in out
        (tmp_path / "mod.py").write_text("import os\n\nprint(os.sep)\n")
        assert lint_main([str(tmp_path)]) == 0

    def test_unknown_checker_is_an_error(self, tmp_path, capsys):
        assert lint_main([str(tmp_path), "--select", "nope"]) == 2
        assert "unknown checker" in capsys.readouterr().err


# ---------------------------------------------------------------------------
# the real tree


class TestRepoIsClean:
    def test_whole_repo_has_no_unsuppressed_findings(self, monkeypatch):
        monkeypatch.chdir(REPO_ROOT)
        roots = [r for r in DEFAULT_ROOTS if (REPO_ROOT / r).is_dir()]
        result = run_lint(roots)
        assert result.findings == [], "\n".join(
            f"{f.path}:{f.line}: [{f.rule}] {f.message}"
            for f in result.findings
        )
        # the deliberate suppressions (env-local EnvStats counters)
        # are accounted for, not silently dropped
        assert result.suppressed, "expected the documented suppressions"

    def test_acceptance_command(self, monkeypatch, capsys):
        # the ISSUE's acceptance gate: `python -m repro.lint src` exits 0
        monkeypatch.chdir(REPO_ROOT)
        assert lint_main(["src"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
