"""Unit + property tests for the MAESTRO mapping substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.dnn import ConvLayer, get_workload
from repro.maestro import (
    LOOP_ORDERS,
    MAESTRO_INFEASIBLE,
    MaestroAccelerator,
    MaestroModel,
    Mapping,
    mapping_space,
)


SMALL_LAYER = ConvLayer("small", K=32, C=16, R=3, S=3, P=16, Q=16)


class TestMapping:
    def test_default_valid(self):
        Mapping()

    def test_validation(self):
        with pytest.raises(SimulationError):
            Mapping(parallel_dim="Z")
        with pytest.raises(SimulationError):
            Mapping(order="KKKK")
        with pytest.raises(SimulationError):
            Mapping(cluster=0)
        with pytest.raises(SimulationError):
            Mapping(tile_k1=0)

    def test_all_24_orders(self):
        assert len(LOOP_ORDERS) == 24
        assert len(set(LOOP_ORDERS)) == 24
        for order in LOOP_ORDERS:
            assert sorted(order) == ["C", "K", "P", "Q"]

    def test_action_roundtrip(self):
        m = Mapping(parallel_dim="C", cluster=8, order="PQKC", tile_k2=128)
        assert Mapping.from_action(m.to_action()) == m

    def test_space_samples_valid(self):
        space = mapping_space()
        rng = np.random.default_rng(0)
        for _ in range(30):
            Mapping.from_action(space.sample(rng))

    def test_tile_accessors(self):
        m = Mapping(tile_k1=2, tile_c1=4, tile_p1=8, tile_q1=16)
        assert [m.l1_tile(d) for d in "KCPQ"] == [2, 4, 8, 16]


class TestModel:
    model = MaestroModel()

    def test_default_mapping_feasible_on_resnet18(self):
        m = self.model.evaluate_network(Mapping(), get_workload("resnet18"))
        assert m["feasible"] == 1.0
        assert 0 < m["runtime"] < MAESTRO_INFEASIBLE

    def test_deterministic(self):
        layers = get_workload("resnet18")
        a = self.model.evaluate_network(Mapping(), layers)
        b = self.model.evaluate_network(Mapping(), layers)
        assert a == b

    def test_metrics_keys(self):
        m = self.model.evaluate_network(Mapping(), get_workload("resnet18"))
        assert set(m) == {"runtime", "throughput", "energy", "area", "feasible"}

    def test_oversized_l1_tiles_infeasible(self):
        huge = Mapping(tile_k1=64, tile_c1=64, tile_p1=16, tile_q1=16)
        cost = self.model.evaluate_layer(huge, SMALL_LAYER)
        assert not cost.feasible
        assert cost.runtime_ms >= MAESTRO_INFEASIBLE

    def test_tiles_clipped_to_layer(self):
        # L2 tiles larger than the layer clip cleanly instead of overflowing
        m = Mapping(tile_k2=512, tile_c2=512, tile_p2=64, tile_q2=64)
        cost = self.model.evaluate_layer(m, SMALL_LAYER)
        assert cost.feasible

    def test_more_parallelism_not_slower_compute(self):
        layer = ConvLayer("big", K=256, C=128, R=3, S=3, P=28, Q=28)
        narrow = Mapping(cluster=1, tile_k1=1, tile_k2=64)
        wide = Mapping(cluster=64, tile_k1=1, tile_k2=64)
        c_narrow = self.model.evaluate_layer(narrow, layer)
        c_wide = self.model.evaluate_layer(wide, layer)
        assert c_wide.pes_used >= c_narrow.pes_used

    def test_throughput_consistent_with_runtime(self):
        layers = get_workload("resnet18")
        m = self.model.evaluate_network(Mapping(), layers)
        total_macs = sum(layer.macs * layer.repeat for layer in layers)
        assert m["throughput"] == pytest.approx(
            total_macs / (m["runtime"] * 1e6), rel=1e-9
        )

    def test_refetch_multiplier_innermost_reuse(self):
        # weights indexed by (K, C); with order KCPQ the P, Q loops are
        # *inside* both -> perfect weight reuse, multiplier 1
        trips = {"K": 4.0, "C": 3.0, "P": 5.0, "Q": 7.0}
        mult = MaestroModel._refetch_multiplier("KCPQ", "W", trips)
        assert mult == 1.0

    def test_refetch_multiplier_outer_invalidation(self):
        # with order PQKC, the P and Q loops are outside C (weights'
        # innermost index) -> weights refetched P*Q times
        trips = {"K": 4.0, "C": 3.0, "P": 5.0, "Q": 7.0}
        mult = MaestroModel._refetch_multiplier("PQKC", "W", trips)
        assert mult == 35.0

    def test_order_changes_traffic(self):
        layer = ConvLayer("l", K=128, C=64, R=3, S=3, P=28, Q=28)
        good = self.model.evaluate_layer(Mapping(order="PQKC", tile_p2=4, tile_q2=4), layer)
        base = self.model.evaluate_layer(Mapping(order="KCPQ", tile_p2=4, tile_q2=4), layer)
        assert good.dram_words != base.dram_words

    def test_accelerator_validation(self):
        with pytest.raises(SimulationError):
            MaestroAccelerator(num_pes=0)

    def test_edge_preset_is_smaller_and_slower(self):
        from repro.maestro import CLOUD_ACCELERATOR, EDGE_ACCELERATOR

        assert EDGE_ACCELERATOR.num_pes < CLOUD_ACCELERATOR.num_pes
        assert EDGE_ACCELERATOR.l2_words < CLOUD_ACCELERATOR.l2_words
        edge_model = MaestroModel(EDGE_ACCELERATOR)
        cloud_model = MaestroModel(CLOUD_ACCELERATOR)
        layers = get_workload("resnet18")
        edge = edge_model.evaluate_network(Mapping(), layers)
        cloud = cloud_model.evaluate_network(Mapping(), layers)
        if edge["feasible"] and cloud["feasible"]:
            assert edge["runtime"] >= cloud["runtime"]

    def test_mapping_portability_cloud_to_edge(self):
        """Some mappings feasible on the cloud target overflow the edge
        target — the portability hazard the edge preset exists to study."""
        from repro.maestro import EDGE_ACCELERATOR

        big_l1 = Mapping(tile_k1=8, tile_c1=4, tile_p1=2, tile_q1=2)
        layer = ConvLayer("l", K=64, C=64, R=3, S=3, P=28, Q=28)
        cloud_cost = MaestroModel().evaluate_layer(big_l1, layer)
        edge_cost = MaestroModel(EDGE_ACCELERATOR).evaluate_layer(big_l1, layer)
        assert cloud_cost.feasible
        assert not edge_cost.feasible


# -- property tests ---------------------------------------------------------------

mapping_actions = st.builds(
    dict,
    ParallelDim=st.sampled_from(("K", "C", "P", "Q")),
    ClusterSize=st.sampled_from((1, 2, 4, 8, 16, 32, 64)),
    LoopOrder=st.sampled_from(LOOP_ORDERS),
    TileK_L1=st.sampled_from((1, 2, 4, 8, 16, 32, 64)),
    TileC_L1=st.sampled_from((1, 2, 4, 8, 16, 32, 64)),
    TileP_L1=st.sampled_from((1, 2, 4, 8, 16)),
    TileQ_L1=st.sampled_from((1, 2, 4, 8, 16)),
    TileK_L2=st.sampled_from((1, 4, 16, 64, 256, 512)),
    TileC_L2=st.sampled_from((1, 4, 16, 64, 256, 512)),
    TileP_L2=st.sampled_from((1, 2, 4, 8, 16, 32, 64)),
    TileQ_L2=st.sampled_from((1, 2, 4, 8, 16, 32, 64)),
)


@given(mapping_actions)
@settings(max_examples=80, deadline=None)
def test_prop_model_invariants(action):
    """Feasible mappings give positive finite costs; PEs never exceed the
    array; DRAM traffic is at least the compulsory tensor volume."""
    mapping = Mapping.from_action(action)
    model = MaestroModel()
    cost = model.evaluate_layer(mapping, SMALL_LAYER)
    if cost.feasible:
        assert 0 < cost.runtime_ms < MAESTRO_INFEASIBLE
        assert 0 < cost.energy_mj < MAESTRO_INFEASIBLE
        assert 1 <= cost.pes_used <= model.acc.num_pes
        compulsory = (
            SMALL_LAYER.weight_words + SMALL_LAYER.input_words + SMALL_LAYER.output_words
        )
        assert cost.dram_words >= compulsory * 0.99


@given(mapping_actions)
@settings(max_examples=40, deadline=None)
def test_prop_network_cost_sums_layers(action):
    mapping = Mapping.from_action(action)
    model = MaestroModel()
    layers = get_workload("resnet18")
    net = model.evaluate_network(mapping, layers)
    per_layer = [model.evaluate_layer(mapping, layer) for layer in layers]
    expected = sum(c.runtime_ms * l.repeat for c, l in zip(per_layer, layers))
    assert net["runtime"] == pytest.approx(expected, rel=1e-9)
