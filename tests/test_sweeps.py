"""Unit + integration tests for the sweep harness and statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.env import ArchGymEnv
from repro.core.errors import ArchGymError
from repro.core.rewards import TargetReward
from repro.core.spaces import Categorical, CompositeSpace, Discrete
from repro.sweeps import (
    FiveNumberSummary,
    iqr,
    normalize_scores,
    run_lottery_sweep,
    spread_percent,
    validate_agent_names,
)


class TinyEnv(ArchGymEnv):
    env_id = "Tiny-v0"

    def __init__(self):
        super().__init__(
            action_space=CompositeSpace(
                [Discrete("x", 0, 7, 1), Categorical("m", ("a", "b"))]
            ),
            observation_metrics=["cost"],
            reward_spec=TargetReward("cost", target=1.0),
            episode_length=10_000,
        )

    def evaluate(self, action):
        return {"cost": 1.0 + abs(action["x"] - 5) + (action["m"] == "a")}


class TestStats:
    def test_iqr(self):
        assert iqr([1, 2, 3, 4, 5]) == pytest.approx(2.0)

    def test_iqr_empty(self):
        with pytest.raises(ArchGymError):
            iqr([])

    def test_spread_percent(self):
        # values 10..20, median 15, iqr 5 -> 33.3%
        assert spread_percent([10, 12.5, 15, 17.5, 20]) == pytest.approx(100 * 5 / 15)

    def test_spread_zero_median(self):
        assert spread_percent([0.0, 0.0, 0.0]) == 0.0

    def test_normalize_scores(self):
        norm = normalize_scores({"a": 2.0, "b": 4.0})
        assert norm == {"a": 0.5, "b": 1.0}

    def test_normalize_negative_scores(self):
        norm = normalize_scores({"a": -4.0, "b": -1.0})
        assert norm["b"] == 1.0
        assert norm["a"] == 0.0

    def test_normalize_empty(self):
        with pytest.raises(ArchGymError):
            normalize_scores({})

    def test_five_number_summary(self):
        s = FiveNumberSummary.from_values([1, 2, 3, 4, 5])
        assert s.minimum == 1 and s.maximum == 5 and s.median == 3
        assert s.iqr == pytest.approx(2.0)
        assert "n=  5" in s.row("label")


class TestLotterySweep:
    def test_sweep_shape(self):
        report = run_lottery_sweep(
            TinyEnv, agents=("rw", "ga"), n_trials=3, n_samples=30, seed=0
        )
        assert set(report.results) == {"rw", "ga"}
        assert all(len(v) == 3 for v in report.results.values())
        assert report.env_id == "Tiny-v0"

    def test_trials_use_different_hyperparams(self):
        report = run_lottery_sweep(
            TinyEnv, agents=("ga",), n_trials=6, n_samples=20, seed=1
        )
        tags = {str(sorted(r.hyperparameters.items())) for r in report.results["ga"]}
        assert len(tags) > 1

    def test_best_fitness_and_result(self):
        report = run_lottery_sweep(
            TinyEnv, agents=("rw",), n_trials=4, n_samples=50, seed=2
        )
        best = report.best_result("rw")
        assert best.best_fitness == report.best_fitness("rw")

    def test_normalized_best_in_unit_interval(self):
        report = run_lottery_sweep(
            TinyEnv, agents=("rw", "ga", "aco"), n_trials=2, n_samples=40, seed=3
        )
        norm = report.normalized_best()
        assert max(norm.values()) == pytest.approx(1.0)
        assert all(0.0 <= v <= 1.0 for v in norm.values())

    def test_budget_views_monotone(self):
        report = run_lottery_sweep(
            TinyEnv, agents=("rw",), n_trials=3, n_samples=60, seed=4
        )
        early = report.mean_normalized_at(5)["rw"]
        late = report.mean_normalized_at(60)["rw"]
        # fitness histories are monotone, but normalization is relative;
        # raw best-at must be monotone:
        raw_early = max(r.fitness_at(5) for r in report.results["rw"])
        raw_late = max(r.fitness_at(60) for r in report.results["rw"])
        assert raw_late >= raw_early
        assert 0.0 <= early <= 1.0 and 0.0 <= late <= 1.0

    def test_collect_dataset_aggregates_sources(self):
        report = run_lottery_sweep(
            TinyEnv, agents=("rw", "ga"), n_trials=2, n_samples=25, seed=5,
            collect_dataset=True,
        )
        assert report.dataset is not None
        assert len(report.dataset) == 2 * 2 * 25
        assert len(report.dataset.sources) == 4  # one tag per trial

    def test_dataset_provenance_tags_agent_and_trial(self):
        """§7 per-source pipeline: every trial gets a distinct
        ``agent/index`` tag even when hyperparameters collide — no
        transition may carry the default "unknown" tag."""
        report = run_lottery_sweep(
            TinyEnv, agents=("rw", "ga"), n_trials=2, n_samples=10, seed=5,
            collect_dataset=True,
        )
        assert report.dataset.sources == ["rw/0", "rw/1", "ga/2", "ga/3"]
        assert report.dataset.source_counts() == {
            "rw/0": 10, "rw/1": 10, "ga/2": 10, "ga/3": 10
        }
        assert "unknown" not in report.dataset.sources

    def test_duplicate_agents_rejected(self):
        with pytest.raises(ArchGymError, match="duplicate"):
            run_lottery_sweep(
                TinyEnv, agents=("ga", "rw", "ga"), n_trials=2, n_samples=10
            )

    def test_validate_agent_names_rejects_duplicates_only(self):
        validate_agent_names(("rw", "ga"))
        with pytest.raises(ArchGymError, match="ga"):
            validate_agent_names(("ga", "ga"))

    def test_unknown_agent_in_report(self):
        report = run_lottery_sweep(TinyEnv, agents=("rw",), n_trials=1,
                                   n_samples=10, seed=6)
        with pytest.raises(ArchGymError):
            report.best_fitness("bo")

    def test_bad_args(self):
        with pytest.raises(ArchGymError):
            run_lottery_sweep(TinyEnv, agents=("rw",), n_trials=0, n_samples=10)

    def test_print_table_contains_agents(self):
        report = run_lottery_sweep(TinyEnv, agents=("rw", "ga"), n_trials=2,
                                   n_samples=15, seed=7)
        table = report.print_table()
        assert "rw" in table and "ga" in table and "spread" in table

    def test_deterministic_given_seed(self):
        a = run_lottery_sweep(TinyEnv, agents=("rw", "aco"), n_trials=2,
                              n_samples=20, seed=11)
        b = run_lottery_sweep(TinyEnv, agents=("rw", "aco"), n_trials=2,
                              n_samples=20, seed=11)
        for agent in ("rw", "aco"):
            assert [r.best_fitness for r in a.results[agent]] == [
                r.best_fitness for r in b.results[agent]
            ]


@given(st.lists(st.floats(-100, 100), min_size=2, max_size=50))
@settings(max_examples=100)
def test_prop_iqr_nonnegative_and_bounded(values):
    v = iqr(values)
    assert v >= 0.0
    assert v <= max(values) - min(values) + 1e-9


@given(
    st.dictionaries(
        st.sampled_from(("a", "b", "c", "d")),
        st.floats(-1e6, 1e6),
        min_size=1,
    )
)
@settings(max_examples=100)
def test_prop_normalize_scores_unit_interval(scores):
    norm = normalize_scores(scores)
    assert all(0.0 <= v <= 1.0 + 1e-12 for v in norm.values())
    assert max(norm.values()) == pytest.approx(1.0)
