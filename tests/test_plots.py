"""Tests for the terminal box-plot renderer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ArchGymError
from repro.sweeps.plots import render_boxplot, render_boxplots


class TestRenderBoxplot:
    def test_width_respected(self):
        plot = render_boxplot([1, 2, 3, 4, 5], lo=0, hi=6, width=40)
        assert len(plot) == 40

    def test_contains_box_and_whiskers(self):
        plot = render_boxplot([1, 2, 3, 4, 5], lo=0, hi=6, width=40)
        assert "[" in plot and "]" in plot
        assert "#" in plot or "*" in plot

    def test_best_marker_at_max(self):
        plot = render_boxplot([1.0, 5.0], lo=0, hi=10, width=21)
        # max = 5 on [0, 10] -> the star sits at the middle column
        assert plot[10] == "*"

    def test_degenerate_distribution(self):
        plot = render_boxplot([3.0, 3.0, 3.0], lo=0, hi=6, width=30)
        assert "*" in plot

    def test_bad_axis(self):
        with pytest.raises(ArchGymError):
            render_boxplot([1.0], lo=5, hi=5)

    def test_bad_width(self):
        with pytest.raises(ArchGymError):
            render_boxplot([1.0], lo=0, hi=1, width=3)


class TestRenderBoxplots:
    def test_multi_agent_layout(self):
        out = render_boxplots({"aco": [1, 2, 3], "ga": [2, 3, 4]}, width=30)
        lines = out.splitlines()
        assert len(lines) == 3  # two plots + axis
        assert lines[0].startswith("aco")
        assert lines[1].startswith("ga")

    def test_shared_axis_bounds_on_axis_line(self):
        out = render_boxplots({"a": [10.0, 20.0], "b": [15.0, 30.0]})
        assert "10" in out.splitlines()[-1]
        assert "30" in out.splitlines()[-1]

    def test_empty_rejected(self):
        with pytest.raises(ArchGymError):
            render_boxplots({})

    def test_constant_values_ok(self):
        out = render_boxplots({"a": [5.0, 5.0]})
        assert "a" in out

    def test_sweep_report_integration(self):
        from repro.sweeps import run_lottery_sweep
        from tests.test_sweeps import TinyEnv

        report = run_lottery_sweep(TinyEnv, agents=("rw", "ga"), n_trials=3,
                                   n_samples=15, seed=0)
        table = report.print_table(boxplots=True)
        # the star (best) always renders; the box may be hidden beneath it
        assert "*" in table
        assert "[" in table


@given(
    st.lists(st.floats(-100, 100), min_size=1, max_size=30),
    st.integers(10, 80),
)
@settings(max_examples=100)
def test_prop_boxplot_never_crashes_and_fits_width(values, width):
    lo, hi = min(values) - 1.0, max(values) + 1.0
    plot = render_boxplot(values, lo=lo, hi=hi, width=width)
    assert len(plot) == width
