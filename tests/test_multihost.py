"""Tests for multi-host sweep scheduling (`repro.sweeps.HostPool`).

Three batteries:

1. **Scheduling** — least-load dispatch with round-robin tie-breaks
   (a serial caller spreads over the fleet), per-host accounting, and
   health checks.
2. **Fault injection** — a host killed mid-sweep fails over with no
   lost or duplicated trials; every host dead surfaces a
   :class:`ServiceError` naming the trial; a host returning torn batch
   bodies is retried, then quarantined; a restarted host is revived.
3. **Parity** — the acceptance battery: one fixed-seed DRAM sweep run
   serial in-process, with ``workers=4``, against a single service,
   over a 2-host pool with batching enabled, and over the same pool
   with ``async_dispatch`` (coroutine fan-out on one event loop)
   produces byte-identical reports, datasets, and shard artifacts.
4. **Generation parity** — the generation-native battery: a GA+ACO
   sweep run serial, with ``generation_dispatch`` in-process, with
   ``generation_dispatch`` over a weighted 2-host pool, in
   ``pipeline`` mode (streaming dispatch with work stealing) both
   in-process and over the pool, and with ``async_dispatch`` flipped
   on for both pool modes produces byte-identical reports, datasets,
   and shard artifacts, with the weight-2 host carrying the larger
   share of the scattered generations.
5. **Transport teardown** — the keep-alive leak regression: client,
   pool, and cached-backend teardown reclaim every persistent socket
   (including exited dispatch threads'), in both dispatch cores.
"""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.cli import RegistryEnvFactory
from repro.core.errors import ServiceError, ServiceTransportError
from repro.service import EvaluationService, ServiceClient
from repro.sweeps import HostPool, clear_backend_cache, run_lottery_sweep

# Reuse the deterministic service env (module-level, so tasks pickle)
# and the dead-port probe.
from test_service import SvcCountingEnv, _free_port


@pytest.fixture(autouse=True)
def _fresh_backend_cache():
    """Pools memoize per-process; tests must not inherit another test's
    quarantine state for a recycled URL."""
    clear_backend_cache()
    yield
    clear_backend_cache()


def _service(env_cls=SvcCountingEnv, port=0):
    svc = EvaluationService(port=port)
    svc.register("SvcCounting-v0", env_cls)
    svc.start()
    return svc


@pytest.fixture()
def two_services():
    a, b = _service(), _service()
    yield a, b
    a.stop()
    b.stop()


class TestBackendCacheForkSafety:
    def test_cache_memoizes_within_one_process(self):
        from repro.sweeps import BackendSpec
        from repro.sweeps.executor import build_backend

        spec = BackendSpec(kind="remote", service_url="http://127.0.0.1:1")
        first = build_backend(spec)
        assert build_backend(spec) is first

    def test_cache_dropped_on_pid_change(self, monkeypatch):
        """A forked worker inherits the parent's cache and its clients'
        open keep-alive sockets; reusing them would interleave two
        processes' HTTP streams. A PID mismatch must drop the cache."""
        from repro.sweeps import BackendSpec
        from repro.sweeps import executor as executor_module

        spec = BackendSpec(kind="remote", service_url="http://127.0.0.1:1")
        parent_backend = executor_module.build_backend(spec)
        monkeypatch.setattr(executor_module.os, "getpid", lambda: -12345)
        child_backend = executor_module.build_backend(spec)
        assert child_backend is not parent_backend

    def test_serial_then_forked_sweep_against_one_service(self, two_services):
        """The real fork path: a serial remote sweep primes the parent's
        backend cache (and opens a keep-alive socket), then a workers=2
        sweep against the same URL forks from that state — results must
        stay bit-identical, not cross-wired."""
        a, _ = two_services
        kw = dict(agents=("rw",), n_trials=2, n_samples=10, seed=4)
        serial = run_lottery_sweep(
            SvcCountingEnv, workers=1, service_url=a.url, **kw
        )
        forked = run_lottery_sweep(
            SvcCountingEnv, workers=2, service_url=a.url, **kw
        )
        assert _normalized(serial) == _normalized(forked)
        assert forked.remote_evals > 0


class TestHostPoolScheduling:
    def test_urls_deduped_order_kept(self):
        pool = HostPool(
            ["http://h1:1", "http://h2:1", "http://h1:1"], timeout_s=1.0
        )
        assert pool.urls == ["http://h1:1", "http://h2:1"]

    def test_url_spellings_of_one_server_collapse(self):
        """'http://h:1' and 'http://h:1/' are one server: two _Host
        entries for it would split quarantine state and double its
        dispatch share."""
        pool = HostPool(["http://h1:1", "http://h1:1/"], timeout_s=1.0)
        assert pool.urls == ["http://h1:1"]

    def test_single_string_is_one_host_pool(self):
        assert HostPool("http://h1:1", timeout_s=1.0).urls == ["http://h1:1"]

    def test_no_urls_rejected(self):
        with pytest.raises(ServiceError, match="at least one"):
            HostPool([])

    def test_serial_calls_spread_round_robin(self, two_services):
        a, b = two_services
        pool = HostPool([a.url, b.url], timeout_s=10.0, retries=0)
        for i in range(8):
            pool.evaluate("SvcCounting-v0", {"x": i % 8, "m": "a"})
        assert a.evaluations == 4 and b.evaluations == 4
        assert pool.evals_by_host == {a.url: 4, b.url: 4}

    def test_loaded_host_sheds_to_idle_one(self, two_services):
        a, b = two_services
        pool = HostPool([a.url, b.url], timeout_s=10.0, retries=0)
        # Pin synthetic in-flight load on host a: every call must go b.
        pool._hosts[0].inflight = 5
        for i in range(4):
            pool.evaluate("SvcCounting-v0", {"x": i, "m": "a"})
        assert a.evaluations == 0 and b.evaluations == 4

    def test_last_host_tracks_the_answering_host(self, two_services):
        a, b = two_services
        pool = HostPool([a.url, b.url], timeout_s=10.0, retries=0)
        pool.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})
        first = pool.last_host
        pool.evaluate("SvcCounting-v0", {"x": 2, "m": "a"})
        assert {first, pool.last_host} == {a.url, b.url}

    def test_check_health_quarantines_non_responders(self, two_services):
        a, b = two_services
        dead = f"http://127.0.0.1:{_free_port()}"
        pool = HostPool(
            [a.url, dead, b.url], timeout_s=1.0, retries=0, backoff_s=0.01
        )
        report = pool.check_health()
        assert report[a.url]["status"] == "ok"
        assert report[b.url]["status"] == "ok"
        assert report[dead] is None
        assert pool.quarantined_urls == [dead]

    def test_check_health_all_dead_raises(self):
        pool = HostPool(
            [f"http://127.0.0.1:{_free_port()}" for _ in range(2)],
            timeout_s=0.5, retries=0, backoff_s=0.01,
        )
        with pytest.raises(ServiceError, match="no evaluation host is healthy"):
            pool.check_health()


class TestHostPoolFailover:
    def test_dead_host_quarantined_call_fails_over(self, two_services):
        a, b = two_services
        url_a = a.url
        pool = HostPool([url_a, b.url], timeout_s=1.0, retries=0, backoff_s=0.01)
        a.stop()
        for i in range(4):  # round-robin would hit a twice; both go b
            pool.evaluate("SvcCounting-v0", {"x": i, "m": "a"})
        assert b.evaluations == 4
        assert pool.quarantined_urls == [url_a]

    def test_all_hosts_dead_raises_with_inventory(self):
        urls = [f"http://127.0.0.1:{_free_port()}" for _ in range(2)]
        pool = HostPool(urls, timeout_s=0.5, retries=0, backoff_s=0.01)
        with pytest.raises(ServiceTransportError) as excinfo:
            pool.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})
        message = str(excinfo.value)
        assert "all 2 evaluation host(s) failed" in message
        for url in urls:
            assert url in message

    def test_server_produced_error_propagates_without_quarantine(
        self, two_services
    ):
        a, b = two_services
        pool = HostPool([a.url, b.url], timeout_s=10.0, retries=0)
        with pytest.raises(ServiceError, match="unknown environment") as excinfo:
            pool.evaluate("Nope-v0", {"x": 1})
        assert not isinstance(excinfo.value, ServiceTransportError)
        assert pool.quarantined_urls == []  # deterministic failure != death

    def test_quarantined_host_rejoins_after_revive_period(self, two_services):
        """One transient failure must not cost a host the whole sweep:
        after revive_after_s the pool re-probes its healthz and puts it
        back in rotation — even while other hosts are still alive."""
        a, b = two_services
        url_a = a.url
        port_a = a.port
        pool = HostPool(
            [url_a, b.url], timeout_s=1.0, retries=0, backoff_s=0.01,
            revive_after_s=0.05,
        )
        a.stop()
        for i in range(4):
            pool.evaluate("SvcCounting-v0", {"x": i, "m": "a"})
        assert pool.quarantined_urls == [url_a]
        restarted = _service(port=port_a)
        try:
            time.sleep(0.1)  # let the rest period elapse
            before = restarted.evaluations
            for i in range(4):
                pool.evaluate("SvcCounting-v0", {"x": i, "m": "a"})
            assert pool.quarantined_urls == []
            assert restarted.evaluations > before  # back in rotation
        finally:
            restarted.stop()

    def test_failed_probe_restarts_the_revival_clock(self, two_services):
        a, b = two_services
        url_a = a.url
        pool = HostPool(
            [url_a, b.url], timeout_s=1.0, retries=0, backoff_s=0.01,
            revive_after_s=0.05,
        )
        a.stop()
        pool.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})
        assert pool.quarantined_urls == [url_a]
        time.sleep(0.1)
        stamp_before = pool._hosts[0].quarantined_at
        pool.evaluate("SvcCounting-v0", {"x": 2, "m": "a"})  # probe fails
        assert pool.quarantined_urls == [url_a]  # still dead
        assert pool._hosts[0].quarantined_at > stamp_before  # clock reset

    def test_restarted_host_is_revived_when_all_else_fails(self):
        svc = _service()
        port = svc.port
        pool = HostPool([svc.url], timeout_s=1.0, retries=0, backoff_s=0.01)
        pool.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})
        svc.stop()
        with pytest.raises(ServiceTransportError):
            pool.evaluate("SvcCounting-v0", {"x": 2, "m": "a"})
        assert pool.quarantined_urls == [pool.urls[0]]
        revived = _service(port=port)
        try:
            result = pool.evaluate("SvcCounting-v0", {"x": 2, "m": "a"})
            assert result == SvcCountingEnv().evaluate({"x": 2, "m": "a"})
            assert pool.quarantined_urls == []
        finally:
            revived.stop()


# -- fault-injection battery ------------------------------------------------------


class _TornBatchHandler(BaseHTTPRequestHandler):
    """Answers every request with truncated, unparseable JSON and
    counts how many times it was asked."""

    requests_seen = 0
    protocol_version = "HTTP/1.1"

    def log_message(self, *args):
        pass

    def _torn(self):
        type(self).requests_seen += 1
        # Drain the request body so the keep-alive socket stays in sync
        # — this server's responses are corrupt, not its HTTP framing.
        self.rfile.read(int(self.headers.get("Content-Length") or 0))
        body = b'{"metrics": [{"cost": 1.'  # truncated mid-float
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = do_PUT = _torn


class TestMultiHostFaultInjection:
    def test_host_killed_mid_sweep_fails_over_no_lost_or_dup_trials(self):
        """Host A dies partway through the sweep (the in-process analog
        of a SIGKILL: listener and live sockets force-closed). The
        sweep must complete on host B with results bit-identical to an
        in-process run — every trial present exactly once."""
        svc_a = EvaluationService()

        class DyingEnv(SvcCountingEnv):
            env_id = "SvcCounting-v0"
            calls = 0

            def evaluate(self, action):
                type(self).calls += 1
                if type(self).calls == 5:
                    threading.Thread(target=svc_a.stop, daemon=True).start()
                    time.sleep(0.2)
                return super().evaluate(action)

        svc_a.register("SvcCounting-v0", DyingEnv)
        url_a = svc_a.start()
        svc_b = _service()
        url_b = svc_b.url
        kw = dict(agents=("rw", "ga"), n_trials=2, n_samples=15, seed=9)
        try:
            baseline = run_lottery_sweep(SvcCountingEnv, **kw)
            multihost = run_lottery_sweep(
                SvcCountingEnv,
                service_url=[url_a, url_b],
                service_timeout_s=5.0, service_retries=1,
                **kw,
            )
        finally:
            svc_a.stop()
            svc_b.stop()
        assert _normalized(multihost) == _normalized(baseline)
        # no lost trials, no duplicated trials
        for agent in kw["agents"]:
            assert len(multihost.results[agent]) == kw["n_trials"]
        # the survivor really carried the post-death load, and the
        # per-host provenance says so
        assert svc_b.evaluations > 0
        by_host = multihost.remote_evals_by_host
        assert by_host.get(url_b, 0) > 0
        assert sum(by_host.values()) == multihost.remote_evals

    def test_all_hosts_dead_surfaces_service_error_naming_trial(self):
        urls = [f"http://127.0.0.1:{_free_port()}" for _ in range(2)]
        with pytest.raises(ServiceError, match=r"trial rw/0"):
            run_lottery_sweep(
                SvcCountingEnv,
                agents=("rw",), n_trials=2, n_samples=10, seed=1,
                service_url=urls,
                service_timeout_s=0.5, service_retries=0,
            )

    def test_torn_batch_bodies_retried_then_quarantined(self):
        """A host answering /evaluate_batch with torn JSON gets the
        client's full retry allowance, then the pool quarantines it and
        the batch completes on the healthy host."""
        _TornBatchHandler.requests_seen = 0
        httpd = ThreadingHTTPServer(("127.0.0.1", 0), _TornBatchHandler)
        httpd.daemon_threads = True
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        torn_url = f"http://127.0.0.1:{httpd.server_address[1]}"
        good = _service()
        try:
            pool = HostPool(
                [torn_url, good.url], timeout_s=2.0, retries=1, backoff_s=0.01
            )
            actions = [{"x": i, "m": "a"} for i in range(4)]
            batched = pool.evaluate_batch("SvcCounting-v0", actions)
            env = SvcCountingEnv()
            assert batched == [env.evaluate(a) for a in actions]
            # retried (retries=1 -> 2 attempts) before giving up on it
            assert _TornBatchHandler.requests_seen == 2
            assert pool.quarantined_urls == [torn_url]
            # later batches go straight to the healthy host
            pool.evaluate_batch("SvcCounting-v0", actions)
            assert _TornBatchHandler.requests_seen == 2
        finally:
            httpd.shutdown()
            httpd.server_close()
            good.stop()


class TestCachePrimaryFailover:
    """The tentpole scenario: the host carrying the *shared cache
    primary* dies mid-sweep. With write-through replication the
    surviving replica answers every cache read — byte-identical
    reports, the same cross-trial hit count, and zero extra
    simulator invocations."""

    KW = dict(agents=("rw", "ga"), n_trials=2, n_samples=15, seed=9)

    def _run(self, urls):
        return run_lottery_sweep(
            SvcCountingEnv,
            service_url=list(urls),
            shared_cache=True, cache_replicas=2,
            service_timeout_s=5.0, service_retries=1,
            **self.KW,
        )

    def test_cache_primary_killed_mid_sweep_no_resimulation(self):
        # Clean reference: same 2-host replicated-cache sweep, nobody
        # dies.
        svc_a, svc_b = _service(), _service()
        try:
            clean = self._run([svc_a.url, svc_b.url])
        finally:
            svc_a.stop()
            svc_b.stop()
        assert clean.shared_cache_hits > 0  # the cache really engaged
        clear_backend_cache()

        # Dying run: host A — first URL, so both the dispatch pool's
        # member and the shared-cache *primary* — is killed partway in.
        svc_a = EvaluationService()

        class DyingEnv(SvcCountingEnv):
            env_id = "SvcCounting-v0"
            calls = 0

            def evaluate(self, action):
                type(self).calls += 1
                if type(self).calls == 5:
                    threading.Thread(target=svc_a.stop, daemon=True).start()
                    time.sleep(0.2)
                return super().evaluate(action)

        svc_a.register("SvcCounting-v0", DyingEnv)
        url_a = svc_a.start()
        svc_b = _service()
        try:
            dying = self._run([url_a, svc_b.url])
        finally:
            svc_a.stop()
            svc_b.stop()

        assert _normalized(dying) == _normalized(clean)
        # No cache loss: every cross-trial hit the clean run got, the
        # dying run got too — and nothing had to be re-simulated.
        assert dying.shared_cache_hits == clean.shared_cache_hits
        assert dying.remote_evals == clean.remote_evals


# -- anti-entropy backfill --------------------------------------------------------


class TestCacheBackfill:
    """A revived host rejoins with an *empty* (or stale) memo cache;
    the pool must backfill it from a live replica before putting it
    back in rotation, so the fleet's cache coverage survives restarts."""

    def _seed(self, url, n):
        client = ServiceClient(url, timeout_s=5.0, retries=0)
        entries = {f"pt-{i:02d}": {"cost": float(i)} for i in range(n)}
        for key_str, metrics in entries.items():
            client.cache_put(key_str, metrics)
        return client, entries

    def test_check_health_backfills_revived_host(self, two_services):
        a, b = two_services
        url_b, port_b = b.url, b.port
        client_a, seeded = self._seed(a.url, 5)
        pool = HostPool(
            [a.url, url_b], timeout_s=1.0, retries=0, backoff_s=0.01
        )
        b.stop()
        for i in range(2):  # quarantine b via failed dispatch
            pool.evaluate("SvcCounting-v0", {"x": i, "m": "a"})
        assert pool.quarantined_urls == [url_b]
        donor_size = client_a.cache_size()
        restarted = _service(port=port_b)  # fresh process, empty cache
        try:
            report = pool.check_health()
            assert report[url_b]["status"] == "ok"
            assert pool.quarantined_urls == []
            assert pool.cache_backfills == donor_size
            entries, total = ServiceClient(
                url_b, timeout_s=5.0, retries=0
            ).cache_list(limit=1000)
            assert total == donor_size
            got = dict(entries)
            for key_str, metrics in seeded.items():
                assert got[key_str] == metrics
        finally:
            restarted.stop()

    def test_timed_revival_backfills_before_rejoining(self, two_services):
        """The production path: the piggybacked revival probe (not an
        explicit health check) restores the host — backfill must ride
        along there too."""
        a, b = two_services
        url_b, port_b = b.url, b.port
        client_a, _ = self._seed(a.url, 3)
        pool = HostPool(
            [a.url, url_b], timeout_s=1.0, retries=0, backoff_s=0.01,
            revive_after_s=0.05,
        )
        b.stop()
        for i in range(2):  # round-robin: b's turn comes within two
            pool.evaluate("SvcCounting-v0", {"x": i, "m": "a"})
        assert pool.quarantined_urls == [url_b]
        donor_size = client_a.cache_size()
        restarted = _service(port=port_b)
        try:
            time.sleep(0.1)  # let the rest period elapse
            pool.evaluate("SvcCounting-v0", {"x": 2, "m": "a"})
            assert pool.quarantined_urls == []
            assert pool.cache_backfills == donor_size
            assert restarted.cache_size() == donor_size
        finally:
            restarted.stop()

    @pytest.mark.parametrize(
        "async_dispatch", [False, True], ids=["threaded", "async"]
    )
    def test_revival_and_backfill_ride_an_inflight_scatter(
        self, two_services, async_dispatch
    ):
        """The hardest interleaving: the timed revival probe fires at
        the entry of a scatter dispatch, so the anti-entropy backfill
        runs while that same scatter is about to fan out — the revived
        host must rejoin with a complete cache *and* serve part of the
        very batch whose dispatch revived it. Both dispatch cores."""
        a, b = two_services
        url_b, port_b = b.url, b.port
        client_a, seeded = self._seed(a.url, 4)
        pool = HostPool(
            [a.url, url_b], timeout_s=5.0, retries=0, backoff_s=0.01,
            revive_after_s=0.05, async_dispatch=async_dispatch,
        )
        b.stop()
        actions = [{"x": i % 8, "m": "a"} for i in range(8)]
        # b's chunk fails over to a; b lands in quarantine.
        metrics, hosts = pool.evaluate_batch_scatter(
            "SvcCounting-v0", actions
        )
        assert pool.quarantined_urls == [url_b]
        assert set(hosts) == {a.url}
        donor_size = client_a.cache_size()
        restarted = _service(port=port_b)
        try:
            time.sleep(0.1)  # let the rest period elapse
            metrics, hosts = pool.evaluate_batch_scatter(
                "SvcCounting-v0", actions
            )
            env = SvcCountingEnv()
            assert metrics == [env.evaluate(x) for x in actions]
            assert pool.quarantined_urls == []
            assert pool.cache_backfills == donor_size
            # The revived host answered part of the scatter that
            # triggered its own revival — no warm-up round needed.
            assert url_b in hosts and a.url in hosts
            entries, total = ServiceClient(
                url_b, timeout_s=5.0, retries=0
            ).cache_list(limit=1000)
            got = dict(entries)
            for key_str, value in seeded.items():
                assert got[key_str] == value
        finally:
            restarted.stop()
            pool.close()


# -- transport teardown -----------------------------------------------------------


class TestTransportTeardown:
    """The keep-alive leak regression: every persistent socket a trial
    opened must be reclaimed at teardown — including sockets owned by
    dispatch threads that have since exited, which no per-thread close
    could reach."""

    def test_client_close_reclaims_other_threads_connections(
        self, two_services
    ):
        a, _ = two_services
        client = ServiceClient(a.url, timeout_s=5.0, retries=0)
        threads = [
            threading.Thread(target=client.healthz) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Three dispatch threads -> three keep-alive sockets, all of
        # them unreachable per-thread now the threads have exited but
        # still registered with the client.
        assert client.connections_opened == 3
        assert len(client._all_conns) == 3
        client.close()
        assert client._all_conns == set()
        # Close is resource hygiene, not a lifecycle end: the next
        # request transparently opens (and counts) a fresh socket.
        client.healthz()
        assert client.connections_opened == 4
        client.close()

    @pytest.mark.parametrize(
        "async_dispatch", [False, True], ids=["threaded", "async"]
    )
    def test_pool_close_reclaims_every_host_transport(
        self, two_services, async_dispatch
    ):
        a, b = two_services
        pool = HostPool(
            [a.url, b.url], timeout_s=5.0, retries=0,
            async_dispatch=async_dispatch,
        )
        actions = [{"x": i % 8, "m": "a"} for i in range(8)]
        pool.evaluate_batch_scatter("SvcCounting-v0", actions)
        pool.close()
        for host in pool._hosts:
            assert host.client._all_conns == set()
            assert host.probe_client._all_conns == set()
            if async_dispatch:
                assert not host.aio_client._idle
                assert not host.aio_probe._idle
        # No dispatch machinery left running either: scatter workers
        # are per-call, and close() tears down the event-loop thread.
        lingering = [
            t.name
            for t in threading.enumerate()
            if t.name.startswith("hostpool-")
        ]
        assert lingering == []
        # The pool stays usable; transports reopen lazily.
        pool.evaluate("SvcCounting-v0", {"x": 0, "m": "a"})
        pool.close()

    def test_trial_teardown_closes_cached_backend_sockets(
        self, two_services
    ):
        """The regression this battery exists for: a serial remote
        sweep memoizes its backend per-process, and before the fix the
        backend's clients kept their keep-alive sockets open forever.
        ``execute_trials`` must close the transports at teardown while
        the backend object — with its quarantine and counter state —
        stays cached for the next trial batch."""
        from repro.sweeps.executor import _BACKEND_CACHE

        a, b = two_services
        run_lottery_sweep(
            SvcCountingEnv, workers=1,
            service_url=[a.url, b.url], service_batch=True,
            agents=("rw",), n_trials=1, n_samples=6, seed=3,
        )
        assert _BACKEND_CACHE  # the sweep memoized its backend
        for backend in _BACKEND_CACHE.values():
            pool = backend.client
            opened = sum(
                h.client.connections_opened + h.probe_client.connections_opened
                for h in pool._hosts
            )
            assert opened > 0  # the sweep really held keep-alive sockets
            for host in pool._hosts:
                assert host.client._all_conns == set()
                assert host.probe_client._all_conns == set()


# -- self-tuning dispatch weights -------------------------------------------------


class _SlowCountingEnv(SvcCountingEnv):
    """Deterministic metrics, but each evaluation costs real wall
    time — the heterogeneous-fleet stand-in."""

    def evaluate(self, action):
        time.sleep(0.03)
        return super().evaluate(action)


class TestAutoWeights:
    def test_negative_interval_rejected(self):
        with pytest.raises(ServiceError, match="auto_weights_interval_s"):
            HostPool(
                ["http://h1:1"], timeout_s=1.0,
                auto_weights=True, auto_weights_interval_s=-1.0,
            )

    def test_slow_host_weight_tuned_below_fast_host(self):
        slow = EvaluationService()
        slow.register("SvcCounting-v0", _SlowCountingEnv)
        slow.start()
        fast = _service()
        try:
            pool = HostPool(
                [slow.url, fast.url], timeout_s=10.0, retries=0,
                auto_weights=True, auto_weights_interval_s=0.0,
            )
            # Static weights are untouched; effective ones start equal.
            assert pool.weights_by_host == {slow.url: 1.0, fast.url: 1.0}
            assert pool.effective_weights_by_host == pool.weights_by_host
            for i in range(16):
                pool.evaluate("SvcCounting-v0", {"x": i, "m": "a"})
            assert pool.auto_weight_updates > 0
            eff = pool.effective_weights_by_host
            # The fastest host anchors the scale at its static weight;
            # the slow one is scaled down but floored, never starved.
            assert eff[fast.url] == pytest.approx(1.0)
            assert 0.1 <= eff[slow.url] < eff[fast.url]
            # The declared capacity weights never move.
            assert pool.weights_by_host == {slow.url: 1.0, fast.url: 1.0}
        finally:
            slow.stop()
            fast.stop()

    def test_unmeasured_host_keeps_static_weight(self, two_services):
        """A cold host (no observed evaluations yet) must keep its
        declared weight — tuning only ever acts on evidence."""
        a, b = two_services
        pool = HostPool(
            [a.url, b.url], timeout_s=10.0, retries=0,
            auto_weights=True, auto_weights_interval_s=0.0,
        )
        pool._hosts[0].inflight = 5  # starve a: every call goes to b
        for i in range(6):
            pool.evaluate("SvcCounting-v0", {"x": i, "m": "a"})
        eff = pool.effective_weights_by_host
        assert eff[a.url] == pytest.approx(1.0)

    def test_auto_weights_off_by_default(self, two_services):
        a, b = two_services
        pool = HostPool([a.url, b.url], timeout_s=10.0, retries=0)
        for i in range(6):
            pool.evaluate("SvcCounting-v0", {"x": i, "m": "a"})
        assert pool.auto_weight_updates == 0
        assert pool.effective_weights_by_host == pool.weights_by_host


# -- the parity battery -----------------------------------------------------------


def _normalized(report):
    """Trial records with the legitimately execution-dependent fields
    (timing; where the simulator ran) zeroed."""
    rows = []
    for agent in sorted(report.results):
        for res in report.results[agent]:
            rec = res.to_record()
            rec["wall_time_s"] = 0.0
            rec["sim_time_s"] = 0.0
            rec["remote_evals"] = 0
            rec["remote_hosts"] = {}
            rows.append(rec)
    return rows


def _normalized_shard_bytes(path):
    """A shard file's canonical bytes with per-trial timing/transport
    fields zeroed — everything else (actions, metrics, transitions,
    provenance, key order) must match byte-for-byte."""
    record = json.loads(path.read_text())
    record["result"]["wall_time_s"] = 0.0
    record["result"]["sim_time_s"] = 0.0
    record["result"]["remote_evals"] = 0
    record["result"]["remote_hosts"] = {}
    return json.dumps(record, separators=(",", ":")).encode("utf-8")


class TestFourModeParity:
    """The acceptance battery: one fixed-seed DRAM sweep, four
    execution modes, byte-identical reports, datasets, and shards."""

    KW = dict(
        agents=("rw", "ga"), n_trials=2, n_samples=12, seed=7,
        collect_dataset=True,
    )

    @pytest.fixture(scope="class")
    def modes(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("four-mode-parity")
        factory = RegistryEnvFactory("DRAMGym-v0")

        def dram_service():
            import functools

            import repro

            svc = EvaluationService()
            svc.register(
                "DRAMGym-v0", functools.partial(repro.make, "DRAMGym-v0")
            )
            svc.start()
            return svc

        single = dram_service()
        pool_a, pool_b = dram_service(), dram_service()
        pool_urls = (pool_a.url, pool_b.url)
        try:
            reports = {
                "serial": run_lottery_sweep(
                    factory, workers=1, out_dir=tmp_path / "serial", **self.KW
                ),
                "workers4": run_lottery_sweep(
                    factory, workers=4, out_dir=tmp_path / "workers4", **self.KW
                ),
                "service": run_lottery_sweep(
                    factory, service_url=single.url,
                    out_dir=tmp_path / "service", **self.KW
                ),
                "hostpool": run_lottery_sweep(
                    factory, service_url=list(pool_urls),
                    service_batch=True,
                    out_dir=tmp_path / "hostpool", **self.KW
                ),
                "hostpool-async": run_lottery_sweep(
                    factory, service_url=list(pool_urls),
                    service_batch=True, async_dispatch=True,
                    out_dir=tmp_path / "hostpool-async", **self.KW
                ),
            }
        finally:
            single.stop()
            pool_a.stop()
            pool_b.stop()
        return tmp_path, reports, pool_urls

    def test_reports_bit_identical(self, modes):
        _, reports, _ = modes
        reference = _normalized(reports["serial"])
        for mode in ("workers4", "service", "hostpool", "hostpool-async"):
            assert _normalized(reports[mode]) == reference, mode

    def test_datasets_byte_identical(self, modes):
        tmp_path, reports, _ = modes
        paths = {}
        for mode, report in reports.items():
            out = tmp_path / f"{mode}.jsonl"
            report.dataset.save_jsonl(out)
            paths[mode] = out.read_bytes()
        assert len(set(paths.values())) == 1

    def test_shard_artifacts_byte_identical(self, modes):
        tmp_path, _, _ = modes
        shard_names = sorted(
            p.name for p in (tmp_path / "serial").glob("trial-*.json")
        )
        assert shard_names  # the durable path really produced shards
        for name in shard_names:
            reference = _normalized_shard_bytes(tmp_path / "serial" / name)
            for mode in ("workers4", "service", "hostpool", "hostpool-async"):
                assert (
                    _normalized_shard_bytes(tmp_path / mode / name) == reference
                ), f"{mode}/{name}"

    def test_both_pool_hosts_participated(self, modes):
        _, reports, (url_a, url_b) = modes
        for mode in ("hostpool", "hostpool-async"):
            by_host = reports[mode].remote_evals_by_host
            assert by_host.get(url_a, 0) > 0, mode
            assert by_host.get(url_b, 0) > 0, mode
            assert (
                sum(by_host.values()) == reports[mode].remote_evals
            ), mode


class TestGenerationParity:
    """The generation-native acceptance battery: one fixed-seed GA+ACO
    DRAM sweep run serial, with ``generation_dispatch`` in-process
    (``step_batch``), with ``generation_dispatch`` over a *weighted*
    2-host pool, and pipelined (``step_batch_stream`` — streaming
    dispatch with work stealing) both in-process and over a 2-host
    pool — byte-identical reports, datasets, and shard artifacts."""

    KW = dict(
        agents=("ga", "aco"), n_trials=2, n_samples=20, seed=13,
        collect_dataset=True,
    )

    @pytest.fixture(scope="class")
    def modes(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("generation-parity")
        factory = RegistryEnvFactory("DRAMGym-v0")

        def dram_service():
            import functools

            import repro

            svc = EvaluationService()
            svc.register(
                "DRAMGym-v0", functools.partial(repro.make, "DRAMGym-v0")
            )
            svc.start()
            return svc

        pool_a, pool_b = dram_service(), dram_service()
        pool_urls = (pool_a.url, pool_b.url)
        try:
            reports = {
                "serial": run_lottery_sweep(
                    factory, workers=1, out_dir=tmp_path / "serial", **self.KW
                ),
                "generation": run_lottery_sweep(
                    factory, generation_dispatch=True,
                    out_dir=tmp_path / "generation", **self.KW
                ),
                "weighted-pool": run_lottery_sweep(
                    factory,
                    service_url=[pool_a.url + "=2", pool_b.url],
                    generation_dispatch=True, service_batch=True,
                    out_dir=tmp_path / "weighted-pool", **self.KW
                ),
                "pipeline": run_lottery_sweep(
                    factory, pipeline=True,
                    out_dir=tmp_path / "pipeline", **self.KW
                ),
                "pipeline-pool": run_lottery_sweep(
                    factory,
                    service_url=[pool_a.url, pool_b.url],
                    pipeline=True,
                    out_dir=tmp_path / "pipeline-pool", **self.KW
                ),
                "async-pool": run_lottery_sweep(
                    factory,
                    service_url=[pool_a.url + "=2", pool_b.url],
                    generation_dispatch=True, service_batch=True,
                    async_dispatch=True,
                    out_dir=tmp_path / "async-pool", **self.KW
                ),
                "async-pipeline-pool": run_lottery_sweep(
                    factory,
                    service_url=[pool_a.url, pool_b.url],
                    pipeline=True, async_dispatch=True,
                    out_dir=tmp_path / "async-pipeline-pool", **self.KW
                ),
            }
        finally:
            pool_a.stop()
            pool_b.stop()
        return tmp_path, reports, pool_urls

    def test_reports_bit_identical(self, modes):
        _, reports, _ = modes
        reference = _normalized(reports["serial"])
        for mode in (
            "generation", "weighted-pool", "pipeline", "pipeline-pool",
            "async-pool", "async-pipeline-pool",
        ):
            assert _normalized(reports[mode]) == reference, mode

    def test_datasets_byte_identical(self, modes):
        tmp_path, reports, _ = modes
        blobs = {}
        for mode, report in reports.items():
            out = tmp_path / f"{mode}.jsonl"
            report.dataset.save_jsonl(out)
            blobs[mode] = out.read_bytes()
        assert len(set(blobs.values())) == 1

    def test_shard_artifacts_byte_identical(self, modes):
        tmp_path, _, _ = modes
        shard_names = sorted(
            p.name for p in (tmp_path / "serial").glob("trial-*.json")
        )
        assert shard_names
        for name in shard_names:
            reference = _normalized_shard_bytes(tmp_path / "serial" / name)
            for mode in (
                "generation", "weighted-pool", "pipeline", "pipeline-pool",
                "async-pool", "async-pipeline-pool",
            ):
                assert (
                    _normalized_shard_bytes(tmp_path / mode / name) == reference
                ), f"{mode}/{name}"

    def test_pool_generations_really_scattered(self, modes):
        """Both hosts answered, per-point provenance accounts for every
        remote evaluation, and the weight-2 host carried the larger
        share of the generations."""
        _, reports, (url_a, url_b) = modes
        for mode in ("weighted-pool", "async-pool"):
            by_host = reports[mode].remote_evals_by_host
            assert by_host.get(url_a, 0) > 0, mode
            assert by_host.get(url_b, 0) > 0, mode
            assert sum(by_host.values()) == reports[mode].remote_evals, mode
            assert by_host[url_a] > by_host[url_b], mode
