"""Unit + property tests for the DRAM substrate (repro.dramsys)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.dramsys import (
    DDR3_1600,
    DDR4_2400,
    LPDDR4_3200,
    ControllerConfig,
    DramDevice,
    DramEnergy,
    DramSimulator,
    DramTimings,
    Trace,
    controller_space,
    generate_trace,
)
from repro.dramsys.traces import TRACE_NAMES


class TestDevice:
    def test_presets_valid(self):
        for dev in (DDR4_2400, DDR3_1600, LPDDR4_3200):
            assert dev.banks >= 8
            assert dev.timings.trc >= dev.timings.tras

    def test_burst_time(self):
        t = DDR4_2400.timings
        assert t.burst_time == pytest.approx(t.burst_length / 2 * t.tck)

    def test_address_mapping_interleaves_banks(self):
        dev = DDR4_2400
        banks = [dev.map_address(i * dev.line_bytes)[0] for i in range(dev.banks)]
        assert sorted(banks) == list(range(dev.banks))

    def test_address_mapping_same_row_for_stride(self):
        dev = DDR4_2400
        # consecutive lines in the same bank (stride = banks * line) share a row
        stride = dev.banks * dev.line_bytes
        rows = {dev.map_address(i * stride)[1] for i in range(dev.lines_per_row)}
        assert len(rows) == 1

    def test_invalid_timings(self):
        with pytest.raises(SimulationError):
            DramTimings(tck=0.0)
        with pytest.raises(SimulationError):
            DramTimings(trc=10.0, tras=20.0)
        with pytest.raises(SimulationError):
            DramTimings(trefi=100.0, trfc=200.0)
        with pytest.raises(SimulationError):
            DramTimings(burst_length=3)

    def test_invalid_energy(self):
        with pytest.raises(SimulationError):
            DramEnergy(e_act=-1.0)
        with pytest.raises(SimulationError):
            DramEnergy(p_background_idle=1.0, p_background_active=0.5)

    def test_invalid_banks(self):
        with pytest.raises(SimulationError):
            DramDevice(banks=12)

    def test_invalid_address_mapping(self):
        with pytest.raises(SimulationError):
            DramDevice(address_mapping="xor_sliced")

    def test_row_interleaved_keeps_stream_in_one_bank(self):
        dev = DramDevice(address_mapping="row_interleaved")
        banks = {
            dev.map_address(i * dev.line_bytes)[0]
            for i in range(dev.lines_per_row)
        }
        assert len(banks) == 1

    def test_row_interleaved_loses_bank_parallelism_on_streams(self):
        from repro.dramsys.device import DDR4_2400

        trace = generate_trace("stream", 600, seed=0)
        bank_il = DramSimulator(DDR4_2400).simulate(ControllerConfig(), trace)
        row_il = DramSimulator(
            DramDevice(address_mapping="row_interleaved")
        ).simulate(ControllerConfig(), trace)
        # both mappings keep streams row-local, but row-interleaving
        # serializes onto one bank at a time -> higher latency
        assert row_il.row_hit_rate > 0.9
        assert row_il.avg_latency_ns > bank_il.avg_latency_ns


class TestTraces:
    def test_all_names_generate(self):
        for name in TRACE_NAMES:
            trace = generate_trace(name, n_requests=50, seed=3)
            assert len(trace) == 50
            assert trace.name == name

    def test_deterministic(self):
        a = generate_trace("cloud-1", 100, seed=7)
        b = generate_trace("cloud-1", 100, seed=7)
        assert a.requests == b.requests

    def test_different_seeds_differ(self):
        a = generate_trace("random", 100, seed=1)
        b = generate_trace("random", 100, seed=2)
        assert a.requests != b.requests

    def test_arrivals_sorted(self):
        for name in TRACE_NAMES:
            trace = generate_trace(name, 200, seed=5)
            arrivals = [r.arrival_ns for r in trace.requests]
            assert arrivals == sorted(arrivals)

    def test_stream_is_sequential(self):
        trace = generate_trace("stream", 100, seed=0)
        addrs = [r.address for r in trace.requests]
        diffs = {b - a for a, b in zip(addrs, addrs[1:])}
        assert diffs == {64}

    def test_pointer_chase_read_only_with_long_gaps(self):
        trace = generate_trace("pointer_chase", 200, seed=0)
        assert trace.write_fraction == 0.0
        gaps = [
            b.arrival_ns - a.arrival_ns
            for a, b in zip(trace.requests, trace.requests[1:])
        ]
        assert min(gaps) >= 60.0

    def test_cloud2_writes_heavier_than_cloud1(self):
        c1 = generate_trace("cloud-1", 1000, seed=0)
        c2 = generate_trace("cloud-2", 1000, seed=0)
        assert c2.write_fraction > c1.write_fraction

    def test_unknown_name(self):
        with pytest.raises(SimulationError):
            generate_trace("nope")

    def test_bad_length(self):
        with pytest.raises(SimulationError):
            generate_trace("stream", 0)


class TestControllerConfig:
    def test_default_valid(self):
        ControllerConfig()

    def test_rejects_bad_values(self):
        with pytest.raises(SimulationError):
            ControllerConfig(page_policy="Nope")
        with pytest.raises(SimulationError):
            ControllerConfig(request_buffer_size=0)
        with pytest.raises(SimulationError):
            ControllerConfig(max_active_transactions=0)
        with pytest.raises(SimulationError):
            ControllerConfig(refresh_max_postponed=-1)

    def test_action_roundtrip(self):
        cfg = ControllerConfig(page_policy="Closed", request_buffer_size=3)
        assert ControllerConfig.from_action(cfg.to_action()) == cfg

    def test_space_contains_default_action(self):
        space = controller_space()
        assert space.contains(ControllerConfig().to_action())

    def test_space_samples_build_configs(self):
        space = controller_space()
        rng = np.random.default_rng(0)
        for _ in range(50):
            ControllerConfig.from_action(space.sample(rng))

    def test_space_dimension(self):
        assert controller_space().dimension == 10


class TestSimulator:
    sim = DramSimulator()

    def test_deterministic(self):
        trace = generate_trace("cloud-1", 300, seed=2)
        a = self.sim.simulate(ControllerConfig(), trace)
        b = self.sim.simulate(ControllerConfig(), trace)
        assert a == b

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            self.sim.simulate(ControllerConfig(), Trace("empty", ()))

    def test_stream_high_hit_rate_with_open_policy(self):
        trace = generate_trace("stream", 500, seed=1)
        r = self.sim.simulate(ControllerConfig(page_policy="Open"), trace)
        assert r.row_hit_rate > 0.9

    def test_random_low_hit_rate(self):
        trace = generate_trace("random", 500, seed=1)
        r = self.sim.simulate(ControllerConfig(page_policy="Open"), trace)
        assert r.row_hit_rate < 0.1

    def test_closed_policy_kills_hits(self):
        trace = generate_trace("stream", 500, seed=1)
        r = self.sim.simulate(ConfigClosed := ControllerConfig(page_policy="Closed"), trace)
        assert r.row_hits == 0

    def test_open_beats_closed_on_stream(self):
        trace = generate_trace("stream", 800, seed=1)
        open_r = self.sim.simulate(ControllerConfig(page_policy="Open"), trace)
        closed_r = self.sim.simulate(ControllerConfig(page_policy="Closed"), trace)
        assert open_r.avg_latency_ns < closed_r.avg_latency_ns

    def test_closed_beats_open_on_random(self):
        trace = generate_trace("random", 800, seed=1)
        open_r = self.sim.simulate(ControllerConfig(page_policy="Open"), trace)
        closed_r = self.sim.simulate(ControllerConfig(page_policy="Closed"), trace)
        assert closed_r.avg_latency_ns < open_r.avg_latency_ns

    def test_fifo_resp_queue_never_faster_than_reorder(self):
        trace = generate_trace("cloud-1", 500, seed=3)
        for scheduler in ("Fifo", "FrFcFs"):
            fifo = self.sim.simulate(
                ControllerConfig(scheduler=scheduler, resp_queue_policy="Fifo"), trace
            )
            reorder = self.sim.simulate(
                ControllerConfig(scheduler=scheduler, resp_queue_policy="Reorder"), trace
            )
            assert fifo.avg_latency_ns >= reorder.avg_latency_ns - 1e-9

    def test_frfcfs_beats_fifo_on_mixed_trace(self):
        trace = generate_trace("cloud-1", 800, seed=4)
        fifo = self.sim.simulate(ControllerConfig(scheduler="Fifo"), trace)
        frfcfs = self.sim.simulate(ControllerConfig(scheduler="FrFcFs"), trace)
        assert frfcfs.row_hits >= fifo.row_hits

    def test_refresh_happens_on_long_trace(self):
        trace = generate_trace("pointer_chase", 500, seed=5)
        r = self.sim.simulate(ControllerConfig(), trace)
        assert r.refreshes > 0

    def test_perbank_refresh_more_frequent_than_allbank(self):
        trace = generate_trace("pointer_chase", 500, seed=5)
        allbank = self.sim.simulate(ControllerConfig(refresh_policy="AllBank"), trace)
        perbank = self.sim.simulate(ControllerConfig(refresh_policy="PerBank"), trace)
        assert perbank.refreshes > allbank.refreshes

    def test_energy_power_consistency(self):
        trace = generate_trace("cloud-2", 400, seed=6)
        r = self.sim.simulate(ControllerConfig(), trace)
        assert r.power_w == pytest.approx(r.energy_uj * 1e3 / r.exec_time_ns, rel=1e-9)

    def test_request_conservation(self):
        trace = generate_trace("cloud-1", 321, seed=7)
        r = self.sim.simulate(ControllerConfig(), trace)
        assert r.reads + r.writes == 321
        assert r.row_hits + r.row_misses + r.row_conflicts == 321

    def test_single_request(self):
        trace = generate_trace("random", 1, seed=8)
        r = self.sim.simulate(ControllerConfig(), trace)
        t = DDR4_2400.timings
        # one cold access: ACT + CAS + burst
        expected = t.trcd + t.tcl + t.burst_time
        assert r.avg_latency_ns == pytest.approx(expected, rel=0.01)

    def test_serializing_cap_hurts_latency(self):
        trace = generate_trace("stream", 800, seed=9)
        tight = self.sim.simulate(
            ControllerConfig(scheduler="Fifo", max_active_transactions=1), trace
        )
        loose = self.sim.simulate(
            ControllerConfig(scheduler="Fifo", max_active_transactions=128), trace
        )
        assert tight.avg_latency_ns >= loose.avg_latency_ns * 0.95

    def test_other_devices_simulate(self):
        trace = generate_trace("cloud-1", 200, seed=10)
        for dev in (DDR3_1600, LPDDR4_3200):
            r = DramSimulator(dev).simulate(ControllerConfig(), trace)
            assert r.power_w > 0
            assert r.avg_latency_ns > 0

    def test_metrics_dict_keys(self):
        trace = generate_trace("stream", 100, seed=11)
        m = self.sim.simulate(ControllerConfig(), trace).metrics()
        for key in ("latency", "power", "energy", "exec_time", "bandwidth", "row_hit_rate"):
            assert key in m

    def test_energy_breakdown_sums_to_total(self):
        trace = generate_trace("cloud-1", 300, seed=12)
        r = self.sim.simulate(ControllerConfig(), trace)
        assert set(r.energy_breakdown_nj) == {
            "activate", "read_write", "refresh", "background",
        }
        total_nj = sum(r.energy_breakdown_nj.values())
        assert total_nj / 1e3 == pytest.approx(r.energy_uj, rel=1e-9)

    def test_energy_breakdown_refresh_component(self):
        trace = generate_trace("pointer_chase", 800, seed=13)
        config = ControllerConfig(refresh_max_postponed=1)
        r = self.sim.simulate(config, trace)
        assert r.refreshes > 0
        assert r.energy_breakdown_nj["refresh"] > 0.0


# -- property-based tests -------------------------------------------------------------

config_actions = st.builds(
    dict,
    PagePolicy=st.sampled_from(("Open", "OpenAdaptive", "Closed", "ClosedAdaptive")),
    Scheduler=st.sampled_from(("Fifo", "FrFcFs", "FrFcFsGrp")),
    SchedulerBuffer=st.sampled_from(("Bankwise", "ReadWrite", "Shared")),
    RequestBufferSize=st.integers(1, 8),
    RespQueue=st.sampled_from(("Fifo", "Reorder")),
    RefreshPolicy=st.sampled_from(("AllBank", "PerBank", "SameBank")),
    RefreshMaxPostponed=st.integers(1, 8),
    RefreshMaxPulledin=st.integers(1, 8),
    Arbiter=st.sampled_from(("Fifo", "Reorder")),
    MaxActiveTransactions=st.sampled_from((1, 2, 4, 8, 16, 32, 64, 128)),
)


@given(config_actions, st.sampled_from(TRACE_NAMES), st.integers(0, 10))
@settings(max_examples=60, deadline=None)
def test_prop_simulation_invariants(action, trace_name, seed):
    """Any valid config on any trace yields finite, conserving results."""
    trace = generate_trace(trace_name, n_requests=120, seed=seed)
    result = DramSimulator().simulate(ControllerConfig.from_action(action), trace)
    assert result.reads + result.writes == 120
    assert result.row_hits + result.row_misses + result.row_conflicts == 120
    assert result.avg_latency_ns >= 0.0
    assert 0.0 < result.power_w < 10.0
    assert result.energy_uj > 0.0
    assert result.exec_time_ns >= trace.duration_ns
    assert np.isfinite(result.avg_latency_ns)


@given(st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_prop_trace_seed_determinism(seed):
    a = generate_trace("cloud-2", 60, seed=seed)
    b = generate_trace("cloud-2", 60, seed=seed)
    assert a.requests == b.requests
