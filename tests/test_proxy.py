"""Unit + property tests for the proxy cost-model stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import ArchGymDataset, Transition
from repro.core.errors import ProxyModelError
from repro.core.rewards import TargetReward
from repro.core.spaces import Categorical, CompositeSpace, Discrete
from repro.proxy import (
    DecisionTreeRegressor,
    ProxyCostModel,
    ProxyEnv,
    RandomForestRegressor,
    rmse,
    train_test_split,
)


def toy_data(n=400, seed=0, noise=0.0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 4))
    y = 3.0 * X[:, 0] + np.sin(5 * X[:, 1]) + (X[:, 2] > 0.5) * 2.0
    if noise:
        y = y + rng.normal(0, noise, size=n)
    return X, y


class TestTree:
    def test_fits_piecewise_constant_exactly(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([1.0, 1.0, 5.0, 5.0])
        tree = DecisionTreeRegressor(max_depth=3, min_samples_leaf=1).fit(X, y)
        assert np.allclose(tree.predict(X), y)

    def test_depth_limit(self):
        X, y = toy_data()
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert tree.depth_ <= 3

    def test_min_samples_leaf(self):
        X, y = toy_data(n=50)
        tree = DecisionTreeRegressor(max_depth=20, min_samples_leaf=25).fit(X, y)
        # with 50 samples and leaves of >= 25, only one split is possible
        assert tree.n_nodes_ <= 3

    def test_deeper_fits_better(self):
        X, y = toy_data()
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=10).fit(X, y)
        assert rmse(y, deep.predict(X)) <= rmse(y, shallow.predict(X))

    def test_constant_target(self):
        X = np.random.default_rng(0).random((20, 3))
        y = np.full(20, 7.0)
        tree = DecisionTreeRegressor().fit(X, y)
        assert np.allclose(tree.predict(X), 7.0)
        assert tree.n_nodes_ == 1

    def test_predict_before_fit(self):
        with pytest.raises(ProxyModelError):
            DecisionTreeRegressor().predict(np.zeros((1, 2)))

    def test_wrong_feature_count(self):
        X, y = toy_data()
        tree = DecisionTreeRegressor().fit(X, y)
        with pytest.raises(ProxyModelError):
            tree.predict(np.zeros((3, 7)))

    def test_validation(self):
        with pytest.raises(ProxyModelError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ProxyModelError):
            DecisionTreeRegressor(min_samples_leaf=0)
        with pytest.raises(ProxyModelError):
            DecisionTreeRegressor().fit(np.zeros((0, 2)), np.zeros(0))

    def test_single_sample(self):
        tree = DecisionTreeRegressor().fit(np.array([[1.0, 2.0]]), np.array([3.0]))
        assert tree.predict(np.array([[9.0, 9.0]]))[0] == 3.0


class TestForest:
    def test_better_than_single_tree_on_noise(self):
        X, y = toy_data(n=500, noise=0.5)
        Xte, yte = toy_data(n=200, seed=9)
        tree = DecisionTreeRegressor(max_depth=12, seed=0).fit(X, y)
        forest = RandomForestRegressor(n_estimators=25, max_depth=12, seed=0).fit(X, y)
        assert rmse(yte, forest.predict(Xte)) <= rmse(yte, tree.predict(Xte))

    def test_deterministic_given_seed(self):
        X, y = toy_data()
        a = RandomForestRegressor(n_estimators=5, seed=3).fit(X, y).predict(X)
        b = RandomForestRegressor(n_estimators=5, seed=3).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ProxyModelError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(ProxyModelError):
            RandomForestRegressor().predict(np.zeros((1, 2)))

    def test_no_bootstrap_mode(self):
        X, y = toy_data(n=100)
        f = RandomForestRegressor(n_estimators=3, bootstrap=False, max_features=None, seed=0)
        f.fit(X, y)
        assert f.is_fitted


class TestSplitAndRmse:
    def test_rmse_zero_for_perfect(self):
        y = np.arange(5, dtype=float)
        assert rmse(y, y) == 0.0

    def test_rmse_shape_mismatch(self):
        with pytest.raises(ProxyModelError):
            rmse(np.zeros(3), np.zeros(4))

    def test_split_partition(self):
        X = np.arange(40, dtype=float).reshape(20, 2)
        Y = np.arange(20, dtype=float).reshape(20, 1)
        rng = np.random.default_rng(0)
        Xtr, Ytr, Xte, Yte = train_test_split(X, Y, 0.25, rng)
        assert len(Xtr) + len(Xte) == 20
        assert len(Xte) == 5
        combined = sorted(list(Ytr.ravel()) + list(Yte.ravel()))
        assert combined == list(range(20))

    def test_split_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ProxyModelError):
            train_test_split(np.zeros((5, 1)), np.zeros((5, 1)), 1.5, rng)
        with pytest.raises(ProxyModelError):
            train_test_split(np.zeros((1, 1)), np.zeros((1, 1)), 0.5, rng)


def synthetic_dataset(n=300, seed=0):
    """Dataset over a small space with a learnable latency function."""
    space = CompositeSpace(
        [Discrete("x", 0, 15, 1), Categorical("mode", ("a", "b"))]
    )
    rng = np.random.default_rng(seed)
    ds = ArchGymDataset("Synthetic-v0")
    for i in range(n):
        action = space.sample(rng)
        latency = 10.0 + action["x"] * 2.0 + (5.0 if action["mode"] == "b" else 0.0)
        power = 1.0 + action["x"] * 0.05
        ds.append(
            Transition(action=action, metrics={"latency": latency, "power": power},
                       reward=1.0 / latency, source=f"agent{i % 3}")
        )
    return space, ds


class TestProxyCostModel:
    def test_fit_and_predict(self):
        space, ds = synthetic_dataset()
        proxy = ProxyCostModel(space, targets=["latency", "power"])
        proxy.fit(ds, seed=0, n_estimators=20, max_features=None)
        assert proxy.test_rmse["latency"] < 2.0
        assert proxy.test_rmse_relative["latency"] < 0.1
        pred = proxy.predict_metrics({"x": 4, "mode": "b"})
        assert pred["latency"] == pytest.approx(10 + 8 + 5, abs=3.0)

    def test_fit_with_search_not_worse_than_default_seeded(self):
        space, ds = synthetic_dataset()
        searched = ProxyCostModel(space, targets=["latency"]).fit_with_search(
            ds, n_trials=4, seed=1
        )
        assert searched.test_rmse["latency"] < 3.0

    def test_predict_before_fit(self):
        space, __ = synthetic_dataset(n=10)
        proxy = ProxyCostModel(space, targets=["latency"])
        with pytest.raises(ProxyModelError):
            proxy.predict_metrics({"x": 0, "mode": "a"})

    def test_predict_matrix_shape(self):
        space, ds = synthetic_dataset()
        proxy = ProxyCostModel(space, targets=["latency", "power"]).fit(
            ds, seed=0, n_estimators=5
        )
        X, __ = ds.to_matrices(space, ["latency", "power"])
        out = proxy.predict_matrix(X[:17])
        assert out.shape == (17, 2)


class TestProxyEnv:
    def test_wraps_and_steps(self):
        space, ds = synthetic_dataset()
        proxy = ProxyCostModel(space, targets=["latency", "power"]).fit(
            ds, seed=0, n_estimators=5
        )
        env = ProxyEnv(proxy, reward_spec=TargetReward("latency", target=15.0))
        env.reset(seed=0)
        obs, reward, __, __, info = env.step({"x": 2, "mode": "a"})
        assert obs.shape == (2,)
        assert reward > 0

    def test_unfitted_proxy_rejected(self):
        space, __ = synthetic_dataset(n=10)
        proxy = ProxyCostModel(space, targets=["latency"])
        with pytest.raises(ProxyModelError):
            ProxyEnv(proxy, reward_spec=TargetReward("latency", target=15.0))

    def test_from_env_copies_shape(self):
        from repro.envs.dram import DRAMGymEnv

        space, ds = synthetic_dataset()
        # proxy over the synthetic space, but reward copied from a real env
        proxy = ProxyCostModel(space, targets=["latency", "power"]).fit(
            ds, seed=0, n_estimators=5
        )
        real = DRAMGymEnv(workload="stream", n_requests=10)
        twin = ProxyEnv.from_env(real, proxy)
        assert twin.env_id == "Proxy(DRAMGym-v0)"
        assert twin.reward_spec is real.reward_spec


# -- property tests ------------------------------------------------------------------

@given(st.integers(0, 10_000), st.integers(10, 60), st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_prop_tree_predictions_within_target_range(seed, n, depth):
    """A regression tree can never predict outside [min(y), max(y)]."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, 3))
    y = rng.normal(size=n)
    tree = DecisionTreeRegressor(max_depth=depth, seed=seed).fit(X, y)
    pred = tree.predict(rng.random((50, 3)))
    assert pred.min() >= y.min() - 1e-12
    assert pred.max() <= y.max() + 1e-12


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_prop_forest_predictions_within_target_range(seed):
    rng = np.random.default_rng(seed)
    X = rng.random((80, 3))
    y = rng.normal(size=80)
    forest = RandomForestRegressor(n_estimators=5, seed=seed).fit(X, y)
    pred = forest.predict(rng.random((30, 3)))
    assert pred.min() >= y.min() - 1e-12
    assert pred.max() <= y.max() + 1e-12
