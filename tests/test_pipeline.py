"""Tests for streaming pipelined dispatch with work stealing.

Four batteries:

1. **Streaming mechanics** — ``HostPool.evaluate_batch_stream`` yields
   every work unit exactly once, reassembles to the same metrics as
   serial evaluation, delegates tiny batches/lone hosts to the
   whole-batch path, and accounts units/steals/duplicates.
2. **Straggler fault injection** — a deliberately slow host's
   unfinished remainder is work-stolen by the idle fast host (the
   stream finishes without waiting for the straggler), a host whose
   transport dies mid-stream has its unit requeued and the batch
   completes on the survivor, all hosts dead raises a
   :class:`ServiceTransportError` inventory, and server-produced
   errors propagate without quarantine.

3. **Ordered replay** — ``ArchGymEnv.step_batch_stream`` buffers
   chunks that arrive out of order and replays the serial bookkeeping
   in proposal order (byte-identical counters, rewards, and dataset
   rows), while in-order chunks are consumed lazily.
4. **Pipelined driver parity** — ``run_agent(pipeline=True)`` and a
   full ``--pipeline`` sweep over a slow+fast pool stay byte-identical
   to the serial loop; no design point is recorded twice.

Batteries 1 and 2 are parametrized over both dispatch cores: worker
threads (the default) and ``async_dispatch=True`` (coroutine tasks on
one event loop) must be observationally identical — same chunks, same
counters, same failure surfaces.
"""

import threading
import time

import pytest

from repro.core.errors import ServiceError, ServiceTransportError
from repro.service import EvaluationService, RemoteBackend, ServiceClient
from repro.sweeps import HostPool, clear_backend_cache, run_lottery_sweep

from test_multihost import _normalized
from test_service import SvcCountingEnv, _free_port


@pytest.fixture(autouse=True)
def _fresh_backend_cache():
    """Pools memoize per-process; tests must not inherit another test's
    quarantine state for a recycled URL."""
    clear_backend_cache()
    yield
    clear_backend_cache()


class SlowSvcCountingEnv(SvcCountingEnv):
    """Same env id, same deterministic metrics, deliberately slow —
    registered on one host of a pool to fault-inject a straggler."""

    env_id = "SvcCounting-v0"
    delay_s = 0.25

    def evaluate(self, action):
        time.sleep(self.delay_s)
        return super().evaluate(action)


def _service(env_cls=SvcCountingEnv, port=0):
    svc = EvaluationService(port=port)
    svc.register("SvcCounting-v0", env_cls)
    svc.start()
    return svc


@pytest.fixture()
def two_services():
    a, b = _service(), _service()
    yield a, b
    a.stop()
    b.stop()


@pytest.fixture()
def slow_fast_services():
    slow, fast = _service(SlowSvcCountingEnv), _service()
    yield slow, fast
    slow.stop()
    fast.stop()


@pytest.fixture(params=["threaded", "async"])
def dispatch_pool(request):
    """Pool factory parametrized over both dispatch cores. Streaming
    mechanics and straggler handling must be observationally identical
    whether work units ride worker threads or coroutine tasks on the
    pool's single event loop."""
    pools = []

    def factory(urls, **kw):
        pool = HostPool(
            urls, async_dispatch=(request.param == "async"), **kw
        )
        pools.append(pool)
        return pool

    yield factory
    for pool in pools:
        pool.close()


def _distinct_actions(n):
    return [{"x": i % 8, "m": "ab"[(i // 8) % 2]} for i in range(n)]


def _reassemble(chunks, n):
    """Flatten ``(start, metrics, host)`` chunks into request order,
    asserting every point is answered exactly once."""
    out = [None] * n
    for start, metrics_list, _ in chunks:
        for offset, metrics in enumerate(metrics_list):
            assert out[start + offset] is None, "point answered twice"
            out[start + offset] = metrics
    assert all(m is not None for m in out), "stream left points unanswered"
    return out


class TestStreamingMechanics:
    def test_stream_matches_serial_each_unit_once(self, two_services, dispatch_pool):
        a, b = two_services
        pool = dispatch_pool([a.url, b.url], timeout_s=10.0, retries=0)
        actions = _distinct_actions(16)
        chunks = list(
            pool.evaluate_batch_stream("SvcCounting-v0", actions, unit_size=2)
        )
        env = SvcCountingEnv()
        assert _reassemble(chunks, 16) == [env.evaluate(x) for x in actions]
        starts = sorted(c[0] for c in chunks)
        assert starts == list(range(0, 16, 2))  # every unit exactly once
        assert pool.stream_units == 8
        assert sum(pool.evals_by_host.values()) == 16  # winners only

    def test_empty_batch_yields_nothing(self, two_services, dispatch_pool):
        a, b = two_services
        pool = dispatch_pool([a.url, b.url], timeout_s=10.0, retries=0)
        assert list(pool.evaluate_batch_stream("SvcCounting-v0", [])) == []
        assert pool.stream_units == 0

    def test_single_host_delegates_to_whole_batch(self, dispatch_pool):
        svc = _service()
        try:
            pool = dispatch_pool([svc.url], timeout_s=10.0, retries=0)
            actions = _distinct_actions(6)
            chunks = list(
                pool.evaluate_batch_stream(
                    "SvcCounting-v0", actions, unit_size=1
                )
            )
            assert len(chunks) == 1 and chunks[0][0] == 0
            assert chunks[0][2] == svc.url
            env = SvcCountingEnv()
            assert chunks[0][1] == [env.evaluate(x) for x in actions]
            assert pool.stream_units == 0  # delegated, not streamed
        finally:
            svc.stop()

    def test_tiny_batch_delegates_to_whole_batch(self, two_services, dispatch_pool):
        a, b = two_services
        pool = dispatch_pool([a.url, b.url], timeout_s=10.0, retries=0)
        chunks = list(
            pool.evaluate_batch_stream(
                "SvcCounting-v0", [{"x": 1, "m": "a"}]
            )
        )
        assert len(chunks) == 1
        assert pool.stream_units == 0

    def test_bad_unit_size_rejected(self, two_services, dispatch_pool):
        a, b = two_services
        pool = dispatch_pool([a.url, b.url], timeout_s=10.0, retries=0)
        with pytest.raises(ServiceError, match="unit_size"):
            list(
                pool.evaluate_batch_stream(
                    "SvcCounting-v0", _distinct_actions(4), unit_size=0
                )
            )

    def test_remote_backend_single_client_falls_back(self):
        svc = _service()
        try:
            backend = RemoteBackend(
                ServiceClient(svc.url, timeout_s=10.0, retries=0)
            )
            actions = _distinct_actions(5)
            chunks = list(
                backend.evaluate_batch_stream("SvcCounting-v0", actions)
            )
            assert len(chunks) == 1 and chunks[0][0] == 0
            env = SvcCountingEnv()
            assert chunks[0][1] == [env.evaluate(x) for x in actions]
            assert backend.last_hosts == [svc.url] * 5
        finally:
            svc.stop()


class TestStragglerFaultInjection:
    def test_idle_host_steals_the_stragglers_remainder(
        self, slow_fast_services, dispatch_pool
    ):
        """The fast host drains the queue, then re-dispatches the slow
        host's in-flight unit instead of idling behind it — and the
        stream finishes without waiting for the straggler's request."""
        slow, fast = slow_fast_services
        pool = dispatch_pool([slow.url, fast.url], timeout_s=30.0, retries=0)
        actions = _distinct_actions(16)
        start = time.perf_counter()
        chunks = list(
            pool.evaluate_batch_stream("SvcCounting-v0", actions, unit_size=2)
        )
        elapsed = time.perf_counter() - start
        env = SvcCountingEnv()
        assert _reassemble(chunks, 16) == [env.evaluate(x) for x in actions]
        assert pool.stream_steals >= 1  # the remainder was re-dispatched
        # The barrier path would wait for the slow host to answer its
        # whole weighted share (8 points x 0.25s); stealing caps the
        # exposure at roughly one unit of straggler latency.
        assert elapsed < 8 * SlowSvcCountingEnv.delay_s
        # Winners account for exactly one evaluation per design point,
        # no matter how many duplicates the straggler eventually answers.
        assert sum(pool.evals_by_host.values()) == 16

    def test_host_death_mid_stream_requeues_its_unit(self, dispatch_pool):
        """A host whose transport dies mid-stream is quarantined and its
        unfinished unit completes on the survivor — every point answered
        exactly once, like the scatter failover battery."""
        svc_a = EvaluationService()

        class DyingEnv(SvcCountingEnv):
            env_id = "SvcCounting-v0"
            calls = 0

            def evaluate(self, action):
                type(self).calls += 1
                if type(self).calls == 2:
                    threading.Thread(target=svc_a.stop, daemon=True).start()
                    time.sleep(0.2)
                return super().evaluate(action)

        svc_a.register("SvcCounting-v0", DyingEnv)
        url_a = svc_a.start()
        svc_b = _service()
        try:
            pool = dispatch_pool(
                [url_a, svc_b.url], timeout_s=5.0, retries=0, backoff_s=0.01
            )
            actions = _distinct_actions(16)
            chunks = list(
                pool.evaluate_batch_stream(
                    "SvcCounting-v0", actions, unit_size=2
                )
            )
            env = SvcCountingEnv()
            assert _reassemble(chunks, 16) == [
                env.evaluate(x) for x in actions
            ]
            assert pool.quarantined_urls == [url_a]
        finally:
            svc_a.stop()
            svc_b.stop()

    def test_all_hosts_dead_raises_with_outstanding_inventory(self, dispatch_pool):
        urls = [f"http://127.0.0.1:{_free_port()}" for _ in range(2)]
        pool = dispatch_pool(urls, timeout_s=0.5, retries=0, backoff_s=0.01)
        with pytest.raises(ServiceTransportError) as excinfo:
            list(
                pool.evaluate_batch_stream(
                    "SvcCounting-v0", _distinct_actions(4), unit_size=1
                )
            )
        message = str(excinfo.value)
        assert "work unit(s) outstanding" in message
        for url in urls:
            assert url in message

    def test_server_error_propagates_without_quarantine(self, two_services, dispatch_pool):
        a, b = two_services
        pool = dispatch_pool([a.url, b.url], timeout_s=10.0, retries=0)
        with pytest.raises(ServiceError, match="unknown environment") as excinfo:
            list(
                pool.evaluate_batch_stream(
                    "Nope-v0", _distinct_actions(8), unit_size=1
                )
            )
        assert not isinstance(excinfo.value, ServiceTransportError)
        assert pool.quarantined_urls == []  # deterministic failure != death


class _ScriptedStreamBackend:
    """In-process backend whose streaming hook yields fixed-size chunks
    in a scripted arrival order — the replay layer must buffer and
    reorder them."""

    def __init__(self, chunk_size=3, reverse=False):
        self._env = SvcCountingEnv()
        self.chunk_size = chunk_size
        self.reverse = reverse
        self.chunks_yielded = 0
        self.last_hosts = None

    def evaluate(self, env_name, action):
        return self._env.evaluate(action)

    def evaluate_batch(self, env_name, actions):
        return [self._env.evaluate(a) for a in actions]

    def evaluate_batch_stream(self, env_name, actions):
        spans = [
            (s, actions[s:s + self.chunk_size])
            for s in range(0, len(actions), self.chunk_size)
        ]
        if self.reverse:
            spans = spans[::-1]
        for start, sub in spans:
            self.chunks_yielded += 1
            yield start, [self._env.evaluate(a) for a in sub], "scripted-host"


def _normalized_step(step_result):
    observation, reward, terminated, truncated, info = step_result
    return observation.tolist(), reward, terminated, truncated, info


class TestOrderedReplay:
    def _env_with(self, backend):
        env = SvcCountingEnv()
        if backend is not None:
            env.attach_backend(backend)
        env.reset(seed=0)
        return env

    def test_out_of_order_chunks_replay_in_proposal_order(self):
        actions = [{"x": i % 8, "m": "a"} for i in range(9)]
        reference = self._env_with(None)
        expected = [
            _normalized_step(r) for r in reference.step_batch(actions)
        ]
        env = self._env_with(_ScriptedStreamBackend(reverse=True))
        streamed = [
            _normalized_step(r) for r in env.step_batch_stream(actions)
        ]
        assert streamed == expected
        # the cache tiers saw the identical miss/hit sequence
        assert env.cache_info() == reference.cache_info()

    def test_in_order_chunks_consumed_lazily(self):
        """With chunks arriving in proposal order the replay must not
        drain the whole stream before yielding the first result."""
        backend = _ScriptedStreamBackend(chunk_size=3, reverse=False)
        env = self._env_with(backend)
        gen = env.step_batch_stream([{"x": i % 8, "m": "a"} for i in range(9)])
        next(gen)
        assert backend.chunks_yielded == 1  # not 3
        assert len(list(gen)) == 8

    def test_stream_ending_early_is_loud(self):
        class TruncatingBackend(_ScriptedStreamBackend):
            def evaluate_batch_stream(self, env_name, actions):
                parent = super().evaluate_batch_stream(env_name, actions)
                yield next(parent)  # first chunk only

        env = self._env_with(TruncatingBackend())
        with pytest.raises(Exception, match="stream ended"):
            list(env.step_batch_stream(
                [{"x": i % 8, "m": "a"} for i in range(9)]
            ))


class TestPipelinedDriverParity:
    def test_run_agent_pipeline_matches_serial_and_barrier(self):
        from repro.agents.base import run_agent
        from repro.agents.ga import GAAgent

        def one_run(**mode):
            env = SvcCountingEnv()
            if mode.pop("_stream_backend", False):
                env.attach_backend(_ScriptedStreamBackend(reverse=True))
            agent = GAAgent(env.action_space, seed=3, population_size=6)
            result = run_agent(agent, env, n_samples=30, seed=5, **mode)
            record = result.to_record()
            for field in (
                "wall_time_s", "sim_time_s", "remote_evals", "remote_hosts"
            ):
                record[field] = 0
            return record

        serial = one_run()
        assert one_run(generation_dispatch=True) == serial
        assert one_run(pipeline=True) == serial
        assert one_run(pipeline=True, _stream_backend=True) == serial

    def test_pipelined_sweep_with_straggler_byte_identical_to_serial(
        self, slow_fast_services
    ):
        """The acceptance cut of the satellite task: a sweep over a
        slow+fast pool in ``--pipeline`` mode reports byte-identically
        to the in-process serial run, with every design point recorded
        exactly once despite the re-dispatched straggler remainders."""
        slow, fast = slow_fast_services
        SlowSvcCountingEnv.delay_s = 0.02  # keep the sweep quick
        try:
            kw = dict(agents=("ga", "aco"), n_trials=1, n_samples=16, seed=13)
            baseline = run_lottery_sweep(SvcCountingEnv, **kw)
            pipelined = run_lottery_sweep(
                SvcCountingEnv,
                service_url=[slow.url, fast.url],
                pipeline=True,
                service_timeout_s=10.0, service_retries=0,
                **kw,
            )
        finally:
            SlowSvcCountingEnv.delay_s = 0.25
        assert _normalized(pipelined) == _normalized(baseline)
        assert pipelined.remote_evals > 0
        by_host = pipelined.remote_evals_by_host
        # per-point provenance still accounts for every remote
        # evaluation exactly once (duplicates discarded, never recorded)
        assert sum(by_host.values()) == pipelined.remote_evals
