"""Tests for dataset coverage/diversity analytics (paper §7.3)."""

import numpy as np
import pytest

from repro.core.analysis import (
    action_entropy,
    diversity_report,
    pairwise_source_overlap,
    parameter_coverage,
    unique_design_fraction,
)
from repro.core.dataset import ArchGymDataset, Transition
from repro.core.errors import DatasetError
from repro.core.spaces import Categorical, CompositeSpace, Discrete


def space():
    return CompositeSpace(
        [Discrete("x", 0, 3, 1), Categorical("m", ("a", "b"))]
    )


def transition(x, m, source="s"):
    return Transition(action={"x": x, "m": m}, metrics={"c": 1.0},
                      reward=1.0, source=source)


class TestCoverage:
    def test_full_coverage(self):
        ds = ArchGymDataset("E")
        for x in range(4):
            for m in ("a", "b"):
                ds.append(transition(x, m))
        cov = parameter_coverage(ds, space())
        assert cov == {"x": 1.0, "m": 1.0}

    def test_partial_coverage(self):
        ds = ArchGymDataset("E", [transition(0, "a"), transition(1, "a")])
        cov = parameter_coverage(ds, space())
        assert cov["x"] == pytest.approx(0.5)
        assert cov["m"] == pytest.approx(0.5)

    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError):
            parameter_coverage(ArchGymDataset("E"), space())


class TestEntropy:
    def test_uniform_exploration_entropy_one(self):
        ds = ArchGymDataset("E")
        for x in range(4):
            for m in ("a", "b"):
                ds.append(transition(x, m))
        assert action_entropy(ds, space()) == pytest.approx(1.0)

    def test_single_point_entropy_zero(self):
        ds = ArchGymDataset("E", [transition(2, "b")] * 10)
        assert action_entropy(ds, space()) == pytest.approx(0.0)

    def test_entropy_between_extremes(self):
        ds = ArchGymDataset("E", [transition(0, "a")] * 9 + [transition(3, "b")])
        assert 0.0 < action_entropy(ds, space()) < 1.0


class TestUniqueness:
    def test_all_unique(self):
        ds = ArchGymDataset("E", [transition(x, "a") for x in range(4)])
        assert unique_design_fraction(ds, space()) == 1.0

    def test_all_duplicates(self):
        ds = ArchGymDataset("E", [transition(1, "a")] * 8)
        assert unique_design_fraction(ds, space()) == pytest.approx(1 / 8)


class TestSourceOverlap:
    def test_disjoint_sources(self):
        ds = ArchGymDataset("E")
        ds.extend([transition(0, "a", "A"), transition(1, "a", "A")])
        ds.extend([transition(2, "b", "B"), transition(3, "b", "B")])
        assert pairwise_source_overlap(ds, space(), "A", "B") == 0.0

    def test_identical_sources(self):
        ds = ArchGymDataset("E")
        ds.extend([transition(0, "a", "A"), transition(0, "a", "B")])
        assert pairwise_source_overlap(ds, space(), "A", "B") == 1.0

    def test_missing_source_rejected(self):
        ds = ArchGymDataset("E", [transition(0, "a", "A")])
        with pytest.raises(DatasetError):
            pairwise_source_overlap(ds, space(), "A", "Z")


class TestDiversityReport:
    def test_report_keys_and_ranges(self):
        ds = ArchGymDataset("E")
        rng = np.random.default_rng(0)
        sp = space()
        for i in range(50):
            action = sp.sample(rng)
            ds.append(Transition(action=action, metrics={"c": 1.0},
                                 reward=1.0, source=f"agent{i % 3}"))
        report = diversity_report(ds, sp)
        assert report["n"] == 50.0
        assert report["n_sources"] == 3.0
        assert 0.0 < report["mean_coverage"] <= 1.0
        assert 0.0 <= report["action_entropy"] <= 1.0
        assert 0.0 < report["unique_fraction"] <= 1.0

    def test_multi_agent_exploration_is_more_diverse_than_converged(self):
        """A converged agent (one repeated design) scores lower diversity
        than uniform multi-agent exploration — the §7.3 rationale."""
        sp = space()
        rng = np.random.default_rng(1)
        diverse = ArchGymDataset("E")
        for __ in range(40):
            diverse.append(Transition(action=sp.sample(rng), metrics={},
                                      reward=1.0, source="mix"))
        converged = ArchGymDataset("E", [transition(1, "a", "aco")] * 40)
        assert (
            diversity_report(diverse, sp)["action_entropy"]
            > diversity_report(converged, sp)["action_entropy"]
        )
