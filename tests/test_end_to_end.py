"""End-to-end pipeline tests: the paper's full workflow in miniature.

sweep (multi-agent, multi-ticket) -> standardized dataset -> proxy cost
model -> simulator-free search -> validation on the simulator. This is
the composition Figs. 1 and 9 describe; each stage is unit-tested
elsewhere, these tests verify the handoffs.
"""

import numpy as np
import pytest

from repro.agents import OfflineAgent, make_agent, run_agent
from repro.core.analysis import diversity_report
from repro.envs.dram import DRAMGymEnv
from repro.envs.maestro_env import MaestroGymEnv
from repro.proxy import ProxyCostModel, ProxyEnv
from repro.sweeps import run_lottery_sweep


class TestFullPipelineDRAM:
    @pytest.fixture(scope="class")
    def sweep_report(self):
        return run_lottery_sweep(
            lambda: DRAMGymEnv(workload="cloud-1", objective="power",
                               n_requests=150, cache_size=0),
            agents=("rw", "ga", "aco"),
            n_trials=2, n_samples=80, seed=3, collect_dataset=True,
        )

    def test_sweep_produces_tagged_dataset(self, sweep_report):
        ds = sweep_report.dataset
        assert ds is not None
        assert len(ds) == 3 * 2 * 80
        assert len(ds.sources) == 6  # one tag per (agent, ticket)

    def test_dataset_diversity_is_nontrivial(self, sweep_report):
        env = DRAMGymEnv(workload="cloud-1", n_requests=10)
        report = diversity_report(sweep_report.dataset, env.action_space)
        assert report["mean_coverage"] > 0.5
        assert report["action_entropy"] > 0.3

    def test_proxy_trains_from_sweep_dataset(self, sweep_report):
        env = DRAMGymEnv(workload="cloud-1", n_requests=150)
        proxy = ProxyCostModel(
            env.action_space, targets=["latency", "power", "energy"]
        ).fit(sweep_report.dataset, seed=0, n_estimators=10)
        assert proxy.test_rmse_relative["power"] < 0.25

    def test_proxy_search_validates_on_simulator(self, sweep_report):
        env = DRAMGymEnv(workload="cloud-1", objective="power",
                         n_requests=150, cache_size=0)
        proxy = ProxyCostModel(
            env.action_space, targets=["latency", "power", "energy"]
        ).fit(sweep_report.dataset, seed=0, n_estimators=10)
        proxy_env = ProxyEnv.from_env(env, proxy)
        agent = make_agent("ga", proxy_env.action_space, seed=5)
        result = run_agent(agent, proxy_env, n_samples=300, seed=5)
        # zero simulator queries during the search
        assert env.stats.total_steps == 0
        # the found design's predicted power is close to simulated power
        true_power = env.evaluate(result.best_action)["power"]
        assert result.best_metrics["power"] == pytest.approx(
            true_power, rel=0.15
        )

    def test_offline_agent_consumes_sweep_dataset(self, sweep_report):
        env = DRAMGymEnv(workload="cloud-1", objective="power",
                         n_requests=150)
        agent = OfflineAgent(env.action_space, seed=6,
                             dataset=sweep_report.dataset, exploration=0.1)
        result = run_agent(agent, env, n_samples=15, seed=6)
        # with 480 warm-start points, 15 live queries already land close
        # to the 0.9x-reference power target
        gap = abs(result.best_metrics["power"] - env.power_target_w)
        assert gap / env.power_target_w < 0.2


class TestFullPipelineMaestro:
    def test_sweep_to_proxy_on_mapping_space(self):
        report = run_lottery_sweep(
            lambda: MaestroGymEnv(workload="resnet18", cache_size=0),
            agents=("rw", "ga"),
            n_trials=2, n_samples=60, seed=7, collect_dataset=True,
        )
        env = MaestroGymEnv(workload="resnet18")
        proxy = ProxyCostModel(env.action_space, targets=["runtime"]).fit(
            report.dataset, seed=0, n_estimators=10
        )
        # runtime spans 9 orders of magnitude (infeasible penalty); the
        # proxy must at least rank feasible vs infeasible correctly
        rng = np.random.default_rng(0)
        feasible_actions = [
            t.action for t in report.dataset
            if t.metrics["runtime"] < 1e8
        ]
        infeasible_actions = [
            t.action for t in report.dataset
            if t.metrics["runtime"] >= 1e8
        ]
        if feasible_actions and infeasible_actions:
            pred_f = np.mean([
                proxy.predict_metrics(a)["runtime"] for a in feasible_actions[:20]
            ])
            pred_i = np.mean([
                proxy.predict_metrics(a)["runtime"] for a in infeasible_actions[:20]
            ])
            assert pred_f < pred_i

    def test_cross_env_datasets_do_not_mix(self):
        dram_report = run_lottery_sweep(
            lambda: DRAMGymEnv(workload="stream", n_requests=60),
            agents=("rw",), n_trials=1, n_samples=10, seed=0,
            collect_dataset=True,
        )
        maestro_report = run_lottery_sweep(
            lambda: MaestroGymEnv(workload="resnet18"),
            agents=("rw",), n_trials=1, n_samples=10, seed=0,
            collect_dataset=True,
        )
        from repro.core.errors import DatasetError

        with pytest.raises(DatasetError):
            dram_report.dataset.merge(maestro_report.dataset)
