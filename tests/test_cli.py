"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_env_and_agent(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--env", "DRAMGym-v0"])

    def test_unknown_agent_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--env", "DRAMGym-v0", "--agent", "magic"]
            )


class TestCommands:
    def test_envs_lists_all(self, capsys):
        assert main(["envs"]) == 0
        out = capsys.readouterr().out
        for env_id in ("DRAMGym-v0", "TimeloopGym-v0", "FARSIGym-v0", "MaestroGym-v0"):
            assert env_id in out

    def test_agents_lists_grids(self, capsys):
        assert main(["agents"]) == 0
        out = capsys.readouterr().out
        for name in ("aco", "bo", "ga", "rw", "rl", "offline"):
            assert name in out

    def test_run_maestro(self, capsys):
        code = main([
            "run", "--env", "MaestroGym-v0", "--agent", "rw",
            "--samples", "10", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best reward" in out
        assert "best design" in out

    def test_run_with_hyperparams_json(self, capsys):
        code = main([
            "run", "--env", "MaestroGym-v0", "--agent", "ga",
            "--samples", "12",
            "--hyperparams", json.dumps({"population_size": 4}),
        ])
        assert code == 0
        assert "population_size=4" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--env", "MaestroGym-v0", "--agents", "rw,ga",
            "--trials", "2", "--samples", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "lottery sweep" in out
        assert "normalized best" in out

    def test_collect_writes_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "data.jsonl"
        code = main([
            "collect", "--env", "MaestroGym-v0", "--agents", "rw,ga",
            "--samples", "8", "--out", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()
        from repro.core.dataset import ArchGymDataset

        ds = ArchGymDataset.load_jsonl(out_path)
        assert len(ds) == 16
        assert len(ds.sources) == 2

    def test_run_with_workload_option(self, capsys):
        code = main([
            "run", "--env", "DRAMGym-v0", "--agent", "rw",
            "--workload", "stream", "--objective", "latency",
            "--samples", "5",
        ])
        assert code == 0

    def test_sweep_with_boxplots_and_export(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main([
            "sweep", "--env", "MaestroGym-v0", "--agents", "rw",
            "--trials", "2", "--samples", "8",
            "--boxplots", "--export", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "*" in stdout  # box plot rendered
        from repro.sweeps.export import load_report_json

        payload = load_report_json(out)
        assert len(payload["rows"]) == 2

    def test_sweep_export_csv(self, tmp_path, capsys):
        out = tmp_path / "sweep.csv"
        code = main([
            "sweep", "--env", "MaestroGym-v0", "--agents", "rw",
            "--trials", "1", "--samples", "5", "--export", str(out),
        ])
        assert code == 0
        assert out.read_text().startswith("env_id")


class TestDurableCommands:
    SWEEP_ARGS = [
        "sweep", "--env", "MaestroGym-v0", "--agents", "rw,ga",
        "--trials", "2", "--samples", "8", "--seed", "3",
    ]

    def test_sweep_out_dir_writes_manifest_and_shards(self, tmp_path, capsys):
        out_dir = tmp_path / "sweep"
        assert main(self.SWEEP_ARGS + ["--out-dir", str(out_dir)]) == 0
        assert (out_dir / "sweep.json").exists()
        assert len(list(out_dir.glob("trial-*.json"))) == 4

    def test_sweep_resume_reproduces_clean_export(self, tmp_path, capsys):
        clean_export = tmp_path / "clean.json"
        assert main(self.SWEEP_ARGS + [
            "--out-dir", str(tmp_path / "clean"), "--export", str(clean_export),
        ]) == 0

        # simulate a kill: drop two of the four shards, then resume
        out_dir = tmp_path / "resumed"
        resumed_export = tmp_path / "resumed.json"
        assert main(self.SWEEP_ARGS + ["--out-dir", str(out_dir)]) == 0
        for index in (1, 3):
            (out_dir / f"trial-{index:05d}.json").unlink()
        assert main(self.SWEEP_ARGS + [
            "--out-dir", str(out_dir), "--resume", "--export",
            str(resumed_export),
        ]) == 0

        clean = json.loads(clean_export.read_text())
        resumed = json.loads(resumed_export.read_text())
        for payload in (clean, resumed):
            for row in payload["rows"]:
                row["wall_time_s"] = row["sim_time_s"] = 0.0
        assert resumed == clean

    def test_sweep_shared_cache_flag(self, tmp_path, capsys):
        # a tiny space with repeat proposals across trials
        code = main([
            "sweep", "--env", "MaestroGym-v0", "--agents", "rw",
            "--trials", "3", "--samples", "30", "--seed", "1",
            "--out-dir", str(tmp_path / "s"), "--shared-cache",
        ])
        assert code == 0
        assert (tmp_path / "s" / "shared-cache").is_dir()

    def test_collect_resume_completes_partial_run(self, tmp_path, capsys):
        out_dir = tmp_path / "collect"
        args = [
            "collect", "--env", "MaestroGym-v0", "--agents", "rw,ga",
            "--samples", "8", "--seed", "2",
        ]
        clean_path = tmp_path / "clean.jsonl"
        assert main(args + ["--out", str(clean_path)]) == 0

        first_path = tmp_path / "first.jsonl"
        assert main(args + [
            "--out", str(first_path), "--out-dir", str(out_dir),
        ]) == 0
        (out_dir / "trial-00001.json").unlink()  # simulate a kill

        resumed_path = tmp_path / "resumed.jsonl"
        assert main(args + [
            "--out", str(resumed_path), "--out-dir", str(out_dir), "--resume",
        ]) == 0
        assert resumed_path.read_text() == clean_path.read_text()

    def test_resume_with_different_workload_rejected(self, tmp_path):
        from repro.core.errors import ShardError

        out_dir = str(tmp_path / "s")
        base = [
            "sweep", "--env", "DRAMGym-v0", "--agents", "rw",
            "--trials", "1", "--samples", "5", "--out-dir", out_dir,
        ]
        assert main(base + ["--workload", "stream"]) == 0
        with pytest.raises(ShardError, match="different sweep"):
            main(base + ["--workload", "cloud-1", "--resume"])

    def test_resume_without_out_dir_rejected(self, tmp_path):
        from repro.core.errors import ArchGymError

        with pytest.raises(ArchGymError, match="out-dir"):
            main([
                "collect", "--env", "MaestroGym-v0", "--agents", "rw",
                "--samples", "4", "--out", str(tmp_path / "x.jsonl"),
                "--resume",
            ])
