"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_env_and_agent(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--env", "DRAMGym-v0"])

    def test_unknown_agent_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--env", "DRAMGym-v0", "--agent", "magic"]
            )


class TestCommands:
    def test_envs_lists_all(self, capsys):
        assert main(["envs"]) == 0
        out = capsys.readouterr().out
        for env_id in ("DRAMGym-v0", "TimeloopGym-v0", "FARSIGym-v0", "MaestroGym-v0"):
            assert env_id in out

    def test_agents_lists_grids(self, capsys):
        assert main(["agents"]) == 0
        out = capsys.readouterr().out
        for name in ("aco", "bo", "ga", "rw", "rl", "offline"):
            assert name in out

    def test_run_maestro(self, capsys):
        code = main([
            "run", "--env", "MaestroGym-v0", "--agent", "rw",
            "--samples", "10", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "best reward" in out
        assert "best design" in out

    def test_run_with_hyperparams_json(self, capsys):
        code = main([
            "run", "--env", "MaestroGym-v0", "--agent", "ga",
            "--samples", "12",
            "--hyperparams", json.dumps({"population_size": 4}),
        ])
        assert code == 0
        assert "population_size=4" in capsys.readouterr().out

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--env", "MaestroGym-v0", "--agents", "rw,ga",
            "--trials", "2", "--samples", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "lottery sweep" in out
        assert "normalized best" in out

    def test_collect_writes_jsonl(self, tmp_path, capsys):
        out_path = tmp_path / "data.jsonl"
        code = main([
            "collect", "--env", "MaestroGym-v0", "--agents", "rw,ga",
            "--samples", "8", "--out", str(out_path),
        ])
        assert code == 0
        assert out_path.exists()
        from repro.core.dataset import ArchGymDataset

        ds = ArchGymDataset.load_jsonl(out_path)
        assert len(ds) == 16
        assert len(ds.sources) == 2

    def test_run_with_workload_option(self, capsys):
        code = main([
            "run", "--env", "DRAMGym-v0", "--agent", "rw",
            "--workload", "stream", "--objective", "latency",
            "--samples", "5",
        ])
        assert code == 0

    def test_sweep_with_boxplots_and_export(self, tmp_path, capsys):
        out = tmp_path / "sweep.json"
        code = main([
            "sweep", "--env", "MaestroGym-v0", "--agents", "rw",
            "--trials", "2", "--samples", "8",
            "--boxplots", "--export", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "*" in stdout  # box plot rendered
        from repro.sweeps.export import load_report_json

        payload = load_report_json(out)
        assert len(payload["rows"]) == 2

    def test_sweep_export_csv(self, tmp_path, capsys):
        out = tmp_path / "sweep.csv"
        code = main([
            "sweep", "--env", "MaestroGym-v0", "--agents", "rw",
            "--trials", "1", "--samples", "5", "--export", str(out),
        ])
        assert code == 0
        assert out.read_text().startswith("env_id")
