"""Integration tests: the four environments against their Table 3 contract.

Each environment must expose the right workloads, action parameters,
observation metrics, and reward orientation, and must run end-to-end
through the registry with every agent family.
"""

import numpy as np
import pytest

import repro
from repro.agents import make_agent, run_agent
from repro.core.dataset import ArchGymDataset
from repro.core.errors import EnvironmentError_, SimulationError
from repro.envs import DRAMGymEnv, FARSIGymEnv, MaestroGymEnv, TimeloopGymEnv


class TestRegistry:
    def test_all_four_registered(self):
        ids = repro.registered_ids()
        for env_id in ("DRAMGym-v0", "TimeloopGym-v0", "FARSIGym-v0", "MaestroGym-v0"):
            assert env_id in ids

    def test_make_with_kwargs(self):
        env = repro.make("DRAMGym-v0", workload="random", objective="latency",
                         n_requests=50)
        assert isinstance(env, DRAMGymEnv)
        assert env.workload == "random"


class TestDRAMGym:
    def test_table3_contract(self):
        env = DRAMGymEnv(workload="stream", n_requests=100)
        assert env.observation_metrics == ["latency", "power", "energy"]
        names = env.action_space.names
        for expected in ("PagePolicy", "RequestBufferSize", "RefreshPolicy"):
            assert expected in names

    def test_objectives(self):
        for objective in ("power", "latency", "joint"):
            env = DRAMGymEnv(workload="stream", objective=objective, n_requests=50)
            env.reset(seed=0)
            __, reward, *_ = env.step(env.random_action())
            assert reward > 0
            assert env.reward_spec.higher_is_better

    def test_unknown_objective(self):
        with pytest.raises(EnvironmentError_):
            DRAMGymEnv(objective="area")

    def test_unknown_workload(self):
        with pytest.raises(SimulationError):
            DRAMGymEnv(workload="spec2017")

    def test_cache_dedupes_evaluations(self):
        env = DRAMGymEnv(workload="stream", n_requests=100)
        assert env.cache_enabled  # on by default for deterministic sims
        env.reset(seed=0)
        action = env.random_action()
        env.step(action)
        env.reset()
        env.step(action)
        assert env.stats.cache_hits == 1
        assert env.stats.cache_misses == 1

    def test_cache_disabled(self):
        env = DRAMGymEnv(workload="stream", n_requests=50, cache_size=0)
        assert not env.cache_enabled
        env.reset(seed=0)
        action = env.random_action()
        env.step(action)
        env.reset()
        env.step(action)
        assert env.stats.cache_hits == 0

    def test_power_reward_prefers_1w(self):
        env = DRAMGymEnv(workload="pointer_chase", objective="power",
                         power_target_w=1.0, n_requests=200)
        r = env.reward_spec
        assert r.compute({"power": 1.01}) > r.compute({"power": 1.3})


class TestTimeloopGym:
    def test_table3_contract(self):
        env = TimeloopGymEnv(workload="alexnet")
        assert env.observation_metrics == ["latency", "energy", "area"]
        assert "NumPEsX" in env.action_space.names

    def test_targets_derived_from_reference(self):
        env = TimeloopGymEnv(workload="alexnet")
        assert env.latency_target_ms > 0
        assert env.energy_target_mj > 0

    def test_explicit_targets(self):
        env = TimeloopGymEnv(workload="alexnet", objective="energy",
                             energy_target_mj=1.0)
        assert env.energy_target_mj == 1.0

    def test_unknown_objective(self):
        with pytest.raises(EnvironmentError_):
            TimeloopGymEnv(objective="power")

    def test_step_returns_area(self):
        env = TimeloopGymEnv(workload="alexnet")
        env.reset(seed=0)
        obs, *_ = env.step(env.random_action())
        assert obs[2] > 0  # area


class TestFARSIGym:
    def test_table3_contract(self):
        env = FARSIGymEnv(workload="audio_decoder")
        assert env.observation_metrics == ["performance", "power", "area"]
        assert "PE_Slot0" in env.action_space.names
        assert "NoC_BusWidth" in env.action_space.names

    def test_reward_is_distance_lower_better(self):
        env = FARSIGymEnv(workload="audio_decoder")
        assert not env.reward_spec.higher_is_better
        env.reset(seed=0)
        __, reward, *_ = env.step(env.random_action())
        assert reward >= 0.0

    def test_budget_override(self):
        env = FARSIGymEnv(workload="audio_decoder",
                          budgets={"power": 1e9, "performance": 1e9, "area": 1e9})
        env.reset(seed=0)
        # absurdly generous budgets: any feasible design has distance 0
        rng = np.random.default_rng(0)
        for _ in range(5):
            a = env.action_space.sample(rng)
            __, reward, __, __, info = env.step(a)
            if info["metrics"]["feasible"]:
                assert reward == 0.0
            env.reset()


class TestMaestroGym:
    def test_table3_contract(self):
        env = MaestroGymEnv(workload="resnet18")
        assert env.observation_metrics == ["runtime", "throughput", "energy", "area"]
        assert "LoopOrder" in env.action_space.names

    def test_inverse_reward(self):
        env = MaestroGymEnv(workload="resnet18")
        env.reset(seed=0)
        __, reward, __, __, info = env.step(env.random_action())
        runtime = info["metrics"]["runtime"]
        assert reward == pytest.approx(1.0 / runtime)


class TestAgentsOnAllEnvs:
    """Every agent family must run on every environment — the paper's
    central interface claim (§3.3)."""

    @pytest.mark.parametrize("agent_name", ("rw", "ga", "aco", "bo", "rl"))
    def test_agents_complete_on_each_env(self, agent_name):
        factories = [
            lambda: DRAMGymEnv(workload="stream", n_requests=60),
            lambda: TimeloopGymEnv(workload="alexnet"),
            lambda: FARSIGymEnv(workload="audio_decoder"),
            lambda: MaestroGymEnv(workload="resnet18"),
        ]
        for factory in factories:
            env = factory()
            agent = make_agent(agent_name, env.action_space, seed=0)
            n = 20 if agent_name != "bo" else 12
            result = run_agent(agent, env, n_samples=n, seed=0)
            assert result.n_samples == n
            assert np.isfinite(result.best_fitness)

    def test_dataset_collection_across_envs(self):
        env = MaestroGymEnv(workload="resnet18")
        ds = ArchGymDataset()
        env.attach_dataset(ds)
        for name in ("rw", "ga"):
            agent = make_agent(name, env.action_space, seed=1)
            run_agent(agent, env, n_samples=15, seed=1)
        assert len(ds) == 30
        assert len(ds.sources) == 2
