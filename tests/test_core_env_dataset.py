"""Unit + property tests for the env base class, dataset, and registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dataset import ArchGymDataset, Transition
from repro.core.env import ArchGymEnv
from repro.core.errors import (
    DatasetError,
    EnvironmentError_,
    InvalidActionError,
    RegistryError,
)
from repro.core.registry import EnvRegistry
from repro.core.rewards import TargetReward
from repro.core.spaces import Categorical, CompositeSpace, Discrete


class QuadraticEnv(ArchGymEnv):
    """Toy env: latency = (x - 5)^2 + 1, power = x / 10 + mode bonus."""

    env_id = "Quadratic-v0"

    def __init__(self, episode_length=4, terminate_on_target=False):
        space = CompositeSpace(
            [
                Discrete("x", low=0, high=10, step=1),
                Categorical("mode", ("fast", "slow")),
            ]
        )
        super().__init__(
            action_space=space,
            observation_metrics=["latency", "power"],
            reward_spec=TargetReward("latency", target=1.0, tolerance=0.5),
            episode_length=episode_length,
            terminate_on_target=terminate_on_target,
        )

    def evaluate(self, action):
        x = action["x"]
        bonus = 0.0 if action["mode"] == "fast" else 0.5
        return {"latency": (x - 5) ** 2 + 1.0, "power": x / 10 + bonus}


def make_transition(i, source="agentA"):
    return Transition(
        action={"x": i % 11, "mode": "fast"},
        metrics={"latency": float(i), "power": i / 10},
        reward=float(i),
        source=source,
        step=i,
    )


class TestArchGymEnv:
    def test_reset_returns_zero_observation(self):
        env = QuadraticEnv()
        obs, info = env.reset(seed=0)
        assert obs.shape == (2,)
        assert np.all(obs == 0)
        assert info["env_id"] == "Quadratic-v0"

    def test_step_before_reset_raises(self):
        env = QuadraticEnv()
        with pytest.raises(EnvironmentError_):
            env.step({"x": 5, "mode": "fast"})

    def test_step_returns_metrics_observation(self):
        env = QuadraticEnv()
        env.reset(seed=0)
        obs, reward, terminated, truncated, info = env.step({"x": 5, "mode": "fast"})
        assert obs[0] == pytest.approx(1.0)  # latency at optimum
        assert info["metrics"]["latency"] == pytest.approx(1.0)
        assert reward > 1.0  # at target -> capped high reward

    def test_invalid_action_raises(self):
        env = QuadraticEnv()
        env.reset(seed=0)
        with pytest.raises(InvalidActionError):
            env.step({"x": 99, "mode": "fast"})

    def test_truncation_at_episode_length(self):
        env = QuadraticEnv(episode_length=2)
        env.reset(seed=0)
        a = {"x": 0, "mode": "fast"}
        __, __, __, truncated, __ = env.step(a)
        assert not truncated
        __, __, __, truncated, __ = env.step(a)
        assert truncated
        with pytest.raises(EnvironmentError_):
            env.step(a)

    def test_terminate_on_target(self):
        env = QuadraticEnv(episode_length=100, terminate_on_target=True)
        env.reset(seed=0)
        __, __, terminated, __, info = env.step({"x": 5, "mode": "fast"})
        assert terminated
        assert info["target_met"]

    def test_stats_accumulate(self):
        env = QuadraticEnv(episode_length=3)
        env.reset(seed=0)
        for _ in range(3):
            env.step({"x": 1, "mode": "slow"})
        env.reset()
        assert env.stats.total_steps == 3
        assert env.stats.total_episodes == 2
        assert env.stats.total_sim_time >= 0.0

    def test_dataset_logging(self):
        env = QuadraticEnv(episode_length=5)
        ds = ArchGymDataset()
        env.attach_dataset(ds, source="tester")
        env.reset(seed=0)
        env.step({"x": 3, "mode": "fast"})
        env.step({"x": 4, "mode": "slow"})
        assert len(ds) == 2
        assert ds[0].source == "tester"
        assert ds[0].action == {"x": 3, "mode": "fast"}
        assert ds.env_id == "Quadratic-v0"

    def test_dataset_env_mismatch(self):
        env = QuadraticEnv()
        ds = ArchGymDataset(env_id="Other-v0")
        with pytest.raises(EnvironmentError_):
            env.attach_dataset(ds)

    def test_random_action_valid(self):
        env = QuadraticEnv()
        env.reset(seed=7)
        for _ in range(20):
            assert env.action_space.contains(env.random_action())

    def test_reset_seed_reproducible(self):
        env1, env2 = QuadraticEnv(), QuadraticEnv()
        env1.reset(seed=42)
        env2.reset(seed=42)
        assert env1.random_action() == env2.random_action()


class TestDataset:
    def test_append_iter_len(self):
        ds = ArchGymDataset("E-v0")
        for i in range(5):
            ds.append(make_transition(i))
        assert len(ds) == 5
        assert [t.step for t in ds] == [0, 1, 2, 3, 4]

    def test_sources_and_counts(self):
        ds = ArchGymDataset("E-v0")
        ds.extend([make_transition(i, "A") for i in range(3)])
        ds.extend([make_transition(i, "B") for i in range(2)])
        assert ds.sources == ["A", "B"]
        assert ds.source_counts() == {"A": 3, "B": 2}

    def test_filter_source(self):
        ds = ArchGymDataset("E-v0")
        ds.extend([make_transition(i, "A") for i in range(3)])
        ds.extend([make_transition(i, "B") for i in range(2)])
        assert len(ds.filter_source("A")) == 3
        assert ds.filter_source("C").sources == []

    def test_merge_same_env(self):
        a = ArchGymDataset("E-v0", [make_transition(0, "A")])
        b = ArchGymDataset("E-v0", [make_transition(1, "B")])
        merged = a.merge(b)
        assert len(merged) == 2
        assert merged.sources == ["A", "B"]

    def test_merge_env_mismatch(self):
        a = ArchGymDataset("E-v0")
        b = ArchGymDataset("F-v0")
        with pytest.raises(DatasetError):
            a.merge(b)

    def test_merge_all_empty_rejected(self):
        with pytest.raises(DatasetError):
            ArchGymDataset.merge_all([])

    def test_sample_without_replacement_bounds(self):
        ds = ArchGymDataset("E-v0", [make_transition(i) for i in range(4)])
        rng = np.random.default_rng(0)
        with pytest.raises(DatasetError):
            ds.sample(5, rng)
        assert len(ds.sample(4, rng)) == 4

    def test_sample_balanced_even_split(self):
        ds = ArchGymDataset("E-v0")
        ds.extend([make_transition(i, "A") for i in range(50)])
        ds.extend([make_transition(i, "B") for i in range(50)])
        rng = np.random.default_rng(1)
        sampled = ds.sample_balanced(20, rng)
        counts = sampled.source_counts()
        assert counts["A"] == 10 and counts["B"] == 10

    def test_sample_balanced_tops_up_short_source(self):
        ds = ArchGymDataset("E-v0")
        ds.extend([make_transition(i, "A") for i in range(100)])
        ds.extend([make_transition(i, "B") for i in range(2)])
        rng = np.random.default_rng(2)
        sampled = ds.sample_balanced(30, rng)
        assert len(sampled) == 30

    def test_best(self):
        ds = ArchGymDataset("E-v0", [make_transition(i) for i in range(5)])
        assert ds.best(higher_is_better=True).reward == 4.0
        assert ds.best(higher_is_better=False).reward == 0.0

    def test_best_empty_raises(self):
        with pytest.raises(DatasetError):
            ArchGymDataset().best()

    def test_to_matrices(self):
        space = CompositeSpace(
            [Discrete("x", 0, 10, 1), Categorical("mode", ("fast", "slow"))]
        )
        ds = ArchGymDataset("E-v0", [make_transition(i) for i in range(6)])
        X, Y = ds.to_matrices(space, targets=["latency", "power"])
        assert X.shape == (6, 2)
        assert Y.shape == (6, 2)
        assert np.all((X >= 0) & (X <= 1))
        assert Y[3, 0] == 3.0

    def test_to_matrices_missing_metric(self):
        space = CompositeSpace([Discrete("x", 0, 10, 1), Categorical("mode", ("fast", "slow"))])
        ds = ArchGymDataset("E-v0", [make_transition(0)])
        with pytest.raises(DatasetError):
            ds.to_matrices(space, targets=["nonexistent"])

    def test_jsonl_roundtrip(self, tmp_path):
        ds = ArchGymDataset("E-v0", [make_transition(i, "A") for i in range(7)])
        path = tmp_path / "data.jsonl"
        ds.save_jsonl(path)
        loaded = ArchGymDataset.load_jsonl(path)
        assert loaded.env_id == "E-v0"
        assert len(loaded) == 7
        assert loaded[3].action == ds[3].action
        assert loaded[3].reward == ds[3].reward

    def test_jsonl_bad_format(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "nope"}\n')
        with pytest.raises(DatasetError):
            ArchGymDataset.load_jsonl(path)

    def test_npz_export(self, tmp_path):
        space = CompositeSpace([Discrete("x", 0, 10, 1), Categorical("mode", ("fast", "slow"))])
        ds = ArchGymDataset("E-v0", [make_transition(i) for i in range(5)])
        path = tmp_path / "data.npz"
        ds.save_npz(path, space, targets=["latency"])
        loaded = np.load(path, allow_pickle=False)
        assert loaded["X"].shape == (5, 2)
        assert loaded["Y"].shape == (5, 1)


class TestRegistry:
    def test_register_and_make(self):
        reg = EnvRegistry()
        reg.register("Quad-v0", QuadraticEnv)
        env = reg.make("Quad-v0", episode_length=2)
        assert isinstance(env, QuadraticEnv)
        assert env.episode_length == 2

    def test_unknown_id(self):
        reg = EnvRegistry()
        with pytest.raises(RegistryError, match="unknown"):
            reg.make("Nope-v0")

    def test_double_register_rejected(self):
        reg = EnvRegistry()
        reg.register("Quad-v0", QuadraticEnv)
        with pytest.raises(RegistryError):
            reg.register("Quad-v0", QuadraticEnv)
        reg.register("Quad-v0", QuadraticEnv, overwrite=True)

    def test_bad_factory_return(self):
        reg = EnvRegistry()
        reg.register("Bad-v0", lambda: object())
        with pytest.raises(RegistryError):
            reg.make("Bad-v0")

    def test_contains_and_ids(self):
        reg = EnvRegistry()
        reg.register("A-v0", QuadraticEnv)
        assert "A-v0" in reg
        assert reg.ids() == ["A-v0"]


# -- property tests ----------------------------------------------------------------

@given(st.lists(st.integers(0, 100), min_size=1, max_size=40))
@settings(max_examples=100)
def test_prop_merge_preserves_length(steps):
    half = len(steps) // 2
    a = ArchGymDataset("E-v0", [make_transition(i, "A") for i in steps[:half]])
    b = ArchGymDataset("E-v0", [make_transition(i, "B") for i in steps[half:]])
    assert len(a.merge(b)) == len(steps)


@given(st.integers(1, 30), st.integers(0, 2**31 - 1))
@settings(max_examples=100)
def test_prop_sample_size_and_membership(n, seed):
    ds = ArchGymDataset("E-v0", [make_transition(i) for i in range(30)])
    rng = np.random.default_rng(seed)
    sampled = ds.sample(n, rng)
    assert len(sampled) == n
    steps = {t.step for t in ds}
    assert all(t.step in steps for t in sampled)
