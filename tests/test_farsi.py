"""Unit + property tests for the FARSI SoC substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SimulationError
from repro.farsi import (
    FARSI_WORKLOAD_NAMES,
    INFEASIBLE_SOC_PENALTY,
    N_SLOTS,
    PE_CATALOG,
    FarsiSimulator,
    SoCConfig,
    Task,
    TaskGraph,
    get_farsi_workload,
    soc_space,
)


def diamond_graph() -> TaskGraph:
    g = TaskGraph("diamond")
    g.add_task(Task("a", mops=100.0))
    g.add_task(Task("b", mops=200.0, kind="dsp"))
    g.add_task(Task("c", mops=200.0, kind="imaging"))
    g.add_task(Task("d", mops=50.0))
    g.add_edge("a", "b", kib=10.0)
    g.add_edge("a", "c", kib=10.0)
    g.add_edge("b", "d", kib=5.0)
    g.add_edge("c", "d", kib=5.0)
    return g


class TestTaskGraph:
    def test_construction(self):
        g = diamond_graph()
        assert len(g) == 4
        assert g.total_mops == 550.0
        assert g.total_traffic_kib == 30.0

    def test_duplicate_task_rejected(self):
        g = TaskGraph("g")
        g.add_task(Task("a", mops=1.0))
        with pytest.raises(SimulationError):
            g.add_task(Task("a", mops=2.0))

    def test_unknown_edge_endpoint(self):
        g = TaskGraph("g")
        g.add_task(Task("a", mops=1.0))
        with pytest.raises(SimulationError):
            g.add_edge("a", "b", kib=1.0)

    def test_cycle_rejected(self):
        g = TaskGraph("g")
        g.add_task(Task("a", mops=1.0))
        g.add_task(Task("b", mops=1.0))
        g.add_edge("a", "b", kib=1.0)
        with pytest.raises(SimulationError, match="cycle"):
            g.add_edge("b", "a", kib=1.0)

    def test_topological_order_respects_edges(self):
        g = diamond_graph()
        order = [t.name for t in g.topological_order()]
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_critical_path(self):
        g = diamond_graph()
        # a -> b -> d (or a -> c -> d): 100 + 200 + 50
        assert g.critical_path_mops() == 350.0

    def test_invalid_task(self):
        with pytest.raises(SimulationError):
            Task("x", mops=0.0)
        with pytest.raises(SimulationError):
            Task("x", mops=1.0, kind="quantum")

    def test_workloads_are_dags_with_budgets(self):
        assert set(FARSI_WORKLOAD_NAMES) == {
            "audio_decoder", "edge_detection", "hand_tracking",
        }
        for name in FARSI_WORKLOAD_NAMES:
            wl = get_farsi_workload(name)
            assert len(wl.graph) >= 10
            assert wl.perf_budget_ms > 0
            assert set(wl.budgets) == {"performance", "power", "area"}

    def test_hand_tracking_stereo_structure(self):
        g = get_farsi_workload("hand_tracking").graph
        # two parallel camera branches converge at stereo_match
        preds = [p.name for p, __ in g.predecessors("stereo_match")]
        assert sorted(preds) == ["feature_extract_L", "feature_extract_R"]
        # its imaging-heavy mix benefits from the ImagingIP accelerator
        sim = FarsiSimulator()
        generic = SoCConfig(slots=("BigCore", "BigCore") + ("None",) * 4)
        accel = SoCConfig(slots=("BigCore", "ImagingIP") + ("None",) * 4)
        assert (
            sim.simulate(accel, g).makespan_ms
            < sim.simulate(generic, g).makespan_ms
        )

    def test_unknown_workload(self):
        with pytest.raises(SimulationError):
            get_farsi_workload("vr_teapot")


class TestSoCConfig:
    def test_default_valid(self):
        cfg = SoCConfig()
        assert len(cfg.pes) == 3

    def test_slot_count_enforced(self):
        with pytest.raises(SimulationError):
            SoCConfig(slots=("BigCore",))

    def test_unknown_slot_option(self):
        with pytest.raises(SimulationError):
            SoCConfig(slots=("Quantum",) * N_SLOTS)

    def test_bandwidths(self):
        cfg = SoCConfig(noc_bus_width_bits=64, noc_freq_ghz=1.0,
                        mem_freq_ghz=1.0, mem_channels=2)
        assert cfg.noc_bw_gbps == pytest.approx(8.0)
        assert cfg.mem_bw_gbps == pytest.approx(4.0)
        assert cfg.transfer_bw_gbps == pytest.approx(4.0)

    def test_area_scales_with_pes(self):
        empty = SoCConfig(slots=("None",) * N_SLOTS)
        full = SoCConfig(slots=("BigCore",) * N_SLOTS)
        assert full.area_mm2 > empty.area_mm2

    def test_action_roundtrip(self):
        cfg = SoCConfig(slots=("DSP",) * N_SLOTS, mem_channels=3)
        assert SoCConfig.from_action(cfg.to_action()) == cfg

    def test_space_samples_valid(self):
        space = soc_space()
        rng = np.random.default_rng(0)
        for _ in range(30):
            SoCConfig.from_action(space.sample(rng))

    def test_pe_catalog_speedups(self):
        assert PE_CATALOG["DSP"].speedup("dsp") > PE_CATALOG["BigCore"].speedup("dsp")
        assert PE_CATALOG["ImagingIP"].speedup("imaging") > 1.0


class TestSimulator:
    sim = FarsiSimulator()

    def test_deterministic(self):
        g = get_farsi_workload("audio_decoder").graph
        a = self.sim.simulate(SoCConfig(), g)
        b = self.sim.simulate(SoCConfig(), g)
        assert a == b

    def test_empty_graph_rejected(self):
        with pytest.raises(SimulationError):
            self.sim.simulate(SoCConfig(), TaskGraph("empty"))

    def test_no_pes_is_infeasible(self):
        g = diamond_graph()
        r = self.sim.simulate(SoCConfig(slots=("None",) * N_SLOTS), g)
        assert not r.feasible
        assert r.makespan_ms >= INFEASIBLE_SOC_PENALTY

    def test_all_tasks_assigned(self):
        g = get_farsi_workload("edge_detection").graph
        r = self.sim.simulate(SoCConfig(), g)
        assert set(r.assignment) == {t.name for t in g.tasks}

    def test_makespan_at_least_critical_path(self):
        g = get_farsi_workload("edge_detection").graph
        cfg = SoCConfig(slots=("BigCore",) * N_SLOTS)
        r = self.sim.simulate(cfg, g)
        best_gops = max(
            pe.gops * max(pe.speedups.values()) for pe in cfg.pes
        )
        lower_bound = g.critical_path_mops() / (best_gops * 1e3)
        assert r.makespan_ms >= lower_bound * 0.999

    def test_accelerator_speeds_up_matching_workload(self):
        g = get_farsi_workload("edge_detection").graph
        generic = SoCConfig(slots=("BigCore", "BigCore") + ("None",) * 4)
        accel = SoCConfig(slots=("BigCore", "ImagingIP") + ("None",) * 4)
        r_gen = self.sim.simulate(generic, g)
        r_acc = self.sim.simulate(accel, g)
        assert r_acc.makespan_ms < r_gen.makespan_ms

    def test_dsp_speeds_up_audio(self):
        g = get_farsi_workload("audio_decoder").graph
        generic = SoCConfig(slots=("LittleCore",) + ("None",) * 5)
        dsp = SoCConfig(slots=("LittleCore", "DSP") + ("None",) * 4)
        assert (
            self.sim.simulate(dsp, g).makespan_ms
            < self.sim.simulate(generic, g).makespan_ms
        )

    def test_more_pes_never_hurt_makespan_much(self):
        g = get_farsi_workload("edge_detection").graph
        one = SoCConfig(slots=("BigCore",) + ("None",) * 5)
        four = SoCConfig(slots=("BigCore",) * 4 + ("None",) * 2)
        r1 = self.sim.simulate(one, g)
        r4 = self.sim.simulate(four, g)
        assert r4.makespan_ms <= r1.makespan_ms * 1.05

    def test_static_power_floor(self):
        g = diamond_graph()
        cfg = SoCConfig()
        r = self.sim.simulate(cfg, g)
        assert r.power_mw >= cfg.static_mw

    def test_slow_bus_increases_comm(self):
        g = get_farsi_workload("edge_detection").graph
        slots = ("BigCore", "ImagingIP", "DSP") + ("None",) * 3
        fast = SoCConfig(slots=slots, noc_bus_width_bits=256, noc_freq_ghz=1.6,
                         mem_freq_ghz=1.6, mem_channels=4)
        slow = SoCConfig(slots=slots, noc_bus_width_bits=16, noc_freq_ghz=0.2,
                         mem_freq_ghz=0.2, mem_channels=1)
        r_fast = self.sim.simulate(fast, g)
        r_slow = self.sim.simulate(slow, g)
        # per-transfer time is strictly larger on the slow bus whenever
        # any cross-PE transfer happens on both
        if r_fast.comm_ms > 0 and r_slow.comm_ms > 0:
            assert r_slow.comm_ms > r_fast.comm_ms

    def test_metrics_keys(self):
        g = diamond_graph()
        m = self.sim.simulate(SoCConfig(), g).metrics()
        assert set(m) == {"performance", "power", "area", "feasible"}


# -- property tests ------------------------------------------------------------------

slot_strategy = st.sampled_from(
    ("LittleCore", "BigCore", "DSP", "ImagingIP", "None")
)

soc_actions = st.builds(
    dict,
    **{f"PE_Slot{i}": slot_strategy for i in range(N_SLOTS)},
    NoC_BusWidth=st.sampled_from((16, 32, 64, 128, 256)),
    NoC_Freq=st.sampled_from((0.2, 0.4, 0.8, 1.2, 1.6)),
    Mem_Freq=st.sampled_from((0.2, 0.4, 0.8, 1.2, 1.6)),
    Mem_Channels=st.integers(1, 4),
)


@given(soc_actions, st.sampled_from(FARSI_WORKLOAD_NAMES))
@settings(max_examples=80, deadline=None)
def test_prop_simulation_invariants(action, workload):
    """Any SoC either schedules every task with positive finite cost or is
    cleanly infeasible."""
    cfg = SoCConfig.from_action(action)
    g = get_farsi_workload(workload).graph
    r = FarsiSimulator().simulate(cfg, g)
    if r.feasible:
        assert set(r.assignment) == {t.name for t in g.tasks}
        assert 0 < r.makespan_ms < 1e6
        assert r.power_mw >= cfg.static_mw
        assert r.area_mm2 == pytest.approx(cfg.area_mm2)
        assert sum(r.pe_busy_ms.values()) <= r.makespan_ms * len(cfg.pes) + 1e-9
    else:
        assert all(s == "None" for s in cfg.slots)
