"""Tests for the generation-native search protocol.

Four batteries:

1. **Agent batch protocol** — the default ``propose_batch`` /
   ``observe_batch`` singleton wrappers, the GA/ACO generation
   overrides, and RNG-stream parity between the serial and batched
   interfaces.
2. **``ArchGymEnv.step_batch``** — byte-parity with the serial
   ``step`` loop across every cache configuration (local LRU, shared
   tier, disabled), including in-batch duplicates, episode resets, and
   counter accounting.
3. **Driver parity** — ``run_agent(generation_dispatch=True)`` is
   byte-identical to the serial driver for every built-in agent.
4. **Weighted dispatch plumbing** — ``URL=WEIGHT`` parsing,
   ``weighted_split`` apportioning, the pool's weight-aware least-load
   and scatter, and ``ServerCacheStore`` failover to the next pool
   host.
"""

import numpy as np
import pytest

import repro
from repro.agents import make_agent, run_agent
from repro.agents.aco import ACOAgent
from repro.agents.base import Agent
from repro.agents.ga import GAAgent
from repro.core.cache_store import ServerCacheStore, SharedCacheStore
from repro.core.errors import (
    AgentError,
    EnvironmentError_,
    ExecutorError,
    InvalidActionError,
    ServiceError,
    ServiceTransportError,
)
from repro.core.spaces import Categorical, CompositeSpace, Discrete
from repro.service import EvaluationService
from repro.sweeps import (
    BackendSpec,
    HostPool,
    parse_weighted_url,
    resolve_execution_backend,
    weighted_split,
)

from test_service import SvcCountingEnv, _free_port


def _space():
    return CompositeSpace(
        [Discrete("x", 0, 7, 1), Categorical("m", ("a", "b"))]
    )


# -- 1. the agent batch protocol ---------------------------------------------------


class _ScriptedAgent(Agent):
    """Records the serial propose/observe traffic it receives."""

    name = "scripted"

    def __init__(self, space, seed=0):
        super().__init__(space, seed)
        self.proposed = 0
        self.observed = []

    def propose(self):
        self.proposed += 1
        return self.space.sample(self.rng)

    def observe(self, action, fitness, metrics):
        self.observed.append((dict(action), fitness, dict(metrics)))


class TestAgentBatchProtocol:
    def test_default_propose_batch_is_a_singleton(self):
        agent = _ScriptedAgent(_space())
        batch = agent.propose_batch()
        assert len(batch) == 1
        assert agent.proposed == 1

    def test_default_observe_batch_loops_observe_in_order(self):
        agent = _ScriptedAgent(_space())
        actions = [{"x": i, "m": "a"} for i in range(3)]
        metrics = [{"cost": float(i)} for i in range(3)]
        agent.observe_batch(actions, [0.0, 1.0, 2.0], metrics)
        assert agent.observed == [
            (actions[i], float(i), metrics[i]) for i in range(3)
        ]

    def test_default_observe_batch_rejects_misaligned_args(self):
        agent = _ScriptedAgent(_space())
        with pytest.raises(AgentError, match="observe_batch"):
            agent.observe_batch([{"x": 1, "m": "a"}], [0.0, 1.0], [{}])

    def test_ga_proposes_the_whole_generation(self):
        agent = GAAgent(_space(), seed=1, population_size=6)
        batch = agent.propose_batch()
        assert len(batch) == 6
        agent.observe_batch(batch, list(range(6)), [{}] * 6)
        assert len(agent.propose_batch()) == 6  # evolved: a fresh one
        assert agent.generation == 1

    def test_ga_batch_matches_serial_rng_stream(self):
        """Interleaved propose/observe and batched propose/observe must
        breed identical generations — including across a truncated
        (budget-cut) generation boundary."""
        serial = GAAgent(_space(), seed=7, population_size=5)
        batched = GAAgent(_space(), seed=7, population_size=5)
        fitness = iter(np.linspace(-1, 1, 23))
        serial_actions = []
        for f in np.linspace(-1, 1, 23):
            action = serial.propose()
            serial_actions.append(action)
            serial.observe(action, float(f), {})
        batched_actions = []
        remaining = 23
        while remaining:
            batch = batched.propose_batch()[:remaining]
            batched_actions.extend(batch)
            batched.observe_batch(
                batch, [float(next(fitness)) for _ in batch], [{}] * len(batch)
            )
            remaining -= len(batch)
        assert batched_actions == serial_actions

    def test_ga_observe_batch_overrun_rejected(self):
        agent = GAAgent(_space(), seed=1, population_size=4)
        batch = agent.propose_batch()
        with pytest.raises(AgentError, match="propose_batch"):
            agent.observe_batch(
                batch + batch[:1], [0.0] * 5, [{}] * 5
            )

    def test_aco_proposes_the_remaining_cohort(self):
        agent = ACOAgent(_space(), seed=3, n_ants=4)
        batch = agent.propose_batch()
        assert len(batch) == 4
        # a partially observed cohort proposes only its remainder
        agent.observe_batch(batch[:3], [0.0, 1.0, 2.0], [{}] * 3)
        assert len(agent.propose_batch()) == 1

    def test_aco_batch_matches_serial_rng_stream(self):
        serial = ACOAgent(_space(), seed=11, n_ants=3)
        batched = ACOAgent(_space(), seed=11, n_ants=3)
        fits = [float(f) for f in np.linspace(0, 2, 10)]
        serial_actions = []
        for f in fits:
            action = serial.propose()
            serial_actions.append(action)
            serial.observe(action, f, {})
        batched_actions = []
        cursor = 0
        while cursor < 10:
            batch = batched.propose_batch()[: 10 - cursor]
            batched_actions.extend(batch)
            batched.observe_batch(
                batch, fits[cursor:cursor + len(batch)], [{}] * len(batch)
            )
            cursor += len(batch)
        assert batched_actions == serial_actions


# -- 2. step_batch parity ----------------------------------------------------------


def _env(**kwargs):
    env = SvcCountingEnv(**kwargs)
    env.reset(seed=0)
    return env


def _serial_reference(env, actions):
    """Drive ``env.step`` the way run_agent does (auto-reset between
    steps) and collect the comparable outcome."""
    out = []
    for action in actions:
        result = env.step(action)
        out.append((result[0].tolist(), result[1], result[2], result[3],
                    result[4]["metrics"], result[4]["target_met"],
                    result[4]["step"]))
        if result[2] or result[3]:
            env.reset()
    return out


def _batch_outcome(results):
    return [
        (obs.tolist(), reward, term, trunc, info["metrics"],
         info["target_met"], info["step"])
        for obs, reward, term, trunc, info in results
    ]


def _counters(env):
    s = env.stats
    return (s.total_steps, s.total_episodes, s.cache_hits, s.cache_misses,
            s.shared_cache_hits, s.remote_evals, env.evaluations)


ACTIONS = [
    {"x": 1, "m": "a"}, {"x": 2, "m": "b"}, {"x": 1, "m": "a"},  # dup
    {"x": 5, "m": "a"}, {"x": 2, "m": "b"},                      # dup
    {"x": 7, "m": "b"},
]


class TestStepBatchParity:
    def test_matches_serial_with_local_cache(self):
        serial, batched = _env(), _env()
        for env in (serial, batched):
            env.enable_cache()
        reference = _serial_reference(serial, ACTIONS)
        results = batched.step_batch(ACTIONS)
        assert _batch_outcome(results) == reference
        assert _counters(batched) == _counters(serial)
        assert batched.stats.cache_hits == 2  # the two in-batch dups

    def test_matches_serial_without_any_cache(self):
        serial, batched = _env(), _env()
        reference = _serial_reference(serial, ACTIONS)
        results = batched.step_batch(ACTIONS)
        assert _batch_outcome(results) == reference
        assert _counters(batched) == _counters(serial)
        assert batched.evaluations == len(ACTIONS)  # dups re-simulated

    def test_matches_serial_with_shared_tier_only(self, tmp_path):
        """Local LRU disabled, shared store attached: in-batch dups
        must surface as shared hits, exactly like the serial loop."""
        serial, batched = _env(), _env()
        serial.attach_shared_cache(SharedCacheStore(tmp_path / "serial"))
        batched.attach_shared_cache(SharedCacheStore(tmp_path / "batched"))
        reference = _serial_reference(serial, ACTIONS)
        results = batched.step_batch(ACTIONS)
        assert _batch_outcome(results) == reference
        assert _counters(batched) == _counters(serial)
        assert batched.stats.shared_cache_hits == 2

    def test_matches_serial_with_both_tiers(self, tmp_path):
        serial, batched = _env(), _env()
        for env, name in ((serial, "serial"), (batched, "batched")):
            env.enable_cache()
            env.attach_shared_cache(SharedCacheStore(tmp_path / name))
        reference = _serial_reference(serial, ACTIONS)
        assert _batch_outcome(batched.step_batch(ACTIONS)) == reference
        assert _counters(batched) == _counters(serial)

    def test_shared_tier_prepopulated_by_another_process(self, tmp_path):
        """Each env gets its own store directory (so the serial run's
        writes cannot leak into the batched one), both pre-populated
        with the first design point by an earlier "process"."""
        for name in ("serial", "batched"):
            probe = _env()
            probe.attach_shared_cache(SharedCacheStore(tmp_path / name))
            probe.step(ACTIONS[0])  # pays for the first design point

        serial, batched = _env(), _env()
        serial.attach_shared_cache(SharedCacheStore(tmp_path / "serial"))
        batched.attach_shared_cache(SharedCacheStore(tmp_path / "batched"))
        reference = _serial_reference(serial, ACTIONS)
        assert _batch_outcome(batched.step_batch(ACTIONS)) == reference
        assert batched.stats.shared_cache_hits == serial.stats.shared_cache_hits
        assert batched.stats.shared_cache_hits >= 2  # prepopulated + dups

    def test_episode_resets_mid_batch(self):
        serial, batched = _env(), _env()
        for env in (serial, batched):
            env.episode_length = 2
        reference = _serial_reference(serial, ACTIONS)
        results = batched.step_batch(ACTIONS)
        assert _batch_outcome(results) == reference
        # the final point truncated its episode: the flag is left for
        # the driver, exactly like step()
        assert results[-1][3]  # truncated
        with pytest.raises(EnvironmentError_, match="reset"):
            batched.step_batch([ACTIONS[0]])
        batched.reset()  # what the driver does; episode counts align
        assert batched.stats.total_episodes == serial.stats.total_episodes
        assert batched.stats.total_episodes > 1

    def test_dataset_rows_and_step_numbers_match(self):
        from repro.core.dataset import ArchGymDataset

        serial, batched = _env(), _env()
        for env in (serial, batched):
            env.enable_cache()
            env.attach_dataset(ArchGymDataset(env.env_id), source="t")
        _serial_reference(serial, ACTIONS)
        batched.step_batch(ACTIONS)
        assert list(batched.dataset) == list(serial.dataset)

    def test_empty_batch_is_a_no_op(self):
        env = _env()
        assert env.step_batch([]) == []
        assert env.stats.total_steps == 0

    def test_invalid_action_rejected_before_any_evaluation(self):
        env = _env()
        with pytest.raises(InvalidActionError):
            env.step_batch([ACTIONS[0], {"x": 99, "m": "a"}])
        assert env.evaluations == 0
        assert env.stats.total_steps == 0

    def test_needs_reset_guard(self):
        env = SvcCountingEnv()
        with pytest.raises(EnvironmentError_, match="reset"):
            env.step_batch([ACTIONS[0]])

    def test_lru_eviction_during_batch_matches_serial(self):
        """A batch larger than the LRU: a duplicate whose first
        occurrence was already evicted must re-simulate, like serial."""
        serial, batched = _env(), _env()
        for env in (serial, batched):
            env.enable_cache(maxsize=2)
        actions = [
            {"x": 0, "m": "a"}, {"x": 1, "m": "a"}, {"x": 2, "m": "a"},
            {"x": 0, "m": "a"},  # evicted by now: a second miss
            {"x": 0, "m": "a"},  # still resident: a hit
        ]
        reference = _serial_reference(serial, actions)
        assert _batch_outcome(batched.step_batch(actions)) == reference
        assert _counters(batched) == _counters(serial)
        assert batched.stats.cache_misses == 4
        assert batched.stats.cache_hits == 1


# -- 3. driver parity --------------------------------------------------------------


def _normalized_record(result):
    record = result.to_record()
    record["wall_time_s"] = 0.0
    record["sim_time_s"] = 0.0
    return record


class TestRunAgentGenerationDispatch:
    @pytest.mark.parametrize("agent_name", ["rw", "ga", "aco", "bo", "rl"])
    def test_byte_identical_to_serial_driver(self, agent_name):
        records = []
        for generation_dispatch in (False, True):
            env = repro.make("DRAMGym-v0")
            agent = make_agent(agent_name, env.action_space, seed=3)
            result = run_agent(
                agent, env, n_samples=20, seed=5,
                generation_dispatch=generation_dispatch,
            )
            records.append(
                (_normalized_record(result), env.stats.total_episodes,
                 env.stats.total_steps)
            )
            env.close()
        assert records[0] == records[1]

    def test_budget_truncates_a_generation(self):
        """n_samples not divisible by the population: the final
        generation is cut to the remaining budget."""
        env = SvcCountingEnv()
        agent = GAAgent(env.action_space, seed=2, population_size=8)
        result = run_agent(agent, env, n_samples=11, seed=1,
                           generation_dispatch=True)
        assert result.n_samples == 11
        assert len(result.reward_history) == 11
        assert env.stats.total_steps == 11

    def test_empty_propose_batch_rejected(self):
        class _Hollow(Agent):
            name = "hollow"

            def propose_batch(self):
                return []

        env = SvcCountingEnv()
        agent = _Hollow(env.action_space)
        with pytest.raises(AgentError, match="no proposals"):
            run_agent(agent, env, n_samples=4, generation_dispatch=True)


# -- 4. weighted dispatch plumbing -------------------------------------------------


class TestWeightParsing:
    def test_bare_url_weighs_one(self):
        assert parse_weighted_url("http://h:8023") == ("http://h:8023", 1.0)

    def test_weighted_url(self):
        assert parse_weighted_url("http://h:8023=2.5") == ("http://h:8023", 2.5)

    @pytest.mark.parametrize("spec", [
        "http://h:8023=abc", "http://h:8023=", "http://h:8023=0",
        "http://h:8023=-1", "http://h:8023=inf", "http://h:8023=nan",
    ])
    def test_malformed_weight_rejected(self, spec):
        with pytest.raises(ExecutorError, match="weight"):
            parse_weighted_url(spec)

    def test_resolve_backend_threads_weights_into_the_spec(self):
        backend, _, _ = resolve_execution_backend(
            ["http://a:1=2", "http://b:1"], False, None
        )
        assert backend.service_urls == ("http://a:1", "http://b:1")
        assert backend.service_weights == (2.0, 1.0)
        assert backend.service_url == "http://a:1"

    def test_resolve_backend_all_default_weights_stay_none(self):
        backend, _, _ = resolve_execution_backend(
            ["http://a:1", "http://b:1"], False, None
        )
        assert backend.service_weights is None

    def test_resolve_backend_conflicting_weights_rejected(self):
        with pytest.raises(ExecutorError, match="conflicting"):
            resolve_execution_backend(
                ["http://a:1=2", "http://a:1=3"], False, None
            )

    def test_resolve_backend_duplicate_agreeing_weight_collapses(self):
        backend, _, _ = resolve_execution_backend(
            ["http://a:1=2", "http://a:1=2", "http://b:1"], False, None
        )
        assert backend.service_urls == ("http://a:1", "http://b:1")
        assert backend.service_weights == (2.0, 1.0)

    def test_spec_validates_weight_arity(self):
        with pytest.raises(ExecutorError, match="weight"):
            BackendSpec(
                kind="remote",
                service_urls=("http://a:1", "http://b:1"),
                service_weights=(1.0,),
            )


class TestWeightedSplit:
    def test_even_split(self):
        assert weighted_split(64, [1.0, 1.0]) == [32, 32]

    def test_proportional_split(self):
        assert weighted_split(60, [2.0, 1.0]) == [40, 20]

    def test_largest_remainder_rounding_sums_exactly(self):
        for n in range(0, 30):
            counts = weighted_split(n, [3.0, 2.0, 1.0])
            assert sum(counts) == n
            assert all(c >= 0 for c in counts)

    def test_single_weight_takes_all(self):
        assert weighted_split(7, [5.0]) == [7]

    def test_all_zero_weights_fall_back_to_uniform(self):
        """An observed-rate weight vector can legitimately be all zero
        (cold fleet, no measurements yet) — that must split uniformly,
        not raise ZeroDivisionError."""
        assert weighted_split(6, [0.0, 0.0, 0.0]) == [2, 2, 2]
        assert weighted_split(7, [0.0, 0.0]) == [4, 3]
        assert sum(weighted_split(0, [0.0])) == 0


class TestWeightedHostPool:
    def test_weights_validated(self):
        with pytest.raises(ServiceError, match="positive"):
            HostPool(["http://a:1"], weights=[0.0])
        with pytest.raises(ServiceError, match="weight"):
            HostPool(["http://a:1", "http://b:1"], weights=[1.0])

    def test_conflicting_duplicate_weights_rejected(self):
        with pytest.raises(ServiceError, match="conflicting"):
            HostPool(
                ["http://a:1", "http://a:1"], weights=[1.0, 2.0],
            )

    def test_weights_by_host(self):
        pool = HostPool(
            ["http://a:1", "http://b:1"], weights=[2.0, 1.0], timeout_s=1.0
        )
        assert pool.weights_by_host == {"http://a:1": 2.0, "http://b:1": 1.0}

    def test_least_load_divides_by_weight(self):
        """A weight-4 host with 2 in-flight (load 0.5) must win over a
        weight-1 host with 1 in-flight (load 1.0)."""
        svc_a = EvaluationService()
        svc_a.register("SvcCounting-v0", SvcCountingEnv)
        svc_a.start()
        svc_b = EvaluationService()
        svc_b.register("SvcCounting-v0", SvcCountingEnv)
        svc_b.start()
        try:
            pool = HostPool(
                [svc_a.url, svc_b.url], weights=[4.0, 1.0],
                timeout_s=10.0, retries=0,
            )
            pool._hosts[0].inflight = 2
            pool._hosts[1].inflight = 1
            for i in range(4):
                pool.evaluate("SvcCounting-v0", {"x": i, "m": "a"})
            assert svc_a.evaluations == 4 and svc_b.evaluations == 0
        finally:
            svc_a.stop()
            svc_b.stop()


@pytest.fixture()
def two_counting_services():
    def _make():
        svc = EvaluationService()
        svc.register("SvcCounting-v0", SvcCountingEnv)
        svc.start()
        return svc

    a, b = _make(), _make()
    yield a, b
    a.stop()
    b.stop()


class TestGenerationScatter:
    def test_scatter_splits_by_weight_with_per_point_hosts(
        self, two_counting_services
    ):
        a, b = two_counting_services
        pool = HostPool(
            [a.url, b.url], weights=[3.0, 1.0], timeout_s=10.0, retries=0
        )
        actions = [{"x": i % 8, "m": "a"} for i in range(16)]
        metrics, hosts = pool.evaluate_batch_scatter(
            "SvcCounting-v0", actions, memoize=False
        )
        env = SvcCountingEnv()
        assert metrics == [env.evaluate(action) for action in actions]
        assert hosts[:12] == [a.url] * 12 and hosts[12:] == [b.url] * 4
        assert a.evaluations == 12 and b.evaluations == 4
        # one POST per host, not one per point
        assert sum(h.client.requests_sent for h in pool._hosts) == 2

    def test_singleton_batch_keeps_round_robin_placement(
        self, two_counting_services
    ):
        """A 1-point batch must not pin the heaviest host: it delegates
        to the least-load/round-robin path."""
        a, b = two_counting_services
        pool = HostPool(
            [a.url, b.url], weights=[2.0, 1.0], timeout_s=10.0, retries=0
        )
        for i in range(4):
            metrics, hosts = pool.evaluate_batch_scatter(
                "SvcCounting-v0", [{"x": i, "m": "a"}], memoize=False
            )
            assert len(metrics) == len(hosts) == 1
        assert a.evaluations == 2 and b.evaluations == 2

    def test_scatter_fails_over_a_dead_chunk(self, two_counting_services):
        a, b = two_counting_services
        url_a = a.url
        pool = HostPool(
            [url_a, b.url], timeout_s=1.0, retries=0, backoff_s=0.01
        )
        a.stop()
        actions = [{"x": i % 8, "m": "a"} for i in range(8)]
        metrics, hosts = pool.evaluate_batch_scatter(
            "SvcCounting-v0", actions, memoize=False
        )
        env = SvcCountingEnv()
        assert metrics == [env.evaluate(action) for action in actions]
        assert set(hosts) == {b.url}  # the survivor carried everything
        assert pool.quarantined_urls == [url_a]

    def test_server_error_propagates_without_quarantine(
        self, two_counting_services
    ):
        a, b = two_counting_services
        pool = HostPool([a.url, b.url], timeout_s=10.0, retries=0)
        actions = [{"x": i % 8, "m": "a"} for i in range(8)]
        with pytest.raises(ServiceError, match="unknown environment") as err:
            pool.evaluate_batch_scatter("Nope-v0", actions)
        assert not isinstance(err.value, ServiceTransportError)
        assert pool.quarantined_urls == []


class TestServerCacheFailover:
    def test_store_fails_over_to_next_pool_host(self, two_counting_services):
        a, b = two_counting_services
        store = ServerCacheStore(
            a.url, fallbacks=(b.url,), timeout_s=1.0, retries=0,
            backoff_s=0.01,
        )
        key_known = (("m", "a"), ("x", 1))
        store.put(key_known, {"cost": 4.3})  # replicated to A and B
        a.stop()
        # a *new* key forces network traffic: the dead host must be
        # replaced by the fallback instead of failing the sweep
        key_new = (("m", "b"), ("x", 2))
        assert store.get(key_new) is None  # B's map: a miss, not an error
        store.put(key_new, {"cost": 1.5})
        assert store.get(key_new) == {"cost": 1.5}
        # write-through replication: B holds the pre-death entry too,
        # so losing host A lost nothing
        assert len(store) == 2
        assert store.get(key_known) == {"cost": 4.3}

    def test_exhausted_fallbacks_raise_transport_error(self):
        dead_a = f"http://127.0.0.1:{_free_port()}"
        dead_b = f"http://127.0.0.1:{_free_port()}"
        store = ServerCacheStore(
            dead_a, fallbacks=(dead_b,), timeout_s=0.3, retries=0,
            backoff_s=0.01,
        )
        with pytest.raises(ServiceTransportError):
            store.get((("x", 1),))

    def test_fallbacks_exclude_the_primary(self, two_counting_services):
        a, _ = two_counting_services
        store = ServerCacheStore(
            a.url, fallbacks=(a.url, a.url + "/"), timeout_s=1.0, retries=0
        )
        assert store.replica_urls == [a.url]


class TestHyperparamTagStability:
    def test_dict_valued_hyperparams_tag_is_insertion_order_free(self):
        space = _space()
        a = _ScriptedAgent.__mro__[1](  # the Agent base class directly
            space, 0, budgets={"latency": 1.0, "power": 2.0}
        )
        b = Agent(space, 0, budgets={"power": 2.0, "latency": 1.0})
        assert a.hyperparam_tag() == b.hyperparam_tag()
        assert "latency" in a.hyperparam_tag()

    def test_nested_dicts_are_canonicalized(self):
        space = _space()
        a = Agent(space, 0, cfg={"outer": {"b": 1, "a": "x"}})
        b = Agent(space, 0, cfg={"outer": {"a": "x", "b": 1}})
        assert a.hyperparam_tag() == b.hyperparam_tag()
        assert a.hyperparam_tag() == "agent[cfg={'outer': {'a': 'x', 'b': 1}}]"

    def test_scalar_formatting_unchanged(self):
        agent = Agent(_space(), 0, rate=0.1, n=4, mode="fast")
        assert agent.hyperparam_tag() == "agent[mode=fast,n=4,rate=0.1]"
