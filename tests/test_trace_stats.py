"""Tests for trace characterization (repro.dramsys.trace_stats)."""

import pytest

from repro.core.errors import SimulationError
from repro.dramsys import DramDevice, Trace, generate_trace
from repro.dramsys.trace_stats import profile_trace


class TestProfileTrace:
    def test_stream_profile(self):
        p = profile_trace(generate_trace("stream", 1000, seed=0))
        # sequential lines: near-perfect per-bank row locality and
        # near-uniform bank spread under bank interleaving
        assert p.row_locality > 0.85
        assert p.bank_spread > 0.95
        assert p.row_footprint_per_k < 100

    def test_random_profile(self):
        p = profile_trace(generate_trace("random", 1000, seed=0))
        assert p.row_locality < 0.05
        assert p.bank_spread > 0.9
        assert p.row_footprint_per_k > 800

    def test_pointer_chase_profile(self):
        p = profile_trace(generate_trace("pointer_chase", 500, seed=0))
        assert p.write_fraction == 0.0
        assert p.mean_gap_ns > 50.0

    def test_cloud_traces_bursty(self):
        p1 = profile_trace(generate_trace("cloud-1", 1000, seed=0))
        stream = profile_trace(generate_trace("stream", 1000, seed=0))
        assert p1.burstiness > stream.burstiness

    def test_row_interleaved_mapping_changes_spread(self):
        trace = generate_trace("stream", 1000, seed=0)
        bank_il = profile_trace(trace)
        row_il = profile_trace(
            trace, DramDevice(address_mapping="row_interleaved")
        )
        # a stream touches far fewer banks under row interleaving
        assert row_il.bank_spread < bank_il.bank_spread

    def test_as_dict_keys(self):
        p = profile_trace(generate_trace("stream", 100, seed=0))
        d = p.as_dict()
        for key in (
            "n_requests", "duration_ns", "write_fraction", "row_locality",
            "bank_spread", "mean_gap_ns", "burstiness", "row_footprint_per_k",
        ):
            assert key in d

    def test_empty_trace_rejected(self):
        with pytest.raises(SimulationError):
            profile_trace(Trace("empty", ()))

    def test_single_request(self):
        trace = generate_trace("random", 1, seed=0)
        p = profile_trace(trace)
        assert p.n_requests == 1
        assert p.mean_gap_ns == 0.0

    def test_profiles_separate_workload_classes(self):
        """The five built-in traces must be pairwise distinguishable on
        (row_locality, write_fraction, mean_gap) — the diversity the DSE
        experiments rely on."""
        from repro.dramsys.traces import TRACE_NAMES

        signatures = {}
        for name in TRACE_NAMES:
            p = profile_trace(generate_trace(name, 800, seed=0))
            signatures[name] = (
                round(p.row_locality, 1),
                round(p.write_fraction, 1),
                round(min(p.mean_gap_ns, 100.0), -1),
            )
        assert len(set(signatures.values())) == len(TRACE_NAMES), signatures
