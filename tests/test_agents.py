"""Unit + integration tests for the search agents."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.agents import (
    ACOAgent,
    AGENT_NAMES,
    BOAgent,
    GAAgent,
    GammaAgent,
    GAMMA_VARIANTS,
    HYPERPARAM_GRIDS,
    RandomWalkerAgent,
    RLAgent,
    iter_hyperparams,
    make_agent,
    make_gamma_variant,
    run_agent,
    sample_hyperparams,
)
from repro.core.env import ArchGymEnv
from repro.core.errors import AgentError
from repro.core.rewards import BudgetDistanceReward, TargetReward
from repro.core.spaces import Categorical, CompositeSpace, Discrete


def small_space() -> CompositeSpace:
    return CompositeSpace(
        [
            Discrete("x", low=0, high=15, step=1),
            Discrete("y", low=0, high=15, step=1),
            Categorical("mode", ("a", "b", "c")),
        ]
    )


class PeakEnv(ArchGymEnv):
    """Smooth unimodal landscape: cost minimized at (x=10, y=5, mode=b)."""

    env_id = "Peak-v0"

    def __init__(self, episode_length=10_000):
        super().__init__(
            action_space=small_space(),
            observation_metrics=["cost"],
            reward_spec=TargetReward("cost", target=1.0, tolerance=0.2),
            episode_length=episode_length,
        )

    def evaluate(self, action):
        penalty = {"a": 4.0, "b": 0.0, "c": 2.0}[action["mode"]]
        cost = 1.0 + (action["x"] - 10) ** 2 + (action["y"] - 5) ** 2 + penalty
        return {"cost": float(cost)}


class LowerBetterEnv(ArchGymEnv):
    """Budget-distance env (lower reward better) to test orientation."""

    env_id = "Lower-v0"

    def __init__(self):
        super().__init__(
            action_space=small_space(),
            observation_metrics=["perf"],
            reward_spec=BudgetDistanceReward(budgets={"perf": 10.0}),
            episode_length=10_000,
        )

    def evaluate(self, action):
        return {"perf": float(action["x"] + action["y"])}


def run_on_peak(agent_name, n=150, seed=0, **hp):
    env = PeakEnv()
    agent = make_agent(agent_name, env.action_space, seed=seed, **hp)
    return run_agent(agent, env, n_samples=n, seed=seed)


class TestDriver:
    def test_result_fields(self):
        res = run_on_peak("rw", n=50)
        assert res.agent == "rw"
        assert res.n_samples == 50
        assert len(res.reward_history) == 50
        assert len(res.best_fitness_history) == 50
        assert res.wall_time_s > 0

    def test_best_history_monotone(self):
        res = run_on_peak("ga", n=120)
        hist = res.best_fitness_history
        assert all(b >= a for a, b in zip(hist, hist[1:]))

    def test_fitness_at_budget(self):
        res = run_on_peak("rw", n=100)
        assert res.fitness_at(10) <= res.fitness_at(100)
        with pytest.raises(AgentError):
            res.fitness_at(0)

    def test_lower_better_env_orientation(self):
        """For lower-is-better rewards the driver must negate fitness, so
        the best design is the one with minimal reward."""
        env = LowerBetterEnv()
        agent = make_agent("rw", env.action_space, seed=0)
        res = run_agent(agent, env, n_samples=200, seed=0)
        # optimum: x + y <= 10 -> distance 0
        assert res.best_reward == 0.0
        assert res.best_metrics["perf"] <= 10.0

    def test_source_tag_propagates_to_dataset(self):
        from repro.core.dataset import ArchGymDataset

        env = PeakEnv()
        ds = ArchGymDataset()
        env.attach_dataset(ds)
        agent = make_agent("rw", env.action_space, seed=0)
        run_agent(agent, env, n_samples=10, seed=0)
        assert len(ds) == 10
        assert all(t.source.startswith("rw[") for t in ds)

    def test_invalid_sample_count(self):
        env = PeakEnv()
        agent = make_agent("rw", env.action_space)
        with pytest.raises(AgentError):
            run_agent(agent, env, n_samples=0)


class TestConvergence:
    """Every agent should comfortably beat random's *median* draw on a
    smooth landscape within a modest budget."""

    def test_all_agents_find_good_designs(self):
        for name in AGENT_NAMES:
            res = run_on_peak(name, n=200, seed=3)
            # optimum cost is 1.0 -> fitness large; demand cost <= 6
            assert res.best_metrics["cost"] <= 6.0, name

    def test_ga_beats_its_first_generation(self):
        res = run_on_peak("ga", n=300, seed=1, population_size=16)
        first_gen_best = max(res.reward_history[:16])
        assert res.best_reward >= first_gen_best

    def test_aco_trails_converge(self):
        env = PeakEnv()
        agent = ACOAgent(env.action_space, seed=0, n_ants=8, evaporation_rate=0.3)
        entropy_before = agent.trail_entropy()
        run_agent(agent, env, n_samples=400, seed=0)
        assert agent.trail_entropy() < entropy_before

    def test_rl_policy_entropy_drops(self):
        env = PeakEnv()
        agent = RLAgent(env.action_space, seed=0, lr=0.1, batch_size=16,
                        entropy_coef=0.0)
        h0 = agent.policy_entropy()
        run_agent(agent, env, n_samples=600, seed=0)
        assert agent.policy_entropy() < h0

    def test_bo_improves_over_warmup(self):
        res = run_on_peak("bo", n=120, seed=2, n_init=20)
        warmup_best = max(res.reward_history[:20])
        assert res.best_reward >= warmup_best


class TestAgentValidation:
    def test_unknown_agent(self):
        with pytest.raises(AgentError):
            make_agent("simulated_annealing", small_space())

    def test_rw_locality_bounds(self):
        with pytest.raises(AgentError):
            RandomWalkerAgent(small_space(), locality=1.5)

    def test_ga_validation(self):
        with pytest.raises(AgentError):
            GAAgent(small_space(), population_size=1)
        with pytest.raises(AgentError):
            GAAgent(small_space(), mutation_rate=2.0)

    def test_aco_validation(self):
        with pytest.raises(AgentError):
            ACOAgent(small_space(), evaporation_rate=0.0)
        with pytest.raises(AgentError):
            ACOAgent(small_space(), n_ants=0)

    def test_bo_validation(self):
        with pytest.raises(AgentError):
            BOAgent(small_space(), acquisition="magic")
        with pytest.raises(AgentError):
            BOAgent(small_space(), n_init=0)

    def test_rl_validation(self):
        with pytest.raises(AgentError):
            RLAgent(small_space(), algo="dqn")
        with pytest.raises(AgentError):
            RLAgent(small_space(), clip_eps=2.0)

    def test_empty_space_rejected(self):
        with pytest.raises(AgentError):
            RandomWalkerAgent(CompositeSpace([]))

    def test_observe_without_propose_ga(self):
        agent = GAAgent(small_space(), population_size=2)
        agent.propose(); agent.observe({}, 1.0, {})
        agent.propose(); agent.observe({}, 1.0, {})
        with pytest.raises(AgentError):
            agent.observe({}, 1.0, {})


class TestHyperparams:
    def test_tag_is_stable(self):
        a = GAAgent(small_space(), population_size=8, mutation_rate=0.1)
        b = GAAgent(small_space(), population_size=8, mutation_rate=0.1)
        assert a.hyperparam_tag() == b.hyperparam_tag()

    def test_sample_hyperparams_in_grid(self):
        rng = np.random.default_rng(0)
        for name in AGENT_NAMES:
            hp = sample_hyperparams(name, rng)
            for k, v in hp.items():
                assert v in HYPERPARAM_GRIDS[name][k]

    def test_sampled_hyperparams_construct_agents(self):
        rng = np.random.default_rng(1)
        for name in AGENT_NAMES:
            for _ in range(5):
                make_agent(name, small_space(), seed=0, **sample_hyperparams(name, rng))

    def test_iter_hyperparams_limit(self):
        combos = list(iter_hyperparams("ga", limit=7))
        assert len(combos) == 7

    def test_unknown_grid(self):
        with pytest.raises(AgentError):
            sample_hyperparams("nope", np.random.default_rng(0))


class TestGamma:
    def test_all_variants_construct_and_run(self):
        for variant in GAMMA_VARIANTS:
            env = PeakEnv()
            agent = make_gamma_variant(variant, env.action_space, seed=0,
                                       population_size=8)
            res = run_agent(agent, env, n_samples=60, seed=0)
            assert res.best_reward > 0
            assert agent.hyperparameters["variant"] == variant

    def test_unknown_variant(self):
        with pytest.raises(AgentError):
            make_gamma_variant("GA+XX", small_space())

    def test_growth_moves_one_gene_up(self):
        agent = GammaAgent(small_space(), seed=0)
        genome = np.array([0, 0, 0])
        grown = agent._grow(genome)
        assert grown.sum() == 1
        assert np.all(grown >= genome)

    def test_growth_respects_bounds(self):
        agent = GammaAgent(small_space(), seed=0)
        genome = np.array([15, 15, 2])  # all at max index
        grown = agent._grow(genome)
        assert np.array_equal(grown, genome)

    def test_reordering_changes_only_order_dim(self):
        space = CompositeSpace(
            [Discrete("t", 0, 7, 1), Categorical("LoopOrder", tuple("ABCDEF"))]
        )
        agent = GammaAgent(space, seed=0, order_dim="LoopOrder")
        genome = np.array([3, 2])
        out = agent._reorder(genome)
        assert out[0] == 3
        assert out[1] != 2

    def test_aging_replaces_old_elites(self):
        env = PeakEnv()
        agent = GammaAgent(env.action_space, seed=0, population_size=6,
                           use_aging=True, max_age=1, elite_frac=0.34)
        run_agent(agent, env, n_samples=60, seed=0)
        # ages never exceed max_age + 1 generation of grace
        assert agent._ages.max() <= agent.max_age + 1

    def test_order_dim_autodetect(self):
        space = CompositeSpace(
            [Discrete("t", 0, 7, 1), Categorical("LoopOrder", tuple("ABCD"))]
        )
        agent = GammaAgent(space, seed=0)
        assert agent._order_dim_index == 1


# -- property tests -----------------------------------------------------------------

@given(st.sampled_from(AGENT_NAMES), st.integers(0, 1000))
@settings(max_examples=30, deadline=None)
def test_prop_proposals_always_valid(agent_name, seed):
    """Every proposal from every agent is a member of the action space."""
    space = small_space()
    agent = make_agent(agent_name, space, seed=seed)
    rng = np.random.default_rng(seed)
    for _ in range(25):
        action = agent.propose()
        assert space.contains(action)
        agent.observe(action, float(rng.normal()), {})


@given(st.integers(0, 500))
@settings(max_examples=15, deadline=None)
def test_prop_agents_deterministic_given_seed(seed):
    """Same seed + same env -> identical search trajectory."""
    for name in ("rw", "ga", "aco"):
        r1 = run_on_peak(name, n=40, seed=seed)
        r2 = run_on_peak(name, n=40, seed=seed)
        assert r1.reward_history == r2.reward_history
        assert r1.best_action == r2.best_action
