"""Tests for the remote evaluation service (server, client, backend).

Three load-bearing guarantees:

1. **Transparency** — an unmodified agent driving an env with a
   :class:`RemoteBackend` attached produces bit-identical results to
   in-process evaluation (metrics survive the JSON round trip exactly;
   reward/caching/episode accounting never left the client).
2. **Parity at the sweep level** — the same seeded sweep run
   in-process, with ``workers=4``, and against a live service yields
   bit-identical :class:`SweepReport`s (trial order, metrics,
   provenance tags), extending the worker-invariance battery in
   ``tests/test_executor.py``.
3. **Loud failure** — dropped connections, torn bodies, timeouts, and
   a mid-sweep server death surface as :class:`ServiceError` naming
   the failing trial; never a hang, never a silently wrong metric.
"""

import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np
import pytest

from repro.core.env import ArchGymEnv, canonical_action_key
from repro.core.errors import ServiceError, ServiceTransportError
from repro.core.rewards import TargetReward
from repro.core.spaces import Categorical, CompositeSpace, Discrete
from repro.service import EvaluationService, RemoteBackend, RemoteEnv, ServiceClient
from repro.service.wire import key_to_token, token_to_key
from repro.sweeps import run_lottery_sweep


class SvcCountingEnv(ArchGymEnv):
    """16-point deterministic space; counts real cost-model runs.

    Module-level so tasks pickle across the process boundary in the
    ``workers=4`` parity leg.
    """

    env_id = "SvcCounting-v0"

    def __init__(self, scale: float = 1.0):
        super().__init__(
            action_space=CompositeSpace(
                [Discrete("x", 0, 7, 1), Categorical("m", ("a", "b"))]
            ),
            observation_metrics=["cost"],
            reward_spec=TargetReward("cost", target=1.0),
            episode_length=10_000,
        )
        self.scale = scale
        self.evaluations = 0

    def evaluate(self, action):
        self.evaluations += 1
        # 0.30000000000000004-style floats: JSON round-trip must be exact
        base = 0.1 + 0.2 + abs(action["x"] - 5) + (action["m"] == "a")
        return {"cost": self.scale * base}


class CrashingEnv(SvcCountingEnv):
    env_id = "Crashing-v0"

    def evaluate(self, action):
        raise RuntimeError("simulator exploded")


class MultiMetricEnv(SvcCountingEnv):
    """Metric keys deliberately not in sorted order."""

    env_id = "MultiMetric-v0"

    def evaluate(self, action):
        cost = super().evaluate(action)["cost"]
        return {"runtime": cost, "area": 2.0 * cost, "energy": 0.5 * cost}


@pytest.fixture()
def service():
    svc = EvaluationService()
    svc.register("SvcCounting-v0", SvcCountingEnv)
    svc.register("Crashing-v0", CrashingEnv)
    svc.register("MultiMetric-v0", MultiMetricEnv)
    svc.start()
    yield svc
    svc.stop()


@pytest.fixture()
def client(service):
    return ServiceClient(service.url, timeout_s=10.0, retries=1, backoff_s=0.01)


def _free_port() -> int:
    """A port nothing is listening on (bind, read it back, close)."""
    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        return s.getsockname()[1]


class TestWireFormat:
    def test_key_token_roundtrip(self):
        key = '[["m","a"],["x",3]]'
        assert token_to_key(key_to_token(key)) == key

    def test_token_is_url_path_safe(self):
        token = key_to_token('{"quotes", [brackets] / slashes?}')
        assert all(c.isalnum() or c in "-_" for c in token)

    def test_bad_token_raises_service_error(self):
        with pytest.raises(ServiceError, match="token"):
            token_to_key("!!not base64!!")


class TestServerEndpoints:
    def test_healthz_inventory(self, client):
        health = client.healthz()
        assert health["status"] == "ok"
        assert "SvcCounting-v0" in health["envs"]
        assert health["evaluations"] == 0

    def test_evaluate_matches_local_bit_exactly(self, client):
        env = SvcCountingEnv()
        action = {"x": 3, "m": "a"}
        local = env.evaluate(action)
        remote = client.evaluate("SvcCounting-v0", action)
        assert remote == local  # exact float equality, not approx

    def test_metric_key_order_survives_the_wire(self, client):
        """Dataset JSONL / shard files serialized from a remote run must
        be *byte*-identical to in-process ones, so the wire must not
        reorder the cost model's metric dict."""
        env = MultiMetricEnv()
        action = {"x": 3, "m": "a"}
        remote = client.evaluate("MultiMetric-v0", action)
        assert list(remote) == list(env.evaluate(action))

    def test_evaluate_counts_on_healthz(self, client):
        client.evaluate("SvcCounting-v0", {"x": 1, "m": "b"})
        assert client.healthz()["evaluations"] == 1

    def test_numpy_action_values_accepted(self, client):
        plain = client.evaluate("SvcCounting-v0", {"x": 4, "m": "a"})
        numpyish = client.evaluate("SvcCounting-v0", {"x": np.int64(4), "m": "a"})
        assert plain == numpyish

    def test_env_kwargs_select_instance(self, client):
        base = client.evaluate("SvcCounting-v0", {"x": 3, "m": "a"})
        scaled = client.evaluate(
            "SvcCounting-v0", {"x": 3, "m": "a"}, env_kwargs={"scale": 2.0}
        )
        assert scaled["cost"] == 2.0 * base["cost"]

    def test_unknown_env_is_service_error(self, client):
        with pytest.raises(ServiceError, match="Nope-v0"):
            client.evaluate("Nope-v0", {"x": 1})

    def test_cost_model_crash_is_service_error_not_hang(self, client):
        with pytest.raises(ServiceError, match="simulator exploded"):
            client.evaluate("Crashing-v0", {"x": 1, "m": "a"})

    def test_unknown_route_is_service_error(self, client):
        with pytest.raises(ServiceError, match="no route"):
            client._checked("GET", "/nope")

    def test_cache_roundtrip(self, client):
        assert client.cache_get("some-key") is None
        client.cache_put("some-key", {"cost": 0.1 + 0.2})
        assert client.cache_get("some-key") == {"cost": 0.1 + 0.2}
        assert client.cache_size() == 1

    def test_double_start_rejected(self, service):
        with pytest.raises(ServiceError, match="already started"):
            service.start()

    def test_duplicate_registration_rejected(self, service):
        with pytest.raises(ServiceError, match="already registered"):
            service.register("SvcCounting-v0", SvcCountingEnv)

    def test_busy_time_accumulates_on_healthz(self, client):
        """``busy_s`` is the auto-weights denominator: it must start at
        zero, grow with real cost-model work (single and batched), and
        stay put for memo hits."""
        assert client.healthz()["busy_s"] == 0.0
        client.evaluate("SvcCounting-v0", {"x": 1, "m": "b"})
        after_one = client.healthz()["busy_s"]
        assert after_one > 0.0
        client.evaluate_batch(
            "SvcCounting-v0",
            [{"x": i, "m": "a"} for i in range(4)],
            memoize=False,
        )
        assert client.healthz()["busy_s"] > after_one


class TestCacheListing:
    """``GET /cache?offset=N&limit=M``: the paginated listing the
    anti-entropy backfill pages through."""

    def _fill(self, client, n):
        entries = {f"key-{i:03d}": {"cost": float(i)} for i in range(n)}
        for key_str, metrics in entries.items():
            client.cache_put(key_str, metrics)
        return entries

    def test_listing_pages_cover_the_whole_map(self, client):
        entries = self._fill(client, 7)
        seen = {}
        offset = 0
        while True:
            page, total = client.cache_list(offset=offset, limit=3)
            assert total == len(entries)
            if not page:
                break
            for key_str, metrics in page:
                seen[key_str] = metrics
            offset += len(page)
            if offset >= total:
                break
        assert seen == entries

    def test_listing_is_sorted_and_offset_windowed(self, client):
        self._fill(client, 5)
        page, total = client.cache_list(offset=2, limit=2)
        assert total == 5
        assert [k for k, _ in page] == ["key-002", "key-003"]

    def test_listing_of_empty_cache(self, client):
        page, total = client.cache_list()
        assert page == [] and total == 0

    def test_listing_matches_file_backed_store(self, tmp_path):
        """The durable (``--cache-dir``) server must page identically
        to the in-memory one."""
        svc = EvaluationService(cache_dir=tmp_path / "srv-cache")
        svc.start()
        try:
            client = ServiceClient(svc.url, timeout_s=10.0, retries=0)
            entries = self._fill(client, 4)
            page, total = client.cache_list(limit=10)
            assert total == 4
            assert dict(page) == entries
        finally:
            svc.stop()

    def test_bad_query_parameters_rejected(self, client):
        for query in ("offset=-1", "limit=0", "offset=x", "page=3"):
            with pytest.raises(ServiceError):
                client._checked("GET", f"/cache?{query}")

    def test_plain_cache_route_still_reports_size(self, client):
        self._fill(client, 2)
        assert client.cache_size() == 2


class TestBatchEndpoint:
    """``POST /evaluate_batch``: many design points, one round trip,
    one instance-lock acquisition, server-side memoization.

    Memoization tests run on a *single-env* server (``memo_client``):
    the ``/cache`` map is keyed on the design point alone, so a server
    hosting several environments auto-disables the memo rather than
    serving one env's metrics to another.
    """

    @pytest.fixture()
    def memo_service(self):
        with EvaluationService() as svc:
            svc.register("SvcCounting-v0", SvcCountingEnv)
            yield svc

    @pytest.fixture()
    def memo_client(self, memo_service):
        return ServiceClient(
            memo_service.url, timeout_s=10.0, retries=1, backoff_s=0.01
        )

    def _actions(self, n):
        return [{"x": i % 8, "m": "a" if i % 2 else "b"} for i in range(n)]

    def test_batch_matches_per_point_bit_exactly(self, client):
        actions = self._actions(6)
        singles = [client.evaluate("SvcCounting-v0", a) for a in actions]
        # memoize off so both paths really run the cost model
        batched = client.evaluate_batch(
            "SvcCounting-v0", actions, memoize=False
        )
        assert batched == singles

    def test_batch_is_one_round_trip(self, service):
        client = ServiceClient(service.url, timeout_s=10.0, retries=0)
        client.evaluate_batch("SvcCounting-v0", self._actions(64))
        assert client.requests_sent == 1

    def test_batch_preserves_request_order(self, client):
        actions = list(reversed(self._actions(8)))
        batched = client.evaluate_batch("SvcCounting-v0", actions, memoize=False)
        env = SvcCountingEnv()
        assert batched == [env.evaluate(a) for a in actions]

    def test_metric_key_order_survives_batch(self, client):
        batched = client.evaluate_batch("MultiMetric-v0", self._actions(3))
        local = MultiMetricEnv()
        for action, remote in zip(self._actions(3), batched):
            assert list(remote) == list(local.evaluate(action))

    def test_memoization_feeds_the_cache_store(self, memo_client):
        """Every fresh batch evaluation must land in /cache under the
        exact key an explicit PUT of that design point would use."""
        from repro.core.cache_store import encode_key

        actions = self._actions(5)
        batched = memo_client.evaluate_batch("SvcCounting-v0", actions)
        assert memo_client.cache_size() == len(actions)
        for action, metrics in zip(actions, batched):
            key_str = encode_key(canonical_action_key(action))
            assert memo_client.cache_get(key_str) == metrics

    def test_repeat_batch_hits_memo_not_cost_model(self, memo_client):
        actions = self._actions(4)
        memo_client.evaluate_batch("SvcCounting-v0", actions)
        evals_before = memo_client.healthz()["evaluations"]
        memo_client.evaluate_batch("SvcCounting-v0", actions)
        health = memo_client.healthz()
        assert health["evaluations"] == evals_before  # nothing re-simulated
        assert health["memo_hits"] == len(actions)
        assert health["batch_requests"] == 2

    def test_explicit_cache_put_preseeds_batch(self, memo_client):
        """An entry written via PUT /cache answers a later batch point
        — the memo and the explicit cache are one map."""
        from repro.core.cache_store import encode_key

        action = {"x": 5, "m": "a"}
        planted = {"cost": 123.456}
        memo_client.cache_put(encode_key(canonical_action_key(action)), planted)
        batched = memo_client.evaluate_batch("SvcCounting-v0", [action])
        assert batched == [planted]
        assert memo_client.healthz()["evaluations"] == 0  # env never built

    def test_duplicate_points_in_one_batch_simulate_once(self, memo_client):
        action = {"x": 1, "m": "a"}
        batched = memo_client.evaluate_batch(
            "SvcCounting-v0", [action, action, action]
        )
        assert batched[0] == batched[1] == batched[2]
        assert memo_client.healthz()["evaluations"] == 1

    def test_memoize_false_skips_the_store(self, memo_client):
        memo_client.evaluate_batch(
            "SvcCounting-v0", self._actions(3), memoize=False
        )
        assert memo_client.cache_size() == 0
        assert memo_client.healthz()["evaluations"] == 3

    def test_numpy_action_values_hit_the_same_memo_line(self, memo_client):
        plain = memo_client.evaluate_batch("SvcCounting-v0", [{"x": 4, "m": "a"}])
        numpyish = memo_client.evaluate_batch(
            "SvcCounting-v0", [{"x": np.int64(4), "m": "a"}]
        )
        assert plain == numpyish
        assert memo_client.healthz()["evaluations"] == 1  # second was memo

    def test_multi_env_server_never_memoizes(self, service, client):
        """Regression: the /cache map is keyed on the design point
        alone, so a server hosting several environments must NOT
        memoize — two envs sharing an action shape would serve each
        other's metrics. (`service` registers three envs.)"""
        actions = self._actions(3)
        client.evaluate_batch("SvcCounting-v0", actions)
        assert client.cache_size() == 0  # nothing memoized
        client.evaluate_batch("MultiMetric-v0", actions)
        health = client.healthz()
        assert health["memo_hits"] == 0
        # same action shapes, distinct envs: each simulated on its own
        assert health["evaluations"] == 2 * len(actions)
        # and the two envs' metrics never crossed
        multi = client.evaluate_batch("MultiMetric-v0", actions)
        assert multi == [MultiMetricEnv().evaluate(a) for a in actions]

    def test_empty_batch_rejected_client_side(self, client):
        with pytest.raises(ServiceError, match="at least one action"):
            client.evaluate_batch("SvcCounting-v0", [])

    def test_malformed_batch_body_is_400(self, client):
        with pytest.raises(ServiceError, match="actions"):
            client._checked("POST", "/evaluate_batch", {"env": "SvcCounting-v0"})

    def test_unknown_env_in_batch_is_service_error(self, client):
        with pytest.raises(ServiceError, match="Nope-v0"):
            client.evaluate_batch("Nope-v0", [{"x": 1}])

    def test_cost_model_crash_in_batch_is_service_error(self, client):
        with pytest.raises(ServiceError, match="simulator exploded"):
            client.evaluate_batch("Crashing-v0", [{"x": 1, "m": "a"}])


class TestKeepAlive:
    """The connection-reuse contract: one socket per thread for a whole
    request stream, with a free (non-retry) re-send on a stale socket."""

    def test_many_requests_one_connection(self, service):
        client = ServiceClient(service.url, timeout_s=10.0, retries=0)
        for i in range(20):
            client.evaluate("SvcCounting-v0", {"x": i % 8, "m": "a"})
        assert client.connections_opened == 1
        assert client.requests_sent == 20

    def test_mixed_verbs_share_the_connection(self, service):
        client = ServiceClient(service.url, timeout_s=10.0, retries=0)
        client.healthz()
        client.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})
        client.cache_put("k", {"cost": 1.0})
        client.cache_get("k")
        client.cache_size()
        assert client.connections_opened == 1

    def test_stale_socket_reconnects_without_burning_a_retry(self):
        """Server restarts between requests: the idle keep-alive socket
        is dead, and even a retries=0 client must transparently
        reconnect — the request bytes never reached a live peer."""
        svc1 = EvaluationService()
        svc1.register("SvcCounting-v0", SvcCountingEnv)
        svc1.start()
        port = svc1.port
        client = ServiceClient(svc1.url, timeout_s=10.0, retries=0)
        expected = client.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})
        svc1.stop()
        svc2 = EvaluationService(port=port)
        svc2.register("SvcCounting-v0", SvcCountingEnv)
        svc2.start()
        try:
            again = client.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})
            assert again == expected
            assert client.connections_opened == 2  # one reconnect, no retry
        finally:
            svc2.stop()

    def test_early_error_reply_does_not_desync_the_connection(self, service):
        """An error reply sent before the request body was read (404
        route, malformed token) must drain the body — otherwise the
        leftover bytes parse as the next request and poison every
        later request on the keep-alive socket."""
        client = ServiceClient(service.url, timeout_s=10.0, retries=0)
        status, _ = client._request("POST", "/no-such-route", {"pad": "x" * 256})
        assert status == 404
        status, _ = client._request("PUT", "/cache/!!bad-token!!", {"m": {}})
        assert status == 400
        # the same connection must still serve real requests
        result = client.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})
        assert result == SvcCountingEnv().evaluate({"x": 1, "m": "a"})
        assert client.connections_opened == 1

    def test_stop_closes_live_keepalive_connections(self, service):
        """A stopped server must be *dead* to its connected clients —
        not quietly kept alive by a blocked handler thread."""
        client = ServiceClient(
            service.url, timeout_s=2.0, retries=0, backoff_s=0.01
        )
        client.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})  # connect
        service.stop()
        with pytest.raises(ServiceError):
            client.evaluate("SvcCounting-v0", {"x": 2, "m": "a"})


class TestRetryPolicy:
    """Backoff discipline: applied after every retryable failure,
    capped in total, and absent entirely for retries=0."""

    def test_zero_retries_never_sleeps(self, monkeypatch):
        def forbidden_sleep(_):
            raise AssertionError("retries=0 client slept")

        monkeypatch.setattr("repro.service.client.time.sleep", forbidden_sleep)
        client = ServiceClient(
            f"http://127.0.0.1:{_free_port()}", timeout_s=0.5, retries=0
        )
        with pytest.raises(ServiceTransportError, match="after 1 attempt"):
            client.healthz()

    def test_total_backoff_is_capped(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
        client = ServiceClient(
            f"http://127.0.0.1:{_free_port()}",
            timeout_s=0.5, retries=10, backoff_s=0.5, backoff_cap_s=1.0,
        )
        with pytest.raises(ServiceTransportError, match="after 11 attempt"):
            client.healthz()
        assert sum(sleeps) <= 1.0 + 1e-9
        assert all(s > 0 for s in sleeps)  # zero-length sleeps are skipped

    def test_transport_exhaustion_is_typed(self):
        """Exhaustion raises ServiceTransportError — the failover
        signal — which is still a ServiceError for existing callers."""
        client = ServiceClient(
            f"http://127.0.0.1:{_free_port()}", timeout_s=0.5, retries=0
        )
        with pytest.raises(ServiceTransportError):
            client.healthz()
        assert issubclass(ServiceTransportError, ServiceError)

    def test_server_produced_errors_are_not_transport_errors(self, client):
        """A 4xx the server answered must raise plain ServiceError:
        failing it over to another host would be pointless."""
        with pytest.raises(ServiceError) as excinfo:
            client.evaluate("Nope-v0", {"x": 1})
        assert not isinstance(excinfo.value, ServiceTransportError)

    def test_bad_backoff_cap_rejected(self):
        with pytest.raises(ServiceError, match="backoff_cap_s"):
            ServiceClient("http://127.0.0.1:1", backoff_cap_s=-1.0)


class TestRemoteBackend:
    def test_remote_env_steps_without_local_evaluations(self, service):
        env = RemoteEnv(SvcCountingEnv(), service.url)
        env.reset(seed=0)
        rng = np.random.default_rng(0)
        for _ in range(5):
            env.step(env.action_space.sample(rng))
        assert env.evaluations == 0  # the local instance never simulated
        assert env.stats.remote_evals == 5  # every step went over the wire

    def test_local_lru_still_shields_the_network(self, service):
        env = RemoteEnv(SvcCountingEnv(), service.url)
        env.enable_cache()
        env.reset(seed=0)
        action = {"x": 2, "m": "b"}
        env.step(action)
        env.step(action)
        assert env.stats.remote_evals == 1
        assert env.stats.cache_hits == 1

    def test_detach_backend_returns_to_local(self, service):
        env = RemoteEnv(SvcCountingEnv(), service.url)
        backend = env.detach_backend()
        assert isinstance(backend, RemoteBackend)
        env.reset(seed=0)
        env.step({"x": 2, "m": "b"})
        assert env.evaluations == 1 and env.stats.remote_evals == 0

    def test_env_kwargs_forwarded(self, service):
        local = SvcCountingEnv(scale=3.0)
        remote = RemoteEnv(SvcCountingEnv(scale=3.0), service.url,
                           env_kwargs={"scale": 3.0})
        action = {"x": 0, "m": "a"}
        assert remote._dispatch_evaluate(action) == local.evaluate(action)


def _normalized_records(report):
    """Every trial's full record in trial order, with the fields that
    legitimately differ across execution modes (timing; where the
    simulator ran) zeroed. Everything else must match bit-for-bit."""
    rows = []
    for agent in sorted(report.results):
        for res in report.results[agent]:
            rec = res.to_record()
            rec["wall_time_s"] = 0.0
            rec["sim_time_s"] = 0.0
            rec["remote_evals"] = 0
            rec["remote_hosts"] = {}
            rows.append(rec)
    return rows


class TestServiceSweepParity:
    """The acceptance battery: one seeded sweep, three execution modes,
    three bit-identical reports."""

    KW = dict(
        agents=("rw", "ga"), n_trials=2, n_samples=15, seed=9,
        collect_dataset=True,
    )

    @pytest.fixture()
    def reports(self, service):
        in_process = run_lottery_sweep(SvcCountingEnv, workers=1, **self.KW)
        parallel = run_lottery_sweep(SvcCountingEnv, workers=4, **self.KW)
        remote = run_lottery_sweep(
            SvcCountingEnv, workers=1, service_url=service.url, **self.KW
        )
        return in_process, parallel, remote

    def test_three_modes_bit_identical(self, reports):
        in_process, parallel, remote = reports
        assert _normalized_records(in_process) == _normalized_records(parallel)
        assert _normalized_records(in_process) == _normalized_records(remote)

    def test_trial_order_and_provenance_tags(self, reports):
        in_process, parallel, remote = reports
        for other in (parallel, remote):
            assert [t.to_record() for t in in_process.dataset] == [
                t.to_record() for t in other.dataset
            ]
            assert in_process.dataset.sources == other.dataset.sources

    def test_remote_mode_actually_used_the_service(self, reports):
        in_process, parallel, remote = reports
        assert in_process.remote_evals == 0
        assert parallel.remote_evals == 0
        # with no cache tier in play, every sample went over the wire
        n_trials_total = len(self.KW["agents"]) * self.KW["n_trials"]
        assert remote.remote_evals == n_trials_total * self.KW["n_samples"]
        assert "evaluation service" in remote.print_table()

    def test_parallel_workers_against_live_service(self, service):
        """Remote dispatch composes with the process pool."""
        kw = dict(agents=("rw",), n_trials=2, n_samples=10, seed=4)
        serial = run_lottery_sweep(SvcCountingEnv, workers=1, **kw)
        fanned = run_lottery_sweep(
            SvcCountingEnv, workers=2, service_url=service.url, **kw
        )
        assert _normalized_records(serial) == _normalized_records(fanned)
        assert fanned.remote_evals > 0

    def test_batched_dispatch_bit_identical(self):
        """service_batch=True rides /evaluate_batch (server-side
        memoization on — the server hosts one env, so it applies) and
        must change nothing about the results."""
        kw = dict(agents=("rw",), n_trials=2, n_samples=10, seed=4)
        serial = run_lottery_sweep(SvcCountingEnv, workers=1, **kw)
        with EvaluationService() as single_env_svc:
            single_env_svc.register("SvcCounting-v0", SvcCountingEnv)
            batched = run_lottery_sweep(
                SvcCountingEnv, service_url=single_env_svc.url,
                service_batch=True, **kw
            )
            assert batched.remote_evals > 0
            assert single_env_svc.batch_requests > 0
            assert single_env_svc.cache_size() > 0  # memoization fed /cache
        assert _normalized_records(serial) == _normalized_records(batched)

    def test_remote_evals_attributed_to_host(self, service):
        kw = dict(agents=("rw",), n_trials=1, n_samples=8, seed=3)
        report = run_lottery_sweep(SvcCountingEnv, service_url=service.url, **kw)
        (result,) = report.results["rw"]
        assert result.remote_hosts == {service.url: result.remote_evals}
        assert report.remote_evals_by_host == {service.url: report.remote_evals}
        assert service.url in report.print_table()

    def test_server_cache_store_as_shared_tier(self, service):
        """`shared_cache=True` + `service_url` uses the service's /cache:
        a second sweep re-uses the first sweep's design points."""
        kw = dict(agents=("rw",), n_trials=2, n_samples=20, seed=2)
        baseline = run_lottery_sweep(SvcCountingEnv, **kw)
        first = run_lottery_sweep(
            SvcCountingEnv, service_url=service.url, shared_cache=True, **kw
        )
        second = run_lottery_sweep(
            SvcCountingEnv, service_url=service.url, shared_cache=True, **kw
        )
        # fitness identical with and without any cache tier
        assert _normalized_shared(baseline) == _normalized_shared(first)
        assert _normalized_shared(first) == _normalized_shared(second)
        # the re-run answered every would-be miss from the server store
        assert second.shared_cache_hits > 0
        assert second.remote_evals == 0


def _normalized_shared(report):
    """Like _normalized_records but also blind to which cache tier
    answered (hit/miss splits shift when a shared tier is attached)."""
    rows = _normalized_records(report)
    for rec in rows:
        rec["cache_hits"] = rec["cache_misses"] = rec["shared_cache_hits"] = 0
    return rows


# -- fault injection ------------------------------------------------------------


class _TornBodyHandler(BaseHTTPRequestHandler):
    """Answers every request with truncated, unparseable JSON."""

    def log_message(self, *args):
        pass

    def _torn(self):
        body = b'{"metrics": {"cost": 1.'  # truncated mid-float
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_POST = do_PUT = _torn


class _SlowHandler(BaseHTTPRequestHandler):
    """Stalls far longer than any client timeout before replying."""

    def log_message(self, *args):
        pass

    def _stall(self):
        time.sleep(10.0)

    do_GET = do_POST = do_PUT = _stall


@pytest.fixture()
def misbehaving_server(request):
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), request.param)
    httpd.daemon_threads = True
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_address[1]}"
    httpd.shutdown()
    httpd.server_close()


class TestFaultInjection:
    def test_connection_refused_is_service_error(self):
        client = ServiceClient(
            f"http://127.0.0.1:{_free_port()}",
            timeout_s=2.0, retries=1, backoff_s=0.01,
        )
        with pytest.raises(ServiceError, match="after 2 attempt"):
            client.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})

    @pytest.mark.parametrize(
        "misbehaving_server", [_TornBodyHandler], indirect=True
    )
    def test_torn_body_is_service_error(self, misbehaving_server):
        client = ServiceClient(
            misbehaving_server, timeout_s=2.0, retries=1, backoff_s=0.01
        )
        with pytest.raises(ServiceError, match="after 2 attempt"):
            client.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})
        with pytest.raises(ServiceError):
            client.cache_get("any-key")

    @pytest.mark.parametrize(
        "misbehaving_server", [_TornBodyHandler], indirect=True
    )
    def test_backoff_applies_after_parse_failures_too(
        self, misbehaving_server, monkeypatch
    ):
        """A body that does not parse is retried *with* backoff — the
        same discipline as a connection failure."""
        sleeps = []
        monkeypatch.setattr("repro.service.client.time.sleep", sleeps.append)
        client = ServiceClient(
            misbehaving_server, timeout_s=2.0, retries=2, backoff_s=0.01
        )
        with pytest.raises(ServiceTransportError, match="after 3 attempt"):
            client.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})
        assert len(sleeps) == 2  # one backoff per retry
        assert sleeps == [0.01, 0.02]

    @pytest.mark.parametrize("misbehaving_server", [_SlowHandler], indirect=True)
    def test_slow_response_hits_timeout_not_hang(self, misbehaving_server):
        client = ServiceClient(
            misbehaving_server, timeout_s=0.3, retries=0, backoff_s=0.01
        )
        start = time.perf_counter()
        with pytest.raises(ServiceError, match="timeout"):
            client.evaluate("SvcCounting-v0", {"x": 1, "m": "a"})
        elapsed = time.perf_counter() - start
        assert elapsed < 5.0, f"timeout took {elapsed:.1f}s — client hung"

    def test_invalid_url_rejected_up_front(self):
        with pytest.raises(ServiceError, match="http"):
            ServiceClient("ftp://example.com")

    def test_bad_retry_config_rejected(self):
        with pytest.raises(ServiceError):
            ServiceClient("http://127.0.0.1:1", timeout_s=0)
        with pytest.raises(ServiceError):
            ServiceClient("http://127.0.0.1:1", retries=-1)

    def test_mid_sweep_server_death_names_the_trial(self):
        """The server dies partway through trial rw/0: the sweep must
        fail with a ServiceError identifying that trial — promptly,
        not after a hang, and never with a fabricated metric."""
        svc = EvaluationService()

        class DyingEnv(SvcCountingEnv):
            env_id = "SvcCounting-v0"  # what the client asks for
            calls = 0

            def evaluate(self, action):
                type(self).calls += 1
                if type(self).calls == 6:
                    # kill the listener from a handler thread; the
                    # in-flight response still completes
                    threading.Thread(target=svc.stop, daemon=True).start()
                    time.sleep(0.2)
                return super().evaluate(action)

        svc.register("SvcCounting-v0", DyingEnv)
        url = svc.start()
        try:
            start = time.perf_counter()
            with pytest.raises(ServiceError, match=r"trial rw/0"):
                run_lottery_sweep(
                    SvcCountingEnv,
                    agents=("rw",), n_trials=2, n_samples=20, seed=1,
                    cache=False, service_url=url,
                )
            elapsed = time.perf_counter() - start
            assert elapsed < 30.0, f"sweep hung {elapsed:.1f}s after server death"
        finally:
            svc.stop()
