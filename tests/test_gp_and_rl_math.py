"""Numerical-correctness tests for the GP and the RL policy machinery.

These go beyond behavioural checks: the GP posterior is compared
against analytically known properties, and the policy-network gradient
is verified by finite differences.
"""

import numpy as np
import pytest

from repro.agents.gp import GaussianProcess, robust_standardize
from repro.agents.rl import RLAgent, _Adam, _PolicyNet
from repro.core.errors import AgentError
from repro.core.spaces import Categorical, CompositeSpace, Discrete


class TestGaussianProcess:
    def test_interpolates_training_points_at_low_noise(self):
        rng = np.random.default_rng(0)
        X = rng.random((20, 3))
        y = np.sin(X @ np.array([3.0, -2.0, 1.0]))
        gp = GaussianProcess(lengthscale=0.5, noise=1e-8).fit(X, y)
        mean, var = gp.predict(X)
        assert np.allclose(mean, y, atol=1e-4)
        assert np.all(var < 1e-4)

    def test_variance_grows_away_from_data(self):
        X = np.array([[0.5, 0.5]])
        gp = GaussianProcess(lengthscale=0.2).fit(X, np.array([1.0]))
        __, var_near = gp.predict(np.array([[0.5, 0.5]]))
        __, var_far = gp.predict(np.array([[0.0, 0.0]]))
        assert var_far[0] > var_near[0]

    def test_prior_variance_far_from_data(self):
        gp = GaussianProcess(lengthscale=0.05, signal=2.0).fit(
            np.array([[0.0]]), np.array([3.0])
        )
        __, var = gp.predict(np.array([[1.0]]))
        # essentially the prior: signal^2
        assert var[0] == pytest.approx(4.0, rel=1e-3)

    def test_mean_reverts_to_zero_far_from_data(self):
        gp = GaussianProcess(lengthscale=0.05).fit(
            np.array([[0.0]]), np.array([5.0])
        )
        mean, __ = gp.predict(np.array([[1.0]]))
        assert abs(mean[0]) < 1e-6

    def test_posterior_mean_between_targets(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 10.0])
        gp = GaussianProcess(lengthscale=0.5, noise=1e-6).fit(X, y)
        mean, __ = gp.predict(np.array([[0.5]]))
        assert 0.0 < mean[0] < 10.0

    def test_unfitted_predict_raises(self):
        with pytest.raises(AgentError):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_bad_hyperparams(self):
        with pytest.raises(AgentError):
            GaussianProcess(lengthscale=0.0)

    def test_shape_validation(self):
        with pytest.raises(AgentError):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))


class TestRobustStandardize:
    def test_centers_and_scales(self):
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        z, center, scale = robust_standardize(y)
        assert center == 3.0
        assert np.median(z) == pytest.approx(0.0)

    def test_outliers_clipped(self):
        y = np.array([0.0, 1.0, 2.0, 3.0, 1e9])
        z, __, __ = robust_standardize(y, clip=5.0)
        assert z.max() <= 5.0

    def test_constant_input(self):
        z, __, scale = robust_standardize(np.full(10, 7.0))
        assert np.all(z == 0.0)
        assert scale == 1.0


class TestAdam:
    def test_moves_toward_gradient_ascent(self):
        p = np.array([0.0])
        opt = _Adam([p], lr=0.1)
        for __ in range(100):
            opt.step([np.array([1.0])])  # constant positive gradient
        assert p[0] > 5.0

    def test_bias_correction_first_step(self):
        p = np.array([0.0])
        opt = _Adam([p], lr=0.1)
        opt.step([np.array([0.5])])
        # with bias correction the first step has magnitude ~lr
        assert p[0] == pytest.approx(0.1, rel=1e-3)


class TestPolicyGradient:
    def small_space(self):
        return CompositeSpace(
            [Discrete("x", 0, 3, 1), Categorical("m", ("a", "b"))]
        )

    def test_reinforce_gradient_matches_finite_difference(self):
        """Analytic d/dlogits of the REINFORCE objective must match a
        finite-difference estimate through the log-prob computation."""
        agent = RLAgent(self.small_space(), seed=0, algo="reinforce",
                        batch_size=4, entropy_coef=0.0, hidden_size=8)
        rng = np.random.default_rng(1)
        batch = []
        for __ in range(4):
            idx = np.array([rng.integers(4), rng.integers(2)])
            batch.append((idx, float(rng.normal())))
        agent._batch = batch
        adv = agent._advantages()

        logits, h = agent.net.forward()
        probs = agent._dim_probs(logits)

        # analytic gradient of J = (1/n) sum_s adv_s log pi(a_s)
        g_analytic = np.zeros_like(logits)
        for s, (indices, __) in enumerate(batch):
            for i, p in enumerate(probs):
                lo, hi = agent._offsets[i], agent._offsets[i + 1]
                g = -p.copy()
                g[indices[i]] += 1.0
                g_analytic[lo:hi] += adv[s] * g
        g_analytic /= len(batch)

        def objective(z):
            out = 0.0
            for s, (indices, __) in enumerate(batch):
                for i in range(len(agent._cards)):
                    lo, hi = agent._offsets[i], agent._offsets[i + 1]
                    zz = z[lo:hi] - z[lo:hi].max()
                    logp = zz - np.log(np.exp(zz).sum())
                    out += adv[s] * logp[indices[i]]
            return out / len(batch)

        eps = 1e-6
        g_fd = np.zeros_like(logits)
        for j in range(len(logits)):
            zp, zm = logits.copy(), logits.copy()
            zp[j] += eps
            zm[j] -= eps
            g_fd[j] = (objective(zp) - objective(zm)) / (2 * eps)

        assert np.allclose(g_analytic, g_fd, atol=1e-5)

    def test_entropy_gradient_matches_finite_difference(self):
        agent = RLAgent(self.small_space(), seed=0, hidden_size=8)
        logits, __ = agent.net.forward()
        probs = agent._dim_probs(logits)
        g_analytic = agent._entropy_grad(probs)

        def entropy(z):
            total = 0.0
            for i in range(len(agent._cards)):
                lo, hi = agent._offsets[i], agent._offsets[i + 1]
                zz = z[lo:hi] - z[lo:hi].max()
                p = np.exp(zz) / np.exp(zz).sum()
                total += -(p * np.log(p + 1e-12)).sum()
            return total

        eps = 1e-6
        g_fd = np.zeros_like(logits)
        for j in range(len(logits)):
            zp, zm = logits.copy(), logits.copy()
            zp[j] += eps
            zm[j] -= eps
            g_fd[j] = (entropy(zp) - entropy(zm)) / (2 * eps)

        assert np.allclose(g_analytic, g_fd, atol=1e-5)

    def test_backward_matches_finite_difference(self):
        """Backprop through the MLP checked against finite differences of
        a linear-in-logits objective."""
        rng = np.random.default_rng(3)
        net = _PolicyNet(hidden=6, n_logits=5, rng=rng)
        direction = rng.normal(size=5)

        logits, h = net.forward()
        grads = net.backward(direction, h)

        eps = 1e-6
        for p, g in zip(net.params, grads):
            flat_p = p.ravel()
            flat_g = np.asarray(g, dtype=float).ravel()
            for j in range(flat_p.size):
                orig = flat_p[j]
                flat_p[j] = orig + eps
                up = float(net.forward()[0] @ direction)
                flat_p[j] = orig - eps
                down = float(net.forward()[0] @ direction)
                flat_p[j] = orig
                fd = (up - down) / (2 * eps)
                assert fd == pytest.approx(flat_g[j], abs=1e-4)

    def test_policy_learns_bandit(self):
        """The policy concentrates on the rewarded arm of a 1-dim bandit."""
        space = CompositeSpace([Discrete("x", 0, 3, 1)])
        agent = RLAgent(space, seed=0, algo="reinforce", lr=0.2,
                        batch_size=8, entropy_coef=0.0)
        rng = np.random.default_rng(0)
        for __ in range(400):
            action = agent.propose()
            reward = 1.0 if action["x"] == 2 else 0.0
            agent.observe(action, reward, {})
        logits, __ = agent.net.forward()
        probs = agent._dim_probs(logits)[0]
        assert int(np.argmax(probs)) == 2
        assert probs[2] > 0.8
