"""Tests for the cross-process shared evaluation cache stores.

``CacheStoreContract`` is the shared behavioral suite: any object with
the ``get``/``put``/``__len__`` store interface must pass it. It runs
against both shipped implementations — the file-backed
:class:`SharedCacheStore` and the service-backed
:class:`ServerCacheStore` — so a future store variant inherits the
battery by subclassing and providing a ``make_store`` fixture that
returns fresh *handles onto one shared backing*.
"""

import threading
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.cache_store import ServerCacheStore, SharedCacheStore, encode_key
from repro.core.env import ArchGymEnv, canonical_action_key
from repro.core.errors import ArchGymError, CacheStoreError, ServiceError
from repro.core.rewards import TargetReward
from repro.core.spaces import Categorical, CompositeSpace, Discrete
from repro.service import EvaluationService


def _key(i):
    return canonical_action_key({"x": i, "m": "a"})


def _put_from_subprocess(directory):
    """Module-level so it pickles into a worker process."""
    store = SharedCacheStore(directory)
    store.put(_key(99), {"cost": 3.25})
    return True


# -- the shared store contract --------------------------------------------------


class CacheStoreContract:
    """Behavioral contract every ``get/put/__len__`` store must honor.

    Subclasses provide a ``make_store`` fixture: a zero-argument
    callable returning a *new handle* onto one backing shared by all
    handles the test creates — a fresh directory for the file store,
    a fresh server for the service store.
    """

    def test_empty_store_len_zero(self, make_store):
        assert len(make_store()) == 0

    def test_put_get_roundtrip(self, make_store):
        store = make_store()
        store.put(_key(1), {"cost": 2.5, "power": 0.125})
        assert store.get(_key(1)) == {"cost": 2.5, "power": 0.125}

    def test_miss_returns_none(self, make_store):
        assert make_store().get(_key(7)) is None

    def test_floats_roundtrip_exactly_across_handles(self, make_store):
        value = 0.1 + 0.2  # not representable exactly; must survive transport
        make_store().put(_key(2), {"cost": value})
        assert make_store().get(_key(2))["cost"] == value

    def test_get_returns_a_copy(self, make_store):
        store = make_store()
        store.put(_key(3), {"cost": 1.0})
        store.get(_key(3))["cost"] = 999.0
        assert store.get(_key(3))["cost"] == 1.0

    def test_len_counts_distinct_keys(self, make_store):
        store = make_store()
        for i in range(10):
            store.put(_key(i), {"cost": float(i)})
        store.put(_key(0), {"cost": 0.0})  # idempotent re-put
        assert len(store) == 10

    def test_writes_visible_across_handles(self, make_store):
        reader = make_store()
        assert reader.get(_key(6)) is None  # prime any local view
        make_store().put(_key(6), {"cost": 6.0})
        assert reader.get(_key(6)) == {"cost": 6.0}

    def test_encode_key_near_collisions_stay_distinct(self, make_store):
        """Keys that stringify similarly (int vs str values, nesting vs
        flat, swapped name/value pairing) must be distinct entries."""
        store = make_store()
        lookalikes = [
            canonical_action_key({"x": 1}),
            canonical_action_key({"x": "1"}),
            canonical_action_key({"x": (1,)}),
            canonical_action_key({"x": 1, "y": 2}),
            canonical_action_key({"y": 1, "x": 2}),
            canonical_action_key({"x, y": 1}),
        ]
        assert len({encode_key(k) for k in lookalikes}) == len(lookalikes)
        for i, key in enumerate(lookalikes):
            store.put(key, {"cost": float(i)})
        for i, key in enumerate(lookalikes):
            assert store.get(key) == {"cost": float(i)}
        assert len(store) == len(lookalikes)

    def test_concurrent_writers(self, make_store):
        """8 threads, each with its own handle, write disjoint keys;
        every entry must land and count exactly once."""
        per_thread, n_threads = 8, 8
        errors = []

        def write(thread_idx):
            try:
                store = make_store()
                for j in range(per_thread):
                    i = thread_idx * per_thread + j
                    store.put(_key(i), {"cost": float(i)})
            except Exception as exc:  # surfaced after the join
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        store = make_store()
        assert len(store) == per_thread * n_threads
        for i in range(per_thread * n_threads):
            assert store.get(_key(i)) == {"cost": float(i)}

    def test_duplicate_key_last_writer_wins(self, make_store):
        """Two handles write different values under one key: a fresh
        handle must see the later write (and the key count once)."""
        make_store().put(_key(42), {"cost": 1.0})
        make_store().put(_key(42), {"cost": 2.0})
        fresh = make_store()
        assert fresh.get(_key(42)) == {"cost": 2.0}
        assert len(fresh) == 1

    def test_same_value_re_put_is_idempotent(self, make_store):
        """Re-putting an identical value through the *same* handle (the
        memoization pattern: every copy of a deterministic cost model's
        answer agrees) must not duplicate the entry."""
        store = make_store()
        store.put(_key(7), {"cost": 7.0})
        store.put(_key(7), {"cost": 7.0})
        assert len(make_store()) == 1
        assert make_store().get(_key(7)) == {"cost": 7.0}

    def test_concurrent_same_key_writers_never_tear(self, make_store):
        """8 threads race different multi-field values onto ONE key; a
        fresh handle must read exactly one writer's value intact —
        last-writer-wins may pick any of them, but never a mixture."""
        n_threads = 8
        candidates = [
            {"cost": float(t), "power": float(t) * 0.5, "tag": float(t) + 100.0}
            for t in range(n_threads)
        ]
        errors = []

        def write(t):
            try:
                make_store().put(_key(0), candidates[t])
            except Exception as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        fresh = make_store()
        assert fresh.get(_key(0)) in candidates
        assert len(fresh) == 1


class TestSharedCacheStoreContract(CacheStoreContract):
    @pytest.fixture()
    def make_store(self, tmp_path):
        return lambda: SharedCacheStore(tmp_path / "cache")


class TestServerCacheStoreContract(CacheStoreContract):
    @pytest.fixture()
    def make_store(self):
        with EvaluationService() as svc:
            yield lambda: ServerCacheStore(
                svc.url, timeout_s=10.0, retries=1, backoff_s=0.01
            )


# -- SharedCacheStore specifics --------------------------------------------------


class TestSharedStoreBasics:
    def test_bad_n_shards_rejected(self, tmp_path):
        with pytest.raises(ArchGymError):
            SharedCacheStore(tmp_path / "cache", n_shards=0)

    def test_get_on_deleted_directory_returns_none(self, tmp_path):
        """Regression: a shard directory removed out from under the
        store (cleanup racing a long-lived process) is an empty cache,
        not a crash."""
        import shutil

        store = SharedCacheStore(tmp_path / "cache")
        store.put(_key(1), {"cost": 1.0})
        fresh = SharedCacheStore(tmp_path / "cache")  # nothing read yet
        shutil.rmtree(tmp_path / "cache")
        assert fresh.get(_key(1)) is None
        assert fresh.get(_key(2)) is None
        assert len(fresh) == 0

    def test_put_recreates_deleted_directory(self, tmp_path):
        import shutil

        store = SharedCacheStore(tmp_path / "cache")
        shutil.rmtree(tmp_path / "cache")
        store.put(_key(5), {"cost": 5.0})
        assert SharedCacheStore(tmp_path / "cache").get(_key(5)) == {"cost": 5.0}

    def test_durable_put_fsyncs(self, tmp_path, monkeypatch):
        """Regression for the documented O_APPEND durability contract:
        ``durable=True`` must fsync each append, the default must not
        (it trades an entry-on-crash for write latency, never
        correctness)."""
        import os as os_module

        synced = []
        real_fsync = os_module.fsync
        monkeypatch.setattr(
            "repro.core.cache_store.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd)),
        )
        fast = SharedCacheStore(tmp_path / "fast")
        fast.put(_key(1), {"cost": 1.0})
        assert synced == []
        durable = SharedCacheStore(tmp_path / "durable", durable=True)
        durable.put(_key(1), {"cost": 1.0})
        assert len(synced) == 1


class TestSharding:
    def test_entries_spread_over_shard_files(self, tmp_path):
        store = SharedCacheStore(tmp_path / "cache", n_shards=8)
        for i in range(64):
            store.put(_key(i), {"cost": float(i)})
        shard_files = list((tmp_path / "cache").glob("shard-*.jsonl"))
        assert len(shard_files) > 1

    def test_mismatched_n_shards_rejected(self, tmp_path):
        SharedCacheStore(tmp_path / "cache", n_shards=4)
        with pytest.raises(CacheStoreError, match="n_shards"):
            SharedCacheStore(tmp_path / "cache", n_shards=8)

    def test_foreign_meta_rejected(self, tmp_path):
        d = tmp_path / "cache"
        d.mkdir()
        (d / "cache-meta.json").write_text('{"format": "other"}')
        with pytest.raises(CacheStoreError, match="not an ArchGym"):
            SharedCacheStore(d)


class TestCrossProcessVisibility:
    def test_write_from_real_subprocess(self, tmp_path):
        directory = str(tmp_path / "cache")
        reader = SharedCacheStore(directory)
        with ProcessPoolExecutor(max_workers=1) as pool:
            assert pool.submit(_put_from_subprocess, directory).result()
        assert reader.get(_key(99)) == {"cost": 3.25}


class TestCorruptionTolerance:
    def test_torn_trailing_line_is_ignored(self, tmp_path):
        store = SharedCacheStore(tmp_path / "cache", n_shards=1)
        store.put(_key(1), {"cost": 1.0})
        shard = tmp_path / "cache" / "shard-000.jsonl"
        with shard.open("ab") as f:
            f.write(b'{"k": "torn')  # a writer died mid-append
        fresh = SharedCacheStore(tmp_path / "cache", n_shards=1)
        assert fresh.get(_key(1)) == {"cost": 1.0}
        assert fresh.get(_key(2)) is None

    def test_corrupt_complete_line_loses_only_that_entry(self, tmp_path):
        store = SharedCacheStore(tmp_path / "cache", n_shards=1)
        store.put(_key(1), {"cost": 1.0})
        shard = tmp_path / "cache" / "shard-000.jsonl"
        with shard.open("ab") as f:
            f.write(b"not json at all\n")
        store.put(_key(2), {"cost": 2.0})
        fresh = SharedCacheStore(tmp_path / "cache", n_shards=1)
        assert fresh.get(_key(1)) == {"cost": 1.0}
        assert fresh.get(_key(2)) == {"cost": 2.0}


class TestServerStoreSpecifics:
    def test_unreachable_server_fails_loudly(self):
        import socket

        with socket.socket() as s:
            s.bind(("127.0.0.1", 0))
            port = s.getsockname()[1]
        store = ServerCacheStore(
            f"http://127.0.0.1:{port}", timeout_s=1.0, retries=0, backoff_s=0.01
        )
        with pytest.raises(ServiceError):
            store.get(_key(1))
        with pytest.raises(ServiceError):
            store.put(_key(1), {"cost": 1.0})

    def test_accepts_existing_client(self):
        from repro.service import ServiceClient

        client = ServiceClient("http://127.0.0.1:1", timeout_s=1.0, retries=0)
        store = ServerCacheStore(client)
        assert store._hosts[0].client is client

    def test_client_with_policy_kwargs_rejected(self):
        """Kwargs alongside a ready-made client would be silently
        discarded — refuse instead."""
        from repro.service import ServiceClient

        client = ServiceClient("http://127.0.0.1:1", timeout_s=1.0, retries=0)
        with pytest.raises(CacheStoreError, match="client_kwargs"):
            ServerCacheStore(client, timeout_s=5.0)


class TestServerStoreReplication:
    """Write-through fan-out and read fail-over across the chain."""

    def test_default_replication_factor_is_min_two(self):
        solo = ServerCacheStore("http://127.0.0.1:1", timeout_s=1.0, retries=0)
        assert solo.replicas == 1
        trio = ServerCacheStore(
            "http://127.0.0.1:1",
            fallbacks=("http://127.0.0.1:2", "http://127.0.0.1:3"),
            timeout_s=1.0, retries=0,
        )
        assert trio.replicas == 2

    def test_replication_factor_clamped_to_chain_length(self):
        store = ServerCacheStore(
            "http://127.0.0.1:1", fallbacks=("http://127.0.0.1:2",),
            replicas=5, timeout_s=1.0, retries=0,
        )
        assert store.replicas == 2

    def test_bad_replication_factor_rejected(self):
        for bad in (0, -1, True, 1.5, "2"):
            with pytest.raises(CacheStoreError, match="replicas"):
                ServerCacheStore(
                    "http://127.0.0.1:1", replicas=bad,
                    timeout_s=1.0, retries=0,
                )

    def test_fallback_urls_normalized_and_deduped(self):
        """Regression: a trailing-slash variant or repeated fallback
        URL used to stay in the chain, so one dead host was probed
        once per duplicate before advancing."""
        store = ServerCacheStore(
            "http://127.0.0.1:1",
            fallbacks=(
                "http://127.0.0.1:1/",  # the primary, slash variant
                "http://127.0.0.1:2",
                "http://127.0.0.1:2/",  # slash-variant duplicate
                "http://127.0.0.1:2",   # exact duplicate
                "http://127.0.0.1:3",
            ),
            timeout_s=1.0, retries=0,
        )
        assert store.replica_urls == [
            "http://127.0.0.1:1",
            "http://127.0.0.1:2",
            "http://127.0.0.1:3",
        ]

    def test_put_fans_out_to_replicas(self):
        with EvaluationService() as a, EvaluationService() as b:
            store = ServerCacheStore(
                a.url, fallbacks=(b.url,), timeout_s=10.0, retries=0
            )
            for i in range(3):
                store.put(_key(i), {"cost": float(i)})
            assert a.cache_size() == 3
            assert b.cache_size() == 3

    def test_replication_factor_one_writes_primary_only(self):
        with EvaluationService() as a, EvaluationService() as b:
            store = ServerCacheStore(
                a.url, fallbacks=(b.url,), replicas=1,
                timeout_s=10.0, retries=0,
            )
            store.put(_key(1), {"cost": 1.0})
            assert a.cache_size() == 1
            assert b.cache_size() == 0

    def test_read_fails_over_to_replica_after_primary_death(self):
        """The entries of a dead cache host are *not* lost: a reader
        that never saw them finds every replicated entry on the next
        living host."""
        a = EvaluationService()
        a.start()
        try:
            with EvaluationService() as b:
                writer = ServerCacheStore(
                    a.url, fallbacks=(b.url,),
                    timeout_s=2.0, retries=0, backoff_s=0.01,
                )
                writer.put(_key(1), {"cost": 1.0})
                writer.put(_key(2), {"cost": 2.0})
                reader = ServerCacheStore(
                    a.url, fallbacks=(b.url,),
                    timeout_s=2.0, retries=0, backoff_s=0.01,
                )
                a.stop()
                assert reader.get(_key(1)) == {"cost": 1.0}
                assert reader.get(_key(2)) == {"cost": 2.0}
                assert len(reader) == 2
        finally:
            a.stop()

    def test_exhausted_chain_raises_transport_error(self):
        import socket

        ports = []
        for _ in range(2):
            with socket.socket() as s:
                s.bind(("127.0.0.1", 0))
                ports.append(s.getsockname()[1])
        store = ServerCacheStore(
            f"http://127.0.0.1:{ports[0]}",
            fallbacks=(f"http://127.0.0.1:{ports[1]}",),
            timeout_s=1.0, retries=0, backoff_s=0.01,
        )
        with pytest.raises(ServiceError):
            store.get(_key(1))
        with pytest.raises(ServiceError):
            store.put(_key(1), {"cost": 1.0})

    def test_get_and_put_memoize_through_one_cleaner(self):
        """Regression: ``get`` used to memoize the server's dict
        un-normalized while ``put`` memoized a cleaned copy, so a
        later put of an equal-but-int-valued dict re-sent the entry.
        Both paths now share one ``{k: float(v)}`` cleaner and the
        re-put short-circuits."""
        with EvaluationService() as svc:
            ServerCacheStore(svc.url, timeout_s=10.0, retries=0).put(
                _key(5), {"cost": 2.0}
            )
            reader = ServerCacheStore(svc.url, timeout_s=10.0, retries=0)
            assert reader.get(_key(5)) == {"cost": 2.0}
            sent_before = reader._hosts[0].client.requests_sent
            reader.put(_key(5), {"cost": 2})  # int-valued, equal cleaned
            assert reader._hosts[0].client.requests_sent == sent_before


class TestKeyEncoding:
    def test_encode_key_is_stable(self):
        assert encode_key(_key(1)) == encode_key(
            canonical_action_key({"m": "a", "x": 1})
        )

    def test_distinct_keys_distinct_encodings(self):
        assert encode_key(_key(1)) != encode_key(_key(2))


# -- the server-memoization path --------------------------------------------------


class _MemoEnv(ArchGymEnv):
    """Deterministic 16-point env the memoization battery serves."""

    env_id = "MemoEnv-v0"

    def __init__(self):
        super().__init__(
            action_space=CompositeSpace(
                [Discrete("x", 0, 7, 1), Categorical("m", ("a", "b"))]
            ),
            observation_metrics=["cost"],
            reward_spec=TargetReward("cost", target=1.0),
        )

    def evaluate(self, action):
        return {"cost": 0.1 + 0.2 + action["x"] + (action["m"] == "a")}


class TestServerMemoizationPath:
    """`/evaluate_batch` memoization and explicit `PUT /cache` must be
    one and the same map: identical keys, identical entries, identical
    hit behavior — a store reader cannot tell which path fed it."""

    def _actions(self, n):
        return [{"x": i % 8, "m": "a" if i % 2 else "b"} for i in range(n)]

    @pytest.fixture()
    def memo_service(self):
        with EvaluationService() as svc:
            svc.register("MemoEnv-v0", _MemoEnv)
            yield svc

    def test_batch_entries_equal_explicit_put_entries(self, memo_service):
        """Feed one server via /evaluate_batch and another via explicit
        PUTs of locally computed metrics: every cache read must agree
        byte-for-byte, and the sizes must match."""
        from repro.service import ServiceClient

        actions = self._actions(6)
        batch_client = ServiceClient(memo_service.url, timeout_s=10.0, retries=0)
        batch_client.evaluate_batch("MemoEnv-v0", actions)

        with EvaluationService() as explicit:
            put_client = ServiceClient(explicit.url, timeout_s=10.0, retries=0)
            env = _MemoEnv()
            for action in actions:
                put_client.cache_put(
                    encode_key(canonical_action_key(action)),
                    env.evaluate(action),
                )
            assert batch_client.cache_size() == put_client.cache_size()
            for action in actions:
                key_str = encode_key(canonical_action_key(action))
                assert batch_client.cache_get(key_str) == put_client.cache_get(
                    key_str
                )

    def test_server_cache_store_reads_memoized_entries(self, memo_service):
        """A ServerCacheStore pointed at a batch-fed server hits the
        memoized entries exactly as if they had been explicitly put."""
        from repro.service import ServiceClient

        actions = self._actions(4)
        client = ServiceClient(memo_service.url, timeout_s=10.0, retries=0)
        batched = client.evaluate_batch("MemoEnv-v0", actions)

        store = ServerCacheStore(memo_service.url, timeout_s=10.0, retries=0)
        assert len(store) == len(actions)
        for action, metrics in zip(actions, batched):
            assert store.get(canonical_action_key(action)) == metrics

    def test_store_puts_count_as_batch_memo_hits(self, memo_service):
        """The inverse direction: entries written through the store
        contract answer batch points without touching the cost model."""
        actions = self._actions(5)
        store = ServerCacheStore(memo_service.url, timeout_s=10.0, retries=0)
        env = _MemoEnv()
        for action in actions:
            store.put(canonical_action_key(action), env.evaluate(action))

        from repro.service import ServiceClient

        client = ServiceClient(memo_service.url, timeout_s=10.0, retries=0)
        batched = client.evaluate_batch("MemoEnv-v0", actions)
        health = client.healthz()
        assert health["evaluations"] == 0  # every point was a memo hit
        assert health["memo_hits"] == len(actions)
        assert batched == [env.evaluate(a) for a in actions]
