"""Tests for the file-backed cross-process shared evaluation cache."""

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core.cache_store import SharedCacheStore, encode_key
from repro.core.env import canonical_action_key
from repro.core.errors import ArchGymError, CacheStoreError


def _key(i):
    return canonical_action_key({"x": i, "m": "a"})


def _put_from_subprocess(directory):
    """Module-level so it pickles into a worker process."""
    store = SharedCacheStore(directory)
    store.put(_key(99), {"cost": 3.25})
    return True


class TestBasics:
    def test_put_get_roundtrip(self, tmp_path):
        store = SharedCacheStore(tmp_path / "cache")
        store.put(_key(1), {"cost": 2.5, "power": 0.125})
        assert store.get(_key(1)) == {"cost": 2.5, "power": 0.125}

    def test_miss_returns_none(self, tmp_path):
        store = SharedCacheStore(tmp_path / "cache")
        assert store.get(_key(7)) is None

    def test_floats_roundtrip_exactly(self, tmp_path):
        store = SharedCacheStore(tmp_path / "cache")
        value = 0.1 + 0.2  # not representable exactly; must survive JSON
        store.put(_key(2), {"cost": value})
        fresh = SharedCacheStore(tmp_path / "cache")
        assert fresh.get(_key(2))["cost"] == value

    def test_get_returns_a_copy(self, tmp_path):
        store = SharedCacheStore(tmp_path / "cache")
        store.put(_key(3), {"cost": 1.0})
        store.get(_key(3))["cost"] = 999.0
        assert store.get(_key(3))["cost"] == 1.0

    def test_len_counts_distinct_keys(self, tmp_path):
        store = SharedCacheStore(tmp_path / "cache")
        for i in range(10):
            store.put(_key(i), {"cost": float(i)})
        store.put(_key(0), {"cost": 0.0})  # idempotent re-put
        assert len(store) == 10

    def test_bad_n_shards_rejected(self, tmp_path):
        with pytest.raises(ArchGymError):
            SharedCacheStore(tmp_path / "cache", n_shards=0)


class TestSharding:
    def test_entries_spread_over_shard_files(self, tmp_path):
        store = SharedCacheStore(tmp_path / "cache", n_shards=8)
        for i in range(64):
            store.put(_key(i), {"cost": float(i)})
        shard_files = list((tmp_path / "cache").glob("shard-*.jsonl"))
        assert len(shard_files) > 1

    def test_mismatched_n_shards_rejected(self, tmp_path):
        SharedCacheStore(tmp_path / "cache", n_shards=4)
        with pytest.raises(CacheStoreError, match="n_shards"):
            SharedCacheStore(tmp_path / "cache", n_shards=8)

    def test_foreign_meta_rejected(self, tmp_path):
        d = tmp_path / "cache"
        d.mkdir()
        (d / "cache-meta.json").write_text('{"format": "other"}')
        with pytest.raises(CacheStoreError, match="not an ArchGym"):
            SharedCacheStore(d)


class TestCrossProcessVisibility:
    def test_persistence_across_store_instances(self, tmp_path):
        SharedCacheStore(tmp_path / "cache").put(_key(5), {"cost": 5.0})
        assert SharedCacheStore(tmp_path / "cache").get(_key(5)) == {"cost": 5.0}

    def test_entries_written_after_open_become_visible(self, tmp_path):
        reader = SharedCacheStore(tmp_path / "cache")
        assert reader.get(_key(6)) is None  # prime the reader's offsets
        writer = SharedCacheStore(tmp_path / "cache")
        writer.put(_key(6), {"cost": 6.0})
        assert reader.get(_key(6)) == {"cost": 6.0}  # tail re-read, no reopen

    def test_write_from_real_subprocess(self, tmp_path):
        directory = str(tmp_path / "cache")
        reader = SharedCacheStore(directory)
        with ProcessPoolExecutor(max_workers=1) as pool:
            assert pool.submit(_put_from_subprocess, directory).result()
        assert reader.get(_key(99)) == {"cost": 3.25}


class TestCorruptionTolerance:
    def test_torn_trailing_line_is_ignored(self, tmp_path):
        store = SharedCacheStore(tmp_path / "cache", n_shards=1)
        store.put(_key(1), {"cost": 1.0})
        shard = tmp_path / "cache" / "shard-000.jsonl"
        with shard.open("ab") as f:
            f.write(b'{"k": "torn')  # a writer died mid-append
        fresh = SharedCacheStore(tmp_path / "cache", n_shards=1)
        assert fresh.get(_key(1)) == {"cost": 1.0}
        assert fresh.get(_key(2)) is None

    def test_corrupt_complete_line_loses_only_that_entry(self, tmp_path):
        store = SharedCacheStore(tmp_path / "cache", n_shards=1)
        store.put(_key(1), {"cost": 1.0})
        shard = tmp_path / "cache" / "shard-000.jsonl"
        with shard.open("ab") as f:
            f.write(b"not json at all\n")
        store.put(_key(2), {"cost": 2.0})
        fresh = SharedCacheStore(tmp_path / "cache", n_shards=1)
        assert fresh.get(_key(1)) == {"cost": 1.0}
        assert fresh.get(_key(2)) == {"cost": 2.0}


class TestKeyEncoding:
    def test_encode_key_is_stable(self):
        assert encode_key(_key(1)) == encode_key(
            canonical_action_key({"m": "a", "x": 1})
        )

    def test_distinct_keys_distinct_encodings(self):
        assert encode_key(_key(1)) != encode_key(_key(2))
