"""DNN layer shapes shared by the Timeloop and MAESTRO substrates.

The paper evaluates TimeloopGym on AlexNet / MobileNet / ResNet-50 and
MaestroGym on ResNet18 / VGG16 / MobileNet. Layer tables below follow the
published architectures; spatially repeated layers carry a ``repeat``
count so whole-network costs remain faithful without evaluating
duplicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.errors import SimulationError

__all__ = ["ConvLayer", "DNN_WORKLOADS", "get_workload", "WORKLOAD_NAMES"]


@dataclass(frozen=True)
class ConvLayer:
    """One convolution layer in Timeloop's 7-loop nomenclature.

    ``K`` output channels, ``C`` input channels, ``R x S`` filter,
    ``P x Q`` output feature map, ``stride``, batch ``N``. ``depthwise``
    marks MobileNet-style per-channel convolutions (K == C, no channel
    reduction). Fully connected layers are convolutions with P=Q=R=S=1.
    """

    name: str
    K: int
    C: int
    R: int
    S: int
    P: int
    Q: int
    stride: int = 1
    N: int = 1
    depthwise: bool = False
    repeat: int = 1

    def __post_init__(self) -> None:
        for attr in ("K", "C", "R", "S", "P", "Q", "stride", "N", "repeat"):
            if getattr(self, attr) < 1:
                raise SimulationError(f"layer {self.name!r}: {attr} must be >= 1")
        if self.depthwise and self.K != self.C:
            raise SimulationError(f"depthwise layer {self.name!r} needs K == C")

    @property
    def input_h(self) -> int:
        return (self.P - 1) * self.stride + self.R

    @property
    def input_w(self) -> int:
        return (self.Q - 1) * self.stride + self.S

    @property
    def macs(self) -> int:
        """Multiply-accumulates for one instance of this layer."""
        per_output = self.R * self.S * (1 if self.depthwise else self.C)
        return self.N * self.K * self.P * self.Q * per_output

    @property
    def weight_words(self) -> int:
        channels = 1 if self.depthwise else self.C
        return self.K * channels * self.R * self.S

    @property
    def input_words(self) -> int:
        return self.N * self.C * self.input_h * self.input_w

    @property
    def output_words(self) -> int:
        return self.N * self.K * self.P * self.Q


def _alexnet() -> List[ConvLayer]:
    return [
        ConvLayer("conv1", K=96, C=3, R=11, S=11, P=55, Q=55, stride=4),
        ConvLayer("conv2", K=256, C=96, R=5, S=5, P=27, Q=27),
        ConvLayer("conv3", K=384, C=256, R=3, S=3, P=13, Q=13),
        ConvLayer("conv4", K=384, C=384, R=3, S=3, P=13, Q=13),
        ConvLayer("conv5", K=256, C=384, R=3, S=3, P=13, Q=13),
    ]


def _resnet50() -> List[ConvLayer]:
    # representative bottleneck stages with repeat counts
    return [
        ConvLayer("conv1", K=64, C=3, R=7, S=7, P=112, Q=112, stride=2),
        ConvLayer("res2_1x1a", K=64, C=64, R=1, S=1, P=56, Q=56, repeat=3),
        ConvLayer("res2_3x3", K=64, C=64, R=3, S=3, P=56, Q=56, repeat=3),
        ConvLayer("res2_1x1b", K=256, C=64, R=1, S=1, P=56, Q=56, repeat=3),
        ConvLayer("res3_3x3", K=128, C=128, R=3, S=3, P=28, Q=28, repeat=4),
        ConvLayer("res3_1x1b", K=512, C=128, R=1, S=1, P=28, Q=28, repeat=4),
        ConvLayer("res4_3x3", K=256, C=256, R=3, S=3, P=14, Q=14, repeat=6),
        ConvLayer("res4_1x1b", K=1024, C=256, R=1, S=1, P=14, Q=14, repeat=6),
        ConvLayer("res5_3x3", K=512, C=512, R=3, S=3, P=7, Q=7, repeat=3),
        ConvLayer("res5_1x1b", K=2048, C=512, R=1, S=1, P=7, Q=7, repeat=3),
    ]


def _resnet18() -> List[ConvLayer]:
    return [
        ConvLayer("conv1", K=64, C=3, R=7, S=7, P=112, Q=112, stride=2),
        ConvLayer("res2", K=64, C=64, R=3, S=3, P=56, Q=56, repeat=4),
        ConvLayer("res3", K=128, C=128, R=3, S=3, P=28, Q=28, repeat=4),
        ConvLayer("res4", K=256, C=256, R=3, S=3, P=14, Q=14, repeat=4),
        ConvLayer("res5", K=512, C=512, R=3, S=3, P=7, Q=7, repeat=4),
    ]


def _mobilenet() -> List[ConvLayer]:
    return [
        ConvLayer("conv1", K=32, C=3, R=3, S=3, P=112, Q=112, stride=2),
        ConvLayer("dw2", K=32, C=32, R=3, S=3, P=112, Q=112, depthwise=True),
        ConvLayer("pw2", K=64, C=32, R=1, S=1, P=112, Q=112),
        ConvLayer("dw3", K=128, C=128, R=3, S=3, P=56, Q=56, depthwise=True, repeat=2),
        ConvLayer("pw3", K=128, C=128, R=1, S=1, P=56, Q=56, repeat=2),
        ConvLayer("dw4", K=256, C=256, R=3, S=3, P=28, Q=28, depthwise=True, repeat=2),
        ConvLayer("pw4", K=256, C=256, R=1, S=1, P=28, Q=28, repeat=2),
        ConvLayer("dw5", K=512, C=512, R=3, S=3, P=14, Q=14, depthwise=True, repeat=5),
        ConvLayer("pw5", K=512, C=512, R=1, S=1, P=14, Q=14, repeat=5),
        ConvLayer("dw6", K=1024, C=1024, R=3, S=3, P=7, Q=7, depthwise=True),
        ConvLayer("pw6", K=1024, C=1024, R=1, S=1, P=7, Q=7),
    ]


def _vgg16() -> List[ConvLayer]:
    return [
        ConvLayer("conv1_1", K=64, C=3, R=3, S=3, P=224, Q=224),
        ConvLayer("conv1_2", K=64, C=64, R=3, S=3, P=224, Q=224),
        ConvLayer("conv2", K=128, C=128, R=3, S=3, P=112, Q=112, repeat=2),
        ConvLayer("conv3", K=256, C=256, R=3, S=3, P=56, Q=56, repeat=3),
        ConvLayer("conv4", K=512, C=512, R=3, S=3, P=28, Q=28, repeat=3),
        ConvLayer("conv5", K=512, C=512, R=3, S=3, P=14, Q=14, repeat=3),
    ]


DNN_WORKLOADS: Dict[str, Tuple[ConvLayer, ...]] = {
    "alexnet": tuple(_alexnet()),
    "resnet50": tuple(_resnet50()),
    "resnet18": tuple(_resnet18()),
    "mobilenet": tuple(_mobilenet()),
    "vgg16": tuple(_vgg16()),
}

#: Names accepted by :func:`get_workload`.
WORKLOAD_NAMES = tuple(DNN_WORKLOADS)


def get_workload(name: str) -> Tuple[ConvLayer, ...]:
    """Return the layer tuple for a named DNN workload."""
    try:
        return DNN_WORKLOADS[name]
    except KeyError:
        raise SimulationError(
            f"unknown DNN workload {name!r}; have {sorted(DNN_WORKLOADS)}"
        ) from None
