"""Shared DNN workload definitions for the accelerator substrates."""

from repro.dnn.layers import DNN_WORKLOADS, WORKLOAD_NAMES, ConvLayer, get_workload

__all__ = ["DNN_WORKLOADS", "WORKLOAD_NAMES", "ConvLayer", "get_workload"]
