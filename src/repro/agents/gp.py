"""A small exact Gaussian process regressor (numpy/scipy).

Backs the Bayesian optimization agent: RBF kernel on unit-vector
encodings, Cholesky-based exact inference, robust target standardization
(median/IQR with clipping) so the REWARD_CAP outliers of target-style
rewards don't destroy the fit.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from repro.core.errors import AgentError

__all__ = ["GaussianProcess", "robust_standardize"]


def robust_standardize(y: np.ndarray, clip: float = 5.0) -> Tuple[np.ndarray, float, float]:
    """Standardize with median/IQR and clip to ``[-clip, clip]``.

    Returns ``(standardized, center, scale)``. Using the IQR instead of
    the standard deviation keeps a handful of capped-reward outliers
    from flattening the rest of the response surface.
    """
    center = float(np.median(y))
    q75, q25 = np.percentile(y, [75, 25])
    scale = float(q75 - q25) / 1.349  # IQR of a unit normal
    if scale <= 1e-12:
        scale = float(np.std(y))
    if scale <= 1e-12:
        scale = 1.0
    z = np.clip((y - center) / scale, -clip, clip)
    return z, center, scale


class GaussianProcess:
    """Exact GP regression with an RBF kernel.

    ``k(x, x') = signal^2 * exp(-||x - x'||^2 / (2 * lengthscale^2))``
    """

    def __init__(
        self,
        lengthscale: float = 0.3,
        signal: float = 1.0,
        noise: float = 1e-3,
    ) -> None:
        if lengthscale <= 0 or signal <= 0 or noise <= 0:
            raise AgentError("GP hyperparameters must be positive")
        self.lengthscale = lengthscale
        self.signal = signal
        self.noise = noise
        self._X: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._cho = None

    # -- kernel ------------------------------------------------------------------

    def _kernel(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        sq = (
            np.sum(A**2, axis=1)[:, None]
            + np.sum(B**2, axis=1)[None, :]
            - 2.0 * A @ B.T
        )
        np.maximum(sq, 0.0, out=sq)
        return self.signal**2 * np.exp(-sq / (2.0 * self.lengthscale**2))

    # -- inference ----------------------------------------------------------------

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise AgentError(f"bad GP training shapes: X{X.shape}, y{y.shape}")
        if len(X) == 0:
            raise AgentError("cannot fit a GP on zero observations")
        K = self._kernel(X, X)
        K[np.diag_indices_from(K)] += self.noise
        self._cho = cho_factor(K, lower=True)
        self._alpha = cho_solve(self._cho, y)
        self._X = X
        return self

    def predict(self, Xs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Posterior mean and variance at query points."""
        if self._X is None or self._alpha is None:
            raise AgentError("GP is not fitted")
        Xs = np.asarray(Xs, dtype=np.float64)
        Ks = self._kernel(Xs, self._X)
        mean = Ks @ self._alpha
        v = cho_solve(self._cho, Ks.T)
        var = self.signal**2 - np.sum(Ks * v.T, axis=1)
        np.maximum(var, 1e-12, out=var)
        return mean, var

    @property
    def n_observations(self) -> int:
        return 0 if self._X is None else len(self._X)
