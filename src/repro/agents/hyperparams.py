"""Hyperparameter grids for the paper's sweep experiments (§6.1).

The "hyperparameter lottery" experiments sweep each agent's Q3 knobs
and report the *distribution* of outcomes. ``HYPERPARAM_GRIDS`` defines
the per-agent axes; :func:`sample_hyperparams` draws random
configurations (the paper's sweeps are random rather than exhaustive at
21,600 experiments), and :func:`make_agent` is the factory every bench
and example uses.
"""

from __future__ import annotations

from itertools import product
from typing import Any, Dict, Iterator, List

import numpy as np

from repro.agents.aco import ACOAgent
from repro.agents.base import Agent
from repro.agents.bo import BOAgent
from repro.agents.ga import GAAgent
from repro.agents.gamma import GammaAgent
from repro.agents.offline import OfflineAgent
from repro.agents.random_walker import RandomWalkerAgent
from repro.agents.rl import RLAgent
from repro.core.errors import AgentError
from repro.core.spaces import CompositeSpace

__all__ = [
    "AGENT_NAMES",
    "HYPERPARAM_GRIDS",
    "make_agent",
    "sample_hyperparams",
    "iter_hyperparams",
]

#: The five agents the paper seeds ArchGym with (§3.2).
AGENT_NAMES = ("aco", "bo", "ga", "rw", "rl")

_AGENT_CLASSES = {
    "aco": ACOAgent,
    "bo": BOAgent,
    "ga": GAAgent,
    "rw": RandomWalkerAgent,
    "rl": RLAgent,
    "gamma": GammaAgent,
    "offline": OfflineAgent,
}

HYPERPARAM_GRIDS: Dict[str, Dict[str, List[Any]]] = {
    "rw": {
        "locality": [0.0, 0.2, 0.5, 0.8],
    },
    "ga": {
        "population_size": [8, 16, 32],
        "mutation_rate": [0.01, 0.05, 0.1, 0.25, 0.5],
        "crossover_rate": [0.3, 0.6, 0.9],
        "elite_frac": [0.0, 0.1, 0.2],
        "tournament_size": [2, 3, 5],
    },
    "aco": {
        "n_ants": [4, 8, 16],
        "evaporation_rate": [0.02, 0.1, 0.3, 0.6],
        "greediness": [0.0, 0.1, 0.3, 0.6],
        "alpha": [0.5, 1.0, 2.0],
    },
    "bo": {
        "acquisition": ["ei", "ucb", "pi"],
        "lengthscale": [0.1, 0.2, 0.3, 0.5],
        "kappa": [1.0, 2.0, 4.0],
        "n_init": [4, 8, 16],
    },
    "rl": {
        "algo": ["reinforce", "ppo"],
        "lr": [0.005, 0.02, 0.05, 0.1],
        "entropy_coef": [0.0, 0.01, 0.05],
        "batch_size": [8, 16, 32],
        "hidden_size": [16, 32, 64],
    },
    "gamma": {
        "population_size": [8, 16, 32],
        "mutation_rate": [0.05, 0.1, 0.25],
        "growth_rate": [0.1, 0.3, 0.5],
        "reorder_rate": [0.1, 0.3, 0.5],
        "max_age": [2, 4, 8],
    },
    "offline": {
        "exploration": [0.05, 0.1, 0.25],
        "candidate_pool": [128, 512],
        "refit_every": [8, 16, 32],
        "n_estimators": [10, 20],
    },
}


def make_agent(
    name: str, space: CompositeSpace, seed: int = 0, **hyperparams: Any
) -> Agent:
    """Instantiate an agent by short name (``aco``/``bo``/``ga``/``rw``/
    ``rl``/``gamma``)."""
    try:
        cls = _AGENT_CLASSES[name]
    except KeyError:
        raise AgentError(
            f"unknown agent {name!r}; valid: {sorted(_AGENT_CLASSES)}"
        ) from None
    return cls(space, seed=seed, **hyperparams)


def sample_hyperparams(name: str, rng: np.random.Generator) -> Dict[str, Any]:
    """Draw one random hyperparameter configuration from the agent's grid."""
    try:
        grid = HYPERPARAM_GRIDS[name]
    except KeyError:
        raise AgentError(
            f"no hyperparameter grid for agent {name!r}; have {sorted(HYPERPARAM_GRIDS)}"
        ) from None
    return {k: values[int(rng.integers(len(values)))] for k, values in grid.items()}


def iter_hyperparams(name: str, limit: int = 0) -> Iterator[Dict[str, Any]]:
    """Iterate the agent's full hyperparameter grid (optionally capped)."""
    try:
        grid = HYPERPARAM_GRIDS[name]
    except KeyError:
        raise AgentError(
            f"no hyperparameter grid for agent {name!r}; have {sorted(HYPERPARAM_GRIDS)}"
        ) from None
    keys = sorted(grid)
    count = 0
    for combo in product(*(grid[k] for k in keys)):
        if limit and count >= limit:
            return
        yield dict(zip(keys, combo))
        count += 1
