"""Genetic algorithm agent (paper §3.2, Table 2).

The policy is the *genome* — each individual is the index-vector
encoding of one design point. The generational loop is folded into the
propose/observe interface: proposals drain the current generation's
un-evaluated individuals; once the generation is fully scored, the next
one is bred with tournament selection, uniform crossover, per-gene
mutation, and elitism (Q3 knobs: ``mutation_rate``, ``crossover_rate``,
``population_size``, ``elite_frac``, ``tournament_size``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence

import numpy as np

from repro.agents.base import Agent
from repro.core.errors import AgentError
from repro.core.spaces import CompositeSpace

__all__ = ["GAAgent"]


class GAAgent(Agent):
    """Generational GA over index-encoded genomes."""

    name = "ga"

    def __init__(
        self,
        space: CompositeSpace,
        seed: int = 0,
        population_size: int = 20,
        mutation_rate: float = 0.1,
        crossover_rate: float = 0.8,
        elite_frac: float = 0.1,
        tournament_size: int = 3,
    ) -> None:
        if population_size < 2:
            raise AgentError("population_size must be >= 2")
        if not 0.0 <= mutation_rate <= 1.0:
            raise AgentError("mutation_rate must be in [0, 1]")
        if not 0.0 <= crossover_rate <= 1.0:
            raise AgentError("crossover_rate must be in [0, 1]")
        if not 0.0 <= elite_frac < 1.0:
            raise AgentError("elite_frac must be in [0, 1)")
        if tournament_size < 1:
            raise AgentError("tournament_size must be >= 1")
        super().__init__(
            space, seed,
            population_size=population_size,
            mutation_rate=mutation_rate,
            crossover_rate=crossover_rate,
            elite_frac=elite_frac,
            tournament_size=tournament_size,
        )
        self.population_size = population_size
        self.mutation_rate = mutation_rate
        self.crossover_rate = crossover_rate
        self.elite_count = max(1, int(round(elite_frac * population_size))) if elite_frac > 0 else 0
        self.tournament_size = tournament_size

        self._cards = np.array(space.cardinalities, dtype=np.int64)
        # current generation: genomes + fitness (nan = not yet evaluated)
        self._genomes: List[np.ndarray] = [self._random_genome() for _ in range(population_size)]
        self._fitness = np.full(population_size, np.nan)
        self._cursor = 0          # next individual to evaluate
        self.generation = 0

    # -- genome helpers -------------------------------------------------------------

    def _random_genome(self) -> np.ndarray:
        return np.array(
            [self.rng.integers(c) for c in self.space.cardinalities], dtype=np.int64
        )

    def _mutate(self, genome: np.ndarray) -> np.ndarray:
        out = genome.copy()
        for i, c in enumerate(self._cards):
            if c > 1 and self.rng.random() < self.mutation_rate:
                shift = 1 + self.rng.integers(c - 1)
                out[i] = (out[i] + shift) % c
        return out

    def _crossover(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        mask = self.rng.random(len(a)) < 0.5
        return np.where(mask, a, b)

    def _tournament(self) -> np.ndarray:
        idx = self.rng.integers(self.population_size, size=self.tournament_size)
        best = idx[np.argmax(self._fitness[idx])]
        return self._genomes[int(best)]

    # -- generational step ------------------------------------------------------------

    def _evolve(self) -> None:
        order = np.argsort(-self._fitness)  # descending fitness
        next_genomes: List[np.ndarray] = [
            self._genomes[int(i)].copy() for i in order[: self.elite_count]
        ]
        while len(next_genomes) < self.population_size:
            parent_a = self._tournament()
            if self.rng.random() < self.crossover_rate:
                parent_b = self._tournament()
                child = self._crossover(parent_a, parent_b)
            else:
                child = parent_a.copy()
            next_genomes.append(self._mutate(child))
        self._genomes = next_genomes
        self._fitness = np.full(self.population_size, np.nan)
        self._cursor = 0
        self.generation += 1

    # -- Agent interface ----------------------------------------------------------------

    def propose(self) -> Dict[str, Any]:
        if self._cursor >= self.population_size:
            self._evolve()
        return self.space.decode(self._genomes[self._cursor])

    def observe(self, action: Mapping[str, Any], fitness: float,
                metrics: Mapping[str, float]) -> None:
        if self._cursor >= self.population_size:
            raise AgentError("observe() without matching propose()")
        self._fitness[self._cursor] = fitness
        self._cursor += 1

    # -- generation-native interface ----------------------------------------------

    def propose_batch(self) -> List[Dict[str, Any]]:
        """The un-evaluated remainder of the current generation.

        Breeding draws randomness only inside :meth:`_evolve` and
        decoding draws none, so emitting the whole remainder at once
        consumes the RNG stream exactly as the serial propose/observe
        interleaving would — a batched run stays byte-identical.
        """
        if self._cursor >= self.population_size:
            self._evolve()
        return [self.space.decode(g) for g in self._genomes[self._cursor:]]

    def observe_batch(self, actions: Sequence[Mapping[str, Any]],
                      fitnesses: Sequence[float],
                      metrics_list: Sequence[Mapping[str, float]]) -> None:
        """Score an evaluated prefix of the proposed generation."""
        if not (len(actions) == len(fitnesses) == len(metrics_list)):
            raise AgentError("observe_batch arguments must align")
        if self._cursor + len(fitnesses) > self.population_size:
            raise AgentError("observe_batch() without matching propose_batch()")
        if fitnesses:
            end = self._cursor + len(fitnesses)
            self._fitness[self._cursor:end] = fitnesses
            self._cursor = end
