"""Data-driven offline optimization agent (paper §3.4, §7, §8).

The paper motivates ArchGym's standardized datasets with data-driven
offline methods (PRIME [57], offline RL [59]): instead of querying the
simulator, learn a surrogate of the cost surface from *logged*
trajectories and optimize against it, spending real simulator queries
only to verify candidates.

``OfflineAgent`` implements that loop inside the standard Q1/Q2
interface:

1. **warm start** — it is constructed from an
   :class:`~repro.core.dataset.ArchGymDataset` of prior explorations
   (any mix of agents — diversity helps, §7.3),
2. **surrogate** — a random-forest regressor fit on (action, fitness),
3. **propose** — maximize the surrogate over a candidate pool, mixing
   in random exploration with probability ``exploration``,
4. **observe** — every real evaluation is appended to the training set
   and the surrogate refits every ``refit_every`` observations.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.agents.base import Agent
from repro.core.dataset import ArchGymDataset
from repro.core.errors import AgentError
from repro.core.spaces import CompositeSpace
from repro.proxy.forest import RandomForestRegressor

__all__ = ["OfflineAgent"]


class OfflineAgent(Agent):
    """Surrogate-guided search warm-started from logged exploration data."""

    name = "offline"

    def __init__(
        self,
        space: CompositeSpace,
        seed: int = 0,
        dataset: Optional[ArchGymDataset] = None,
        exploration: float = 0.1,
        candidate_pool: int = 512,
        refit_every: int = 16,
        n_estimators: int = 20,
        max_depth: int = 12,
    ) -> None:
        if not 0.0 <= exploration <= 1.0:
            raise AgentError("exploration must be in [0, 1]")
        if candidate_pool < 1 or refit_every < 1:
            raise AgentError("candidate_pool and refit_every must be >= 1")
        super().__init__(
            space, seed,
            exploration=exploration, candidate_pool=candidate_pool,
            refit_every=refit_every, n_estimators=n_estimators,
            max_depth=max_depth,
        )
        self.exploration = exploration
        self.candidate_pool = candidate_pool
        self.refit_every = refit_every
        self._forest = RandomForestRegressor(
            n_estimators=n_estimators, max_depth=max_depth,
            max_features=None, seed=seed,
        )
        self._X: List[np.ndarray] = []
        self._y: List[float] = []
        self._since_refit = 0
        self._fitted = False
        if dataset is not None and len(dataset) > 0:
            self.ingest(dataset)

    # -- offline data -----------------------------------------------------------------

    def ingest(self, dataset: ArchGymDataset) -> None:
        """Add logged transitions as surrogate training data.

        Rewards in the dataset are assumed maximize-me; environments with
        lower-is-better rewards should be ingested as negated rewards
        (``Transition.reward`` is raw, so we negate nothing here — the
        caller controls orientation, matching :func:`run_agent`).
        """
        for t in dataset:
            self._X.append(self.space.to_unit_vector(t.action))
            self._y.append(float(t.reward))
        self._refit()

    @property
    def n_training_points(self) -> int:
        return len(self._y)

    def _refit(self) -> None:
        if not self._X:
            return
        X = np.stack(self._X)
        y = np.asarray(self._y)
        # clip reward outliers (capped target rewards) to stabilize the fit
        lo, hi = np.percentile(y, [1, 99])
        self._forest.fit(X, np.clip(y, lo, hi))
        self._fitted = True
        self._since_refit = 0

    # -- Agent interface ----------------------------------------------------------------

    def propose(self) -> Dict[str, Any]:
        if not self._fitted or self.rng.random() < self.exploration:
            return self.space.sample(self.rng)
        candidates = [self.space.sample(self.rng) for _ in range(self.candidate_pool)]
        C = np.stack([self.space.to_unit_vector(a) for a in candidates])
        scores = self._forest.predict(C)
        return candidates[int(np.argmax(scores))]

    def observe(self, action: Mapping[str, Any], fitness: float,
                metrics: Mapping[str, float]) -> None:
        self._X.append(self.space.to_unit_vector(action))
        self._y.append(float(fitness))
        self._since_refit += 1
        if self._since_refit >= self.refit_every:
            self._refit()
