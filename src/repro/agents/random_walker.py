"""Random walker agent (paper §3.2, [106]).

Pure random search with a random number generator as its policy. An
optional ``locality`` hyperparameter interpolates toward a hill-climbing
walk: with probability ``locality`` the next proposal is a one-parameter
neighbor of the best design seen so far instead of a uniform sample.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional

from repro.agents.base import Agent
from repro.core.errors import AgentError
from repro.core.spaces import CompositeSpace

__all__ = ["RandomWalkerAgent"]


class RandomWalkerAgent(Agent):
    """Uniform random search, optionally biased toward the incumbent."""

    name = "rw"

    def __init__(self, space: CompositeSpace, seed: int = 0, locality: float = 0.0):
        if not 0.0 <= locality <= 1.0:
            raise AgentError("locality must be in [0, 1]")
        super().__init__(space, seed, locality=locality)
        self.locality = locality
        self._best_action: Optional[Dict[str, Any]] = None
        self._best_fitness = float("-inf")

    def propose(self) -> Dict[str, Any]:
        if self._best_action is not None and self.rng.random() < self.locality:
            return self.space.neighbors(self._best_action, self.rng, n=1)[0]
        return self.space.sample(self.rng)

    def observe(self, action: Mapping[str, Any], fitness: float,
                metrics: Mapping[str, float]) -> None:
        if fitness > self._best_fitness:
            self._best_fitness = fitness
            self._best_action = dict(action)
