"""Reinforcement learning agent (paper §3.2, Table 2).

The policy is a small MLP (numpy forward/backward, Adam optimizer)
producing a *factorized categorical* distribution — one softmax head per
design parameter. Architecture DSE episodes are single-step (§3.3:
every ``step`` evaluates one design), so the network conditions on a
constant context and learning reduces to policy-gradient bandit
optimization, in two flavours:

- ``algo="reinforce"`` — REINFORCE with within-batch advantage
  standardization and an entropy bonus,
- ``algo="ppo"`` — PPO's clipped surrogate objective with multiple
  epochs per batch (the formulation the paper cites [88]).

RL's well-known sample inefficiency (paper §6.2) emerges naturally: the
policy only improves after whole batches of simulator queries.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from repro.agents.base import Agent
from repro.core.errors import AgentError
from repro.core.spaces import CompositeSpace

__all__ = ["RLAgent"]


class _Adam:
    """Adam optimizer over a list of numpy parameter arrays."""

    def __init__(self, params: List[np.ndarray], lr: float):
        self.params = params
        self.lr = lr
        self.m = [np.zeros_like(p) for p in params]
        self.v = [np.zeros_like(p) for p in params]
        self.t = 0
        self.beta1, self.beta2, self.eps = 0.9, 0.999, 1e-8

    def step(self, grads: List[np.ndarray]) -> None:
        self.t += 1
        for p, g, m, v in zip(self.params, grads, self.m, self.v):
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * g * g
            m_hat = m / (1 - self.beta1**self.t)
            v_hat = v / (1 - self.beta2**self.t)
            p += self.lr * m_hat / (np.sqrt(v_hat) + self.eps)  # gradient ascent


class _PolicyNet:
    """Constant-context MLP: 1 -> hidden (tanh) -> concatenated logits."""

    def __init__(self, hidden: int, n_logits: int, rng: np.random.Generator):
        scale = 0.1
        self.w1 = rng.normal(0, scale, size=(hidden, 1))
        self.b1 = np.zeros(hidden)
        self.w2 = rng.normal(0, scale, size=(n_logits, hidden))
        self.b2 = np.zeros(n_logits)

    @property
    def params(self) -> List[np.ndarray]:
        return [self.w1, self.b1, self.w2, self.b2]

    def forward(self) -> Tuple[np.ndarray, np.ndarray]:
        """Returns (logits, hidden_activations)."""
        h = np.tanh(self.w1[:, 0] + self.b1)
        logits = self.w2 @ h + self.b2
        return logits, h

    def backward(self, g_logits: np.ndarray, h: np.ndarray) -> List[np.ndarray]:
        """Gradients of a scalar objective wrt params, given d(obj)/d(logits)."""
        gw2 = np.outer(g_logits, h)
        gb2 = g_logits
        gh = self.w2.T @ g_logits
        gpre = gh * (1.0 - h * h)
        gw1 = gpre[:, None]  # input is the constant 1.0
        gb1 = gpre
        return [gw1, gb1, gw2, gb2]


class RLAgent(Agent):
    """Policy-gradient search over the factorized design distribution."""

    name = "rl"

    def __init__(
        self,
        space: CompositeSpace,
        seed: int = 0,
        algo: str = "reinforce",
        lr: float = 0.05,
        hidden_size: int = 32,
        entropy_coef: float = 0.01,
        batch_size: int = 16,
        ppo_epochs: int = 4,
        clip_eps: float = 0.2,
    ) -> None:
        if algo not in ("reinforce", "ppo"):
            raise AgentError("algo must be 'reinforce' or 'ppo'")
        if lr <= 0 or batch_size < 1 or hidden_size < 1:
            raise AgentError("lr, batch_size and hidden_size must be positive")
        if not 0.0 < clip_eps < 1.0:
            raise AgentError("clip_eps must be in (0, 1)")
        super().__init__(
            space, seed,
            algo=algo, lr=lr, hidden_size=hidden_size,
            entropy_coef=entropy_coef, batch_size=batch_size,
            ppo_epochs=ppo_epochs, clip_eps=clip_eps,
        )
        self.algo = algo
        self.entropy_coef = entropy_coef
        self.batch_size = batch_size
        self.ppo_epochs = ppo_epochs
        self.clip_eps = clip_eps

        self._cards = space.cardinalities
        self._offsets = np.concatenate([[0], np.cumsum(self._cards)])
        self.net = _PolicyNet(hidden_size, int(self._offsets[-1]), self.rng)
        self.opt = _Adam(self.net.params, lr)
        self._batch: List[Tuple[np.ndarray, float]] = []  # (indices, fitness)
        self.updates = 0

    # -- distribution helpers --------------------------------------------------------

    def _dim_probs(self, logits: np.ndarray) -> List[np.ndarray]:
        probs = []
        for i, c in enumerate(self._cards):
            z = logits[self._offsets[i]: self._offsets[i + 1]]
            z = z - z.max()
            e = np.exp(z)
            probs.append(e / e.sum())
        return probs

    def _log_prob(self, probs: List[np.ndarray], indices: np.ndarray) -> float:
        return float(sum(np.log(p[i] + 1e-12) for p, i in zip(probs, indices)))

    # -- Agent interface ----------------------------------------------------------------

    def propose(self) -> Dict[str, Any]:
        logits, __ = self.net.forward()
        probs = self._dim_probs(logits)
        indices = np.array(
            [self.rng.choice(len(p), p=p) for p in probs], dtype=np.int64
        )
        return self.space.decode(indices)

    def observe(self, action: Mapping[str, Any], fitness: float,
                metrics: Mapping[str, float]) -> None:
        self._batch.append((self.space.encode(action), float(fitness)))
        if len(self._batch) >= self.batch_size:
            self._update()
            self._batch = []

    # -- policy-gradient updates -----------------------------------------------------------

    def _advantages(self) -> np.ndarray:
        f = np.array([fit for __, fit in self._batch])
        std = f.std()
        if std < 1e-12:
            return np.zeros_like(f)
        return (f - f.mean()) / std

    def _entropy_grad(self, probs: List[np.ndarray]) -> np.ndarray:
        """d(sum of per-dim entropies)/d(logits)."""
        g = np.zeros(int(self._offsets[-1]))
        for i, p in enumerate(probs):
            h = -(p * np.log(p + 1e-12)).sum()
            g[self._offsets[i]: self._offsets[i + 1]] = -p * (np.log(p + 1e-12) + h)
        return g

    def _update(self) -> None:
        adv = self._advantages()
        if self.algo == "reinforce":
            self._update_once(adv, old_log_probs=None)
        else:
            logits, __ = self.net.forward()
            probs = self._dim_probs(logits)
            old_lp = np.array(
                [self._log_prob(probs, idx) for idx, __ in self._batch]
            )
            for __ in range(self.ppo_epochs):
                self._update_once(adv, old_log_probs=old_lp)
        self.updates += 1

    def _update_once(self, adv: np.ndarray, old_log_probs) -> None:
        logits, h = self.net.forward()
        probs = self._dim_probs(logits)
        n = len(self._batch)
        g_logits = np.zeros_like(logits)

        for s, (indices, __) in enumerate(self._batch):
            if old_log_probs is None:
                weight = adv[s]
            else:
                new_lp = self._log_prob(probs, indices)
                ratio = float(np.exp(np.clip(new_lp - old_log_probs[s], -20, 20)))
                clipped = ratio < (1 - self.clip_eps) if adv[s] < 0 else ratio > (1 + self.clip_eps)
                weight = 0.0 if clipped else adv[s] * ratio
            if weight == 0.0:
                continue
            for i, p in enumerate(probs):
                lo, hi = self._offsets[i], self._offsets[i + 1]
                g = -p.copy()
                g[indices[i]] += 1.0
                g_logits[lo:hi] += weight * g

        g_logits /= n
        g_logits += self.entropy_coef * self._entropy_grad(probs)
        self.opt.step(self.net.backward(g_logits, h))

    # -- introspection --------------------------------------------------------------------

    def policy_entropy(self) -> float:
        """Mean normalized per-dimension entropy (1 = uniform policy)."""
        logits, __ = self.net.forward()
        probs = self._dim_probs(logits)
        vals = []
        for p in probs:
            if len(p) > 1:
                vals.append(-(p * np.log(p + 1e-12)).sum() / np.log(len(p)))
        return float(np.mean(vals)) if vals else 0.0
