"""Ant colony optimization agent (paper §3.2, Table 2).

The policy is a *pheromone table*: one trail level per (parameter,
value) pair. Each ant constructs a design by sampling every parameter
proportionally to ``pheromone ** alpha`` — or greedily picking the
strongest trail with probability ``greediness`` (Q3's
exploration/exploitation switch). After a cohort of ``n_ants``
completes, trails evaporate by ``evaporation_rate`` and the cohort's
best ants deposit rank-weighted pheromone on the values they used
(rank-based deposits keep the update scale-free, since reward
magnitudes vary wildly across environments).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

import numpy as np

from repro.agents.base import Agent
from repro.core.errors import AgentError
from repro.core.spaces import CompositeSpace

__all__ = ["ACOAgent"]


class ACOAgent(Agent):
    """Ant colony optimization over the per-parameter value grid."""

    name = "aco"

    def __init__(
        self,
        space: CompositeSpace,
        seed: int = 0,
        n_ants: int = 8,
        evaporation_rate: float = 0.1,
        alpha: float = 1.0,
        greediness: float = 0.1,
        deposit: float = 1.0,
    ) -> None:
        if n_ants < 1:
            raise AgentError("n_ants must be >= 1")
        if not 0.0 < evaporation_rate <= 1.0:
            raise AgentError("evaporation_rate must be in (0, 1]")
        if alpha <= 0:
            raise AgentError("alpha must be positive")
        if not 0.0 <= greediness <= 1.0:
            raise AgentError("greediness must be in [0, 1]")
        if deposit <= 0:
            raise AgentError("deposit must be positive")
        super().__init__(
            space, seed,
            n_ants=n_ants, evaporation_rate=evaporation_rate,
            alpha=alpha, greediness=greediness, deposit=deposit,
        )
        self.n_ants = n_ants
        self.evaporation_rate = evaporation_rate
        self.alpha = alpha
        self.greediness = greediness
        self.deposit = deposit
        # one trail vector per parameter, initialized flat
        self._trails: List[np.ndarray] = [
            np.ones(p.cardinality, dtype=np.float64) for p in space
        ]
        self._cohort: List[Tuple[np.ndarray, float]] = []

    # -- solution construction ----------------------------------------------------

    def propose(self) -> Dict[str, Any]:
        indices = np.empty(len(self._trails), dtype=np.int64)
        for i, trail in enumerate(self._trails):
            if self.rng.random() < self.greediness:
                indices[i] = int(np.argmax(trail))
            else:
                weights = trail ** self.alpha
                weights = weights / weights.sum()
                indices[i] = int(self.rng.choice(len(trail), p=weights))
        return self.space.decode(indices)

    def propose_batch(self) -> List[Dict[str, Any]]:
        """The remainder of the current cohort, one design per ant.

        Trails only move after a full cohort observes and
        :meth:`observe` draws no randomness, so constructing the
        remaining ants back to back consumes the RNG stream exactly as
        the serial interleaving would — a batched run stays
        byte-identical. ``observe_batch`` keeps the base-class
        per-point loop: cohort accounting (and the trail update on the
        cohort's last ant) already lives in :meth:`observe`.
        """
        remaining = self.n_ants - len(self._cohort)
        return [self.propose() for _ in range(max(1, remaining))]

    # -- pheromone update -----------------------------------------------------------

    def observe(self, action: Mapping[str, Any], fitness: float,
                metrics: Mapping[str, float]) -> None:
        self._cohort.append((self.space.encode(action), fitness))
        if len(self._cohort) >= self.n_ants:
            self._update_trails()
            self._cohort = []

    def _update_trails(self) -> None:
        for trail in self._trails:
            trail *= 1.0 - self.evaporation_rate
            np.maximum(trail, 1e-6, out=trail)
        # rank-based deposits: best ant deposits `deposit`, the rest
        # geometrically less; worst half deposits nothing.
        ranked = sorted(self._cohort, key=lambda pair: -pair[1])
        n_depositors = max(1, len(ranked) // 2)
        for rank, (indices, __) in enumerate(ranked[:n_depositors]):
            amount = self.deposit * (0.5 ** rank)
            for dim, value_index in enumerate(indices):
                self._trails[dim][value_index] += amount

    # -- introspection ------------------------------------------------------------------

    def trail_entropy(self) -> float:
        """Mean normalized entropy of the trails — 1.0 means uniform
        (fully exploratory), 0.0 means fully converged."""
        entropies = []
        for trail in self._trails:
            if len(trail) == 1:
                continue
            p = trail / trail.sum()
            h = -(p * np.log(p + 1e-12)).sum() / np.log(len(trail))
            entropies.append(h)
        return float(np.mean(entropies)) if entropies else 0.0
