"""Agent abstraction and the search driver loop (paper §3.2, §4).

The paper decomposes every search algorithm into a *policy* plus
*hyperparameters*, interacting with the environment through three
signals (Q1–Q3 of Table 2):

- Q1 — the agent **proposes** an action (parameter selection),
- Q2 — the environment returns a reward/fitness the agent **observes**
  to fine-tune its policy,
- Q3 — the exploration/exploitation balance lives in the agent's
  hyperparameters, fixed at construction.

:class:`Agent` encodes exactly this interface; :func:`run_agent` is the
standard driver every experiment uses — it converts environment rewards
into a maximize-me *fitness* (FARSI's distance-to-budget is
lower-is-better), tracks the incumbent, and resets episodes.

The protocol is *generation-native*: population-based agents (GA, ACO)
propose whole generations at once through :meth:`Agent.propose_batch`
and absorb the scored generation through :meth:`Agent.observe_batch`,
so the driver can evaluate an entire generation in one
:meth:`~repro.core.env.ArchGymEnv.step_batch` call — one round trip to
a remote evaluation service instead of one per design point. The
defaults are singleton wrappers over :meth:`Agent.propose` /
:meth:`Agent.observe`, so every point-at-a-time agent participates
unchanged, and a batched run is byte-identical to a serial one.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.core.env import ArchGymEnv
from repro.core.errors import AgentError
from repro.core.spaces import CompositeSpace

__all__ = ["Agent", "SearchResult", "run_agent"]


def _stable_value_fmt(value: Any, nested: bool = False) -> str:
    """Order-insensitive rendering for hyperparameter values.

    ``str(dict)`` follows insertion order, so equal dicts inserted in
    different orders used to produce different provenance tags. Dicts
    are therefore rendered with sorted keys; everything else keeps its
    plain formatting (``str`` at the top level, ``repr`` inside a dict
    — exactly what ``str(dict)`` itself would have produced).
    """
    if isinstance(value, dict):
        items = ", ".join(
            f"{k!r}: {_stable_value_fmt(v, nested=True)}"
            for k, v in sorted(value.items())
        )
        return "{" + items + "}"
    return repr(value) if nested else f"{value}"


def _jsonify(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays to JSON-native values."""
    if isinstance(value, np.ndarray):
        return [_jsonify(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {k: _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


class Agent:
    """Base class for all search agents.

    Subclasses implement :meth:`propose` (Q1) and :meth:`observe` (Q2),
    and expose their exploration hyperparameters (Q3) via
    :attr:`hyperparameters`.
    """

    #: Short algorithm tag used in dataset provenance and result tables.
    name: str = "agent"

    def __init__(self, space: CompositeSpace, seed: int = 0, **hyperparams: Any) -> None:
        if len(space) == 0:
            raise AgentError("search space has no parameters")
        self.space = space
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self._hyperparams: Dict[str, Any] = dict(hyperparams)

    @property
    def hyperparameters(self) -> Dict[str, Any]:
        """The agent's exploration/exploitation knobs (Q3)."""
        return dict(self._hyperparams)

    def hyperparam_tag(self) -> str:
        """A stable provenance string: ``name[k=v,...]``.

        Values are rendered canonically: dict-valued hyperparameters
        are formatted with sorted keys (recursively), so two agents
        built from equal dicts with different insertion orders carry
        the same tag. Non-dict values keep plain ``str()`` formatting.
        """
        inner = ",".join(
            f"{k}={_stable_value_fmt(v)}"
            for k, v in sorted(self._hyperparams.items())
        )
        return f"{self.name}[{inner}]"

    # -- the Q1/Q2 interface -------------------------------------------------------

    def propose(self) -> Dict[str, Any]:
        """Select the next design point to evaluate (Q1)."""
        raise NotImplementedError

    def observe(self, action: Mapping[str, Any], fitness: float,
                metrics: Mapping[str, float]) -> None:
        """Incorporate the feedback for ``action`` (Q2).

        ``fitness`` is always maximize-me: the driver negates
        lower-is-better rewards before calling this.
        """
        raise NotImplementedError

    # -- the batched (generation-native) Q1/Q2 interface ---------------------------

    def propose_batch(self) -> List[Dict[str, Any]]:
        """Propose the next *generation* of design points (Q1, batched).

        Population-based agents override this to emit every not-yet
        evaluated member of the current generation/cohort in one call,
        which lets the driver evaluate them together (one HTTP round
        trip on a remote backend instead of one per point). The
        contract mirrors the serial interface exactly: the points come
        back in the order :meth:`propose` would have produced them, a
        driver may evaluate any *prefix* of the batch (sample budgets
        truncate generations), and the matching
        :meth:`observe_batch` call must carry that evaluated prefix in
        order. Under that contract a batched run is byte-identical to
        a serial one.

        Default: a singleton — one :meth:`propose` — so every
        point-at-a-time agent works under a generation-aware driver
        unchanged.
        """
        return [self.propose()]

    def observe_batch(
        self,
        actions: Sequence[Mapping[str, Any]],
        fitnesses: Sequence[float],
        metrics_list: Sequence[Mapping[str, float]],
    ) -> None:
        """Incorporate feedback for an evaluated generation prefix (Q2).

        Default: :meth:`observe` per point, in order — byte-identical
        to the serial loop for any agent.
        """
        if not (len(actions) == len(fitnesses) == len(metrics_list)):
            raise AgentError(
                "observe_batch() needs one fitness and one metrics dict "
                f"per action, got {len(actions)}/{len(fitnesses)}/"
                f"{len(metrics_list)}"
            )
        for action, fitness, metrics in zip(actions, fitnesses, metrics_list):
            self.observe(action, fitness, metrics)


@dataclass
class SearchResult:
    """Outcome of one agent run on one environment."""

    agent: str
    hyperparameters: Dict[str, Any]
    n_samples: int
    best_action: Dict[str, Any]
    best_fitness: float
    best_reward: float
    best_metrics: Dict[str, float]
    reward_history: List[float] = field(default_factory=list)
    best_fitness_history: List[float] = field(default_factory=list)
    target_met: bool = False
    wall_time_s: float = 0.0
    sim_time_s: float = 0.0
    cache_hits: int = 0
    cache_misses: int = 0
    shared_cache_hits: int = 0
    remote_evals: int = 0
    #: ``remote_evals`` broken down by the evaluation host that
    #: answered — empty for in-process runs, one entry per host a
    #: multi-host pool used for this trial.
    remote_hosts: Dict[str, int] = field(default_factory=dict)
    #: Proxy-screen accounting (all zero unless ``proxy_screen`` ran):
    #: proposals scored by the surrogate, how many of those were sent
    #: for real evaluation (top-k plus the honesty-refresh slice, so
    #: ``proxy_screened - proxy_accepted`` were answered by the proxy
    #: alone), how many real evaluations the refresh slice spent, and
    #: the worst relative validation RMSE of the proxy's last refit.
    proxy_screened: int = 0
    proxy_accepted: int = 0
    proxy_refresh_evals: int = 0
    proxy_last_rmse: float = 0.0

    def fitness_at(self, n: int) -> float:
        """Best fitness after the first ``n`` samples (sample-budget view,
        Fig. 7)."""
        if n < 1:
            raise AgentError("sample budget must be >= 1")
        idx = min(n, len(self.best_fitness_history)) - 1
        return self.best_fitness_history[idx]

    def to_record(self) -> Dict[str, Any]:
        """A JSON-serializable representation (the sweep-shard format).

        Floats survive ``json`` round-trips exactly, so a result loaded
        back with :meth:`from_record` compares equal on every
        deterministic field.
        """
        return {
            "agent": self.agent,
            "hyperparameters": _jsonify(self.hyperparameters),
            "n_samples": int(self.n_samples),
            "best_action": _jsonify(self.best_action),
            "best_fitness": float(self.best_fitness),
            "best_reward": float(self.best_reward),
            "best_metrics": {k: float(v) for k, v in self.best_metrics.items()},
            "reward_history": [float(r) for r in self.reward_history],
            "best_fitness_history": [float(f) for f in self.best_fitness_history],
            "target_met": bool(self.target_met),
            "wall_time_s": float(self.wall_time_s),
            "sim_time_s": float(self.sim_time_s),
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
            "shared_cache_hits": int(self.shared_cache_hits),
            "remote_evals": int(self.remote_evals),
            "remote_hosts": {
                str(h): int(n) for h, n in self.remote_hosts.items()
            },
            "proxy_screened": int(self.proxy_screened),
            "proxy_accepted": int(self.proxy_accepted),
            "proxy_refresh_evals": int(self.proxy_refresh_evals),
            "proxy_last_rmse": float(self.proxy_last_rmse),
        }

    @classmethod
    def from_record(cls, record: Mapping[str, Any]) -> "SearchResult":
        return cls(
            agent=str(record["agent"]),
            hyperparameters=dict(record["hyperparameters"]),
            n_samples=int(record["n_samples"]),
            best_action=dict(record["best_action"]),
            best_fitness=float(record["best_fitness"]),
            best_reward=float(record["best_reward"]),
            best_metrics={k: float(v) for k, v in record["best_metrics"].items()},
            reward_history=[float(r) for r in record.get("reward_history", [])],
            best_fitness_history=[
                float(f) for f in record.get("best_fitness_history", [])
            ],
            target_met=bool(record.get("target_met", False)),
            wall_time_s=float(record.get("wall_time_s", 0.0)),
            sim_time_s=float(record.get("sim_time_s", 0.0)),
            cache_hits=int(record.get("cache_hits", 0)),
            cache_misses=int(record.get("cache_misses", 0)),
            shared_cache_hits=int(record.get("shared_cache_hits", 0)),
            remote_evals=int(record.get("remote_evals", 0)),
            remote_hosts={
                str(h): int(n)
                for h, n in dict(record.get("remote_hosts", {})).items()
            },
            proxy_screened=int(record.get("proxy_screened", 0)),
            proxy_accepted=int(record.get("proxy_accepted", 0)),
            proxy_refresh_evals=int(record.get("proxy_refresh_evals", 0)),
            proxy_last_rmse=float(record.get("proxy_last_rmse", 0.0)),
        )


def run_agent(
    agent: Agent,
    env: ArchGymEnv,
    n_samples: int,
    seed: Optional[int] = None,
    source_tag: Optional[str] = None,
    generation_dispatch: bool = False,
    pipeline: bool = False,
    proxy_screen: bool = False,
    proxy_oversample: int = 4,
    proxy_topk: Optional[int] = None,
    proxy_refresh: float = 0.1,
    proxy_min_corpus: int = 64,
) -> SearchResult:
    """Drive ``agent`` against ``env`` for ``n_samples`` evaluations.

    Every step is one cost-model query — the paper's normalization unit
    for comparing algorithms (§6.2). If the environment has an attached
    dataset, its provenance tag is set to the agent's identity so that
    multi-agent datasets can later be sampled by source (§7.1).

    With ``generation_dispatch=True`` the driver speaks the batched
    protocol: :meth:`Agent.propose_batch` →
    :meth:`ArchGymEnv.step_batch` → :meth:`Agent.observe_batch`, one
    whole generation per round. Incumbent tracking, reward histories,
    fitness conversion, and episode resets are applied per point in
    proposal order, and a generation that overruns the remaining
    sample budget is truncated to it — so the result (and any attached
    dataset) is byte-identical to the serial loop, while a
    population-based agent on a remote backend pays one HTTP round
    trip per generation instead of one per design point.

    ``pipeline=True`` (which implies the batched protocol) swaps the
    barrier call for :meth:`ArchGymEnv.step_batch_stream`: results are
    absorbed point by point in proposal order as work units finish,
    and — on a work-stealing host pool — the stream ends as soon as
    every result is *known*, even while an abandoned straggler request
    is still in flight. The driver then breeds the next cohort
    (:meth:`Agent.observe_batch` → :meth:`Agent.propose_batch`) and
    dispatches it to the already-idle hosts, overlapping breeding and
    next-generation dispatch with the straggler's stale work instead
    of waiting behind it. Bookkeeping order is unchanged, so the
    result stays byte-identical to both other modes.

    ``proxy_screen=True`` (which also implies the batched protocol)
    inserts an **oversample-and-rank** stage in front of real
    evaluation: an :class:`~repro.proxy.online.OnlineProxy` trained
    from the shared cache's accumulated corpus scores every proposed
    generation, and only the top ``proxy_topk`` points (default
    ``ceil(generation / proxy_oversample)``) go to
    ``step_batch``/``step_batch_stream`` — so ``n_samples`` buys
    ``proxy_oversample×`` more *candidate* generations for the same
    simulator budget. A ``proxy_refresh`` fraction of every top-k is
    additionally spent ground-truthing a seeded random slice of the
    *rejected* points, keeping the proxy's corpus unbiased; rejected
    points are answered to the agent with the proxy's predicted
    metrics/fitness (the incumbent, reward history, and dataset only
    ever see real evaluations). Until the corpus reaches
    ``proxy_min_corpus`` points *and* validation RMSE clears the
    proxy's gate, the driver falls back to plain dispatch —
    byte-identical to ``proxy_screen=False``.
    """
    if n_samples < 1:
        raise AgentError("n_samples must be >= 1")
    if proxy_screen:
        generation_dispatch = True  # screening ranks whole generations
        if proxy_oversample < 1:
            raise AgentError(
                f"proxy_oversample must be >= 1, got {proxy_oversample}"
            )
        if proxy_topk is not None and proxy_topk < 1:
            raise AgentError(f"proxy_topk must be >= 1, got {proxy_topk}")
        if not 0.0 <= proxy_refresh <= 1.0:
            raise AgentError(
                f"proxy_refresh must be in [0, 1], got {proxy_refresh}"
            )
    if pipeline:
        generation_dispatch = True  # the pipeline speaks the batched protocol
    higher = env.reward_spec.higher_is_better
    if env.dataset is not None:
        env.set_source(source_tag or agent.hyperparam_tag())

    # Snapshot counters so a shared environment (e.g. the CLI's collect
    # command) attributes only this run's simulator cost to the result.
    sim_time_0 = env.stats.total_sim_time
    hits_0 = env.stats.cache_hits
    misses_0 = env.stats.cache_misses
    shared_0 = env.stats.shared_cache_hits
    remote_0 = env.stats.remote_evals
    hosts_0 = dict(env.stats.remote_evals_by_host)
    screened_0 = env.stats.proxy_screened
    accepted_0 = env.stats.proxy_accepted
    refresh_0 = env.stats.proxy_refresh_evals

    start = time.perf_counter()
    env.reset(seed=seed)

    best_fitness = -np.inf
    best_action: Dict[str, Any] = {}
    best_reward = 0.0
    best_metrics: Dict[str, float] = {}
    target_met = False
    reward_history: List[float] = []
    best_history: List[float] = []

    def absorb(action: Mapping[str, Any], reward: float,
               info: Mapping[str, Any]) -> float:
        """The per-point bookkeeping both driver loops share — one
        copy, so the serial and batched paths cannot drift apart and
        break the byte-parity guarantee. Returns the fitness."""
        nonlocal best_fitness, best_action, best_reward, best_metrics
        nonlocal target_met
        fitness = reward if higher else -reward
        reward_history.append(reward)
        if fitness > best_fitness:
            best_fitness = fitness
            best_action = dict(action)
            best_reward = reward
            best_metrics = dict(info["metrics"])
        best_history.append(best_fitness)
        target_met = target_met or bool(info.get("target_met"))
        return fitness

    if generation_dispatch:
        proxy = None
        refresh_rng: Optional[np.random.Generator] = None
        if proxy_screen:
            # Imported lazily: agents must stay importable (and the
            # serial driver payable) without touching the proxy package.
            from repro.proxy.online import OnlineProxy

            proxy_seed = 0 if seed is None else int(seed)
            proxy = OnlineProxy(
                env.action_space,
                env.observation_metrics,
                min_corpus=proxy_min_corpus,
                seed=proxy_seed,
                # An intentionally unreachable min_corpus (pinning the
                # run to the cold path) must not trip the ctor's
                # max_fit_samples >= min_corpus invariant.
                max_fit_samples=max(2048, proxy_min_corpus),
            )
            refresh_rng = np.random.default_rng(proxy_seed + 1000003)

        def predicted_fitness(metrics: Mapping[str, float]) -> float:
            reward = env.reward_spec.compute(metrics)
            return reward if higher else -reward

        remaining = n_samples
        while remaining > 0:
            proposals = agent.propose_batch()
            if not proposals:
                raise AgentError(
                    f"{agent.name}.propose_batch() returned no proposals"
                )
            screen = False
            if proxy is not None:
                # Harvest whatever corpus the shared tier has accumulated
                # (other trials' points included) and refit if warranted.
                # Pure reads plus the proxy's own seeded RNG: while the
                # cold-start gate stays shut the run remains byte-
                # identical to an unscreened one.
                if env.shared_cache is not None:
                    proxy.harvest(env.shared_cache)
                proxy.maybe_refit()
                screen = proxy.ready and len(proposals) > 1

            if not screen:
                # Plain dispatch (no proxy, or cold start).
                # A generation larger than the remaining budget is cut to
                # it — the serial loop would have stopped mid-generation at
                # exactly this point.
                proposals = proposals[:remaining]
                step_results = (
                    env.step_batch_stream(proposals) if pipeline
                    else env.step_batch(proposals)
                )
                fitnesses: List[float] = []
                metrics_list: List[Dict[str, float]] = []
                terminated = truncated = False
                for action, step_result in zip(proposals, step_results):
                    __, reward, terminated, truncated, info = step_result
                    fitnesses.append(absorb(action, reward, info))
                    metrics_list.append(info["metrics"])
                    if proxy is not None:
                        proxy.observe(action, info["metrics"])
                agent.observe_batch(proposals, fitnesses, metrics_list)
                remaining -= len(proposals)

                # step_batch resets mid-batch episode ends itself; a batch
                # whose *final* point closed an episode leaves the reset to
                # the driver, exactly like the serial loop below.
                if terminated or truncated:
                    env.reset()
                continue

            # -- oversample-and-rank ----------------------------------
            # The whole proposed generation is the candidate pool; only
            # the proxy's top-k (plus the honesty-refresh slice) is
            # really simulated, so each unit of sample budget screens
            # ``oversample×`` candidates.
            pool = proposals
            k = (
                proxy_topk if proxy_topk is not None
                else max(1, math.ceil(len(pool) / proxy_oversample))
            )
            k = min(k, len(pool))
            predictions = proxy.predict_batch(pool)
            pred_fitness = [predicted_fitness(m) for m in predictions]
            # Best-first by predicted fitness; ties break by proposal
            # index so the ranking is deterministic.
            order = sorted(
                range(len(pool)), key=lambda i: (-pred_fitness[i], i)
            )
            accepted = set(order[:k])
            rejected = [i for i in range(len(pool)) if i not in accepted]
            refresh: set = set()
            if rejected and proxy_refresh > 0.0:
                n_refresh = min(len(rejected), math.ceil(proxy_refresh * k))
                picks = refresh_rng.choice(
                    len(rejected), size=n_refresh, replace=False
                )
                refresh = {rejected[int(j)] for j in picks}
            eval_idx = sorted(accepted | refresh)[:remaining]
            eval_actions = [pool[i] for i in eval_idx]
            step_results = (
                env.step_batch_stream(eval_actions) if pipeline
                else env.step_batch(eval_actions)
            )
            real: Dict[int, Any] = {}
            terminated = truncated = False
            for i, step_result in zip(eval_idx, step_results):
                __, reward, terminated, truncated, info = step_result
                real[i] = (absorb(pool[i], reward, info), dict(info["metrics"]))
                proxy.observe(pool[i], info["metrics"])
            env.stats.proxy_screened += len(pool)
            env.stats.proxy_accepted += len(eval_idx)
            env.stats.proxy_refresh_evals += sum(
                1 for i in eval_idx if i in refresh
            )
            env.stats.proxy_last_rmse = proxy.last_rmse
            # The agent observes the full generation in proposal order:
            # ground truth where simulated, the surrogate's prediction
            # elsewhere. The incumbent/result bookkeeping (absorb) only
            # ever saw real evaluations.
            fitnesses = []
            metrics_list = []
            for i in range(len(pool)):
                fitness, metrics = real.get(i, (pred_fitness[i], predictions[i]))
                fitnesses.append(fitness)
                metrics_list.append(metrics)
            agent.observe_batch(pool, fitnesses, metrics_list)
            remaining -= len(eval_idx)
            if terminated or truncated:
                env.reset()
    else:
        for _ in range(n_samples):
            action = agent.propose()
            __, reward, terminated, truncated, info = env.step(action)
            agent.observe(action, absorb(action, reward, info),
                          info["metrics"])

            if terminated or truncated:
                env.reset()

    return SearchResult(
        agent=agent.name,
        hyperparameters=agent.hyperparameters,
        n_samples=n_samples,
        best_action=best_action,
        best_fitness=float(best_fitness),
        best_reward=float(best_reward),
        best_metrics=best_metrics,
        reward_history=reward_history,
        best_fitness_history=best_history,
        target_met=target_met,
        wall_time_s=time.perf_counter() - start,
        sim_time_s=env.stats.total_sim_time - sim_time_0,
        cache_hits=env.stats.cache_hits - hits_0,
        cache_misses=env.stats.cache_misses - misses_0,
        shared_cache_hits=env.stats.shared_cache_hits - shared_0,
        remote_evals=env.stats.remote_evals - remote_0,
        remote_hosts={
            host: count - hosts_0.get(host, 0)
            for host, count in env.stats.remote_evals_by_host.items()
            if count - hosts_0.get(host, 0) > 0
        },
        proxy_screened=env.stats.proxy_screened - screened_0,
        proxy_accepted=env.stats.proxy_accepted - accepted_0,
        proxy_refresh_evals=env.stats.proxy_refresh_evals - refresh_0,
        proxy_last_rmse=float(env.stats.proxy_last_rmse),
    )
