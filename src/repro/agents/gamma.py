"""GAMMA — GA with domain-specific mapping operators (paper §6.1, Fig. 6).

GAMMA [52] augments a genetic algorithm with three operators designed
for the MAESTRO mapping space:

- **reordering** — re-samples the loop-order gene (a new permutation),
- **growth** — bumps a random tile-size gene one grid step up, growing
  the tile (mappings mostly fail by being too small to exploit reuse),
- **aging** — every individual carries an age; survivors past
  ``max_age`` are replaced with fresh random genomes, preserving
  diversity.

The Fig. 6 experiment compares the full operator set ("GAMMA") against
ablated variants (GA-V1 = none, GA+RO, GA+AG, GA+GR) and ArchGym's own
vanilla :class:`~repro.agents.ga.GAAgent`. :func:`make_gamma_variant`
builds each by name.
"""

from __future__ import annotations

from typing import Any, List, Optional

import numpy as np

from repro.agents.ga import GAAgent
from repro.core.errors import AgentError
from repro.core.spaces import Categorical, CompositeSpace

__all__ = ["GammaAgent", "GAMMA_VARIANTS", "make_gamma_variant"]

#: Fig. 6 variant names.
GAMMA_VARIANTS = ("GAMMA", "GA-V1", "GA+RO", "GA+AG", "GA+GR")


class GammaAgent(GAAgent):
    """GA extended with GAMMA's aging / growth / reordering operators."""

    name = "gamma"

    def __init__(
        self,
        space: CompositeSpace,
        seed: int = 0,
        population_size: int = 20,
        mutation_rate: float = 0.1,
        crossover_rate: float = 0.8,
        elite_frac: float = 0.1,
        tournament_size: int = 3,
        use_aging: bool = True,
        use_growth: bool = True,
        use_reordering: bool = True,
        growth_rate: float = 0.3,
        reorder_rate: float = 0.3,
        max_age: int = 4,
        order_dim: Optional[str] = None,
    ) -> None:
        super().__init__(
            space, seed,
            population_size=population_size,
            mutation_rate=mutation_rate,
            crossover_rate=crossover_rate,
            elite_frac=elite_frac,
            tournament_size=tournament_size,
        )
        if max_age < 1:
            raise AgentError("max_age must be >= 1")
        if not 0.0 <= growth_rate <= 1.0 or not 0.0 <= reorder_rate <= 1.0:
            raise AgentError("operator rates must be in [0, 1]")
        self._hyperparams.update(
            use_aging=use_aging, use_growth=use_growth,
            use_reordering=use_reordering, growth_rate=growth_rate,
            reorder_rate=reorder_rate, max_age=max_age,
        )
        self.use_aging = use_aging
        self.use_growth = use_growth
        self.use_reordering = use_reordering
        self.growth_rate = growth_rate
        self.reorder_rate = reorder_rate
        self.max_age = max_age
        self._order_dim_index = self._find_order_dim(order_dim)
        self._ages = np.zeros(self.population_size, dtype=np.int64)

    def _find_order_dim(self, explicit: Optional[str]) -> Optional[int]:
        if explicit is not None:
            if explicit not in self.space:
                raise AgentError(f"order_dim {explicit!r} not in space")
            return self.space.names.index(explicit)
        for i, p in enumerate(self.space.parameters):
            if p.name == "LoopOrder":
                return i
        # fall back to the widest categorical (most permutation-like)
        best, width = None, 0
        for i, p in enumerate(self.space.parameters):
            if isinstance(p, Categorical) and p.cardinality > width:
                best, width = i, p.cardinality
        return best

    # -- domain-specific operators ---------------------------------------------------

    def _grow(self, genome: np.ndarray) -> np.ndarray:
        """Bump one random gene one index up (tile sizes are ordered grids,
        so index+1 means the next larger tile)."""
        out = genome.copy()
        dim = int(self.rng.integers(len(self._cards)))
        if out[dim] + 1 < self._cards[dim]:
            out[dim] += 1
        return out

    def _reorder(self, genome: np.ndarray) -> np.ndarray:
        if self._order_dim_index is None:
            return genome
        out = genome.copy()
        card = self._cards[self._order_dim_index]
        if card > 1:
            shift = 1 + int(self.rng.integers(card - 1))
            out[self._order_dim_index] = (out[self._order_dim_index] + shift) % card
        return out

    # -- generational step with operators ----------------------------------------------

    def _evolve(self) -> None:
        order = np.argsort(-self._fitness)
        elites = [int(i) for i in order[: self.elite_count]]

        next_genomes: List[np.ndarray] = []
        next_ages: List[int] = []
        for i in elites:
            if self.use_aging and self._ages[i] + 1 > self.max_age:
                next_genomes.append(self._random_genome())
                next_ages.append(0)
            else:
                next_genomes.append(self._genomes[i].copy())
                next_ages.append(int(self._ages[i]) + 1)

        while len(next_genomes) < self.population_size:
            parent_a = self._tournament()
            if self.rng.random() < self.crossover_rate:
                child = self._crossover(parent_a, self._tournament())
            else:
                child = parent_a.copy()
            child = self._mutate(child)
            if self.use_growth and self.rng.random() < self.growth_rate:
                child = self._grow(child)
            if self.use_reordering and self.rng.random() < self.reorder_rate:
                child = self._reorder(child)
            next_genomes.append(child)
            next_ages.append(0)

        self._genomes = next_genomes
        self._ages = np.array(next_ages, dtype=np.int64)
        self._fitness = np.full(self.population_size, np.nan)
        self._cursor = 0
        self.generation += 1


def make_gamma_variant(
    variant: str, space: CompositeSpace, seed: int = 0, **hyperparams: Any
) -> GammaAgent:
    """Build one of Fig. 6's GA variants by name."""
    flags = {
        "GAMMA": dict(use_aging=True, use_growth=True, use_reordering=True),
        "GA-V1": dict(use_aging=False, use_growth=False, use_reordering=False),
        "GA+RO": dict(use_aging=False, use_growth=False, use_reordering=True),
        "GA+AG": dict(use_aging=True, use_growth=False, use_reordering=False),
        "GA+GR": dict(use_aging=False, use_growth=True, use_reordering=False),
    }
    if variant not in flags:
        raise AgentError(f"unknown GAMMA variant {variant!r}; valid: {GAMMA_VARIANTS}")
    agent = GammaAgent(space, seed, **flags[variant], **hyperparams)
    agent._hyperparams["variant"] = variant
    return agent
