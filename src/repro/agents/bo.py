"""Bayesian optimization agent (paper §3.2, Table 2).

The policy is a Gaussian-process *surrogate model* over unit-vector
design encodings; the acquisition function (Q3) balances exploration
and exploitation. Each proposal maximizes the acquisition over a random
candidate pool (discrete spaces make gradient-based acquisition
optimization moot); the surrogate refits on every new observation, with
a sliding window to respect BO's cubic fitting cost (§2 of the paper
discusses exactly this scaling limit).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping

import numpy as np
from scipy.stats import norm

from repro.agents.base import Agent
from repro.agents.gp import GaussianProcess, robust_standardize
from repro.core.errors import AgentError
from repro.core.spaces import CompositeSpace

__all__ = ["BOAgent", "ACQUISITIONS"]

ACQUISITIONS = ("ei", "ucb", "pi")


class BOAgent(Agent):
    """GP-based Bayesian optimization with EI / UCB / PI acquisitions."""

    name = "bo"

    def __init__(
        self,
        space: CompositeSpace,
        seed: int = 0,
        acquisition: str = "ei",
        lengthscale: float = 0.3,
        kappa: float = 2.0,
        xi: float = 0.01,
        n_init: int = 8,
        candidate_pool: int = 256,
        max_observations: int = 300,
    ) -> None:
        if acquisition not in ACQUISITIONS:
            raise AgentError(f"acquisition must be one of {ACQUISITIONS}")
        if n_init < 1:
            raise AgentError("n_init must be >= 1")
        if candidate_pool < 2:
            raise AgentError("candidate_pool must be >= 2")
        if max_observations < n_init:
            raise AgentError("max_observations must be >= n_init")
        super().__init__(
            space, seed,
            acquisition=acquisition, lengthscale=lengthscale,
            kappa=kappa, xi=xi, n_init=n_init,
            candidate_pool=candidate_pool, max_observations=max_observations,
        )
        self.acquisition = acquisition
        self.kappa = kappa
        self.xi = xi
        self.n_init = n_init
        self.candidate_pool = candidate_pool
        self.max_observations = max_observations
        self._gp = GaussianProcess(lengthscale=lengthscale)
        self._X: List[np.ndarray] = []
        self._y: List[float] = []

    # -- acquisition functions -------------------------------------------------------

    def _acquire(self, mean: np.ndarray, var: np.ndarray, best_z: float) -> np.ndarray:
        std = np.sqrt(var)
        if self.acquisition == "ucb":
            return mean + self.kappa * std
        improvement = mean - best_z - self.xi
        z = improvement / std
        if self.acquisition == "pi":
            return norm.cdf(z)
        # expected improvement
        return improvement * norm.cdf(z) + std * norm.pdf(z)

    # -- Agent interface ---------------------------------------------------------------

    def propose(self) -> Dict[str, Any]:
        if len(self._X) < self.n_init:
            return self.space.sample(self.rng)

        window = slice(max(0, len(self._X) - self.max_observations), None)
        X = np.stack(self._X[window])
        y = np.asarray(self._y[window])
        z, __, __ = robust_standardize(y)
        self._gp.fit(X, z)

        candidates = [self.space.sample(self.rng) for _ in range(self.candidate_pool)]
        C = np.stack([self.space.to_unit_vector(a) for a in candidates])
        mean, var = self._gp.predict(C)
        scores = self._acquire(mean, var, best_z=float(z.max()))
        return candidates[int(np.argmax(scores))]

    def observe(self, action: Mapping[str, Any], fitness: float,
                metrics: Mapping[str, float]) -> None:
        self._X.append(self.space.to_unit_vector(action))
        self._y.append(float(fitness))
