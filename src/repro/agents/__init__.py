"""Search agents: ACO, BO, GA, RW, RL, and GAMMA (paper §3.2, §4)."""

from repro.agents.aco import ACOAgent
from repro.agents.base import Agent, SearchResult, run_agent
from repro.agents.bo import ACQUISITIONS, BOAgent
from repro.agents.ga import GAAgent
from repro.agents.gamma import GAMMA_VARIANTS, GammaAgent, make_gamma_variant
from repro.agents.gp import GaussianProcess, robust_standardize
from repro.agents.offline import OfflineAgent
from repro.agents.hyperparams import (
    AGENT_NAMES,
    HYPERPARAM_GRIDS,
    iter_hyperparams,
    make_agent,
    sample_hyperparams,
)
from repro.agents.random_walker import RandomWalkerAgent
from repro.agents.rl import RLAgent

__all__ = [
    "Agent",
    "SearchResult",
    "run_agent",
    "ACOAgent",
    "BOAgent",
    "ACQUISITIONS",
    "GAAgent",
    "GammaAgent",
    "GAMMA_VARIANTS",
    "make_gamma_variant",
    "GaussianProcess",
    "OfflineAgent",
    "robust_standardize",
    "RandomWalkerAgent",
    "RLAgent",
    "AGENT_NAMES",
    "HYPERPARAM_GRIDS",
    "make_agent",
    "sample_hyperparams",
    "iter_hyperparams",
]
