"""Task-based parallel execution for sweep trials.

The hyperparameter-lottery methodology (§6.1) is embarrassingly
parallel: every (agent, ticket) trial builds its own environment, runs
its own search, and only meets the others in the final report. This
module turns one trial into a self-contained, picklable
:class:`TrialTask` and fans a batch of them out over a
``concurrent.futures.ProcessPoolExecutor``.

Determinism is the design constraint: the *parent* precomputes every
task's hyperparameters and seeds (in the exact order the serial runner
drew them), so a task's outcome depends only on its own fields — never
on which worker ran it or in what order. ``workers=1`` short-circuits
to a plain in-process loop with zero multiprocessing overhead, and any
worker count yields bit-identical results.
"""

from __future__ import annotations

import json
import math
import os
import pickle
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.agents.base import SearchResult, run_agent
from repro.agents.hyperparams import make_agent
from repro.core.dataset import ArchGymDataset, Transition
from repro.core.env import ArchGymEnv
from repro.core.errors import ExecutorError, ServiceError

__all__ = [
    "BackendSpec",
    "TrialTask",
    "TrialOutcome",
    "clear_backend_cache",
    "close_cached_backends",
    "execute_trials",
    "parse_weighted_url",
    "resolve_execution_backend",
]


def parse_weighted_url(spec: str) -> Tuple[str, float]:
    """Split one ``URL`` / ``URL=WEIGHT`` service spec.

    ``--service-url http://h:8023=2`` declares host ``h:8023`` with
    capacity weight 2 (twice the concurrent load and twice the share
    of every scattered generation); a bare URL weighs 1. The text
    after the last ``=`` must be a positive finite number — anything
    else is rejected with a clear error rather than silently becoming
    part of the URL. (A URL that itself contains ``=`` can always be
    passed as ``URL=1``.)
    """
    url, sep, tail = spec.rpartition("=")
    if not sep:
        return spec, 1.0
    try:
        weight = float(tail)
    except ValueError:
        raise ExecutorError(
            f"malformed service url weight in {spec!r}: expected "
            f"URL=WEIGHT with a positive number, got {tail!r}"
        ) from None
    if not math.isfinite(weight) or weight <= 0:
        raise ExecutorError(
            f"service url weight in {spec!r} must be positive and "
            f"finite, got {tail!r}"
        )
    return url, weight

EnvFactory = Callable[[], ArchGymEnv]


@dataclass(frozen=True)
class BackendSpec:
    """Serializable description of where a trial's cost model runs.

    Tasks cross a pickle boundary, so a live backend object (holding
    an HTTP client) cannot ride on the task — this spec does, and each
    worker builds its own backend from it.

    ``kind="local"`` (the default when a task carries no spec) runs
    ``env.evaluate`` in the worker process. ``kind="remote"`` dispatches
    every evaluation to the evaluation service at ``service_url`` — or,
    when ``service_urls`` names several hosts, to a least-load
    :class:`~repro.sweeps.hostpool.HostPool` over all of them with
    automatic failover. ``env_kwargs`` are forwarded so the server
    constructs the same environment configuration (workload, objective,
    …) the worker built locally, ``timeout_s``/``retries`` set the
    client's retry/timeout policy, and ``batch=True`` routes
    evaluations through ``POST /evaluate_batch`` (server-side
    memoization feeding the service's ``/cache`` store).
    """

    kind: str = "local"
    service_url: Optional[str] = None
    env_kwargs: Optional[Dict[str, Any]] = None
    timeout_s: float = 60.0
    retries: int = 2
    #: All hosts of a multi-host pool (``service_url`` is then its
    #: first entry, kept for compatibility and as the cache host).
    service_urls: Optional[Tuple[str, ...]] = None
    #: Dispatch through ``/evaluate_batch`` instead of ``/evaluate``.
    batch: bool = False
    #: Per-host capacity weights aligned with ``service_urls``
    #: (``None`` = all hosts weigh 1).
    service_weights: Optional[Tuple[float, ...]] = None
    #: Let a multi-host pool self-tune those weights from observed
    #: per-host service rates (a placement knob — results are
    #: byte-identical either way).
    auto_weights: bool = False
    #: Run a multi-host pool's scatter/stream fan-out as coroutine
    #: tasks on one event loop instead of worker threads (a pure
    #: thread-count/wall-clock knob — results are byte-identical
    #: either way).
    async_dispatch: bool = False

    def __post_init__(self) -> None:
        if self.kind not in ("local", "remote"):
            raise ExecutorError(
                f"backend kind must be 'local' or 'remote', got {self.kind!r}"
            )
        if self.service_urls is not None and not isinstance(
            self.service_urls, tuple
        ):  # normalize lists so the spec stays hash/pickle-stable
            object.__setattr__(self, "service_urls", tuple(self.service_urls))
        if self.service_weights is not None and not isinstance(
            self.service_weights, tuple
        ):
            object.__setattr__(
                self, "service_weights", tuple(self.service_weights)
            )
        if self.kind == "remote" and not (self.service_url or self.service_urls):
            raise ExecutorError("remote backend requires a service_url")
        if self.service_weights is not None and len(self.service_weights) != len(
            self.urls
        ):
            raise ExecutorError(
                f"backend spec has {len(self.urls)} url(s) but "
                f"{len(self.service_weights)} weight(s)"
            )

    @property
    def urls(self) -> Tuple[str, ...]:
        """Every host this spec targets (at least one for remote)."""
        if self.service_urls:
            return self.service_urls
        return (self.service_url,) if self.service_url else ()

    def build(self) -> Optional[Any]:
        """Instantiate the backend in the worker (``None`` = local)."""
        if self.kind == "local":
            return None
        from repro.service.remote import RemoteBackend

        urls = self.urls
        return RemoteBackend(
            urls[0] if len(urls) == 1 else list(urls),
            env_kwargs=self.env_kwargs,
            batch=self.batch,
            weights=(
                list(self.service_weights) if self.service_weights else None
            ),
            auto_weights=self.auto_weights,
            async_dispatch=self.async_dispatch,
            timeout_s=self.timeout_s,
            retries=self.retries,
        )


#: One live backend per distinct spec per process: keep-alive
#: connections and a HostPool's quarantine memory then span all the
#: trials a worker runs, instead of every trial re-probing a host that
#: died (and paying a fresh TCP handshake per trial).
_BACKEND_CACHE: Dict[Tuple[Any, ...], Any] = {}
#: Owner of the cache entries. A forked pool worker inherits the
#: parent's cache *and* its clients' open keep-alive sockets — letting
#: workers share one TCP stream would interleave their HTTP responses.
#: A PID mismatch therefore drops the cache so each process opens its
#: own connections.
_BACKEND_CACHE_PID: Optional[int] = None


def _backend_cache_key(spec: BackendSpec) -> Tuple[Any, ...]:
    return (
        spec.kind,
        spec.service_url,
        spec.service_urls,
        spec.service_weights,
        spec.auto_weights,
        spec.async_dispatch,
        json.dumps(spec.env_kwargs, sort_keys=True, default=str)
        if spec.env_kwargs
        else None,
        spec.timeout_s,
        spec.retries,
        spec.batch,
    )


def build_backend(spec: Optional[BackendSpec]) -> Optional[Any]:
    """The worker-side backend for ``spec``, memoized per process.

    Strictly per *process*: entries inherited across a ``fork`` (the
    default pool start method on Linux) are discarded, because the
    live sockets inside them are shared with the parent.
    """
    global _BACKEND_CACHE_PID
    if spec is None:
        return None
    pid = os.getpid()
    if _BACKEND_CACHE_PID != pid:
        _BACKEND_CACHE.clear()
        _BACKEND_CACHE_PID = pid
    key = _backend_cache_key(spec)
    backend = _BACKEND_CACHE.get(key)
    if backend is None:
        backend = spec.build()
        _BACKEND_CACHE[key] = backend
    return backend


def close_cached_backends() -> None:
    """Close every cached backend's transport connections, keeping the
    backend objects (and so a pool's quarantine memory and counters)
    cached.

    The trial-teardown hook: a sweep batch leaves the process with
    zero open sockets — including keep-alive connections owned by
    dispatch threads that have since exited, and the async dispatch
    loop — while the next batch still reuses the memoized backends
    (their connections and loop reopen lazily on first dispatch).
    """
    for backend in _BACKEND_CACHE.values():
        close = getattr(backend, "close", None)
        if close is not None:
            close()


def clear_backend_cache() -> None:
    """Drop the per-process backend memo (tests that restart services
    on reused URLs need a clean slate), closing the evicted backends'
    connections on the way out."""
    close_cached_backends()
    _BACKEND_CACHE.clear()


def resolve_execution_backend(
    service_url: Optional[Union[str, Sequence[str]]],
    shared_cache: bool,
    out_dir: Optional[Any],
    env_kwargs: Optional[Dict[str, Any]] = None,
    timeout_s: Optional[float] = None,
    retries: Optional[int] = None,
    batch: bool = False,
    auto_weights: bool = False,
    async_dispatch: bool = False,
    cache_replicas: Optional[int] = None,
    proxy_screen: bool = False,
) -> Tuple[Optional[BackendSpec], Optional[str], Optional[str]]:
    """Derive a task batch's ``(backend, server_cache_url,
    shared_cache_dir)`` from the user-facing execution knobs.

    One derivation shared by :func:`repro.sweeps.runner.run_lottery_sweep`
    and the CLI's ``collect`` so the precedence rules cannot drift:
    ``service_url`` — one URL or a sequence of them (repeated
    ``--service-url`` flags become a multi-host :class:`HostPool`),
    each optionally carrying a capacity weight as ``URL=WEIGHT``
    (default 1; see :func:`parse_weighted_url`) — yields a remote
    :class:`BackendSpec` (with any ``timeout_s``/``retries``
    overrides; ``None`` keeps the spec defaults, ``batch`` routes
    through ``/evaluate_batch``, ``auto_weights`` lets a multi-host
    pool self-tune its dispatch weights, ``async_dispatch`` runs the
    pool's fan-out on one event loop); ``shared_cache`` prefers the
    service's ``/cache`` store (cross-machine; the *first* host's, so
    every trial reads one map — with writes replicated to
    ``cache_replicas`` pool hosts, see
    :class:`~repro.core.cache_store.ServerCacheStore`) over a file
    store under ``out_dir``.
    """
    if auto_weights and service_url is None:
        raise ExecutorError(
            "auto-weights (--auto-weights / auto_weights=True) tunes a "
            "remote host pool's dispatch weights and therefore requires "
            "a service_url"
        )
    if async_dispatch and service_url is None:
        raise ExecutorError(
            "async dispatch (--async-dispatch / async_dispatch=True) "
            "runs a remote host pool's fan-out on one event loop and "
            "therefore requires a service_url"
        )
    if proxy_screen and not shared_cache:
        raise ExecutorError(
            "proxy screening (--proxy-screen / proxy_screen=True) trains "
            "its surrogate from the shared cache's accumulated corpus and "
            "therefore requires shared_cache=True (--shared-cache)"
        )
    if cache_replicas is not None:
        if not isinstance(cache_replicas, int) or isinstance(
            cache_replicas, bool
        ) or cache_replicas < 1:
            raise ExecutorError(
                f"cache_replicas must be a positive integer, got "
                f"{cache_replicas!r}"
            )
        if not shared_cache or service_url is None:
            raise ExecutorError(
                "cache_replicas (--cache-replicas) configures the "
                "server-backed shared cache tier and therefore requires "
                "shared_cache=True with a service_url"
            )
    urls: Optional[Tuple[str, ...]] = None
    weights: Optional[Tuple[float, ...]] = None
    if service_url is not None:
        specs = (
            (service_url,) if isinstance(service_url, str) else tuple(service_url)
        )
        by_url: Dict[str, float] = {}
        for spec in specs:
            url, weight = parse_weighted_url(spec)
            if url in by_url:  # dedupe, keep order — weights must agree
                if by_url[url] != weight:
                    raise ExecutorError(
                        f"conflicting weights for service url {url!r}: "
                        f"{by_url[url]} vs {weight}"
                    )
                continue
            by_url[url] = weight
        if by_url:
            urls = tuple(by_url)
            if any(w != 1.0 for w in by_url.values()):
                weights = tuple(by_url.values())
    if batch and urls is None:
        raise ExecutorError(
            "batch evaluation (--service-batch / service_batch=True) "
            "dispatches through POST /evaluate_batch and therefore "
            "requires a service_url"
        )
    overrides: Dict[str, Any] = {}
    if timeout_s is not None:
        overrides["timeout_s"] = timeout_s
    if retries is not None:
        overrides["retries"] = retries
    backend = None
    if urls is not None:
        backend = BackendSpec(
            kind="remote",
            service_url=urls[0],
            service_urls=urls,
            service_weights=weights,
            auto_weights=auto_weights,
            async_dispatch=async_dispatch,
            env_kwargs=env_kwargs,
            batch=batch,
            **overrides,
        )
    server_cache_url = urls[0] if shared_cache and urls is not None else None
    shared_cache_dir = (
        str(Path(out_dir) / "shared-cache")
        if shared_cache and out_dir is not None and server_cache_url is None
        else None
    )
    if proxy_screen and server_cache_url is None and shared_cache_dir is None:
        raise ExecutorError(
            "proxy screening needs a shared cache tier to harvest its "
            "training corpus from: pass out_dir (--out-dir, file-backed "
            "tier) or a service_url (server-backed tier) alongside "
            "shared_cache"
        )
    return backend, server_cache_url, shared_cache_dir


@dataclass(frozen=True)
class TrialTask:
    """One self-contained sweep trial: everything a worker needs.

    ``index`` is the task's position in the serial execution order;
    outcomes are re-sorted on it so callers always see results in the
    order a single-process run would have produced them.
    """

    index: int
    agent: str
    hyperparams: Dict[str, Any]
    agent_seed: int
    run_seed: int
    n_samples: int
    env_factory: EnvFactory
    collect: bool = False
    #: Tri-state: ``None`` leaves the environment's own cache
    #: configuration alone (built-in envs enable theirs in __init__,
    #: and a factory passing ``cache_size=0`` has opted out on
    #: purpose); ``True`` force-enables; ``False`` force-disables.
    cache: Optional[bool] = None
    #: Directory of a cross-process :class:`SharedCacheStore`; workers
    #: open their own handle, so only the path crosses the pickle
    #: boundary. ``None`` disables the shared tier.
    shared_cache_dir: Optional[str] = None
    #: Where the cost model runs: ``None`` (in-process) or a
    #: :class:`BackendSpec` — e.g. remote, against an evaluation
    #: service. The spec is plain data, so it pickles with the task.
    backend: Optional[BackendSpec] = None
    #: Base URL of an evaluation service whose ``/cache`` endpoints
    #: serve as the shared cache tier (:class:`ServerCacheStore`) —
    #: the cross-*machine* sibling of ``shared_cache_dir``, which
    #: takes precedence if both are set.
    server_cache_url: Optional[str] = None
    #: Replication factor of that server-backed tier: every ``put``
    #: fans out to this many pool hosts (``None`` = the store default,
    #: min(2, pool size)). A durability knob — reuse is deterministic
    #: either way — so it stays out of the durable-sweep fingerprint.
    cache_replicas: Optional[int] = None
    #: Drive the trial through the generation-native protocol
    #: (``propose_batch``/``step_batch``/``observe_batch``): whole
    #: GA/ACO generations per backend round trip instead of one design
    #: point each. A wall-clock knob like ``workers`` — results are
    #: byte-identical — so it does not participate in the durable-sweep
    #: fingerprint.
    generation_dispatch: bool = False
    #: Stream each generation through
    #: :meth:`~repro.core.env.ArchGymEnv.step_batch_stream` (work-unit
    #: dispatch with work stealing on a multi-host pool) instead of
    #: the whole-batch barrier. Implies ``generation_dispatch``. Also a
    #: pure wall-clock knob — byte-identical results — so it stays out
    #: of the durable-sweep fingerprint.
    pipeline: bool = False
    #: Online-proxy screening (oversample-and-rank in front of real
    #: evaluation). Unlike the dispatch knobs above these CHANGE the
    #: search results — which points get simulated depends on the
    #: surrogate — so all five participate in the durable-sweep
    #: fingerprint whenever ``proxy_screen`` is on.
    proxy_screen: bool = False
    proxy_oversample: int = 4
    proxy_topk: Optional[int] = None
    proxy_refresh: float = 0.1
    proxy_min_corpus: int = 64

    @property
    def source(self) -> str:
        """Provenance tag for this trial's trajectory data.

        Agent name + trial index — unique per trial even when two
        trials of one agent draw identical hyperparameters, so the §7
        per-source pipeline can always tell trajectories apart.
        """
        return f"{self.agent}/{self.index}"


@dataclass
class TrialOutcome:
    """What one trial sends back across the process boundary."""

    index: int
    agent: str
    env_id: str
    result: SearchResult
    transitions: List[Transition] = field(default_factory=list)


def run_trial(task: TrialTask) -> TrialOutcome:
    """Execute one trial start to finish (the worker entry point).

    Builds a fresh environment, optionally enables the evaluation cache
    and a private trajectory log, and drives the agent for the task's
    sample budget. Module-level so it pickles by reference.
    """
    env = task.env_factory()
    try:
        if task.cache is True:
            if not env.cache_enabled:  # keep a larger pre-configured cache
                env.enable_cache()
        elif task.cache is False:
            env.disable_cache()
        remote = build_backend(task.backend)
        if remote is not None:
            env.attach_backend(remote)
        if task.shared_cache_dir is not None:
            from repro.core.cache_store import SharedCacheStore

            env.attach_shared_cache(SharedCacheStore(task.shared_cache_dir))
        elif task.server_cache_url is not None:
            from repro.core.cache_store import ServerCacheStore

            # Reuse the evaluation backend's client (and with it the
            # task's retry/timeout policy) when the cache lives on the
            # same single service; a multi-host pool — or a task with
            # no remote backend — gets a dedicated client pointed at
            # the designated cache host, under the task's policy. The
            # pool's hosts become the store's replica chain (the store
            # dedupes the primary itself): writes fan out to
            # ``cache_replicas`` of them, and if the cache host's
            # transport dies mid-sweep reads fail over to a replica
            # instead of abandoning its entries.
            cache_url = task.server_cache_url.rstrip("/")
            fallbacks = tuple(task.backend.urls) if task.backend else ()
            if (
                remote is not None
                and getattr(remote.client, "base_url", None) == cache_url
            ):
                env.attach_shared_cache(ServerCacheStore(
                    remote.client,
                    fallbacks=fallbacks,
                    replicas=task.cache_replicas,
                ))
            elif task.backend is not None:
                env.attach_shared_cache(ServerCacheStore(
                    cache_url,
                    fallbacks=fallbacks,
                    replicas=task.cache_replicas,
                    timeout_s=task.backend.timeout_s,
                    retries=task.backend.retries,
                ))
            else:
                env.attach_shared_cache(
                    ServerCacheStore(cache_url, replicas=task.cache_replicas)
                )
        dataset: Optional[ArchGymDataset] = None
        if task.collect:
            dataset = ArchGymDataset(env.env_id)
            env.attach_dataset(dataset, source=task.source)
        agent = make_agent(
            task.agent, env.action_space, seed=task.agent_seed, **task.hyperparams
        )
        try:
            result = run_agent(
                agent,
                env,
                n_samples=task.n_samples,
                seed=task.run_seed,
                source_tag=task.source if task.collect else None,
                generation_dispatch=task.generation_dispatch,
                pipeline=task.pipeline,
                proxy_screen=task.proxy_screen,
                proxy_oversample=task.proxy_oversample,
                proxy_topk=task.proxy_topk,
                proxy_refresh=task.proxy_refresh,
                proxy_min_corpus=task.proxy_min_corpus,
            )
        except ServiceError as exc:
            # Identify the failing trial: under a process pool, the bare
            # client error would not say which of N in-flight trials died.
            raise ServiceError(
                f"trial {task.source} (task index {task.index}) failed "
                f"against the evaluation service: {exc}"
            ) from exc
        return TrialOutcome(
            index=task.index,
            agent=task.agent,
            env_id=env.env_id,
            result=result,
            transitions=list(dataset) if dataset is not None else [],
        )
    finally:
        env.close()


def _check_picklable(tasks: Sequence[TrialTask]) -> None:
    """Fail fast with a readable error instead of a mid-pool crash."""
    try:
        pickle.dumps(list(tasks))
    except Exception as exc:
        raise ExecutorError(
            "sweep tasks are not picklable, so they cannot cross the "
            "process boundary — the usual culprit is a lambda/closure "
            "env_factory. Use a module-level function, a class, or "
            "functools.partial of either, or run with workers=1. "
            f"Original error: {exc}"
        ) from exc


def execute_trials(
    tasks: Sequence[TrialTask],
    workers: int = 1,
    on_outcome: Optional[Callable[[TrialOutcome], None]] = None,
    keep_outcomes: bool = True,
) -> List[TrialOutcome]:
    """Run every task and return outcomes sorted by ``task.index``.

    ``workers=1`` runs in-process (deterministic fallback, no pickling
    requirement); ``workers>1`` fans out over a process pool. Results
    are identical either way because each task carries its own seeds.

    ``on_outcome`` is invoked in the parent as each trial finishes
    (completion order under ``workers>1``) — the shard-streaming hook.
    With ``keep_outcomes=False`` outcomes are dropped after the
    callback and an empty list is returned, so an arbitrarily large
    sweep needs only one outcome in memory at a time.

    One failing trial aborts the whole batch promptly: queued futures
    are cancelled, the pool is shut down *without* waiting for trials
    already in flight, and the in-flight worker processes are
    terminated — otherwise they would keep burning CPU and block
    interpreter exit until their (possibly hour-long) trials finished.
    """
    if workers < 1:
        raise ExecutorError(f"workers must be >= 1, got {workers}")
    if not tasks:
        return []

    ordered = sorted(tasks, key=lambda t: t.index)
    outcomes: List[TrialOutcome] = []

    if workers == 1:
        try:
            for task in ordered:
                outcome = run_trial(task)
                if on_outcome is not None:
                    on_outcome(outcome)
                if keep_outcomes:
                    outcomes.append(outcome)
        finally:
            # Trial teardown: leave no open sockets behind the batch.
            # The memoized backends themselves survive (quarantine
            # state, counters); connections reopen on next dispatch.
            close_cached_backends()
        return outcomes

    _check_picklable(tasks)
    pool = ProcessPoolExecutor(max_workers=min(workers, len(tasks)))
    completed_ok = False
    try:
        futures = [pool.submit(run_trial, task) for task in ordered]
        for future in as_completed(futures):
            outcome = future.result()
            if on_outcome is not None:
                on_outcome(outcome)
            if keep_outcomes:
                outcomes.append(outcome)
        completed_ok = True
    finally:
        # Fail-fast: on error, drop the queue and return immediately
        # instead of waiting out every already-running worker. Snapshot
        # the workers first — shutdown() clears pool._processes.
        workers_to_kill = (
            [] if completed_ok
            else list((getattr(pool, "_processes", None) or {}).values())
        )
        pool.shutdown(wait=completed_ok, cancel_futures=not completed_ok)
        for proc in workers_to_kill:
            # Kill the in-flight trials too, or concurrent.futures'
            # exit hook would still join them at interpreter exit.
            proc.terminate()
    return sorted(outcomes, key=lambda o: o.index)
