"""Task-based parallel execution for sweep trials.

The hyperparameter-lottery methodology (§6.1) is embarrassingly
parallel: every (agent, ticket) trial builds its own environment, runs
its own search, and only meets the others in the final report. This
module turns one trial into a self-contained, picklable
:class:`TrialTask` and fans a batch of them out over a
``concurrent.futures.ProcessPoolExecutor``.

Determinism is the design constraint: the *parent* precomputes every
task's hyperparameters and seeds (in the exact order the serial runner
drew them), so a task's outcome depends only on its own fields — never
on which worker ran it or in what order. ``workers=1`` short-circuits
to a plain in-process loop with zero multiprocessing overhead, and any
worker count yields bit-identical results.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.agents.base import SearchResult, run_agent
from repro.agents.hyperparams import make_agent
from repro.core.dataset import ArchGymDataset, Transition
from repro.core.env import ArchGymEnv
from repro.core.errors import ExecutorError

__all__ = ["TrialTask", "TrialOutcome", "execute_trials"]

EnvFactory = Callable[[], ArchGymEnv]


@dataclass(frozen=True)
class TrialTask:
    """One self-contained sweep trial: everything a worker needs.

    ``index`` is the task's position in the serial execution order;
    outcomes are re-sorted on it so callers always see results in the
    order a single-process run would have produced them.
    """

    index: int
    agent: str
    hyperparams: Dict[str, Any]
    agent_seed: int
    run_seed: int
    n_samples: int
    env_factory: EnvFactory
    collect: bool = False
    #: Tri-state: ``None`` leaves the environment's own cache
    #: configuration alone (built-in envs enable theirs in __init__,
    #: and a factory passing ``cache_size=0`` has opted out on
    #: purpose); ``True`` force-enables; ``False`` force-disables.
    cache: Optional[bool] = None


@dataclass
class TrialOutcome:
    """What one trial sends back across the process boundary."""

    index: int
    agent: str
    env_id: str
    result: SearchResult
    transitions: List[Transition] = field(default_factory=list)


def run_trial(task: TrialTask) -> TrialOutcome:
    """Execute one trial start to finish (the worker entry point).

    Builds a fresh environment, optionally enables the evaluation cache
    and a private trajectory log, and drives the agent for the task's
    sample budget. Module-level so it pickles by reference.
    """
    env = task.env_factory()
    if task.cache is True:
        if not env.cache_enabled:  # keep a larger pre-configured cache
            env.enable_cache()
    elif task.cache is False:
        env.disable_cache()
    dataset: Optional[ArchGymDataset] = None
    if task.collect:
        dataset = ArchGymDataset(env.env_id)
        env.attach_dataset(dataset)
    agent = make_agent(
        task.agent, env.action_space, seed=task.agent_seed, **task.hyperparams
    )
    result = run_agent(agent, env, n_samples=task.n_samples, seed=task.run_seed)
    return TrialOutcome(
        index=task.index,
        agent=task.agent,
        env_id=env.env_id,
        result=result,
        transitions=list(dataset) if dataset is not None else [],
    )


def _check_picklable(tasks: Sequence[TrialTask]) -> None:
    """Fail fast with a readable error instead of a mid-pool crash."""
    try:
        pickle.dumps(list(tasks))
    except Exception as exc:
        raise ExecutorError(
            "sweep tasks are not picklable, so they cannot cross the "
            "process boundary — the usual culprit is a lambda/closure "
            "env_factory. Use a module-level function, a class, or "
            "functools.partial of either, or run with workers=1. "
            f"Original error: {exc}"
        ) from exc


def execute_trials(
    tasks: Sequence[TrialTask], workers: int = 1
) -> List[TrialOutcome]:
    """Run every task and return outcomes sorted by ``task.index``.

    ``workers=1`` runs in-process (deterministic fallback, no pickling
    requirement); ``workers>1`` fans out over a process pool. Results
    are identical either way because each task carries its own seeds.
    A worker exception cancels the remaining futures and propagates.
    """
    if workers < 1:
        raise ExecutorError(f"workers must be >= 1, got {workers}")
    if not tasks:
        return []

    if workers == 1:
        return sorted((run_trial(task) for task in tasks), key=lambda o: o.index)

    _check_picklable(tasks)
    outcomes: List[TrialOutcome] = []
    with ProcessPoolExecutor(max_workers=min(workers, len(tasks))) as pool:
        futures = [pool.submit(run_trial, task) for task in tasks]
        try:
            for future in futures:
                outcomes.append(future.result())
        except BaseException:
            for future in futures:
                future.cancel()
            raise
    return sorted(outcomes, key=lambda o: o.index)
