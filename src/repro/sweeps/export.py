"""Export sweep results to JSON / CSV for external analysis.

The paper's artifact releases curated result datasets alongside code;
these helpers serialize a :class:`~repro.sweeps.runner.SweepReport`
into portable formats (one row per trial) so downstream analysis and
plotting don't need this library.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Dict, List

from repro.core.errors import ArchGymError
from repro.sweeps.runner import SweepReport

__all__ = ["report_to_rows", "save_report_json", "save_report_csv", "load_report_json"]


def report_to_rows(report: SweepReport) -> List[Dict[str, Any]]:
    """Flatten a sweep report: one dict per (agent, trial)."""
    rows: List[Dict[str, Any]] = []
    for agent, results in report.results.items():
        for trial, res in enumerate(results):
            rows.append(
                {
                    "env_id": report.env_id,
                    "agent": agent,
                    "trial": trial,
                    "n_samples": res.n_samples,
                    "best_fitness": res.best_fitness,
                    "best_reward": res.best_reward,
                    "target_met": res.target_met,
                    "wall_time_s": res.wall_time_s,
                    "sim_time_s": res.sim_time_s,
                    "cache_hits": res.cache_hits,
                    "cache_misses": res.cache_misses,
                    "shared_cache_hits": res.shared_cache_hits,
                    "remote_evals": res.remote_evals,
                    "remote_hosts": dict(res.remote_hosts),
                    "proxy_screened": res.proxy_screened,
                    "proxy_accepted": res.proxy_accepted,
                    "proxy_refresh_evals": res.proxy_refresh_evals,
                    "proxy_last_rmse": res.proxy_last_rmse,
                    "hyperparameters": dict(res.hyperparameters),
                    "best_action": dict(res.best_action),
                    "best_metrics": dict(res.best_metrics),
                }
            )
    if not rows:
        raise ArchGymError("sweep report has no trials to export")
    return rows


def save_report_json(report: SweepReport, path: str | Path) -> None:
    """Write the full report (all trials, nested fields) as JSON."""
    payload = {
        "format": "archgym-sweep-v1",
        "env_id": report.env_id,
        "n_samples": report.n_samples,
        "rows": report_to_rows(report),
    }
    Path(path).write_text(json.dumps(payload, indent=2, default=str))


def load_report_json(path: str | Path) -> Dict[str, Any]:
    """Load an exported report; returns the raw payload dict."""
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "archgym-sweep-v1":
        raise ArchGymError(f"{path} is not an ArchGym sweep export")
    return payload


def save_report_csv(report: SweepReport, path: str | Path) -> None:
    """Write a flat CSV (nested dicts JSON-encoded into single columns)."""
    rows = report_to_rows(report)
    fieldnames = [
        "env_id", "agent", "trial", "n_samples", "best_fitness",
        "best_reward", "target_met", "wall_time_s", "sim_time_s",
        "cache_hits", "cache_misses", "shared_cache_hits", "remote_evals",
        "remote_hosts", "proxy_screened", "proxy_accepted",
        "proxy_refresh_evals", "proxy_last_rmse",
        "hyperparameters", "best_action", "best_metrics",
    ]
    with Path(path).open("w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=fieldnames)
        writer.writeheader()
        for row in rows:
            flat = dict(row)
            for key in (
                "remote_hosts", "hyperparameters", "best_action", "best_metrics",
            ):
                flat[key] = json.dumps(flat[key], default=str)
            writer.writerow(flat)
