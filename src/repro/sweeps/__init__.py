"""Sweep harness, parallel executor, and lottery statistics (paper §6)."""

from repro.sweeps.executor import (
    BackendSpec,
    TrialOutcome,
    TrialTask,
    clear_backend_cache,
    execute_trials,
    parse_weighted_url,
    resolve_execution_backend,
)
from repro.sweeps.hostpool import HostPool, weighted_split
from repro.sweeps.export import (
    load_report_json,
    report_to_rows,
    save_report_csv,
    save_report_json,
)
from repro.sweeps.plots import render_boxplot, render_boxplots
from repro.sweeps.runner import SweepReport, run_lottery_sweep, validate_agent_names
from repro.sweeps.shards import (
    execute_durable,
    iter_shards,
    load_manifest,
    load_shard,
    prepare_sweep_dir,
    scan_completed,
    sweep_fingerprint,
    write_shard,
)
from repro.sweeps.stats import (
    FiveNumberSummary,
    hit_rate,
    iqr,
    normalize_scores,
    spread_percent,
)

__all__ = [
    "BackendSpec",
    "HostPool",
    "TrialTask",
    "TrialOutcome",
    "clear_backend_cache",
    "execute_trials",
    "parse_weighted_url",
    "resolve_execution_backend",
    "weighted_split",
    "load_report_json",
    "report_to_rows",
    "save_report_csv",
    "save_report_json",
    "render_boxplot",
    "render_boxplots",
    "SweepReport",
    "run_lottery_sweep",
    "validate_agent_names",
    "execute_durable",
    "iter_shards",
    "load_manifest",
    "load_shard",
    "prepare_sweep_dir",
    "scan_completed",
    "sweep_fingerprint",
    "write_shard",
    "FiveNumberSummary",
    "hit_rate",
    "iqr",
    "normalize_scores",
    "spread_percent",
]
