"""Sweep harness, parallel executor, and lottery statistics (paper §6).

The package runs the paper's hyperparameter-lottery experiment at any
scale while guaranteeing one invariant: **results are byte-identical
no matter how the work is executed**. Serial in-process,
process-pooled (``workers=N``), resumed from durable shards, remote
over one service, scattered over a weighted multi-host pool, or
pipelined with work stealing — same reports, same datasets, same
cache counters. Execution shape is purely a wall-clock knob.

Layout:

- :mod:`repro.sweeps.runner` — :func:`run_lottery_sweep` /
  :class:`SweepReport`, the user-facing entry point.
- :mod:`repro.sweeps.executor` — :class:`TrialTask` scheduling over a
  process pool; per-worker backend resolution.
- :mod:`repro.sweeps.shards` — durable sweeps: atomic per-trial JSON
  shards, fingerprinted manifests, ``resume``.
- :mod:`repro.sweeps.hostpool` — :class:`HostPool`: least-load
  dispatch, weighted scatter (:meth:`~HostPool.evaluate_batch_scatter`),
  streaming dispatch with work stealing
  (:meth:`~HostPool.evaluate_batch_stream`), quarantine/failover.
- :mod:`repro.sweeps.stats` / ``export`` / ``plots`` — lottery
  statistics, report serialization, and Fig. 4-style boxplots.

See ``docs/ARCHITECTURE.md`` for the full layer map.
"""

from repro.sweeps.executor import (
    BackendSpec,
    TrialOutcome,
    TrialTask,
    clear_backend_cache,
    execute_trials,
    parse_weighted_url,
    resolve_execution_backend,
)
from repro.sweeps.hostpool import HostPool, weighted_split
from repro.sweeps.export import (
    load_report_json,
    report_to_rows,
    save_report_csv,
    save_report_json,
)
from repro.sweeps.plots import render_boxplot, render_boxplots
from repro.sweeps.runner import SweepReport, run_lottery_sweep, validate_agent_names
from repro.sweeps.shards import (
    execute_durable,
    iter_shards,
    load_manifest,
    load_shard,
    prepare_sweep_dir,
    scan_completed,
    sweep_fingerprint,
    write_shard,
)
from repro.sweeps.stats import (
    FiveNumberSummary,
    hit_rate,
    iqr,
    normalize_scores,
    spread_percent,
)

__all__ = [
    "BackendSpec",
    "HostPool",
    "TrialTask",
    "TrialOutcome",
    "clear_backend_cache",
    "execute_trials",
    "parse_weighted_url",
    "resolve_execution_backend",
    "weighted_split",
    "load_report_json",
    "report_to_rows",
    "save_report_csv",
    "save_report_json",
    "render_boxplot",
    "render_boxplots",
    "SweepReport",
    "run_lottery_sweep",
    "validate_agent_names",
    "execute_durable",
    "iter_shards",
    "load_manifest",
    "load_shard",
    "prepare_sweep_dir",
    "scan_completed",
    "sweep_fingerprint",
    "write_shard",
    "FiveNumberSummary",
    "hit_rate",
    "iqr",
    "normalize_scores",
    "spread_percent",
]
