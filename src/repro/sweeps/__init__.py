"""Sweep harness and lottery statistics (paper §6)."""

from repro.sweeps.export import (
    load_report_json,
    report_to_rows,
    save_report_csv,
    save_report_json,
)
from repro.sweeps.plots import render_boxplot, render_boxplots
from repro.sweeps.runner import SweepReport, run_lottery_sweep
from repro.sweeps.stats import (
    FiveNumberSummary,
    iqr,
    normalize_scores,
    spread_percent,
)

__all__ = [
    "load_report_json",
    "report_to_rows",
    "save_report_csv",
    "save_report_json",
    "render_boxplot",
    "render_boxplots",
    "SweepReport",
    "run_lottery_sweep",
    "FiveNumberSummary",
    "iqr",
    "normalize_scores",
    "spread_percent",
]
