"""Statistics for hyperparameter-lottery analysis (paper §6.1).

The paper reports the *statistical spread* of each agent's outcomes
across a hyperparameter sweep as the interquartile range (footnote 1),
and compares agents under sample budgets by *mean normalized reward*
(Fig. 7). These helpers implement exactly those quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.core.errors import ArchGymError

__all__ = ["iqr", "spread_percent", "normalize_scores", "hit_rate", "FiveNumberSummary"]


def hit_rate(hits: int, misses: int) -> float:
    """Cache hit rate in [0, 1]; 0.0 for an unused cache."""
    if hits < 0 or misses < 0:
        raise ArchGymError(f"negative cache counters ({hits}h/{misses}m)")
    total = hits + misses
    return hits / total if total else 0.0


def iqr(values: Sequence[float]) -> float:
    """Interquartile range (Q3 - Q1)."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ArchGymError("iqr of an empty sequence")
    q75, q25 = np.percentile(arr, [75, 25])
    return float(q75 - q25)


def spread_percent(values: Sequence[float]) -> float:
    """IQR as a percentage of the median magnitude — the paper's
    "statistical spread of up to 90%" measure."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        raise ArchGymError("spread of an empty sequence")
    med = float(np.median(np.abs(arr)))
    if med <= 1e-15:
        scale = float(np.max(np.abs(arr)))
        if scale <= 1e-15:
            return 0.0
        return 100.0 * iqr(arr) / scale
    return 100.0 * iqr(arr) / med


def normalize_scores(scores: Dict[str, float]) -> Dict[str, float]:
    """Normalize per-agent scores to the best agent (best -> 1.0).

    Scores must be maximize-me fitness values; negative fitness (e.g.
    negated budget distances) is shifted to a positive scale first so
    the normalization stays in [0, 1].
    """
    if not scores:
        raise ArchGymError("no scores to normalize")
    values = np.array(list(scores.values()), dtype=np.float64)
    low = values.min()
    if low < 0:
        values = values - low
    top = values.max()
    if top <= 1e-15:
        return {k: 1.0 for k in scores}
    return {k: float(v / top) for k, v in zip(scores, values)}


@dataclass(frozen=True)
class FiveNumberSummary:
    """min / Q1 / median / Q3 / max of a score distribution."""

    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    n: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "FiveNumberSummary":
        arr = np.asarray(list(values), dtype=np.float64)
        if arr.size == 0:
            raise ArchGymError("summary of an empty sequence")
        q1, med, q3 = np.percentile(arr, [25, 50, 75])
        return cls(
            minimum=float(arr.min()), q1=float(q1), median=float(med),
            q3=float(q3), maximum=float(arr.max()), n=int(arr.size),
        )

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def row(self, label: str) -> str:
        return (
            f"{label:28s} n={self.n:3d}  min={self.minimum:10.4g}  "
            f"q1={self.q1:10.4g}  med={self.median:10.4g}  "
            f"q3={self.q3:10.4g}  max={self.maximum:10.4g}  iqr={self.iqr:10.4g}"
        )
