"""Multi-host scheduling for remote evaluation: spread one sweep's
cost-model traffic over several evaluation services.

The paper's §6 argument — fair agent comparison needs *huge* numbers of
simulator evaluations — makes the evaluation service the throughput
ceiling of a sweep. One ``repro serve`` host saturates at one
simulator's speed; :class:`HostPool` points a sweep at N of them:

- **Least-load dispatch.** Every call picks the healthy host with the
  fewest in-flight requests *per unit of capacity weight* (ties rotate
  round-robin), so slow hosts shed load to fast ones automatically and
  a host declared twice as big carries twice the concurrent load.
- **Generation scatter.** :meth:`HostPool.evaluate_batch_scatter`
  splits one batch of design points across all living hosts in
  weight-proportional contiguous chunks, dispatches the chunks in
  parallel, and reassembles the results in request order with
  per-point host provenance — the transport under generation-native
  agents (GA/ACO populations), which turns N per-point round trips
  into one per host.
- **Health and failover.** A host whose transport fails (connection
  refused/reset, timeout, torn body — after the client's own retry
  policy) is *quarantined* and the call fails over to a surviving
  host. Evaluations are deterministic and idempotent, so a re-sent
  design point can never produce a duplicate or divergent result —
  which is what keeps a multi-host sweep bit-identical to a serial
  in-process run.
- **Revival.** When every host is quarantined the pool re-probes each
  one via ``GET /healthz`` and revives any that answer (a restarted
  server rejoins automatically). Only when that last sweep finds no
  living host does the call raise, with a per-host error inventory;
  the executor layer wraps it with the failing trial's name.

Server-produced errors (HTTP 4xx/5xx bodies — unknown env, cost-model
crash) are **not** failover events: they are deterministic and would
fail identically on every host, so they propagate immediately.

The pool quacks like :class:`~repro.service.client.ServiceClient` for
``evaluate``/``evaluate_batch``, so
:class:`~repro.service.remote.RemoteBackend` can carry either without
knowing which it holds.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.errors import ServiceError, ServiceTransportError
from repro.service.client import ServiceClient

__all__ = ["HostPool", "weighted_split"]


def weighted_split(n: int, weights: Sequence[float]) -> List[int]:
    """Apportion ``n`` items over ``weights`` proportionally.

    Largest-remainder rounding (ties to the earlier position), so the
    counts always sum to ``n`` and the split is deterministic for a
    given weight vector.
    """
    if not weights:
        raise ServiceError("weighted_split needs at least one weight")
    total = float(sum(weights))
    raw = [n * w / total for w in weights]
    counts = [int(r) for r in raw]
    order = sorted(
        range(len(weights)), key=lambda i: (-(raw[i] - counts[i]), i)
    )
    for i in order[: n - sum(counts)]:
        counts[i] += 1
    return counts


class _Host:
    """One evaluation service inside the pool."""

    __slots__ = (
        "url", "client", "probe_client", "weight", "alive", "inflight",
        "evals", "last_error", "quarantined_at",
    )

    def __init__(
        self, url: str, client: ServiceClient, probe_client: ServiceClient,
        weight: float = 1.0,
    ) -> None:
        self.url = client.base_url
        self.client = client
        #: Short-timeout, zero-retry client for healthz re-probes of a
        #: quarantined host — a probe of a still-dead host must cost
        #: seconds, not the full evaluation timeout × retries.
        self.probe_client = probe_client
        #: Relative capacity: a weight-2 host takes twice the
        #: concurrent load (least-load compares inflight/weight) and
        #: twice the share of a scattered generation.
        self.weight = weight
        self.alive = True
        self.inflight = 0
        self.evals = 0  # design points this host answered
        self.last_error: Optional[str] = None
        self.quarantined_at = 0.0

    def __repr__(self) -> str:
        state = "alive" if self.alive else f"quarantined ({self.last_error})"
        return (
            f"_Host({self.url!r}, {state}, weight={self.weight}, "
            f"inflight={self.inflight})"
        )


class HostPool:
    """Schedule evaluation calls over several service hosts.

    Parameters
    ----------
    urls:
        Base URLs of running evaluation services. Duplicates are
        collapsed (one host, one health state). Order is the tie-break
        for least-load dispatch.
    weights:
        Per-host capacity weights aligned with ``urls`` (``None`` =
        all 1.0). A weight-W host carries W× the concurrent load under
        least-load dispatch (load is counted as ``inflight / weight``)
        and receives a W-proportional share of every scattered batch.
        Weights must be positive and finite; duplicate URLs must agree
        on their weight.
    timeout_s, retries, backoff_s:
        Per-host :class:`ServiceClient` policy — each host gets its own
        client (and with it its own keep-alive connections).
    revive_after_s:
        How long a quarantined host rests before the pool re-probes
        its ``/healthz`` (with a short-timeout, zero-retry probe) and
        revives it on success — so one transient failure costs a host
        at most this long, not the rest of the sweep. A failed probe
        restarts the clock. ``0`` probes on every dispatch; ``None``
        disables timed revival (the all-dead revival sweep still runs).

    Thread-safe: the parallel executor may drive one pool from many
    threads; host selection and in-flight accounting sit under one
    lock, while the HTTP calls themselves run outside it.
    """

    def __init__(
        self,
        urls: Sequence[str],
        timeout_s: float = 60.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        revive_after_s: Optional[float] = 30.0,
        weights: Optional[Sequence[float]] = None,
    ) -> None:
        if isinstance(urls, str):  # a lone URL is a 1-host pool
            urls = (urls,)
        if not urls:
            raise ServiceError("HostPool needs at least one service url")
        if weights is None:
            weights = [1.0] * len(urls)
        if len(weights) != len(urls):
            raise ServiceError(
                f"HostPool got {len(urls)} url(s) but {len(weights)} "
                "weight(s); pass one weight per url (or None for all-1)"
            )
        for url, weight in zip(urls, weights):
            if not (isinstance(weight, (int, float))
                    and math.isfinite(weight) and weight > 0):
                raise ServiceError(
                    f"host weight for {url!r} must be a positive finite "
                    f"number, got {weight!r}"
                )
        # Dedupe on the client-normalized base URL, not the raw string:
        # 'http://h:1' and 'http://h:1/' are one server, and two _Host
        # entries for it would split its quarantine state and double
        # its share of least-load dispatch.
        self._hosts: List[_Host] = []
        seen: Dict[str, float] = {}
        for url, weight in zip(urls, weights):
            client = ServiceClient(
                url, timeout_s=timeout_s, retries=retries, backoff_s=backoff_s,
            )
            if client.base_url in seen:
                if seen[client.base_url] != float(weight):
                    raise ServiceError(
                        f"conflicting weights for host {client.base_url!r}: "
                        f"{seen[client.base_url]} vs {weight}"
                    )
                continue
            seen[client.base_url] = float(weight)
            probe = ServiceClient(
                url, timeout_s=min(timeout_s, 2.0), retries=0,
                backoff_s=backoff_s,
            )
            self._hosts.append(_Host(url, client, probe, weight=float(weight)))
        self.revive_after_s = revive_after_s
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next = 0  # round-robin cursor for load ties

    # -- introspection ------------------------------------------------------------

    @property
    def urls(self) -> List[str]:
        return [h.url for h in self._hosts]

    @property
    def alive_urls(self) -> List[str]:
        with self._lock:
            return [h.url for h in self._hosts if h.alive]

    @property
    def quarantined_urls(self) -> List[str]:
        with self._lock:
            return [h.url for h in self._hosts if not h.alive]

    @property
    def evals_by_host(self) -> Dict[str, int]:
        """Design points answered per host (successful calls only)."""
        with self._lock:
            return {h.url: h.evals for h in self._hosts if h.evals}

    @property
    def weights_by_host(self) -> Dict[str, float]:
        """Capacity weight per host (dispatch divides load by these)."""
        return {h.url: h.weight for h in self._hosts}

    @property
    def last_host(self) -> Optional[str]:
        """URL that served the calling thread's most recent success —
        how :class:`~repro.core.env.ArchGymEnv` attributes its per-host
        ``remote_evals`` counters."""
        return getattr(self._local, "last_host", None)

    def __repr__(self) -> str:
        return f"HostPool(hosts={self.urls}, alive={self.alive_urls})"

    # -- health -------------------------------------------------------------------

    def check_health(self) -> Dict[str, Optional[Dict[str, Any]]]:
        """Probe every host's ``/healthz``; returns ``url -> health``
        (``None`` for non-responders, which are quarantined). Raises
        :class:`ServiceError` only if *no* host answers — a pool with
        any survivor can still run the sweep."""
        report: Dict[str, Optional[Dict[str, Any]]] = {}
        for host in self._hosts:
            try:
                report[host.url] = host.client.healthz()
                self._mark(host, alive=True)
            except ServiceError as exc:
                report[host.url] = None
                self._mark(host, alive=False, error=str(exc))
        if not any(v is not None for v in report.values()):
            raise ServiceError(
                f"no evaluation host is healthy: {self._error_inventory()}"
            )
        return report

    def _mark(self, host: _Host, alive: bool, error: Optional[str] = None) -> None:
        with self._lock:
            host.alive = alive
            host.last_error = None if alive else (error or host.last_error)
            if not alive:
                host.quarantined_at = time.monotonic()

    def _timed_revival(self) -> None:
        """Re-probe quarantined hosts whose rest period has elapsed.

        One short healthz per due host per ``revive_after_s`` window —
        a failed probe restarts its clock, so a still-dead host costs
        the dispatch path a bounded, occasional probe instead of the
        full evaluation timeout on every trial.
        """
        if self.revive_after_s is None:
            return
        now = time.monotonic()
        for host in self._hosts:
            with self._lock:
                due = (
                    not host.alive
                    and now - host.quarantined_at >= self.revive_after_s
                )
                if due:
                    host.quarantined_at = now  # claim this probe slot
            if not due:
                continue
            try:
                host.probe_client.healthz()
            except ServiceError:
                continue
            self._mark(host, alive=True)

    def _error_inventory(self) -> str:
        with self._lock:
            return "; ".join(
                f"{h.url}: {h.last_error or 'ok'}" for h in self._hosts
            )

    def _revive_sweep(self) -> int:
        """All hosts are quarantined: healthz-probe each one and revive
        the responders. Returns how many came back."""
        revived = 0
        for host in self._hosts:
            with self._lock:
                dead = not host.alive
            if not dead:
                continue
            try:
                host.probe_client.healthz()
            except ServiceError:
                continue
            self._mark(host, alive=True)
            revived += 1
        return revived

    # -- dispatch -----------------------------------------------------------------

    def _acquire(self) -> Optional[_Host]:
        """Least-loaded living host (in-flight count bumped), or None.

        Load is in-flight requests *divided by capacity weight*, so a
        weight-2 host is only "as busy" as a weight-1 host carrying
        half its requests. Load ties break round-robin, not by
        position: a serial caller (whose in-flight count is always
        zero at dispatch time) must still spread its requests over the
        whole fleet instead of pinning the first host.
        """
        with self._lock:
            living = [(i, h) for i, h in enumerate(self._hosts) if h.alive]
            if not living:
                return None
            n = len(self._hosts)
            start = self._next % n
            index, host = min(
                living,
                key=lambda ih: (
                    ih[1].inflight / ih[1].weight, (ih[0] - start) % n
                ),
            )
            self._next = index + 1
            host.inflight += 1
            return host

    def _release(self, host: _Host, n_evals: int, ok: bool) -> None:
        with self._lock:
            host.inflight -= 1
            if ok:
                host.evals += n_evals

    def _call(self, op: str, n_evals: int, *args: Any, **kwargs: Any) -> Any:
        """Run ``op`` on the least-loaded host, failing over on
        transport death; at most one all-dead revival sweep per call."""
        self._timed_revival()
        revived_once = False
        while True:
            host = self._acquire()
            if host is None:
                if not revived_once and self._revive_sweep():
                    revived_once = True
                    continue
                raise ServiceTransportError(
                    f"all {len(self._hosts)} evaluation host(s) failed: "
                    f"{self._error_inventory()}"
                )
            ok = False
            try:
                result = getattr(host.client, op)(*args, **kwargs)
                ok = True
            except ServiceTransportError as exc:
                # The host is unreachable (after the client's own
                # retries): quarantine it and fail over. The request is
                # idempotent, so the next host re-runs it safely.
                self._mark(host, alive=False, error=str(exc))
                continue
            finally:
                self._release(host, n_evals, ok)
            self._local.last_host = host.url
            return result

    # -- the ServiceClient surface RemoteBackend uses -----------------------------

    def evaluate(
        self,
        env: str,
        action: Dict[str, Any],
        env_kwargs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, float]:
        """Evaluate one design point on the best available host."""
        return self._call("evaluate", 1, env, action, env_kwargs=env_kwargs)

    def evaluate_batch(
        self,
        env: str,
        actions: Sequence[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]] = None,
        memoize: bool = True,
    ) -> List[Dict[str, float]]:
        """Evaluate a batch on one host (whole-batch failover)."""
        return self._call(
            "evaluate_batch", len(actions), env, actions,
            env_kwargs=env_kwargs, memoize=memoize,
        )

    def _try_host(
        self, host: _Host, op: str, n_evals: int, *args: Any, **kwargs: Any
    ) -> Any:
        """One attempt pinned to ``host`` (in-flight accounted).

        Transport death quarantines the host and re-raises so the
        caller can fail the work over; server-produced errors
        propagate untouched, like :meth:`_call`.
        """
        with self._lock:
            host.inflight += 1
        ok = False
        try:
            result = getattr(host.client, op)(*args, **kwargs)
            ok = True
            return result
        except ServiceTransportError as exc:
            self._mark(host, alive=False, error=str(exc))
            raise
        finally:
            self._release(host, n_evals, ok)

    def evaluate_batch_scatter(
        self,
        env: str,
        actions: Sequence[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]] = None,
        memoize: bool = True,
    ) -> Tuple[List[Dict[str, float]], List[Optional[str]]]:
        """Split one batch across the living hosts and run the chunks
        in parallel.

        The batch (typically a GA/ACO generation) is cut into
        contiguous chunks sized by capacity weight — a weight-2 host
        receives twice the design points — each chunk rides one
        ``POST /evaluate_batch``, and the results are reassembled in
        request order. Returns ``(metrics, hosts)`` where ``hosts[i]``
        names the host that answered point ``i`` (the per-point
        provenance :class:`~repro.core.env.ArchGymEnv` records).

        A chunk whose assigned host dies mid-flight is quarantined and
        the chunk re-dispatched through the ordinary least-load
        failover path (evaluations are idempotent, so a re-sent chunk
        cannot diverge). A batch that would land on a single host —
        one living host, or a batch too small to split — delegates to
        the whole-batch path so tiny batches keep round-robin/
        least-load placement instead of pinning the heaviest host.
        """
        actions = list(actions)
        if not actions:
            return [], []
        self._timed_revival()
        with self._lock:
            alive = [h for h in self._hosts if h.alive]
        if len(alive) > 1:
            counts = weighted_split(len(actions), [h.weight for h in alive])
            chunks: List[Tuple[_Host, List[Dict[str, Any]]]] = []
            cursor = 0
            for host, count in zip(alive, counts):
                if count:
                    chunks.append((host, actions[cursor:cursor + count]))
                    cursor += count
        else:
            chunks = []
        if len(chunks) <= 1:
            metrics = self._call(
                "evaluate_batch", len(actions), env, actions,
                env_kwargs=env_kwargs, memoize=memoize,
            )
            return metrics, [self.last_host] * len(actions)

        chunk_metrics: List[Optional[List[Dict[str, float]]]] = (
            [None] * len(chunks)
        )
        chunk_hosts: List[Optional[str]] = [None] * len(chunks)
        chunk_errors: List[Optional[BaseException]] = [None] * len(chunks)

        def run_chunk(index: int, host: _Host, sub: List[Dict[str, Any]]) -> None:
            try:
                try:
                    got = self._try_host(
                        host, "evaluate_batch", len(sub), env, sub,
                        env_kwargs=env_kwargs, memoize=memoize,
                    )
                    served_by = host.url
                except ServiceTransportError:
                    # The assigned host died (now quarantined): re-run
                    # the chunk through the normal failover path.
                    got = self._call(
                        "evaluate_batch", len(sub), env, sub,
                        env_kwargs=env_kwargs, memoize=memoize,
                    )
                    served_by = self._local.last_host
                chunk_metrics[index] = got
                chunk_hosts[index] = served_by
            except BaseException as exc:  # surfaced to the caller below
                chunk_errors[index] = exc

        threads = [
            threading.Thread(
                target=run_chunk, args=(i, host, sub), daemon=True
            )
            for i, (host, sub) in enumerate(chunks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for error in chunk_errors:
            if error is not None:
                raise error

        metrics: List[Dict[str, float]] = []
        hosts: List[Optional[str]] = []
        for index, (_, sub) in enumerate(chunks):
            metrics.extend(chunk_metrics[index])
            hosts.extend([chunk_hosts[index]] * len(sub))
        self._local.last_host = hosts[-1]
        return metrics, hosts

    def healthz(self) -> Dict[str, Any]:
        """Liveness document of the least-loaded living host."""
        return self._call("healthz", 0)

    def close(self) -> None:
        """Close every host client's calling-thread connection."""
        for host in self._hosts:
            host.client.close()
