"""Multi-host scheduling for remote evaluation: spread one sweep's
cost-model traffic over several evaluation services.

The paper's §6 argument — fair agent comparison needs *huge* numbers of
simulator evaluations — makes the evaluation service the throughput
ceiling of a sweep. One ``repro serve`` host saturates at one
simulator's speed; :class:`HostPool` points a sweep at N of them:

- **Least-load dispatch.** Every call picks the healthy host with the
  fewest in-flight requests *per unit of capacity weight* (ties rotate
  round-robin), so slow hosts shed load to fast ones automatically and
  a host declared twice as big carries twice the concurrent load.
- **Generation scatter.** :meth:`HostPool.evaluate_batch_scatter`
  splits one batch of design points across all living hosts in
  weight-proportional contiguous chunks, dispatches the chunks in
  parallel, and reassembles the results in request order with
  per-point host provenance — the transport under generation-native
  agents (GA/ACO populations), which turns N per-point round trips
  into one per host. The scatter is a *barrier*: the call returns
  only when the slowest host has finished its chunk.
- **Streaming dispatch with work stealing.**
  :meth:`HostPool.evaluate_batch_stream` removes that barrier. The
  batch is cut into small contiguous *work units* that hosts pull
  from a shared queue as they finish (fast hosts naturally take
  more), completed units are yielded to the caller immediately —
  arrival order, not request order — and when the queue runs dry an
  idle host *steals* a straggler's in-flight unit by re-dispatching
  a duplicate request. Evaluations are deterministic and idempotent,
  so the first completion wins and late duplicates are discarded by
  unit id; no unit is ever recorded twice. The stream finishes as
  soon as every *result* is known — abandoned straggler requests may
  still be in flight, which is exactly what lets a pipelined driver
  start the next generation on the idle hosts meanwhile.
- **Health and failover.** A host whose transport fails (connection
  refused/reset, timeout, torn body — after the client's own retry
  policy) is *quarantined* and the call fails over to a surviving
  host. Evaluations are deterministic and idempotent, so a re-sent
  design point can never produce a duplicate or divergent result —
  which is what keeps a multi-host sweep bit-identical to a serial
  in-process run.
- **Revival.** When every host is quarantined the pool re-probes each
  one via ``GET /healthz`` and revives any that answer (a restarted
  server rejoins automatically). Only when that last sweep finds no
  living host does the call raise, with a per-host error inventory;
  the executor layer wraps it with the failing trial's name.

Server-produced errors (HTTP 4xx/5xx bodies — unknown env, cost-model
crash) are **not** failover events: they are deterministic and would
fail identically on every host, so they propagate immediately.

The pool quacks like :class:`~repro.service.client.ServiceClient` for
``evaluate``/``evaluate_batch``, so
:class:`~repro.service.remote.RemoteBackend` can carry either without
knowing which it holds.
"""

from __future__ import annotations

import math
import queue
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ServiceError, ServiceTransportError
from repro.service.client import ServiceClient

__all__ = ["HostPool", "weighted_split"]

#: EWMA smoothing factor for observed per-host service rates: high
#: enough that a genuinely slow host is demoted within a few refresh
#: windows, low enough that one noisy window cannot whipsaw the split.
_AUTO_WEIGHT_ALPHA = 0.4
#: Floor on the observed-rate multiplier applied to a host's static
#: weight — the "never starved" clamp: however slow a host measures,
#: it keeps at least this fraction of its declared capacity, so it
#: continues to receive (and report on) work and can be promoted back.
_AUTO_WEIGHT_FLOOR = 0.1
#: Page size for the anti-entropy cache backfill of a revived host.
_BACKFILL_PAGE = 200
#: Smallest busy-time delta a refresh window may turn into a rate.
#: With ``auto_weights_interval_s=0`` two healthz polls can land
#: back-to-back; dividing a 1-evaluation delta by a sub-microsecond
#: busy window would fold an absurd rate spike into the EWMA.
_MIN_RATE_WINDOW_S = 1e-6


def weighted_split(n: int, weights: Sequence[float]) -> List[int]:
    """Apportion ``n`` items over ``weights`` proportionally.

    Largest-remainder rounding (ties to the earlier position), so the
    counts always sum to ``n`` and the split is deterministic for a
    given weight vector.
    """
    if not weights:
        raise ServiceError("weighted_split needs at least one weight")
    total = float(sum(weights))
    if total <= 0:
        # A weight vector derived from *observed* service rates can
        # legitimately be all zero (a cold fleet with no measurements
        # yet): split uniformly instead of dividing by zero.
        weights = [1.0] * len(weights)
        total = float(len(weights))
    raw = [n * w / total for w in weights]
    counts = [int(r) for r in raw]
    order = sorted(
        range(len(weights)), key=lambda i: (-(raw[i] - counts[i]), i)
    )
    for i in order[: n - sum(counts)]:
        counts[i] += 1
    return counts


class _Host:
    """One evaluation service inside the pool."""

    __slots__ = (
        "url", "client", "probe_client", "weight", "alive", "inflight",
        "evals", "last_error", "quarantined_at", "auto_weight",
        "rate_ewma", "seen_evals", "seen_busy_s",
    )

    def __init__(
        self, url: str, client: ServiceClient, probe_client: ServiceClient,
        weight: float = 1.0,
    ) -> None:
        self.url = client.base_url
        self.client = client
        #: Short-timeout, zero-retry client for healthz re-probes of a
        #: quarantined host — a probe of a still-dead host must cost
        #: seconds, not the full evaluation timeout × retries.
        self.probe_client = probe_client
        #: Relative capacity: a weight-2 host takes twice the
        #: concurrent load (least-load compares inflight/weight) and
        #: twice the share of a scattered generation.
        self.weight = weight
        self.alive = True
        self.inflight = 0
        self.evals = 0  # design points this host answered
        self.last_error: Optional[str] = None
        self.quarantined_at = 0.0
        #: Effective dispatch weight: equals ``weight`` until an
        #: auto-weights refresh blends in the observed service rate.
        self.auto_weight = weight
        #: EWMA of the observed service rate (design points per busy
        #: second, from the host's /healthz counters); None until the
        #: first measurement window with actual work in it.
        self.rate_ewma: Optional[float] = None
        # healthz counter baselines for per-window rate deltas
        self.seen_evals = 0
        self.seen_busy_s = 0.0

    def __repr__(self) -> str:
        state = "alive" if self.alive else f"quarantined ({self.last_error})"
        return (
            f"_Host({self.url!r}, {state}, weight={self.weight}, "
            f"inflight={self.inflight})"
        )


class HostPool:
    """Schedule evaluation calls over several service hosts.

    Parameters
    ----------
    urls:
        Base URLs of running evaluation services. Duplicates are
        collapsed (one host, one health state). Order is the tie-break
        for least-load dispatch.
    weights:
        Per-host capacity weights aligned with ``urls`` (``None`` =
        all 1.0). A weight-W host carries W× the concurrent load under
        least-load dispatch (load is counted as ``inflight / weight``)
        and receives a W-proportional share of every scattered batch.
        Weights must be positive and finite; duplicate URLs must agree
        on their weight.
    timeout_s, retries, backoff_s:
        Per-host :class:`ServiceClient` policy — each host gets its own
        client (and with it its own keep-alive connections).
    revive_after_s:
        How long a quarantined host rests before the pool re-probes
        its ``/healthz`` (with a short-timeout, zero-retry probe) and
        revives it on success — so one transient failure costs a host
        at most this long, not the rest of the sweep. A failed probe
        restarts the clock. ``0`` probes on every dispatch; ``None``
        disables timed revival (the all-dead revival sweep still runs).
        A revived host is first *backfilled*: the pool pages a living
        replica's ``/cache`` map into it (the anti-entropy sweep), so
        a server that restarted empty rejoins with the fleet's shared
        entries instead of forcing re-simulation.
    auto_weights:
        Self-tune the dispatch weights from observed service rates.
        Every ``auto_weights_interval_s`` the pool reads each living
        host's ``/healthz`` counters (``evaluations`` and the server's
        ``busy_s`` accumulator), computes the per-window service rate
        (design points per busy second), smooths it with an EWMA, and
        scales each host's static weight by its rate relative to the
        fastest host — clamped to a floor so a slow host keeps a
        trickle of work (and a *cold* host with no measurements keeps
        its full static weight, never starved). Least-load dispatch
        and generation scatter then rebalance a heterogeneous fleet
        automatically. Purely a placement knob: evaluations are
        deterministic, so results are byte-identical either way.
    auto_weights_interval_s:
        Seconds between auto-weight refreshes (``0`` refreshes on
        every dispatch — useful in tests and microbenchmarks).

    Thread-safe: the parallel executor may drive one pool from many
    threads; host selection and in-flight accounting sit under one
    lock, while the HTTP calls themselves run outside it.
    """

    def __init__(
        self,
        urls: Sequence[str],
        timeout_s: float = 60.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        revive_after_s: Optional[float] = 30.0,
        weights: Optional[Sequence[float]] = None,
        auto_weights: bool = False,
        auto_weights_interval_s: float = 5.0,
    ) -> None:
        if isinstance(urls, str):  # a lone URL is a 1-host pool
            urls = (urls,)
        if not urls:
            raise ServiceError("HostPool needs at least one service url")
        if weights is None:
            weights = [1.0] * len(urls)
        if len(weights) != len(urls):
            raise ServiceError(
                f"HostPool got {len(urls)} url(s) but {len(weights)} "
                "weight(s); pass one weight per url (or None for all-1)"
            )
        for url, weight in zip(urls, weights):
            if not (isinstance(weight, (int, float))
                    and math.isfinite(weight) and weight > 0):
                raise ServiceError(
                    f"host weight for {url!r} must be a positive finite "
                    f"number, got {weight!r}"
                )
        # Dedupe on the client-normalized base URL, not the raw string:
        # 'http://h:1' and 'http://h:1/' are one server, and two _Host
        # entries for it would split its quarantine state and double
        # its share of least-load dispatch.
        self._hosts: List[_Host] = []
        seen: Dict[str, float] = {}
        for url, weight in zip(urls, weights):
            client = ServiceClient(
                url, timeout_s=timeout_s, retries=retries, backoff_s=backoff_s,
            )
            if client.base_url in seen:
                if seen[client.base_url] != float(weight):
                    raise ServiceError(
                        f"conflicting weights for host {client.base_url!r}: "
                        f"{seen[client.base_url]} vs {weight}"
                    )
                continue
            seen[client.base_url] = float(weight)
            probe = ServiceClient(
                url, timeout_s=min(timeout_s, 2.0), retries=0,
                backoff_s=backoff_s,
            )
            self._hosts.append(_Host(url, client, probe, weight=float(weight)))
        self.revive_after_s = revive_after_s
        if auto_weights_interval_s < 0:
            raise ServiceError(
                f"auto_weights_interval_s must be >= 0, got "
                f"{auto_weights_interval_s}"
            )
        self.auto_weights = auto_weights
        self.auto_weights_interval_s = auto_weights_interval_s
        self._weights_refreshed_at = float("-inf")
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next = 0  # round-robin cursor for load ties
        #: Cumulative streaming-dispatch accounting (under ``_lock``):
        #: work units dispatched, units re-dispatched by an idle host
        #: stealing a straggler's in-flight work, and late duplicate
        #: completions discarded because another host won the unit.
        self.stream_units = 0
        self.stream_steals = 0
        self.stream_duplicates = 0
        #: Auto-weight refreshes that actually recomputed the
        #: effective weights (at least one host had rate data).
        self.auto_weight_updates = 0
        #: Cache entries copied into revived hosts by the
        #: anti-entropy backfill.
        self.cache_backfills = 0

    # -- introspection ------------------------------------------------------------

    @property
    def urls(self) -> List[str]:
        return [h.url for h in self._hosts]

    @property
    def alive_urls(self) -> List[str]:
        with self._lock:
            return [h.url for h in self._hosts if h.alive]

    @property
    def quarantined_urls(self) -> List[str]:
        with self._lock:
            return [h.url for h in self._hosts if not h.alive]

    @property
    def evals_by_host(self) -> Dict[str, int]:
        """Design points answered per host (successful calls only)."""
        with self._lock:
            return {h.url: h.evals for h in self._hosts if h.evals}

    @property
    def weights_by_host(self) -> Dict[str, float]:
        """Static capacity weight per host (the declared ``=WEIGHT``)."""
        return {h.url: h.weight for h in self._hosts}

    @property
    def effective_weights_by_host(self) -> Dict[str, float]:
        """The weights dispatch actually uses right now: the static
        weights, scaled by observed service rates when
        ``auto_weights`` is on (identical to :attr:`weights_by_host`
        until the first refresh with rate data)."""
        with self._lock:
            return {h.url: h.auto_weight for h in self._hosts}

    @property
    def last_host(self) -> Optional[str]:
        """URL that served the calling thread's most recent success —
        how :class:`~repro.core.env.ArchGymEnv` attributes its per-host
        ``remote_evals`` counters."""
        return getattr(self._local, "last_host", None)

    def __repr__(self) -> str:
        return f"HostPool(hosts={self.urls}, alive={self.alive_urls})"

    # -- health -------------------------------------------------------------------

    def check_health(self) -> Dict[str, Optional[Dict[str, Any]]]:
        """Probe every host's ``/healthz``; returns ``url -> health``
        (``None`` for non-responders, which are quarantined). Raises
        :class:`ServiceError` only if *no* host answers — a pool with
        any survivor can still run the sweep."""
        report: Dict[str, Optional[Dict[str, Any]]] = {}
        for host in self._hosts:
            with self._lock:
                was_dead = not host.alive
            try:
                report[host.url] = host.client.healthz()
            except ServiceError as exc:
                report[host.url] = None
                self._mark(host, alive=False, error=str(exc))
                continue
            if was_dead:
                self._backfill_cache(host)
            self._mark(host, alive=True)
        if not any(v is not None for v in report.values()):
            raise ServiceError(
                f"no evaluation host is healthy: {self._error_inventory()}"
            )
        return report

    def _mark(self, host: _Host, alive: bool, error: Optional[str] = None) -> None:
        with self._lock:
            host.alive = alive
            host.last_error = None if alive else (error or host.last_error)
            if not alive:
                host.quarantined_at = time.monotonic()

    def _timed_revival(self) -> None:
        """Re-probe quarantined hosts whose rest period has elapsed.

        One short healthz per due host per ``revive_after_s`` window —
        a failed probe restarts its clock, so a still-dead host costs
        the dispatch path a bounded, occasional probe instead of the
        full evaluation timeout on every trial.
        """
        if self.revive_after_s is None:
            return
        now = time.monotonic()
        for host in self._hosts:
            with self._lock:
                due = (
                    not host.alive
                    and now - host.quarantined_at >= self.revive_after_s
                )
                if due:
                    host.quarantined_at = now  # claim this probe slot
            if not due:
                continue
            try:
                host.probe_client.healthz()
            except ServiceError:
                continue
            self._backfill_cache(host)
            self._mark(host, alive=True)

    def _error_inventory(self) -> str:
        with self._lock:
            return "; ".join(
                f"{h.url}: {h.last_error or 'ok'}" for h in self._hosts
            )

    def _revive_sweep(self) -> int:
        """All hosts are quarantined: healthz-probe each one and revive
        the responders. Returns how many came back."""
        revived = 0
        for host in self._hosts:
            with self._lock:
                dead = not host.alive
            if not dead:
                continue
            try:
                host.probe_client.healthz()
            except ServiceError:
                continue
            self._backfill_cache(host)
            self._mark(host, alive=True)
            revived += 1
        return revived

    def _backfill_cache(self, revived: _Host) -> None:
        """Anti-entropy: page a living replica's cache into ``revived``.

        A host that restarted rejoins with an empty in-memory cache;
        its replicas still hold every entry the shared cache tier
        wrote through. Before the revived host takes traffic again,
        copy one live donor's ``GET /cache`` listing into it page by
        page, so none of its lost entries ever forces a re-simulation.
        Best-effort: if the donor (or the revived host) dies mid-copy
        the partial progress is kept and the next donor — or the next
        revival — continues; reads fall back to replicas meanwhile.
        """
        with self._lock:
            donors = [h for h in self._hosts if h.alive and h is not revived]
        for donor in donors:
            copied = 0
            offset = 0
            try:
                while True:
                    entries, total = donor.probe_client.cache_list(
                        offset=offset, limit=_BACKFILL_PAGE
                    )
                    for key_str, metrics in entries:
                        revived.probe_client.cache_put(key_str, metrics)
                        copied += 1
                    offset += len(entries)
                    if not entries or offset >= total:
                        break
            except ServiceError:
                with self._lock:
                    self.cache_backfills += copied
                continue  # partial copy kept; try the next donor
            with self._lock:
                self.cache_backfills += copied
            return

    def _refresh_auto_weights(self) -> None:
        """Blend observed service rates into the dispatch weights.

        Reads each living host's ``/healthz`` counters through the
        cheap probe client, turns the counter deltas since the last
        refresh into a per-window service rate (evaluations per busy
        second), smooths it with an EWMA, and scales each host's
        static weight by its rate relative to the fastest host. The
        ratio is clamped to ``_AUTO_WEIGHT_FLOOR`` so a slow host
        keeps a trickle of work (and can be promoted back when it
        speeds up); a *cold* host with no measurements keeps its full
        static weight — never starved by missing data.
        """
        if not self.auto_weights:
            return
        now = time.monotonic()
        with self._lock:
            if now - self._weights_refreshed_at < self.auto_weights_interval_s:
                return
            self._weights_refreshed_at = now  # claim this refresh slot
            living = [h for h in self._hosts if h.alive]
        for host in living:
            try:
                health = host.probe_client.healthz()
            except ServiceError:
                continue  # quarantining is the dispatch path's call
            evals = int(health.get("evaluations", 0))
            busy = float(health.get("busy_s", 0.0))
            with self._lock:
                d_evals = evals - host.seen_evals
                d_busy = busy - host.seen_busy_s
                if d_evals < 0 or d_busy < 0:
                    # Counters went backwards: the host restarted.
                    # Re-baseline and wait for a fresh window.
                    host.seen_evals = evals
                    host.seen_busy_s = busy
                    continue
                if d_evals == 0 or d_busy < _MIN_RATE_WINDOW_S:
                    # Zero-delta (or sub-epsilon) window — nothing to
                    # measure. Crucially, do NOT advance the baseline:
                    # with interval 0, back-to-back polls would
                    # otherwise consume the accumulation window and a
                    # later poll would see a 0-or-spike rate.
                    continue
                host.seen_evals = evals
                host.seen_busy_s = busy
                rate = d_evals / d_busy
                host.rate_ewma = (
                    rate if host.rate_ewma is None
                    else _AUTO_WEIGHT_ALPHA * rate
                    + (1.0 - _AUTO_WEIGHT_ALPHA) * host.rate_ewma
                )
        with self._lock:
            rated = [
                h.rate_ewma for h in self._hosts if h.rate_ewma is not None
            ]
            if not rated:
                return
            top = max(rated)
            for host in self._hosts:
                if host.rate_ewma is None or top <= 0:
                    host.auto_weight = host.weight
                else:
                    host.auto_weight = host.weight * max(
                        host.rate_ewma / top, _AUTO_WEIGHT_FLOOR
                    )
            self.auto_weight_updates += 1

    # -- dispatch -----------------------------------------------------------------

    def _acquire(self) -> Optional[_Host]:
        """Least-loaded living host (in-flight count bumped), or None.

        Load is in-flight requests *divided by effective capacity
        weight* (the static weight, rate-scaled when auto-weights is
        on), so a weight-2 host is only "as busy" as a weight-1 host
        carrying half its requests. Load ties break round-robin, not
        by position: a serial caller (whose in-flight count is always
        zero at dispatch time) must still spread its requests over the
        whole fleet instead of pinning the first host.
        """
        with self._lock:
            living = [(i, h) for i, h in enumerate(self._hosts) if h.alive]
            if not living:
                return None
            n = len(self._hosts)
            start = self._next % n
            index, host = min(
                living,
                key=lambda ih: (
                    ih[1].inflight / ih[1].auto_weight, (ih[0] - start) % n
                ),
            )
            self._next = index + 1
            host.inflight += 1
            return host

    def _release(self, host: _Host, n_evals: int, ok: bool) -> None:
        with self._lock:
            host.inflight -= 1
            if ok:
                host.evals += n_evals

    def _call(self, op: str, n_evals: int, *args: Any, **kwargs: Any) -> Any:
        """Run ``op`` on the least-loaded host, failing over on
        transport death; at most one all-dead revival sweep per call."""
        self._timed_revival()
        self._refresh_auto_weights()
        revived_once = False
        while True:
            host = self._acquire()
            if host is None:
                if not revived_once and self._revive_sweep():
                    revived_once = True
                    continue
                raise ServiceTransportError(
                    f"all {len(self._hosts)} evaluation host(s) failed: "
                    f"{self._error_inventory()}"
                )
            ok = False
            try:
                result = getattr(host.client, op)(*args, **kwargs)
                ok = True
            except ServiceTransportError as exc:
                # The host is unreachable (after the client's own
                # retries): quarantine it and fail over. The request is
                # idempotent, so the next host re-runs it safely.
                self._mark(host, alive=False, error=str(exc))
                continue
            finally:
                self._release(host, n_evals, ok)
            self._local.last_host = host.url
            return result

    # -- the ServiceClient surface RemoteBackend uses -----------------------------

    def evaluate(
        self,
        env: str,
        action: Dict[str, Any],
        env_kwargs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, float]:
        """Evaluate one design point on the best available host."""
        return self._call("evaluate", 1, env, action, env_kwargs=env_kwargs)

    def evaluate_batch(
        self,
        env: str,
        actions: Sequence[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]] = None,
        memoize: bool = True,
    ) -> List[Dict[str, float]]:
        """Evaluate a batch on one host (whole-batch failover)."""
        return self._call(
            "evaluate_batch", len(actions), env, actions,
            env_kwargs=env_kwargs, memoize=memoize,
        )

    def _try_host(
        self, host: _Host, op: str, n_evals: int, *args: Any, **kwargs: Any
    ) -> Any:
        """One attempt pinned to ``host`` (in-flight accounted).

        Transport death quarantines the host and re-raises so the
        caller can fail the work over; server-produced errors
        propagate untouched, like :meth:`_call`.
        """
        with self._lock:
            host.inflight += 1
        ok = False
        try:
            result = getattr(host.client, op)(*args, **kwargs)
            ok = True
            return result
        except ServiceTransportError as exc:
            self._mark(host, alive=False, error=str(exc))
            raise
        finally:
            self._release(host, n_evals, ok)

    def evaluate_batch_scatter(
        self,
        env: str,
        actions: Sequence[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]] = None,
        memoize: bool = True,
    ) -> Tuple[List[Dict[str, float]], List[Optional[str]]]:
        """Split one batch across the living hosts and run the chunks
        in parallel.

        The batch (typically a GA/ACO generation) is cut into
        contiguous chunks sized by capacity weight — a weight-2 host
        receives twice the design points — each chunk rides one
        ``POST /evaluate_batch``, and the results are reassembled in
        request order. Returns ``(metrics, hosts)`` where ``hosts[i]``
        names the host that answered point ``i`` (the per-point
        provenance :class:`~repro.core.env.ArchGymEnv` records).

        A chunk whose assigned host dies mid-flight is quarantined and
        the chunk re-dispatched through the ordinary least-load
        failover path (evaluations are idempotent, so a re-sent chunk
        cannot diverge). A batch that would land on a single host —
        one living host, or a batch too small to split — delegates to
        the whole-batch path so tiny batches keep round-robin/
        least-load placement instead of pinning the heaviest host.
        """
        actions = list(actions)
        if not actions:
            return [], []
        self._timed_revival()
        self._refresh_auto_weights()
        with self._lock:
            alive = [h for h in self._hosts if h.alive]
        if len(alive) > 1:
            counts = weighted_split(
                len(actions), [h.auto_weight for h in alive]
            )
            chunks: List[Tuple[_Host, List[Dict[str, Any]]]] = []
            cursor = 0
            for host, count in zip(alive, counts):
                if count:
                    chunks.append((host, actions[cursor:cursor + count]))
                    cursor += count
        else:
            chunks = []
        if len(chunks) <= 1:
            metrics = self._call(
                "evaluate_batch", len(actions), env, actions,
                env_kwargs=env_kwargs, memoize=memoize,
            )
            return metrics, [self.last_host] * len(actions)

        chunk_metrics: List[Optional[List[Dict[str, float]]]] = (
            [None] * len(chunks)
        )
        chunk_hosts: List[Optional[str]] = [None] * len(chunks)
        chunk_errors: List[Optional[BaseException]] = [None] * len(chunks)

        def run_chunk(index: int, host: _Host, sub: List[Dict[str, Any]]) -> None:
            try:
                try:
                    got = self._try_host(
                        host, "evaluate_batch", len(sub), env, sub,
                        env_kwargs=env_kwargs, memoize=memoize,
                    )
                    served_by = host.url
                except ServiceTransportError:
                    # The assigned host died (now quarantined): re-run
                    # the chunk through the normal failover path.
                    got = self._call(
                        "evaluate_batch", len(sub), env, sub,
                        env_kwargs=env_kwargs, memoize=memoize,
                    )
                    served_by = self._local.last_host
                chunk_metrics[index] = got
                chunk_hosts[index] = served_by
            except BaseException as exc:  # surfaced to the caller below
                chunk_errors[index] = exc

        threads = [
            threading.Thread(
                target=run_chunk, args=(i, host, sub), daemon=True
            )
            for i, (host, sub) in enumerate(chunks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for error in chunk_errors:
            if error is not None:
                raise error

        metrics: List[Dict[str, float]] = []
        hosts: List[Optional[str]] = []
        for index, (_, sub) in enumerate(chunks):
            metrics.extend(chunk_metrics[index])
            hosts.extend([chunk_hosts[index]] * len(sub))
        self._local.last_host = hosts[-1]
        return metrics, hosts

    def evaluate_batch_stream(
        self,
        env: str,
        actions: Sequence[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]] = None,
        memoize: bool = True,
        unit_size: Optional[int] = None,
    ) -> Iterator[Tuple[int, List[Dict[str, float]], Optional[str]]]:
        """Stream one batch's results back as hosts finish, with work
        stealing for stragglers.

        The batch is cut into contiguous *work units* of ``unit_size``
        design points (default: enough units for every living host to
        pull roughly four as it goes). One worker thread per living
        host pulls units from a shared queue — a fast host simply
        pulls more, so dynamic load balancing replaces the static
        weighted split of :meth:`evaluate_batch_scatter` — and each
        completed unit is yielded immediately as
        ``(start_index, metrics, host_url)``, in **completion order**
        (the caller reassembles proposal order; see
        :meth:`~repro.core.env.ArchGymEnv.step_batch_stream`).

        **Work stealing.** When the queue is empty but units are still
        in flight, an idle worker re-dispatches a straggler's unit
        (never its own; the unit with the fewest runners first). The
        evaluation API is deterministic and idempotent, so duplicates
        are harmless: the first completion wins the unit and late
        finishers are discarded by unit id — ``stream_duplicates``
        counts them, and no unit is ever yielded twice.

        **No tail barrier.** The generator finishes when every unit's
        *result* is known, not when every request has returned: an
        abandoned straggler request may still be in flight while the
        caller moves on (its eventual completion is discarded, its
        in-flight slot released by the worker thread). That is the
        pipelining hook — the driver can breed and dispatch the next
        generation to the idle hosts while the straggler chews on a
        stale request.

        **Failure.** A host whose transport dies is quarantined; its
        unfinished unit returns to the queue (unless a thief already
        carries it) and the remaining workers absorb the work. If
        every worker dies with units outstanding, one revival sweep
        re-probes the fleet and restaffs; only when that finds no
        living host does the stream raise
        :class:`ServiceTransportError`. Server-produced errors
        (deterministic 4xx/5xx) propagate immediately, as everywhere
        else in the pool.

        A batch with fewer than two work units — or a pool with fewer
        than two living hosts — delegates to the whole-batch
        least-load path and yields a single chunk.
        """
        actions = list(actions)
        if not actions:
            return
        self._timed_revival()
        self._refresh_auto_weights()
        with self._lock:
            alive = [h for h in self._hosts if h.alive]
        if unit_size is None:
            # ~4 units per living host: small enough that the tail is
            # short and steals are meaningful, large enough that the
            # per-request overhead stays amortized.
            unit_size = max(1, math.ceil(len(actions) / (4 * max(1, len(alive)))))
        if unit_size < 1:
            raise ServiceError(f"unit_size must be >= 1, got {unit_size}")
        units: List[Tuple[int, List[Dict[str, Any]]]] = [
            (start, actions[start:start + unit_size])
            for start in range(0, len(actions), unit_size)
        ]
        if len(alive) < 2 or len(units) < 2:
            metrics = self._call(
                "evaluate_batch", len(actions), env, actions,
                env_kwargs=env_kwargs, memoize=memoize,
            )
            yield 0, metrics, self.last_host
            return

        state_lock = threading.Lock()
        pending: "deque[int]" = deque(range(len(units)))
        runners: Dict[int, set] = {}
        done: Dict[int, bool] = {}
        stop = [False]
        completions: "queue.Queue[Tuple[str, Any, Any, Any]]" = queue.Queue()
        with self._lock:
            self.stream_units += len(units)

        def take_work(host: _Host) -> Optional[Tuple[int, bool]]:
            """Next unit for ``host`` (bumping in-flight), or None."""
            with state_lock:
                if stop[0]:
                    return None
                if pending:
                    uid, stolen = pending.popleft(), False
                else:
                    candidates = [
                        u for u, r in runners.items()
                        if u not in done and r and host not in r
                    ]
                    if not candidates:
                        return None
                    uid = min(candidates, key=lambda u: (len(runners[u]), u))
                    stolen = True
                runners.setdefault(uid, set()).add(host)
            with self._lock:
                host.inflight += 1
                if stolen:
                    self.stream_steals += 1
            return uid, stolen

        def worker(host: _Host) -> None:
            try:
                while True:
                    work = take_work(host)
                    if work is None:
                        return
                    uid, _ = work
                    start, sub = units[uid]
                    try:
                        got = host.client.evaluate_batch(
                            env, sub, env_kwargs=env_kwargs, memoize=memoize,
                        )
                    except ServiceTransportError as exc:
                        self._mark(host, alive=False, error=str(exc))
                        with self._lock:
                            host.inflight -= 1
                        with state_lock:
                            crew = runners.get(uid)
                            if crew is not None:
                                crew.discard(host)
                            if uid not in done and not crew:
                                # No thief carries this unit: put it
                                # back for the surviving workers.
                                pending.appendleft(uid)
                        return  # quarantined: this worker retires
                    except BaseException as exc:
                        # Server-produced (deterministic) error: would
                        # fail identically on every host — surface it.
                        with self._lock:
                            host.inflight -= 1
                        with state_lock:
                            stop[0] = True
                            crew = runners.get(uid)
                            if crew is not None:
                                crew.discard(host)
                        completions.put(("error", exc, None, None))
                        return
                    won = False
                    with state_lock:
                        crew = runners.get(uid)
                        if crew is not None:
                            crew.discard(host)
                        if uid not in done:
                            done[uid] = True
                            won = True
                    with self._lock:
                        host.inflight -= 1
                        if won:
                            host.evals += len(sub)
                        else:
                            self.stream_duplicates += 1
                    if won:
                        completions.put(("unit", uid, got, host.url))
            finally:
                completions.put(("exit", host, None, None))

        def staff(hosts: Sequence[_Host]) -> int:
            for host in hosts:
                threading.Thread(
                    target=worker, args=(host,), daemon=True
                ).start()
            return len(hosts)

        workers_live = staff(alive)
        n_done = 0
        revived_once = False
        last_host: Optional[str] = None
        try:
            while n_done < len(units):
                kind, a, b, c = completions.get()
                if kind == "unit":
                    uid, got, url = a, b, c
                    start, sub = units[uid]
                    if len(got) != len(sub):
                        raise ServiceError(
                            f"host {url} answered {len(got)} metric "
                            f"object(s) for a {len(sub)}-point unit"
                        )
                    n_done += 1
                    last_host = url
                    yield start, got, url
                elif kind == "error":
                    raise a
                else:  # a worker retired (host dead or out of work)
                    workers_live -= 1
                    if workers_live == 0 and n_done < len(units):
                        # Every worker is gone with units outstanding:
                        # at most one revival sweep per stream (like
                        # _call), then restaff the living hosts — which
                        # includes a host whose worker merely ran out
                        # of stealable work before a straggler died
                        # and requeued its unit.
                        if not revived_once and self._revive_sweep():
                            revived_once = True
                        with self._lock:
                            living = [h for h in self._hosts if h.alive]
                        if not living:
                            raise ServiceTransportError(
                                f"all {len(self._hosts)} evaluation "
                                f"host(s) failed with "
                                f"{len(units) - n_done} work unit(s) "
                                f"outstanding: {self._error_inventory()}"
                            )
                        workers_live = staff(living)
        finally:
            # Abandoned by the caller (or finished): stop handing out
            # units. In-flight straggler requests drain on their own.
            with state_lock:
                stop[0] = True
        self._local.last_host = last_host

    def healthz(self) -> Dict[str, Any]:
        """Liveness document of the least-loaded living host."""
        return self._call("healthz", 0)

    def close(self) -> None:
        """Close every host client's calling-thread connection."""
        for host in self._hosts:
            host.client.close()
