"""Multi-host scheduling for remote evaluation: spread one sweep's
cost-model traffic over several evaluation services.

The paper's §6 argument — fair agent comparison needs *huge* numbers of
simulator evaluations — makes the evaluation service the throughput
ceiling of a sweep. One ``repro serve`` host saturates at one
simulator's speed; :class:`HostPool` points a sweep at N of them:

- **Least-load dispatch.** Every call picks the healthy host with the
  fewest in-flight requests *per unit of capacity weight* (ties rotate
  round-robin), so slow hosts shed load to fast ones automatically and
  a host declared twice as big carries twice the concurrent load.
- **Generation scatter.** :meth:`HostPool.evaluate_batch_scatter`
  splits one batch of design points across all living hosts in
  weight-proportional contiguous chunks, dispatches the chunks in
  parallel, and reassembles the results in request order with
  per-point host provenance — the transport under generation-native
  agents (GA/ACO populations), which turns N per-point round trips
  into one per host. The scatter is a *barrier*: the call returns
  only when the slowest host has finished its chunk.
- **Streaming dispatch with work stealing.**
  :meth:`HostPool.evaluate_batch_stream` removes that barrier. The
  batch is cut into small contiguous *work units* that hosts pull
  from a shared queue as they finish (fast hosts naturally take
  more), completed units are yielded to the caller immediately —
  arrival order, not request order — and when the queue runs dry an
  idle host *steals* a straggler's in-flight unit by re-dispatching
  a duplicate request. Evaluations are deterministic and idempotent,
  so the first completion wins and late duplicates are discarded by
  unit id; no unit is ever recorded twice. The stream finishes as
  soon as every *result* is known — abandoned straggler requests may
  still be in flight, which is exactly what lets a pipelined driver
  start the next generation on the idle hosts meanwhile.
- **Health and failover.** A host whose transport fails (connection
  refused/reset, timeout, torn body — after the client's own retry
  policy) is *quarantined* and the call fails over to a surviving
  host. Evaluations are deterministic and idempotent, so a re-sent
  design point can never produce a duplicate or divergent result —
  which is what keeps a multi-host sweep bit-identical to a serial
  in-process run.
- **Revival.** When every host is quarantined the pool re-probes each
  one via ``GET /healthz`` and revives any that answer (a restarted
  server rejoins automatically). Only when that last sweep finds no
  living host does the call raise, with a per-host error inventory;
  the executor layer wraps it with the failing trial's name.

Server-produced errors (HTTP 4xx/5xx bodies — unknown env, cost-model
crash) are **not** failover events: they are deterministic and would
fail identically on every host, so they propagate immediately.

- **Async dispatch.** With ``async_dispatch=True`` the scatter and
  stream paths run as coroutine tasks on one event loop owned by a
  single daemon runner thread: per-host worker *coroutines* replace
  worker threads (an :class:`asyncio.Semaphore` per host keeps the
  one-request-per-host discipline), a stolen unit's straggler
  duplicate is *cancelled* outright once the winner lands, and
  quarantine/revival/backfill/auto-weights run as coroutines over
  :class:`~repro.service.aio.AsyncServiceClient` probes. The sync
  driver API above is unchanged and results, per-host provenance, and
  counters are byte-identical to threaded dispatch — it is purely a
  thread-count/wall-clock knob, the step from tens of hosts to
  hundreds.

The pool quacks like :class:`~repro.service.client.ServiceClient` for
``evaluate``/``evaluate_batch``, so
:class:`~repro.service.remote.RemoteBackend` can carry either without
knowing which it holds.
"""

from __future__ import annotations

import asyncio
import math
import queue
import threading
import time
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ServiceError, ServiceTransportError
from repro.service.aio import AsyncServiceClient
from repro.service.client import ServiceClient

__all__ = ["HostPool", "weighted_split"]

#: EWMA smoothing factor for observed per-host service rates: high
#: enough that a genuinely slow host is demoted within a few refresh
#: windows, low enough that one noisy window cannot whipsaw the split.
_AUTO_WEIGHT_ALPHA = 0.4
#: Floor on the observed-rate multiplier applied to a host's static
#: weight — the "never starved" clamp: however slow a host measures,
#: it keeps at least this fraction of its declared capacity, so it
#: continues to receive (and report on) work and can be promoted back.
_AUTO_WEIGHT_FLOOR = 0.1
#: Page size for the anti-entropy cache backfill of a revived host.
_BACKFILL_PAGE = 200
#: Smallest busy-time delta a refresh window may turn into a rate.
#: With ``auto_weights_interval_s=0`` two healthz polls can land
#: back-to-back; dividing a 1-evaluation delta by a sub-microsecond
#: busy window would fold an absurd rate spike into the EWMA.
_MIN_RATE_WINDOW_S = 1e-6


def weighted_split(n: int, weights: Sequence[float]) -> List[int]:
    """Apportion ``n`` items over ``weights`` proportionally.

    Largest-remainder rounding (ties to the earlier position), so the
    counts always sum to ``n`` and the split is deterministic for a
    given weight vector.
    """
    if not weights:
        raise ServiceError("weighted_split needs at least one weight")
    total = float(sum(weights))
    if total <= 0:
        # A weight vector derived from *observed* service rates can
        # legitimately be all zero (a cold fleet with no measurements
        # yet): split uniformly instead of dividing by zero.
        weights = [1.0] * len(weights)
        total = float(len(weights))
    raw = [n * w / total for w in weights]
    counts = [int(r) for r in raw]
    order = sorted(
        range(len(weights)), key=lambda i: (-(raw[i] - counts[i]), i)
    )
    for i in order[: n - sum(counts)]:
        counts[i] += 1
    return counts


class _Host:
    """One evaluation service inside the pool."""

    __slots__ = (
        "url", "client", "probe_client", "weight", "alive", "inflight",
        "evals", "last_error", "quarantined_at", "auto_weight",
        "rate_ewma", "seen_evals", "seen_busy_s",
        "aio_client", "aio_probe", "aio_sem",
    )

    def __init__(
        self, url: str, client: ServiceClient, probe_client: ServiceClient,
        weight: float = 1.0,
    ) -> None:
        self.url = client.base_url
        self.client = client
        #: Short-timeout, zero-retry client for healthz re-probes of a
        #: quarantined host — a probe of a still-dead host must cost
        #: seconds, not the full evaluation timeout × retries.
        self.probe_client = probe_client
        #: Relative capacity: a weight-2 host takes twice the
        #: concurrent load (least-load compares inflight/weight) and
        #: twice the share of a scattered generation.
        self.weight = weight
        self.alive = True
        self.inflight = 0
        self.evals = 0  # design points this host answered
        self.last_error: Optional[str] = None
        self.quarantined_at = 0.0
        #: Effective dispatch weight: equals ``weight`` until an
        #: auto-weights refresh blends in the observed service rate.
        self.auto_weight = weight
        #: EWMA of the observed service rate (design points per busy
        #: second, from the host's /healthz counters); None until the
        #: first measurement window with actual work in it.
        self.rate_ewma: Optional[float] = None
        # healthz counter baselines for per-window rate deltas
        self.seen_evals = 0
        self.seen_busy_s = 0.0
        #: Async-dispatch transports (populated when the owning pool
        #: runs with ``async_dispatch=True``): the evaluation client,
        #: the short-timeout zero-retry probe, and the per-host
        #: semaphore that keeps the one-request-at-a-time discipline a
        #: worker thread used to provide. The semaphore is created
        #: lazily *on* the runner loop (3.9 binds it at construction).
        self.aio_client: Optional[AsyncServiceClient] = None
        self.aio_probe: Optional[AsyncServiceClient] = None
        self.aio_sem: Optional[asyncio.Semaphore] = None

    def __repr__(self) -> str:
        state = "alive" if self.alive else f"quarantined ({self.last_error})"
        return (
            f"_Host({self.url!r}, {state}, weight={self.weight}, "
            f"inflight={self.inflight})"
        )


class HostPool:
    """Schedule evaluation calls over several service hosts.

    Parameters
    ----------
    urls:
        Base URLs of running evaluation services. Duplicates are
        collapsed (one host, one health state). Order is the tie-break
        for least-load dispatch.
    weights:
        Per-host capacity weights aligned with ``urls`` (``None`` =
        all 1.0). A weight-W host carries W× the concurrent load under
        least-load dispatch (load is counted as ``inflight / weight``)
        and receives a W-proportional share of every scattered batch.
        Weights must be positive and finite; duplicate URLs must agree
        on their weight.
    timeout_s, retries, backoff_s:
        Per-host :class:`ServiceClient` policy — each host gets its own
        client (and with it its own keep-alive connections).
    revive_after_s:
        How long a quarantined host rests before the pool re-probes
        its ``/healthz`` (with a short-timeout, zero-retry probe) and
        revives it on success — so one transient failure costs a host
        at most this long, not the rest of the sweep. A failed probe
        restarts the clock. ``0`` probes on every dispatch; ``None``
        disables timed revival (the all-dead revival sweep still runs).
        A revived host is first *backfilled*: the pool pages a living
        replica's ``/cache`` map into it (the anti-entropy sweep), so
        a server that restarted empty rejoins with the fleet's shared
        entries instead of forcing re-simulation.
    auto_weights:
        Self-tune the dispatch weights from observed service rates.
        Every ``auto_weights_interval_s`` the pool reads each living
        host's ``/healthz`` counters (``evaluations`` and the server's
        ``busy_s`` accumulator), computes the per-window service rate
        (design points per busy second), smooths it with an EWMA, and
        scales each host's static weight by its rate relative to the
        fastest host — clamped to a floor so a slow host keeps a
        trickle of work (and a *cold* host with no measurements keeps
        its full static weight, never starved). Least-load dispatch
        and generation scatter then rebalance a heterogeneous fleet
        automatically. Purely a placement knob: evaluations are
        deterministic, so results are byte-identical either way.
    auto_weights_interval_s:
        Seconds between auto-weight refreshes (``0`` refreshes on
        every dispatch — useful in tests and microbenchmarks).
    async_dispatch:
        Run :meth:`evaluate_batch_scatter` and
        :meth:`evaluate_batch_stream` as coroutine tasks on one event
        loop (owned by a single daemon runner thread) instead of
        spawning a worker thread per chunk/host: per-host worker
        coroutines with an :class:`asyncio.Semaphore` apiece, work
        stealing that *cancels* the straggler's duplicate task once
        the winner lands, and revival/backfill/auto-weights refresh as
        coroutines over async probes. A pure thread-count/wall-clock
        knob: the sync API, results, per-host provenance, and all
        counters are byte-identical to threaded dispatch, but a
        32-host pool costs one OS thread instead of one per host —
        the scaling step toward pools of hundreds of hosts.

    Thread-safe: the parallel executor may drive one pool from many
    threads; host selection and in-flight accounting sit under one
    lock, while the HTTP calls themselves run outside it.
    """

    def __init__(
        self,
        urls: Sequence[str],
        timeout_s: float = 60.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        revive_after_s: Optional[float] = 30.0,
        weights: Optional[Sequence[float]] = None,
        auto_weights: bool = False,
        auto_weights_interval_s: float = 5.0,
        async_dispatch: bool = False,
    ) -> None:
        if isinstance(urls, str):  # a lone URL is a 1-host pool
            urls = (urls,)
        if not urls:
            raise ServiceError("HostPool needs at least one service url")
        if weights is None:
            weights = [1.0] * len(urls)
        if len(weights) != len(urls):
            raise ServiceError(
                f"HostPool got {len(urls)} url(s) but {len(weights)} "
                "weight(s); pass one weight per url (or None for all-1)"
            )
        for url, weight in zip(urls, weights):
            if not (isinstance(weight, (int, float))
                    and math.isfinite(weight) and weight > 0):
                raise ServiceError(
                    f"host weight for {url!r} must be a positive finite "
                    f"number, got {weight!r}"
                )
        # Dedupe on the client-normalized base URL, not the raw string:
        # 'http://h:1' and 'http://h:1/' are one server, and two _Host
        # entries for it would split its quarantine state and double
        # its share of least-load dispatch.
        self._hosts: List[_Host] = []
        seen: Dict[str, float] = {}
        for url, weight in zip(urls, weights):
            client = ServiceClient(
                url, timeout_s=timeout_s, retries=retries, backoff_s=backoff_s,
            )
            if client.base_url in seen:
                if seen[client.base_url] != float(weight):
                    raise ServiceError(
                        f"conflicting weights for host {client.base_url!r}: "
                        f"{seen[client.base_url]} vs {weight}"
                    )
                continue
            seen[client.base_url] = float(weight)
            probe = ServiceClient(
                url, timeout_s=min(timeout_s, 2.0), retries=0,
                backoff_s=backoff_s,
            )
            self._hosts.append(_Host(url, client, probe, weight=float(weight)))
        self.revive_after_s = revive_after_s
        if auto_weights_interval_s < 0:
            raise ServiceError(
                f"auto_weights_interval_s must be >= 0, got "
                f"{auto_weights_interval_s}"
            )
        self.auto_weights = auto_weights
        self.auto_weights_interval_s = auto_weights_interval_s
        self._weights_refreshed_at = float("-inf")
        self._lock = threading.Lock()
        self._local = threading.local()
        self._next = 0  # round-robin cursor for load ties
        #: Cumulative streaming-dispatch accounting (under ``_lock``):
        #: work units dispatched, units re-dispatched by an idle host
        #: stealing a straggler's in-flight work, and late duplicate
        #: completions discarded because another host won the unit.
        self.stream_units = 0
        self.stream_steals = 0
        self.stream_duplicates = 0
        #: Auto-weight refreshes that actually recomputed the
        #: effective weights (at least one host had rate data).
        self.auto_weight_updates = 0
        #: Cache entries copied into revived hosts by the
        #: anti-entropy backfill.
        self.cache_backfills = 0
        self.async_dispatch = bool(async_dispatch)
        if self.async_dispatch:
            for host in self._hosts:
                host.aio_client = AsyncServiceClient(
                    host.url, timeout_s=timeout_s, retries=retries,
                    backoff_s=backoff_s,
                )
                host.aio_probe = AsyncServiceClient(
                    host.url, timeout_s=min(timeout_s, 2.0), retries=0,
                    backoff_s=backoff_s,
                )
        #: The dispatch event loop and its single daemon runner thread
        #: (created lazily on first async dispatch; recreated after
        #: :meth:`close`). Mutated under ``_lock``.
        self._aio_loop: Optional[asyncio.AbstractEventLoop] = None
        self._aio_thread: Optional[threading.Thread] = None

    # -- introspection ------------------------------------------------------------

    @property
    def urls(self) -> List[str]:
        return [h.url for h in self._hosts]

    @property
    def alive_urls(self) -> List[str]:
        with self._lock:
            return [h.url for h in self._hosts if h.alive]

    @property
    def quarantined_urls(self) -> List[str]:
        with self._lock:
            return [h.url for h in self._hosts if not h.alive]

    @property
    def evals_by_host(self) -> Dict[str, int]:
        """Design points answered per host (successful calls only)."""
        with self._lock:
            return {h.url: h.evals for h in self._hosts if h.evals}

    @property
    def weights_by_host(self) -> Dict[str, float]:
        """Static capacity weight per host (the declared ``=WEIGHT``)."""
        return {h.url: h.weight for h in self._hosts}

    @property
    def effective_weights_by_host(self) -> Dict[str, float]:
        """The weights dispatch actually uses right now: the static
        weights, scaled by observed service rates when
        ``auto_weights`` is on (identical to :attr:`weights_by_host`
        until the first refresh with rate data)."""
        with self._lock:
            return {h.url: h.auto_weight for h in self._hosts}

    @property
    def last_host(self) -> Optional[str]:
        """URL that served the calling thread's most recent success —
        how :class:`~repro.core.env.ArchGymEnv` attributes its per-host
        ``remote_evals`` counters."""
        return getattr(self._local, "last_host", None)

    def __repr__(self) -> str:
        return f"HostPool(hosts={self.urls}, alive={self.alive_urls})"

    # -- health -------------------------------------------------------------------

    def check_health(self) -> Dict[str, Optional[Dict[str, Any]]]:
        """Probe every host's ``/healthz``; returns ``url -> health``
        (``None`` for non-responders, which are quarantined). Raises
        :class:`ServiceError` only if *no* host answers — a pool with
        any survivor can still run the sweep."""
        report: Dict[str, Optional[Dict[str, Any]]] = {}
        for host in self._hosts:
            with self._lock:
                was_dead = not host.alive
            try:
                report[host.url] = host.client.healthz()
            except ServiceError as exc:
                report[host.url] = None
                self._mark(host, alive=False, error=str(exc))
                continue
            if was_dead:
                self._backfill_cache(host)
            self._mark(host, alive=True)
        if not any(v is not None for v in report.values()):
            raise ServiceError(
                f"no evaluation host is healthy: {self._error_inventory()}"
            )
        return report

    def _mark(self, host: _Host, alive: bool, error: Optional[str] = None) -> None:
        with self._lock:
            host.alive = alive
            host.last_error = None if alive else (error or host.last_error)
            if not alive:
                host.quarantined_at = time.monotonic()

    def _claim_revival_probe(self, host: _Host, now: float) -> bool:
        """Atomically check-and-claim one revival probe slot: True when
        ``host`` is quarantined and its rest period has elapsed. The
        claim restarts its clock, so concurrent dispatchers — and a
        failed probe — cannot double-probe within one window. Shared by
        the threaded and async revival paths so their policy cannot
        drift."""
        with self._lock:
            due = (
                not host.alive
                and now - host.quarantined_at >= self.revive_after_s
            )
            if due:
                host.quarantined_at = now  # claim this probe slot
        return due

    def _timed_revival(self) -> None:
        """Re-probe quarantined hosts whose rest period has elapsed.

        One short healthz per due host per ``revive_after_s`` window —
        a failed probe restarts its clock, so a still-dead host costs
        the dispatch path a bounded, occasional probe instead of the
        full evaluation timeout on every trial.
        """
        if self.revive_after_s is None:
            return
        now = time.monotonic()
        for host in self._hosts:
            if not self._claim_revival_probe(host, now):
                continue
            try:
                host.probe_client.healthz()
            except ServiceError:
                continue
            self._backfill_cache(host)
            self._mark(host, alive=True)

    def _error_inventory(self) -> str:
        with self._lock:
            return "; ".join(
                f"{h.url}: {h.last_error or 'ok'}" for h in self._hosts
            )

    def _revive_sweep(self) -> int:
        """All hosts are quarantined: healthz-probe each one and revive
        the responders. Returns how many came back."""
        revived = 0
        for host in self._hosts:
            with self._lock:
                dead = not host.alive
            if not dead:
                continue
            try:
                host.probe_client.healthz()
            except ServiceError:
                continue
            self._backfill_cache(host)
            self._mark(host, alive=True)
            revived += 1
        return revived

    def _backfill_cache(self, revived: _Host) -> None:
        """Anti-entropy: page a living replica's cache into ``revived``.

        A host that restarted rejoins with an empty in-memory cache;
        its replicas still hold every entry the shared cache tier
        wrote through. Before the revived host takes traffic again,
        copy one live donor's ``GET /cache`` listing into it page by
        page, so none of its lost entries ever forces a re-simulation.
        Best-effort: if the donor (or the revived host) dies mid-copy
        the partial progress is kept and the next donor — or the next
        revival — continues; reads fall back to replicas meanwhile.
        """
        with self._lock:
            donors = [h for h in self._hosts if h.alive and h is not revived]
        for donor in donors:
            copied = 0
            offset = 0
            try:
                while True:
                    entries, total = donor.probe_client.cache_list(
                        offset=offset, limit=_BACKFILL_PAGE
                    )
                    for key_str, metrics in entries:
                        revived.probe_client.cache_put(key_str, metrics)
                        copied += 1
                    offset += len(entries)
                    if not entries or offset >= total:
                        break
            except ServiceError:
                with self._lock:
                    self.cache_backfills += copied
                continue  # partial copy kept; try the next donor
            with self._lock:
                self.cache_backfills += copied
            return

    def _refresh_auto_weights(self) -> None:
        """Blend observed service rates into the dispatch weights.

        Reads each living host's ``/healthz`` counters through the
        cheap probe client, turns the counter deltas since the last
        refresh into a per-window service rate (evaluations per busy
        second), smooths it with an EWMA, and scales each host's
        static weight by its rate relative to the fastest host. The
        ratio is clamped to ``_AUTO_WEIGHT_FLOOR`` so a slow host
        keeps a trickle of work (and can be promoted back when it
        speeds up); a *cold* host with no measurements keeps its full
        static weight — never starved by missing data.
        """
        if not self.auto_weights:
            return
        if not self._claim_refresh_slot():
            return
        with self._lock:
            living = [h for h in self._hosts if h.alive]
        for host in living:
            try:
                health = host.probe_client.healthz()
            except ServiceError:
                continue  # quarantining is the dispatch path's call
            self._note_rate_sample(
                host,
                int(health.get("evaluations", 0)),
                float(health.get("busy_s", 0.0)),
            )
        self._apply_auto_weights()

    def _claim_refresh_slot(self) -> bool:
        """Atomically claim the next auto-weights refresh window (one
        refresher per ``auto_weights_interval_s``, threaded or async)."""
        now = time.monotonic()
        with self._lock:
            if now - self._weights_refreshed_at < self.auto_weights_interval_s:
                return False
            self._weights_refreshed_at = now  # claim this refresh slot
            return True

    def _note_rate_sample(self, host: _Host, evals: int, busy: float) -> None:
        """Fold one host's healthz counter reading into its rate EWMA."""
        with self._lock:
            d_evals = evals - host.seen_evals
            d_busy = busy - host.seen_busy_s
            if d_evals < 0 or d_busy < 0:
                # Counters went backwards: the host restarted.
                # Re-baseline and wait for a fresh window.
                host.seen_evals = evals
                host.seen_busy_s = busy
                return
            if d_evals == 0 or d_busy < _MIN_RATE_WINDOW_S:
                # Zero-delta (or sub-epsilon) window — nothing to
                # measure. Crucially, do NOT advance the baseline:
                # with interval 0, back-to-back polls would
                # otherwise consume the accumulation window and a
                # later poll would see a 0-or-spike rate.
                return
            host.seen_evals = evals
            host.seen_busy_s = busy
            rate = d_evals / d_busy
            host.rate_ewma = (
                rate if host.rate_ewma is None
                else _AUTO_WEIGHT_ALPHA * rate
                + (1.0 - _AUTO_WEIGHT_ALPHA) * host.rate_ewma
            )

    def _apply_auto_weights(self) -> None:
        """Recompute the effective dispatch weights from the rate EWMAs
        (a no-op — and no counted update — until at least one host has
        a measurement)."""
        with self._lock:
            rated = [
                h.rate_ewma for h in self._hosts if h.rate_ewma is not None
            ]
            if not rated:
                return
            top = max(rated)
            for host in self._hosts:
                if host.rate_ewma is None or top <= 0:
                    host.auto_weight = host.weight
                else:
                    host.auto_weight = host.weight * max(
                        host.rate_ewma / top, _AUTO_WEIGHT_FLOOR
                    )
            self.auto_weight_updates += 1

    # -- async dispatch core --------------------------------------------------------

    def _ensure_loop(self) -> asyncio.AbstractEventLoop:
        """The pool's dispatch event loop, created (with its single
        daemon runner thread) on first use and after :meth:`close`."""
        with self._lock:
            loop = self._aio_loop
            if loop is not None:
                return loop
            loop = asyncio.new_event_loop()
            thread = threading.Thread(
                target=loop.run_forever, name="hostpool-aio", daemon=True
            )
            self._aio_loop = loop
            self._aio_thread = thread
        thread.start()
        return loop

    def _run_on_loop(self, coro: Any) -> Any:
        """Run one coroutine to completion on the dispatch loop from a
        sync caller thread — the bridge that keeps the driver-facing
        API synchronous while the fan-out itself is task-based."""
        return asyncio.run_coroutine_threadsafe(coro, self._ensure_loop()).result()

    def _host_sem(self, host: _Host) -> asyncio.Semaphore:
        """``host``'s one-request-at-a-time semaphore — the async
        stand-in for the one worker thread a host used to get. Created
        lazily *on* the running loop (3.9 binds the loop at
        construction) and reset by :meth:`close`."""
        sem = host.aio_sem
        if sem is None:
            sem = asyncio.Semaphore(1)
            host.aio_sem = sem
        return sem

    async def _aclose_clients(self) -> None:
        """Park-and-close every async transport's pooled connections."""
        for host in self._hosts:
            if host.aio_client is not None:
                await host.aio_client.close()
            if host.aio_probe is not None:
                await host.aio_probe.close()

    async def _timed_revival_async(self) -> None:
        """Coroutine twin of :meth:`_timed_revival`: same claim policy
        (shared via :meth:`_claim_revival_probe`), probing over the
        async transport so a due probe never blocks the loop."""
        if self.revive_after_s is None:
            return
        now = time.monotonic()
        for host in self._hosts:
            if not self._claim_revival_probe(host, now):
                continue
            try:
                await host.aio_probe.healthz()
            except ServiceError:
                continue
            await self._backfill_cache_async(host)
            self._mark(host, alive=True)

    async def _revive_sweep_async(self) -> int:
        """Coroutine twin of :meth:`_revive_sweep`."""
        revived = 0
        for host in self._hosts:
            with self._lock:
                dead = not host.alive
            if not dead:
                continue
            try:
                await host.aio_probe.healthz()
            except ServiceError:
                continue
            await self._backfill_cache_async(host)
            self._mark(host, alive=True)
            revived += 1
        return revived

    async def _backfill_cache_async(self, revived: _Host) -> None:
        """Coroutine twin of :meth:`_backfill_cache`: same donor walk,
        paging, partial-copy-kept semantics, and ``cache_backfills``
        accounting, over the async probes."""
        with self._lock:
            donors = [h for h in self._hosts if h.alive and h is not revived]
        for donor in donors:
            copied = 0
            offset = 0
            try:
                while True:
                    entries, total = await donor.aio_probe.cache_list(
                        offset=offset, limit=_BACKFILL_PAGE
                    )
                    for key_str, metrics in entries:
                        await revived.aio_probe.cache_put(key_str, metrics)
                        copied += 1
                    offset += len(entries)
                    if not entries or offset >= total:
                        break
            except ServiceError:
                with self._lock:
                    self.cache_backfills += copied
                continue  # partial copy kept; try the next donor
            with self._lock:
                self.cache_backfills += copied
            return

    async def _refresh_auto_weights_async(self) -> None:
        """Coroutine twin of :meth:`_refresh_auto_weights`: identical
        claim/sample/apply policy via the shared helpers, polling the
        async probes."""
        if not self.auto_weights:
            return
        if not self._claim_refresh_slot():
            return
        with self._lock:
            living = [h for h in self._hosts if h.alive]
        for host in living:
            try:
                health = await host.aio_probe.healthz()
            except ServiceError:
                continue  # quarantining is the dispatch path's call
            self._note_rate_sample(
                host,
                int(health.get("evaluations", 0)),
                float(health.get("busy_s", 0.0)),
            )
        self._apply_auto_weights()

    async def _try_host_async(
        self, host: _Host, op: str, n_evals: int, *args: Any, **kwargs: Any
    ) -> Any:
        """Coroutine twin of :meth:`_try_host`: one attempt pinned to
        ``host`` under its semaphore, quarantine-and-reraise on
        transport death."""
        with self._lock:
            host.inflight += 1
        ok = False
        try:
            async with self._host_sem(host):
                result = await getattr(host.aio_client, op)(*args, **kwargs)
            ok = True
            return result
        except ServiceTransportError as exc:
            self._mark(host, alive=False, error=str(exc))
            raise
        finally:
            self._release(host, n_evals, ok)

    async def _call_async(
        self, op: str, n_evals: int, *args: Any, **kwargs: Any
    ) -> Tuple[Any, str]:
        """Coroutine twin of :meth:`_call` — same least-load failover
        loop and at most one all-dead revival sweep — except that it
        *returns* ``(result, host_url)`` instead of stamping the
        calling thread's ``last_host`` (tasks share one loop thread, so
        a thread-local cannot carry per-chunk provenance here)."""
        await self._timed_revival_async()
        await self._refresh_auto_weights_async()
        revived_once = False
        while True:
            host = self._acquire()
            if host is None:
                if not revived_once and await self._revive_sweep_async():
                    revived_once = True
                    continue
                raise ServiceTransportError(
                    f"all {len(self._hosts)} evaluation host(s) failed: "
                    f"{self._error_inventory()}"
                )
            ok = False
            try:
                async with self._host_sem(host):
                    result = await getattr(host.aio_client, op)(*args, **kwargs)
                ok = True
            except ServiceTransportError as exc:
                self._mark(host, alive=False, error=str(exc))
                continue
            finally:
                self._release(host, n_evals, ok)
            return result, host.url

    async def _unit_eval(
        self,
        host: _Host,
        env: str,
        sub: List[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]],
        memoize: bool,
    ) -> List[Dict[str, float]]:
        """One streaming work unit on ``host`` — the cancellable inner
        task work stealing aborts when another host wins the unit."""
        async with self._host_sem(host):
            return await host.aio_client.evaluate_batch(
                env, sub, env_kwargs=env_kwargs, memoize=memoize,
            )

    # -- dispatch -----------------------------------------------------------------

    def _acquire(self) -> Optional[_Host]:
        """Least-loaded living host (in-flight count bumped), or None.

        Load is in-flight requests *divided by effective capacity
        weight* (the static weight, rate-scaled when auto-weights is
        on), so a weight-2 host is only "as busy" as a weight-1 host
        carrying half its requests. Load ties break round-robin, not
        by position: a serial caller (whose in-flight count is always
        zero at dispatch time) must still spread its requests over the
        whole fleet instead of pinning the first host.
        """
        with self._lock:
            living = [(i, h) for i, h in enumerate(self._hosts) if h.alive]
            if not living:
                return None
            n = len(self._hosts)
            start = self._next % n
            index, host = min(
                living,
                key=lambda ih: (
                    ih[1].inflight / ih[1].auto_weight, (ih[0] - start) % n
                ),
            )
            self._next = index + 1
            host.inflight += 1
            return host

    def _release(self, host: _Host, n_evals: int, ok: bool) -> None:
        with self._lock:
            host.inflight -= 1
            if ok:
                host.evals += n_evals

    def _call(self, op: str, n_evals: int, *args: Any, **kwargs: Any) -> Any:
        """Run ``op`` on the least-loaded host, failing over on
        transport death; at most one all-dead revival sweep per call."""
        self._timed_revival()
        self._refresh_auto_weights()
        revived_once = False
        while True:
            host = self._acquire()
            if host is None:
                if not revived_once and self._revive_sweep():
                    revived_once = True
                    continue
                raise ServiceTransportError(
                    f"all {len(self._hosts)} evaluation host(s) failed: "
                    f"{self._error_inventory()}"
                )
            ok = False
            try:
                result = getattr(host.client, op)(*args, **kwargs)
                ok = True
            except ServiceTransportError as exc:
                # The host is unreachable (after the client's own
                # retries): quarantine it and fail over. The request is
                # idempotent, so the next host re-runs it safely.
                self._mark(host, alive=False, error=str(exc))
                continue
            finally:
                self._release(host, n_evals, ok)
            self._local.last_host = host.url
            return result

    # -- the ServiceClient surface RemoteBackend uses -----------------------------

    def evaluate(
        self,
        env: str,
        action: Dict[str, Any],
        env_kwargs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, float]:
        """Evaluate one design point on the best available host."""
        return self._call("evaluate", 1, env, action, env_kwargs=env_kwargs)

    def evaluate_batch(
        self,
        env: str,
        actions: Sequence[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]] = None,
        memoize: bool = True,
    ) -> List[Dict[str, float]]:
        """Evaluate a batch on one host (whole-batch failover)."""
        return self._call(
            "evaluate_batch", len(actions), env, actions,
            env_kwargs=env_kwargs, memoize=memoize,
        )

    def _try_host(
        self, host: _Host, op: str, n_evals: int, *args: Any, **kwargs: Any
    ) -> Any:
        """One attempt pinned to ``host`` (in-flight accounted).

        Transport death quarantines the host and re-raises so the
        caller can fail the work over; server-produced errors
        propagate untouched, like :meth:`_call`.
        """
        with self._lock:
            host.inflight += 1
        ok = False
        try:
            result = getattr(host.client, op)(*args, **kwargs)
            ok = True
            return result
        except ServiceTransportError as exc:
            self._mark(host, alive=False, error=str(exc))
            raise
        finally:
            self._release(host, n_evals, ok)

    def evaluate_batch_scatter(
        self,
        env: str,
        actions: Sequence[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]] = None,
        memoize: bool = True,
    ) -> Tuple[List[Dict[str, float]], List[Optional[str]]]:
        """Split one batch across the living hosts and run the chunks
        in parallel.

        The batch (typically a GA/ACO generation) is cut into
        contiguous chunks sized by capacity weight — a weight-2 host
        receives twice the design points — each chunk rides one
        ``POST /evaluate_batch``, and the results are reassembled in
        request order. Returns ``(metrics, hosts)`` where ``hosts[i]``
        names the host that answered point ``i`` (the per-point
        provenance :class:`~repro.core.env.ArchGymEnv` records).

        A chunk whose assigned host dies mid-flight is quarantined and
        the chunk re-dispatched through the ordinary least-load
        failover path (evaluations are idempotent, so a re-sent chunk
        cannot diverge). A batch that would land on a single host —
        one living host, or a batch too small to split — delegates to
        the whole-batch path so tiny batches keep round-robin/
        least-load placement instead of pinning the heaviest host.
        """
        actions = list(actions)
        if not actions:
            return [], []
        if self.async_dispatch:
            out = self._run_on_loop(
                self._scatter_async(env, actions, env_kwargs, memoize)
            )
            if out is None:
                # Single-chunk batch: delegate exactly like the
                # threaded path so tiny batches keep least-load
                # placement (and the thread-local provenance stamp).
                metrics = self._call(
                    "evaluate_batch", len(actions), env, actions,
                    env_kwargs=env_kwargs, memoize=memoize,
                )
                return metrics, [self.last_host] * len(actions)
            metrics, hosts = out
            self._local.last_host = hosts[-1]
            return metrics, hosts
        self._timed_revival()
        self._refresh_auto_weights()
        with self._lock:
            alive = [h for h in self._hosts if h.alive]
        if len(alive) > 1:
            counts = weighted_split(
                len(actions), [h.auto_weight for h in alive]
            )
            chunks: List[Tuple[_Host, List[Dict[str, Any]]]] = []
            cursor = 0
            for host, count in zip(alive, counts):
                if count:
                    chunks.append((host, actions[cursor:cursor + count]))
                    cursor += count
        else:
            chunks = []
        if len(chunks) <= 1:
            metrics = self._call(
                "evaluate_batch", len(actions), env, actions,
                env_kwargs=env_kwargs, memoize=memoize,
            )
            return metrics, [self.last_host] * len(actions)

        chunk_metrics: List[Optional[List[Dict[str, float]]]] = (
            [None] * len(chunks)
        )
        chunk_hosts: List[Optional[str]] = [None] * len(chunks)
        chunk_errors: List[Optional[BaseException]] = [None] * len(chunks)

        def run_chunk(index: int, host: _Host, sub: List[Dict[str, Any]]) -> None:
            try:
                try:
                    got = self._try_host(
                        host, "evaluate_batch", len(sub), env, sub,
                        env_kwargs=env_kwargs, memoize=memoize,
                    )
                    served_by = host.url
                except ServiceTransportError:
                    # The assigned host died (now quarantined): re-run
                    # the chunk through the normal failover path.
                    got = self._call(
                        "evaluate_batch", len(sub), env, sub,
                        env_kwargs=env_kwargs, memoize=memoize,
                    )
                    served_by = self._local.last_host
                chunk_metrics[index] = got
                chunk_hosts[index] = served_by
            except BaseException as exc:  # surfaced to the caller below
                chunk_errors[index] = exc

        threads = [
            threading.Thread(
                target=run_chunk, args=(i, host, sub), daemon=True,
                name=f"hostpool-scatter-{i}",
            )
            for i, (host, sub) in enumerate(chunks)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        for error in chunk_errors:
            if error is not None:
                raise error

        metrics: List[Dict[str, float]] = []
        hosts: List[Optional[str]] = []
        for index, (_, sub) in enumerate(chunks):
            metrics.extend(chunk_metrics[index])
            hosts.extend([chunk_hosts[index]] * len(sub))
        self._local.last_host = hosts[-1]
        return metrics, hosts

    async def _scatter_async(
        self,
        env: str,
        actions: List[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]],
        memoize: bool,
    ) -> Optional[Tuple[List[Dict[str, float]], List[Optional[str]]]]:
        """Coroutine core of the async generation scatter.

        Identical split/failover/reassembly policy to the threaded
        path — weight-proportional contiguous chunks, pinned attempt
        then least-load failover, request-order reassembly with
        per-point provenance — but the chunks are ``gather``-ed tasks
        on one loop instead of one thread each. Returns ``None`` for a
        batch that would land on a single host; the sync wrapper
        delegates that to the whole-batch path, exactly like the
        threaded scatter does.
        """
        await self._timed_revival_async()
        await self._refresh_auto_weights_async()
        with self._lock:
            alive = [h for h in self._hosts if h.alive]
        if len(alive) > 1:
            counts = weighted_split(
                len(actions), [h.auto_weight for h in alive]
            )
            chunks: List[Tuple[_Host, List[Dict[str, Any]]]] = []
            cursor = 0
            for host, count in zip(alive, counts):
                if count:
                    chunks.append((host, actions[cursor:cursor + count]))
                    cursor += count
        else:
            chunks = []
        if len(chunks) <= 1:
            return None

        async def run_chunk(
            host: _Host, sub: List[Dict[str, Any]]
        ) -> Tuple[List[Dict[str, float]], str]:
            try:
                got = await self._try_host_async(
                    host, "evaluate_batch", len(sub), env, sub,
                    env_kwargs=env_kwargs, memoize=memoize,
                )
                return got, host.url
            except ServiceTransportError:
                # The assigned host died (now quarantined): re-run
                # the chunk through the normal failover path.
                return await self._call_async(
                    "evaluate_batch", len(sub), env, sub,
                    env_kwargs=env_kwargs, memoize=memoize,
                )

        results = await asyncio.gather(
            *(run_chunk(host, sub) for host, sub in chunks),
            return_exceptions=True,
        )
        for result in results:  # first failure in chunk order, like threaded
            if isinstance(result, BaseException):
                raise result
        metrics: List[Dict[str, float]] = []
        hosts: List[Optional[str]] = []
        for (_, sub), (got, url) in zip(chunks, results):
            metrics.extend(got)
            hosts.extend([url] * len(sub))
        return metrics, hosts

    def evaluate_batch_stream(
        self,
        env: str,
        actions: Sequence[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]] = None,
        memoize: bool = True,
        unit_size: Optional[int] = None,
    ) -> Iterator[Tuple[int, List[Dict[str, float]], Optional[str]]]:
        """Stream one batch's results back as hosts finish, with work
        stealing for stragglers.

        The batch is cut into contiguous *work units* of ``unit_size``
        design points (default: enough units for every living host to
        pull roughly four as it goes). One worker thread per living
        host pulls units from a shared queue — a fast host simply
        pulls more, so dynamic load balancing replaces the static
        weighted split of :meth:`evaluate_batch_scatter` — and each
        completed unit is yielded immediately as
        ``(start_index, metrics, host_url)``, in **completion order**
        (the caller reassembles proposal order; see
        :meth:`~repro.core.env.ArchGymEnv.step_batch_stream`).

        **Work stealing.** When the queue is empty but units are still
        in flight, an idle worker re-dispatches a straggler's unit
        (never its own; the unit with the fewest runners first). The
        evaluation API is deterministic and idempotent, so duplicates
        are harmless: the first completion wins the unit and late
        finishers are discarded by unit id — ``stream_duplicates``
        counts them, and no unit is ever yielded twice.

        **No tail barrier.** The generator finishes when every unit's
        *result* is known, not when every request has returned: an
        abandoned straggler request may still be in flight while the
        caller moves on (its eventual completion is discarded, its
        in-flight slot released by the worker thread). That is the
        pipelining hook — the driver can breed and dispatch the next
        generation to the idle hosts while the straggler chews on a
        stale request.

        **Failure.** A host whose transport dies is quarantined; its
        unfinished unit returns to the queue (unless a thief already
        carries it) and the remaining workers absorb the work. If
        every worker dies with units outstanding, one revival sweep
        re-probes the fleet and restaffs; only when that finds no
        living host does the stream raise
        :class:`ServiceTransportError`. Server-produced errors
        (deterministic 4xx/5xx) propagate immediately, as everywhere
        else in the pool.

        A batch with fewer than two work units — or a pool with fewer
        than two living hosts — delegates to the whole-batch
        least-load path and yields a single chunk.
        """
        actions = list(actions)
        if not actions:
            return
        if self.async_dispatch:
            yield from self._stream_async_driver(
                env, actions, env_kwargs, memoize, unit_size
            )
            return
        self._timed_revival()
        self._refresh_auto_weights()
        with self._lock:
            alive = [h for h in self._hosts if h.alive]
        if unit_size is None:
            # ~4 units per living host: small enough that the tail is
            # short and steals are meaningful, large enough that the
            # per-request overhead stays amortized.
            unit_size = max(1, math.ceil(len(actions) / (4 * max(1, len(alive)))))
        if unit_size < 1:
            raise ServiceError(f"unit_size must be >= 1, got {unit_size}")
        units: List[Tuple[int, List[Dict[str, Any]]]] = [
            (start, actions[start:start + unit_size])
            for start in range(0, len(actions), unit_size)
        ]
        if len(alive) < 2 or len(units) < 2:
            metrics = self._call(
                "evaluate_batch", len(actions), env, actions,
                env_kwargs=env_kwargs, memoize=memoize,
            )
            yield 0, metrics, self.last_host
            return

        state_lock = threading.Lock()
        pending: "deque[int]" = deque(range(len(units)))
        runners: Dict[int, set] = {}
        done: Dict[int, bool] = {}
        stop = [False]
        completions: "queue.Queue[Tuple[str, Any, Any, Any]]" = queue.Queue()
        with self._lock:
            self.stream_units += len(units)

        def take_work(host: _Host) -> Optional[Tuple[int, bool]]:
            """Next unit for ``host`` (bumping in-flight), or None."""
            with state_lock:
                if stop[0]:
                    return None
                if pending:
                    uid, stolen = pending.popleft(), False
                else:
                    candidates = [
                        u for u, r in runners.items()
                        if u not in done and r and host not in r
                    ]
                    if not candidates:
                        return None
                    uid = min(candidates, key=lambda u: (len(runners[u]), u))
                    stolen = True
                runners.setdefault(uid, set()).add(host)
            with self._lock:
                host.inflight += 1
                if stolen:
                    self.stream_steals += 1
            return uid, stolen

        def worker(host: _Host) -> None:
            try:
                while True:
                    work = take_work(host)
                    if work is None:
                        return
                    uid, _ = work
                    start, sub = units[uid]
                    try:
                        got = host.client.evaluate_batch(
                            env, sub, env_kwargs=env_kwargs, memoize=memoize,
                        )
                    except ServiceTransportError as exc:
                        self._mark(host, alive=False, error=str(exc))
                        with self._lock:
                            host.inflight -= 1
                        with state_lock:
                            crew = runners.get(uid)
                            if crew is not None:
                                crew.discard(host)
                            if uid not in done and not crew:
                                # No thief carries this unit: put it
                                # back for the surviving workers.
                                pending.appendleft(uid)
                        return  # quarantined: this worker retires
                    except BaseException as exc:
                        # Server-produced (deterministic) error: would
                        # fail identically on every host — surface it.
                        with self._lock:
                            host.inflight -= 1
                        with state_lock:
                            stop[0] = True
                            crew = runners.get(uid)
                            if crew is not None:
                                crew.discard(host)
                        completions.put(("error", exc, None, None))
                        return
                    won = False
                    with state_lock:
                        crew = runners.get(uid)
                        if crew is not None:
                            crew.discard(host)
                        if uid not in done:
                            done[uid] = True
                            won = True
                    with self._lock:
                        host.inflight -= 1
                        if won:
                            host.evals += len(sub)
                        else:
                            self.stream_duplicates += 1
                    if won:
                        completions.put(("unit", uid, got, host.url))
            finally:
                completions.put(("exit", host, None, None))

        def staff(hosts: Sequence[_Host]) -> int:
            for host in hosts:
                threading.Thread(
                    target=worker, args=(host,), daemon=True,
                    name="hostpool-stream",
                ).start()
            return len(hosts)

        workers_live = staff(alive)
        n_done = 0
        revived_once = False
        last_host: Optional[str] = None
        try:
            while n_done < len(units):
                kind, a, b, c = completions.get()
                if kind == "unit":
                    uid, got, url = a, b, c
                    start, sub = units[uid]
                    if len(got) != len(sub):
                        raise ServiceError(
                            f"host {url} answered {len(got)} metric "
                            f"object(s) for a {len(sub)}-point unit"
                        )
                    n_done += 1
                    last_host = url
                    yield start, got, url
                elif kind == "error":
                    raise a
                else:  # a worker retired (host dead or out of work)
                    workers_live -= 1
                    if workers_live == 0 and n_done < len(units):
                        # Every worker is gone with units outstanding:
                        # at most one revival sweep per stream (like
                        # _call), then restaff the living hosts — which
                        # includes a host whose worker merely ran out
                        # of stealable work before a straggler died
                        # and requeued its unit.
                        if not revived_once and self._revive_sweep():
                            revived_once = True
                        with self._lock:
                            living = [h for h in self._hosts if h.alive]
                        if not living:
                            raise ServiceTransportError(
                                f"all {len(self._hosts)} evaluation "
                                f"host(s) failed with "
                                f"{len(units) - n_done} work unit(s) "
                                f"outstanding: {self._error_inventory()}"
                            )
                        workers_live = staff(living)
        finally:
            # Abandoned by the caller (or finished): stop handing out
            # units. In-flight straggler requests drain on their own.
            with state_lock:
                stop[0] = True
        self._local.last_host = last_host

    async def _stream_prep_async(self) -> List[_Host]:
        """Revival + auto-weights refresh on the loop, then the alive
        snapshot the stream sizes its work units from — the same
        prologue the threaded stream runs inline."""
        await self._timed_revival_async()
        await self._refresh_auto_weights_async()
        with self._lock:
            return [h for h in self._hosts if h.alive]

    def _stream_async_driver(
        self,
        env: str,
        actions: List[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]],
        memoize: bool,
        unit_size: Optional[int],
    ) -> Iterator[Tuple[int, List[Dict[str, float]], Optional[str]]]:
        """Sync generator face of the async stream.

        Launches :meth:`_stream_async` on the dispatch loop and drains
        its completion queue, yielding units in completion order with
        the same validation, delegation, and error surface as the
        threaded generator. Abandonment (the pipelining hook) cancels
        the supervisor, which cancels every in-flight task — where the
        threaded stream lets abandoned straggler requests drain on
        daemon threads, the async stream simply aborts them.
        """
        alive = self._run_on_loop(self._stream_prep_async())
        if unit_size is None:
            # ~4 units per living host, exactly like the threaded path.
            unit_size = max(1, math.ceil(len(actions) / (4 * max(1, len(alive)))))
        if unit_size < 1:
            raise ServiceError(f"unit_size must be >= 1, got {unit_size}")
        units: List[Tuple[int, List[Dict[str, Any]]]] = [
            (start, actions[start:start + unit_size])
            for start in range(0, len(actions), unit_size)
        ]
        if len(alive) < 2 or len(units) < 2:
            metrics = self._call(
                "evaluate_batch", len(actions), env, actions,
                env_kwargs=env_kwargs, memoize=memoize,
            )
            yield 0, metrics, self.last_host
            return
        with self._lock:
            self.stream_units += len(units)
        completions: "queue.Queue[Tuple[str, Any, Any, Any]]" = queue.Queue()
        future = asyncio.run_coroutine_threadsafe(
            self._stream_async(env, units, alive, env_kwargs, memoize, completions),
            self._ensure_loop(),
        )
        n_done = 0
        last_host: Optional[str] = None
        try:
            while n_done < len(units):
                kind, a, b, c = completions.get()
                if kind == "unit":
                    uid, got, url = a, b, c
                    start, sub = units[uid]
                    if len(got) != len(sub):
                        raise ServiceError(
                            f"host {url} answered {len(got)} metric "
                            f"object(s) for a {len(sub)}-point unit"
                        )
                    n_done += 1
                    last_host = url
                    yield start, got, url
                else:  # ("error", exc, ...)
                    raise a
        finally:
            # Finished or abandoned: tear the supervisor down (it
            # cancels every worker and in-flight unit task).
            future.cancel()
        self._local.last_host = last_host

    async def _stream_async(
        self,
        env: str,
        units: List[Tuple[int, List[Dict[str, Any]]]],
        alive: List[_Host],
        env_kwargs: Optional[Dict[str, Any]],
        memoize: bool,
        completions: "queue.Queue[Tuple[str, Any, Any, Any]]",
    ) -> None:
        """Streaming-dispatch supervisor: the coroutine twin of the
        threaded worker crew.

        One worker *coroutine* per living host pulls units from the
        shared queue (steal policy, requeue-on-death, restaff-on-all-
        dead, and every counter identical to the threaded path). Where
        a threaded thief's straggler had to drain on its own, here the
        unit's winner **cancels** the losers' in-flight tasks outright
        — each successful cancellation is the same discarded-duplicate
        event ``stream_duplicates`` counts, landed early instead of
        late (a loser that completed before the cancel counts its own,
        exactly like a threaded late finisher). Scheduling state
        (``pending``/``runners``/``done``) needs no lock at all: every
        mutation happens between awaits on the one loop thread — the
        threaded path's ``state_lock`` has no twin here. Counters and
        host state stay under ``self._lock``, shared with sync callers.
        """
        pending: "deque[int]" = deque(range(len(units)))
        runners: Dict[int, Dict[_Host, "asyncio.Task"]] = {}
        done: Dict[int, bool] = {}
        stop = [False]
        exits: "asyncio.Queue[_Host]" = asyncio.Queue()
        worker_tasks: List["asyncio.Task"] = []

        def take_work(host: _Host) -> Optional[Tuple[int, bool]]:
            """Next unit for ``host`` (bumping in-flight), or None."""
            if stop[0]:
                return None
            if pending:
                uid, stolen = pending.popleft(), False
            else:
                candidates = [
                    u for u, r in runners.items()
                    if u not in done and r and host not in r
                ]
                if not candidates:
                    return None
                uid = min(candidates, key=lambda u: (len(runners[u]), u))
                stolen = True
            runners.setdefault(uid, {})
            with self._lock:
                host.inflight += 1
                if stolen:
                    self.stream_steals += 1
            return uid, stolen

        async def worker(host: _Host) -> None:
            try:
                while True:
                    work = take_work(host)
                    if work is None:
                        return
                    uid, _ = work
                    start, sub = units[uid]
                    task = asyncio.ensure_future(
                        self._unit_eval(host, env, sub, env_kwargs, memoize)
                    )
                    runners[uid][host] = task
                    try:
                        got = await task
                    except ServiceTransportError as exc:
                        self._mark(host, alive=False, error=str(exc))
                        with self._lock:
                            host.inflight -= 1
                        crew = runners.get(uid)
                        if crew is not None:
                            crew.pop(host, None)
                        if uid not in done and not crew:
                            # No thief carries this unit: put it
                            # back for the surviving workers.
                            pending.appendleft(uid)
                        return  # quarantined: this worker retires
                    except asyncio.CancelledError:
                        with self._lock:
                            host.inflight -= 1
                        crew = runners.get(uid)
                        if crew is not None:
                            crew.pop(host, None)
                        if task.cancelled():
                            # The unit's winner cancelled this
                            # duplicate (already counted): keep
                            # pulling work.
                            continue
                        # The worker itself is being torn down: abort
                        # the in-flight unit and propagate.
                        task.cancel()
                        raise
                    except BaseException as exc:
                        # Server-produced (deterministic) error: would
                        # fail identically on every host — surface it.
                        with self._lock:
                            host.inflight -= 1
                        stop[0] = True
                        crew = runners.get(uid)
                        if crew is not None:
                            crew.pop(host, None)
                        completions.put(("error", exc, None, None))
                        return
                    crew = runners.pop(uid, None) or {}
                    crew.pop(host, None)
                    won = uid not in done
                    if won:
                        done[uid] = True
                    with self._lock:
                        host.inflight -= 1
                        if won:
                            host.evals += len(sub)
                        else:
                            self.stream_duplicates += 1
                    if won:
                        for straggler in crew.values():
                            if straggler is not None and straggler.cancel():
                                with self._lock:
                                    self.stream_duplicates += 1
                        completions.put(("unit", uid, got, host.url))
            finally:
                exits.put_nowait(host)

        def staff(hosts: Sequence[_Host]) -> int:
            for host in hosts:
                worker_tasks.append(asyncio.ensure_future(worker(host)))
            return len(hosts)

        workers_live = staff(alive)
        revived_once = False
        try:
            while len(done) < len(units):
                await exits.get()
                workers_live -= 1
                if workers_live > 0:
                    continue
                if len(done) >= len(units) or stop[0]:
                    break
                # Every worker is gone with units outstanding: at most
                # one revival sweep per stream (like _call), then
                # restaff the living hosts — which includes a host
                # whose worker merely ran out of stealable work before
                # a straggler died and requeued its unit.
                if not revived_once and await self._revive_sweep_async():
                    revived_once = True
                with self._lock:
                    living = [h for h in self._hosts if h.alive]
                if not living:
                    raise ServiceTransportError(
                        f"all {len(self._hosts)} evaluation "
                        f"host(s) failed with "
                        f"{len(units) - len(done)} work unit(s) "
                        f"outstanding: {self._error_inventory()}"
                    )
                workers_live = staff(living)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:
            completions.put(("error", exc, None, None))
        finally:
            stop[0] = True
            for task in worker_tasks:
                task.cancel()
            for crew in list(runners.values()):
                for straggler in list(crew.values()):
                    if straggler is not None:
                        straggler.cancel()

    def healthz(self) -> Dict[str, Any]:
        """Liveness document of the least-loaded living host."""
        return self._call("healthz", 0)

    def close(self) -> None:
        """Release every transport resource the pool holds: all hosts'
        sync clients (every dispatch thread's keep-alive sockets, not
        just the calling thread's), the async clients' pooled
        connections, and the dispatch loop with its runner thread.

        Teardown-only by contract (no dispatch may be in flight), but
        the pool itself stays usable: quarantine state and counters
        survive, and the loop/connections are recreated lazily on the
        next dispatch — which is what lets a cached backend keep its
        pool across trials while each trial's teardown returns the
        process to zero open sockets.
        """
        with self._lock:
            loop, self._aio_loop = self._aio_loop, None
            thread, self._aio_thread = self._aio_thread, None
        if loop is not None:
            try:
                asyncio.run_coroutine_threadsafe(
                    self._aclose_clients(), loop
                ).result(timeout=5)
            except Exception:
                pass  # best effort: the loop is going away regardless
            loop.call_soon_threadsafe(loop.stop)
            if thread is not None:
                thread.join(timeout=5)
            try:
                loop.close()
            except RuntimeError:
                pass
        for host in self._hosts:
            host.client.close()
            host.probe_client.close()
            # The semaphore was bound to the closed loop (3.9 binds at
            # construction): drop it so the next dispatch rebuilds it
            # on the fresh loop.
            host.aio_sem = None
