"""Hyperparameter sweep runner — the §6.1 experiment harness.

``run_lottery_sweep`` executes the paper's core methodology: for each
agent, draw ``n_trials`` random hyperparameter configurations, run each
against a freshly built environment for ``n_samples`` cost-model
queries, and collect the outcome distribution. The resulting
:class:`SweepReport` answers the lottery questions directly — per-agent
spread (IQR) and whether every agent's *best* ticket is competitive.

Trials are scheduled through :mod:`repro.sweeps.executor`: the runner
precomputes every trial's hyperparameters and seeds in serial order,
then fans the resulting tasks out over ``workers`` processes — so the
report is bit-identical for any worker count, and per-trial trajectory
logs are merged back into one dataset after the barrier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.agents.base import SearchResult
from repro.agents.hyperparams import HYPERPARAM_GRIDS, sample_hyperparams
from repro.core.dataset import ArchGymDataset
from repro.core.env import ArchGymEnv
from repro.core.errors import ArchGymError
from repro.sweeps.executor import TrialTask, execute_trials
from repro.sweeps.stats import (
    FiveNumberSummary,
    hit_rate,
    normalize_scores,
    spread_percent,
)

__all__ = ["SweepReport", "run_lottery_sweep", "validate_agent_names"]

EnvFactory = Callable[[], ArchGymEnv]


@dataclass
class SweepReport:
    """All trial outcomes of one lottery sweep."""

    env_id: str
    n_samples: int
    results: Dict[str, List[SearchResult]] = field(default_factory=dict)
    dataset: Optional[ArchGymDataset] = None
    workers: int = 1
    wall_time_s: float = 0.0

    # -- execution accounting ---------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Design-point evaluations answered from the cache, sweep-wide."""
        return sum(r.cache_hits for rs in self.results.values() for r in rs)

    @property
    def cache_misses(self) -> int:
        """Design-point evaluations that actually ran the cost model."""
        return sum(r.cache_misses for rs in self.results.values() for r in rs)

    @property
    def sim_time_s(self) -> float:
        """Total seconds spent inside cost models across all trials."""
        return sum(r.sim_time_s for rs in self.results.values() for r in rs)

    # -- lottery analytics ------------------------------------------------------------

    def best_fitness(self, agent: str) -> float:
        """The agent's winning lottery ticket."""
        return max(r.best_fitness for r in self._get(agent))

    def best_result(self, agent: str) -> SearchResult:
        return max(self._get(agent), key=lambda r: r.best_fitness)

    def fitness_distribution(self, agent: str) -> List[float]:
        return [r.best_fitness for r in self._get(agent)]

    def summary(self, agent: str) -> FiveNumberSummary:
        return FiveNumberSummary.from_values(self.fitness_distribution(agent))

    def spread(self, agent: str) -> float:
        """IQR spread (% of median) across the hyperparameter sweep."""
        return spread_percent(self.fitness_distribution(agent))

    def normalized_best(self) -> Dict[str, float]:
        """Each agent's best fitness normalized to the overall winner."""
        return normalize_scores({a: self.best_fitness(a) for a in self.results})

    def normalized_best_at(self, budget: int) -> Dict[str, float]:
        """Fig. 7: normalized best fitness when each trial is truncated to
        its first ``budget`` samples."""
        scores = {
            a: max(r.fitness_at(budget) for r in rs)
            for a, rs in self.results.items()
        }
        return normalize_scores(scores)

    def mean_normalized_at(self, budget: int) -> Dict[str, float]:
        """Fig. 7's y-axis: per-agent *mean* normalized fitness over the
        sweep at a sample budget.

        The scale is fixed globally (floor = the worst first-sample
        fitness, ceiling = the best final fitness across the whole
        sweep) and log-compressed, so the series are comparable across
        budgets and monotone per agent — target-style rewards diverge
        near the target, and a raw-linear normalization would let one
        lucky trial flatten every other curve.
        """
        floor = min(r.fitness_at(1) for rs in self.results.values() for r in rs)
        ceiling = max(
            r.best_fitness for rs in self.results.values() for r in rs
        )
        span = np.log1p(max(ceiling - floor, 0.0))
        if span <= 1e-15:
            return {a: 1.0 for a in self.results}
        out = {}
        for a, rs in self.results.items():
            vals = [
                np.log1p(max(r.fitness_at(budget) - floor, 0.0)) / span
                for r in rs
            ]
            out[a] = float(np.mean(vals))
        return out

    def _get(self, agent: str) -> List[SearchResult]:
        try:
            results = self.results[agent]
        except KeyError:
            raise ArchGymError(
                f"agent {agent!r} not in sweep; have {sorted(self.results)}"
            ) from None
        if not results:
            raise ArchGymError(f"agent {agent!r} has no trials")
        return results

    def print_table(self, boxplots: bool = False) -> str:
        lines = [f"=== lottery sweep on {self.env_id} ({self.n_samples} samples/trial) ==="]
        for agent in sorted(self.results):
            lines.append(self.summary(agent).row(agent))
            lines.append(
                f"{'':28s} spread={self.spread(agent):6.1f}%  "
                f"best={self.best_fitness(agent):10.4g}"
            )
        norm = self.normalized_best()
        lines.append(
            "normalized best: "
            + "  ".join(f"{a}={v:.3f}" for a, v in sorted(norm.items()))
        )
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"eval cache: {self.cache_hits} hits / {self.cache_misses} "
                f"misses ({100 * hit_rate(self.cache_hits, self.cache_misses):.1f}% "
                f"hit rate, sim time {self.sim_time_s:.3f}s)"
            )
        if boxplots:
            from repro.sweeps.plots import render_boxplots

            lines.append(
                render_boxplots(
                    {a: self.fitness_distribution(a) for a in sorted(self.results)}
                )
            )
        return "\n".join(lines)


def validate_agent_names(agents: Sequence[str]) -> None:
    """Reject unknown agent names before any trial burns samples.

    A typo in ``agents[3]`` used to surface only after agents[0..2] had
    finished their full sweeps; now the whole batch fails fast.
    """
    if not agents:
        raise ArchGymError("agents must name at least one agent")
    unknown = [a for a in agents if a not in HYPERPARAM_GRIDS]
    if unknown:
        raise ArchGymError(
            f"unknown agent(s) {unknown}; valid: {sorted(HYPERPARAM_GRIDS)}"
        )


def run_lottery_sweep(
    env_factory: EnvFactory,
    agents: Sequence[str],
    n_trials: int = 8,
    n_samples: int = 200,
    seed: int = 0,
    collect_dataset: bool = False,
    workers: int = 1,
    cache: Optional[bool] = None,
) -> SweepReport:
    """Run the hyperparameter-lottery experiment.

    Parameters
    ----------
    env_factory:
        Builds a fresh environment per trial (trials must not share
        caches or datasets unless ``collect_dataset`` aggregates them).
        Must be picklable (module-level callable / ``functools.partial``)
        when ``workers > 1``.
    agents:
        Agent short names (see :data:`repro.agents.AGENT_NAMES`).
    n_trials:
        Hyperparameter lottery tickets per agent.
    n_samples:
        Cost-model queries per trial — the paper's comparison unit.
    collect_dataset:
        Aggregate every trial's trajectories into one multi-source
        dataset (the §7 pipeline). Per-worker logs are merged in trial
        order after the sweep, so the dataset is worker-count invariant.
    workers:
        Process-pool width. Every trial's hyperparameters and seeds are
        drawn up front in serial order, so any value returns the same
        report; ``workers=1`` runs in-process.
    cache:
        Design-point evaluation cache control. ``None`` (default)
        respects each environment's own configuration — the built-in
        environments cache by default, and a factory that passes
        ``cache_size=0`` (e.g. the Fig. 8 time-to-completion
        methodology) stays uncached. ``True`` force-enables so repeated
        queries of one design skip the cost model; ``False``
        force-disables.
    """
    if n_trials < 1 or n_samples < 1:
        raise ArchGymError("n_trials and n_samples must be >= 1")
    validate_agent_names(agents)
    rng = np.random.default_rng(seed)
    probe = env_factory()
    report = SweepReport(env_id=probe.env_id, n_samples=n_samples, workers=workers)

    # Draw every trial's lottery ticket in the same order the serial
    # loop always has — task outcomes then depend only on the task.
    tasks: List[TrialTask] = []
    for agent_name in agents:
        for _trial in range(n_trials):
            hyperparams = sample_hyperparams(agent_name, rng)
            tasks.append(
                TrialTask(
                    index=len(tasks),
                    agent=agent_name,
                    hyperparams=hyperparams,
                    agent_seed=int(rng.integers(2**31 - 1)),
                    run_seed=int(rng.integers(2**31 - 1)),
                    n_samples=n_samples,
                    env_factory=env_factory,
                    collect=collect_dataset,
                    cache=cache,
                )
            )

    start = time.perf_counter()
    outcomes = execute_trials(tasks, workers=workers)
    report.wall_time_s = time.perf_counter() - start

    report.results = {a: [] for a in agents}
    for outcome in outcomes:
        report.results[outcome.agent].append(outcome.result)
    if collect_dataset:
        report.dataset = ArchGymDataset.merge_all(
            [ArchGymDataset(o.env_id, o.transitions) for o in outcomes],
            env_id=probe.env_id,
        )
    return report
