"""Hyperparameter sweep runner — the §6.1 experiment harness.

``run_lottery_sweep`` executes the paper's core methodology: for each
agent, draw ``n_trials`` random hyperparameter configurations, run each
against a freshly built environment for ``n_samples`` cost-model
queries, and collect the outcome distribution. The resulting
:class:`SweepReport` answers the lottery questions directly — per-agent
spread (IQR) and whether every agent's *best* ticket is competitive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.agents.base import SearchResult, run_agent
from repro.agents.hyperparams import make_agent, sample_hyperparams
from repro.core.dataset import ArchGymDataset
from repro.core.env import ArchGymEnv
from repro.core.errors import ArchGymError
from repro.sweeps.stats import FiveNumberSummary, normalize_scores, spread_percent

__all__ = ["SweepReport", "run_lottery_sweep"]

EnvFactory = Callable[[], ArchGymEnv]


@dataclass
class SweepReport:
    """All trial outcomes of one lottery sweep."""

    env_id: str
    n_samples: int
    results: Dict[str, List[SearchResult]] = field(default_factory=dict)
    dataset: Optional[ArchGymDataset] = None

    # -- lottery analytics ------------------------------------------------------------

    def best_fitness(self, agent: str) -> float:
        """The agent's winning lottery ticket."""
        return max(r.best_fitness for r in self._get(agent))

    def best_result(self, agent: str) -> SearchResult:
        return max(self._get(agent), key=lambda r: r.best_fitness)

    def fitness_distribution(self, agent: str) -> List[float]:
        return [r.best_fitness for r in self._get(agent)]

    def summary(self, agent: str) -> FiveNumberSummary:
        return FiveNumberSummary.from_values(self.fitness_distribution(agent))

    def spread(self, agent: str) -> float:
        """IQR spread (% of median) across the hyperparameter sweep."""
        return spread_percent(self.fitness_distribution(agent))

    def normalized_best(self) -> Dict[str, float]:
        """Each agent's best fitness normalized to the overall winner."""
        return normalize_scores({a: self.best_fitness(a) for a in self.results})

    def normalized_best_at(self, budget: int) -> Dict[str, float]:
        """Fig. 7: normalized best fitness when each trial is truncated to
        its first ``budget`` samples."""
        scores = {
            a: max(r.fitness_at(budget) for r in rs)
            for a, rs in self.results.items()
        }
        return normalize_scores(scores)

    def mean_normalized_at(self, budget: int) -> Dict[str, float]:
        """Fig. 7's y-axis: per-agent *mean* normalized fitness over the
        sweep at a sample budget.

        The scale is fixed globally (floor = the worst first-sample
        fitness, ceiling = the best final fitness across the whole
        sweep) and log-compressed, so the series are comparable across
        budgets and monotone per agent — target-style rewards diverge
        near the target, and a raw-linear normalization would let one
        lucky trial flatten every other curve.
        """
        floor = min(r.fitness_at(1) for rs in self.results.values() for r in rs)
        ceiling = max(
            r.best_fitness for rs in self.results.values() for r in rs
        )
        span = np.log1p(max(ceiling - floor, 0.0))
        if span <= 1e-15:
            return {a: 1.0 for a in self.results}
        out = {}
        for a, rs in self.results.items():
            vals = [
                np.log1p(max(r.fitness_at(budget) - floor, 0.0)) / span
                for r in rs
            ]
            out[a] = float(np.mean(vals))
        return out

    def _get(self, agent: str) -> List[SearchResult]:
        try:
            results = self.results[agent]
        except KeyError:
            raise ArchGymError(
                f"agent {agent!r} not in sweep; have {sorted(self.results)}"
            ) from None
        if not results:
            raise ArchGymError(f"agent {agent!r} has no trials")
        return results

    def print_table(self, boxplots: bool = False) -> str:
        lines = [f"=== lottery sweep on {self.env_id} ({self.n_samples} samples/trial) ==="]
        for agent in sorted(self.results):
            lines.append(self.summary(agent).row(agent))
            lines.append(
                f"{'':28s} spread={self.spread(agent):6.1f}%  "
                f"best={self.best_fitness(agent):10.4g}"
            )
        norm = self.normalized_best()
        lines.append(
            "normalized best: "
            + "  ".join(f"{a}={v:.3f}" for a, v in sorted(norm.items()))
        )
        if boxplots:
            from repro.sweeps.plots import render_boxplots

            lines.append(
                render_boxplots(
                    {a: self.fitness_distribution(a) for a in sorted(self.results)}
                )
            )
        return "\n".join(lines)


def run_lottery_sweep(
    env_factory: EnvFactory,
    agents: Sequence[str],
    n_trials: int = 8,
    n_samples: int = 200,
    seed: int = 0,
    collect_dataset: bool = False,
) -> SweepReport:
    """Run the hyperparameter-lottery experiment.

    Parameters
    ----------
    env_factory:
        Builds a fresh environment per trial (trials must not share
        caches or datasets unless ``collect_dataset`` aggregates them).
    agents:
        Agent short names (see :data:`repro.agents.AGENT_NAMES`).
    n_trials:
        Hyperparameter lottery tickets per agent.
    n_samples:
        Cost-model queries per trial — the paper's comparison unit.
    collect_dataset:
        Aggregate every trial's trajectories into one multi-source
        dataset (the §7 pipeline).
    """
    if n_trials < 1 or n_samples < 1:
        raise ArchGymError("n_trials and n_samples must be >= 1")
    rng = np.random.default_rng(seed)
    probe = env_factory()
    report = SweepReport(env_id=probe.env_id, n_samples=n_samples)
    if collect_dataset:
        report.dataset = ArchGymDataset(probe.env_id)

    for agent_name in agents:
        report.results[agent_name] = []
        for trial in range(n_trials):
            env = env_factory()
            if report.dataset is not None:
                env.attach_dataset(report.dataset)
            hyperparams = sample_hyperparams(agent_name, rng)
            agent = make_agent(
                agent_name, env.action_space,
                seed=int(rng.integers(2**31 - 1)), **hyperparams,
            )
            result = run_agent(
                agent, env, n_samples=n_samples,
                seed=int(rng.integers(2**31 - 1)),
            )
            report.results[agent_name].append(result)
    return report
