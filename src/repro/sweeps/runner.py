"""Hyperparameter sweep runner — the §6.1 experiment harness.

``run_lottery_sweep`` executes the paper's core methodology: for each
agent, draw ``n_trials`` random hyperparameter configurations, run each
against a freshly built environment for ``n_samples`` cost-model
queries, and collect the outcome distribution. The resulting
:class:`SweepReport` answers the lottery questions directly — per-agent
spread (IQR) and whether every agent's *best* ticket is competitive.

Trials are scheduled through :mod:`repro.sweeps.executor`: the runner
precomputes every trial's hyperparameters and seeds in serial order,
then fans the resulting tasks out over ``workers`` processes — so the
report is bit-identical for any worker count, and per-trial trajectory
logs are merged back into one dataset after the barrier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from repro.agents.base import SearchResult
from repro.agents.hyperparams import HYPERPARAM_GRIDS, sample_hyperparams
from repro.core.dataset import ArchGymDataset
from repro.core.env import ArchGymEnv
from repro.core.errors import ArchGymError
from repro.sweeps.executor import (
    TrialTask,
    execute_trials,
    resolve_execution_backend,
)
from repro.sweeps.stats import (
    FiveNumberSummary,
    hit_rate,
    normalize_scores,
    spread_percent,
)

__all__ = ["SweepReport", "run_lottery_sweep", "validate_agent_names"]

EnvFactory = Callable[[], ArchGymEnv]


@dataclass
class SweepReport:
    """All trial outcomes of one lottery sweep."""

    env_id: str
    n_samples: int
    results: Dict[str, List[SearchResult]] = field(default_factory=dict)
    dataset: Optional[ArchGymDataset] = None
    workers: int = 1
    wall_time_s: float = 0.0

    # -- execution accounting ---------------------------------------------------------

    @property
    def cache_hits(self) -> int:
        """Design-point evaluations answered from the cache, sweep-wide."""
        return sum(r.cache_hits for rs in self.results.values() for r in rs)

    @property
    def cache_misses(self) -> int:
        """Design-point evaluations that actually ran the cost model."""
        return sum(r.cache_misses for rs in self.results.values() for r in rs)

    @property
    def shared_cache_hits(self) -> int:
        """Evaluations answered by the cross-process shared store —
        design points some other trial of this sweep already paid for."""
        return sum(r.shared_cache_hits for rs in self.results.values() for r in rs)

    @property
    def remote_evals(self) -> int:
        """Cost-model runs dispatched to a remote evaluation service."""
        return sum(r.remote_evals for rs in self.results.values() for r in rs)

    @property
    def remote_evals_by_host(self) -> Dict[str, int]:
        """Remote evaluations broken down by the host that answered —
        the per-host provenance of a multi-host (``HostPool``) sweep."""
        totals: Dict[str, int] = {}
        for rs in self.results.values():
            for r in rs:
                for host, count in r.remote_hosts.items():
                    totals[host] = totals.get(host, 0) + count
        return totals

    @property
    def sim_time_s(self) -> float:
        """Total seconds spent inside cost models across all trials."""
        return sum(r.sim_time_s for rs in self.results.values() for r in rs)

    @property
    def proxy_screened(self) -> int:
        """Generation proposals scored by the online proxy screen."""
        return sum(r.proxy_screened for rs in self.results.values() for r in rs)

    @property
    def proxy_accepted(self) -> int:
        """Screened proposals that went on to real evaluation (top-k
        plus the honesty-refresh slice); ``proxy_screened -
        proxy_accepted`` were answered by the surrogate alone."""
        return sum(r.proxy_accepted for rs in self.results.values() for r in rs)

    @property
    def proxy_refresh_evals(self) -> int:
        """Real evaluations spent ground-truthing the refresh slice."""
        return sum(
            r.proxy_refresh_evals for rs in self.results.values() for r in rs
        )

    @property
    def proxy_last_rmse(self) -> float:
        """Worst last-refit relative validation RMSE across trials."""
        return max(
            (r.proxy_last_rmse for rs in self.results.values() for r in rs),
            default=0.0,
        )

    @classmethod
    def from_shards(
        cls, out_dir: Union[str, Path], allow_partial: bool = False
    ) -> "SweepReport":
        """Rebuild a report from a shard directory (see
        :mod:`repro.sweeps.shards`).

        Shards are loaded one at a time in trial order, so peak memory
        is one trial plus the report itself. By default every trial
        recorded in the manifest must be present; ``allow_partial=True``
        loads whatever finished (e.g. to inspect a killed sweep).
        """
        from repro.sweeps.shards import iter_shards, load_manifest, load_outcomes

        manifest = load_manifest(out_dir)
        report = cls(
            env_id=manifest["env_id"],
            n_samples=int(manifest["n_samples"]),
            workers=int(manifest.get("workers", 1)),
        )
        report.results = {a: [] for a in manifest["agents"]}
        collect = bool(manifest.get("collect", False))
        if collect:
            report.dataset = ArchGymDataset(manifest["env_id"])
        outcomes = (
            iter_shards(out_dir)
            if allow_partial
            else load_outcomes(out_dir, expected=int(manifest["n_tasks"]))
        )
        for outcome in outcomes:
            report.results.setdefault(outcome.agent, []).append(outcome.result)
            if collect and report.dataset is not None:
                report.dataset.extend(outcome.transitions)
        return report

    # -- lottery analytics ------------------------------------------------------------

    def best_fitness(self, agent: str) -> float:
        """The agent's winning lottery ticket."""
        return max(r.best_fitness for r in self._get(agent))

    def best_result(self, agent: str) -> SearchResult:
        return max(self._get(agent), key=lambda r: r.best_fitness)

    def fitness_distribution(self, agent: str) -> List[float]:
        return [r.best_fitness for r in self._get(agent)]

    def summary(self, agent: str) -> FiveNumberSummary:
        return FiveNumberSummary.from_values(self.fitness_distribution(agent))

    def spread(self, agent: str) -> float:
        """IQR spread (% of median) across the hyperparameter sweep."""
        return spread_percent(self.fitness_distribution(agent))

    def normalized_best(self) -> Dict[str, float]:
        """Each agent's best fitness normalized to the overall winner."""
        return normalize_scores({a: self.best_fitness(a) for a in self.results})

    def normalized_best_at(self, budget: int) -> Dict[str, float]:
        """Fig. 7: normalized best fitness when each trial is truncated to
        its first ``budget`` samples."""
        scores = {
            a: max(r.fitness_at(budget) for r in rs)
            for a, rs in self.results.items()
        }
        return normalize_scores(scores)

    def mean_normalized_at(self, budget: int) -> Dict[str, float]:
        """Fig. 7's y-axis: per-agent *mean* normalized fitness over the
        sweep at a sample budget.

        The scale is fixed globally (floor = the worst first-sample
        fitness, ceiling = the best final fitness across the whole
        sweep) and log-compressed, so the series are comparable across
        budgets and monotone per agent — target-style rewards diverge
        near the target, and a raw-linear normalization would let one
        lucky trial flatten every other curve.
        """
        floor = min(r.fitness_at(1) for rs in self.results.values() for r in rs)
        ceiling = max(
            r.best_fitness for rs in self.results.values() for r in rs
        )
        span = np.log1p(max(ceiling - floor, 0.0))
        if span <= 1e-15:
            return {a: 1.0 for a in self.results}
        out = {}
        for a, rs in self.results.items():
            vals = [
                np.log1p(max(r.fitness_at(budget) - floor, 0.0)) / span
                for r in rs
            ]
            out[a] = float(np.mean(vals))
        return out

    def _get(self, agent: str) -> List[SearchResult]:
        try:
            results = self.results[agent]
        except KeyError:
            raise ArchGymError(
                f"agent {agent!r} not in sweep; have {sorted(self.results)}"
            ) from None
        if not results:
            raise ArchGymError(f"agent {agent!r} has no trials")
        return results

    def print_table(self, boxplots: bool = False) -> str:
        lines = [f"=== lottery sweep on {self.env_id} ({self.n_samples} samples/trial) ==="]
        for agent in sorted(self.results):
            lines.append(self.summary(agent).row(agent))
            lines.append(
                f"{'':28s} spread={self.spread(agent):6.1f}%  "
                f"best={self.best_fitness(agent):10.4g}"
            )
        norm = self.normalized_best()
        lines.append(
            "normalized best: "
            + "  ".join(f"{a}={v:.3f}" for a, v in sorted(norm.items()))
        )
        if self.cache_hits or self.cache_misses:
            lines.append(
                f"eval cache: {self.cache_hits} hits / {self.cache_misses} "
                f"misses ({100 * hit_rate(self.cache_hits, self.cache_misses):.1f}% "
                f"hit rate, sim time {self.sim_time_s:.3f}s)"
            )
        if self.shared_cache_hits:
            lines.append(
                f"shared cache: {self.shared_cache_hits} cross-trial hits"
            )
        if self.proxy_screened:
            lines.append(
                f"proxy screen: {self.proxy_screened} proposals scored, "
                f"{self.proxy_accepted} simulated "
                f"({self.proxy_screened - self.proxy_accepted} answered by "
                f"the surrogate, {self.proxy_refresh_evals} refresh evals, "
                f"worst val RMSE {self.proxy_last_rmse:.3f})"
            )
        if self.remote_evals:
            line = f"evaluation service: {self.remote_evals} remote evaluations"
            by_host = self.remote_evals_by_host
            if by_host:
                line += (
                    " ("
                    + ", ".join(
                        f"{host}: {n}" for host, n in sorted(by_host.items())
                    )
                    + ")"
                )
            lines.append(line)
        if boxplots:
            from repro.sweeps.plots import render_boxplots

            lines.append(
                render_boxplots(
                    {a: self.fitness_distribution(a) for a in sorted(self.results)}
                )
            )
        return "\n".join(lines)


def validate_agent_names(agents: Sequence[str]) -> None:
    """Reject unknown agent names before any trial burns samples.

    A typo in ``agents[3]`` used to surface only after agents[0..2] had
    finished their full sweeps; now the whole batch fails fast.
    """
    if not agents:
        raise ArchGymError("agents must name at least one agent")
    unknown = [a for a in agents if a not in HYPERPARAM_GRIDS]
    if unknown:
        raise ArchGymError(
            f"unknown agent(s) {unknown}; valid: {sorted(HYPERPARAM_GRIDS)}"
        )
    duplicates = sorted({a for a in agents if agents.count(a) > 1})
    if duplicates:
        raise ArchGymError(
            f"duplicate agent name(s) {duplicates}: each agent may appear "
            "once per sweep — listing it twice would double its trials and "
            "merge them under one key, silently skewing spread/IQR stats. "
            "Raise n_trials for more lottery tickets instead."
        )


def run_lottery_sweep(
    env_factory: EnvFactory,
    agents: Sequence[str],
    n_trials: int = 8,
    n_samples: int = 200,
    seed: int = 0,
    collect_dataset: bool = False,
    workers: int = 1,
    cache: Optional[bool] = None,
    out_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    shared_cache: bool = False,
    env_signature: Optional[str] = None,
    service_url: Optional[Union[str, Sequence[str]]] = None,
    service_timeout_s: Optional[float] = None,
    service_retries: Optional[int] = None,
    service_batch: bool = False,
    generation_dispatch: bool = False,
    pipeline: bool = False,
    auto_weights: bool = False,
    async_dispatch: bool = False,
    cache_replicas: Optional[int] = None,
    proxy_screen: bool = False,
    proxy_oversample: int = 4,
    proxy_topk: Optional[int] = None,
    proxy_refresh: float = 0.1,
    proxy_min_corpus: int = 64,
) -> SweepReport:
    """Run the hyperparameter-lottery experiment.

    Parameters
    ----------
    env_factory:
        Builds a fresh environment per trial (trials must not share
        caches or datasets unless ``collect_dataset`` aggregates them).
        Must be picklable (module-level callable / ``functools.partial``)
        when ``workers > 1``.
    agents:
        Agent short names (see :data:`repro.agents.AGENT_NAMES`); each
        may appear once (use ``n_trials`` for more tickets per agent).
    n_trials:
        Hyperparameter lottery tickets per agent.
    n_samples:
        Cost-model queries per trial — the paper's comparison unit.
    collect_dataset:
        Aggregate every trial's trajectories into one multi-source
        dataset (the §7 pipeline), each trial tagged ``agent/index``.
        Per-worker logs are merged in trial order after the sweep, so
        the dataset is worker-count invariant.
    workers:
        Process-pool width. Every trial's hyperparameters and seeds are
        drawn up front in serial order, so any value returns the same
        report; ``workers=1`` runs in-process.
    cache:
        Design-point evaluation cache control. ``None`` (default)
        respects each environment's own configuration — the built-in
        environments cache by default, and a factory that passes
        ``cache_size=0`` (e.g. the Fig. 8 time-to-completion
        methodology) stays uncached. ``True`` force-enables so repeated
        queries of one design skip the cost model; ``False``
        force-disables.
    out_dir:
        Durable execution: every finished trial is streamed to
        ``out_dir`` as an atomic JSON shard and the report is rebuilt
        from disk, so the sweep never holds all trajectories in memory
        and a killed run loses at most its in-flight trials. The
        directory is fingerprinted on env/agents/counts/seed; reusing
        it with different arguments is rejected.
    resume:
        With ``out_dir``: skip trial indices whose shard already
        exists and run only the remainder. Seeds are precomputed in
        serial order, so a resumed sweep is bit-identical to an
        uninterrupted one — for any worker count and any kill point.
    shared_cache:
        With ``out_dir``: give every trial a file-backed, cross-process
        second cache tier under ``out_dir/shared-cache``, keyed on
        ``canonical_action_key`` — concurrent (and resumed) trials
        stop re-simulating each other's design points. Fitness numbers
        are unchanged (deterministic cost models); hits appear as
        ``shared cache: N cross-trial hits`` in the report footer.
    env_signature:
        Opaque string folded into the sweep fingerprint. ``env_id``
        alone cannot distinguish two factories building the same class
        with different construction arguments (workload, objective,
        …), so pass — or expose a ``fingerprint_signature`` attribute
        on the factory carrying — whatever else determines your
        environment's behavior; resuming with a different signature is
        then rejected instead of silently merging two experiments.
        The CLI's factory does this for its ``--workload/--objective``.
    service_url:
        Dispatch every cost-model call to the
        :class:`repro.service.EvaluationService` at this URL instead of
        running it in the worker process — one sweep can then saturate
        a remote simulator fleet. A *sequence* of URLs schedules the
        sweep over a least-load multi-host
        :class:`~repro.sweeps.hostpool.HostPool`: a host that dies
        mid-sweep is quarantined (after the client retry policy) and
        its work fails over to the survivors, with per-host evaluation
        counts reported in ``remote_hosts``. Each URL may carry a
        capacity weight as ``URL=WEIGHT`` (default 1): a weight-2 host
        takes twice the concurrent load and twice the share of every
        scattered generation. Environments are still built locally
        (agents need their spaces and reward specs), seeds and trial
        order are unchanged, and metrics round-trip JSON exactly, so
        the report is bit-identical to an in-process run apart from
        timing and the ``remote_evals`` counters in the footer — for
        any number of hosts. Like ``workers``, this is a wall-clock
        knob and does not participate in the durable-sweep
        fingerprint. With ``shared_cache=True`` the *first* service's
        ``/cache`` endpoints (not a file under ``out_dir``) provide the
        shared tier, so sweeps on *different machines* reuse each
        other's design points; if that host's transport dies
        mid-sweep, the store fails over to the next pool host (its
        ``/cache`` map plus the local memo) — only when every host is
        gone do trials fail loudly rather than silently re-simulating.
    service_timeout_s, service_retries:
        Override the service client's per-attempt socket timeout and
        transport-retry count (defaults: the
        :class:`~repro.sweeps.executor.BackendSpec` policy). Size
        ``service_timeout_s`` above your slowest single evaluation —
        a timeout shorter than the cost model reads as a dead server
        and fails the trial.
    service_batch:
        Route remote evaluations through ``POST /evaluate_batch``
        instead of per-point ``POST /evaluate``. The server then
        memoizes every design point into its ``/cache`` store, so
        concurrent sweeps sharing a server stop re-simulating each
        other's points even without ``shared_cache``. Results are
        unchanged (deterministic cost models).
    generation_dispatch:
        Drive every trial through the generation-native protocol:
        population-based agents (GA, ACO) propose whole generations,
        the environment resolves cache hits per point and sends only
        the misses through the backend's batched hook in one call —
        one HTTP round trip per generation on a single service, one
        per host on a pool (which scatters the generation across its
        hosts by capacity weight, in parallel). Point-at-a-time agents
        run unchanged via the default singleton wrappers. A wall-clock
        knob like ``workers``: reports, datasets, and shard artifacts
        are byte-identical either way, and it does not participate in
        the durable-sweep fingerprint.
    pipeline:
        Stream each generation instead of scattering it behind a
        barrier (implies ``generation_dispatch``): the batch is cut
        into work units that hosts pull as they finish, results are
        applied in proposal order as units land, and an idle host
        work-steals a straggler's unit so the driver can breed and
        dispatch the next generation while the straggler's abandoned
        request drains. Another pure wall-clock knob — byte-identical
        reports, datasets, and shards — outside the durable-sweep
        fingerprint.
    auto_weights:
        Let a multi-host pool self-tune its dispatch weights from each
        host's observed service rate (``/healthz`` counters,
        EWMA-smoothed, clamped so no host starves) — heterogeneous
        fleets rebalance automatically. Requires ``service_url``. A
        placement knob: results are byte-identical either way, so it
        stays outside the durable-sweep fingerprint.
    async_dispatch:
        Run a multi-host pool's scatter/stream fan-out as coroutine
        tasks on one event loop (one daemon runner thread) instead of
        one worker thread per chunk/host — the step from tens of hosts
        to hundreds without a thread explosion. Requires
        ``service_url``. A pure thread-count/wall-clock knob:
        reports, datasets, shards, and per-host provenance are
        byte-identical either way, so it stays outside the
        durable-sweep fingerprint.
    cache_replicas:
        Replication factor of the server-backed shared cache tier:
        every ``put`` fans out to this many pool hosts (default
        min(2, pool size)), so a dying cache host costs nothing — reads
        fail over to a replica and revived hosts are backfilled.
        Requires ``shared_cache=True`` with ``service_url``. A
        durability knob, outside the durable-sweep fingerprint.
    proxy_screen:
        Online surrogate pre-screening: every trial trains an
        :class:`~repro.proxy.online.OnlineProxy` from the shared cache
        tier's accumulated corpus and only simulates the proxy's top
        picks of each proposed generation (plus a ``proxy_refresh``
        honesty slice) — see :func:`repro.agents.base.run_agent`.
        Requires ``shared_cache=True``. Unlike the dispatch knobs this
        **changes the search results**, so it and the four knobs below
        participate in the durable-sweep fingerprint whenever it is
        on (an unscreened sweep keeps its historical fingerprint).
    proxy_oversample:
        Oversampling factor: of each proposed generation only
        ``ceil(generation / proxy_oversample)`` points are really
        simulated (unless ``proxy_topk`` pins the count directly).
    proxy_topk:
        Exact number of real evaluations per screened generation
        (overrides the ``proxy_oversample``-derived default).
    proxy_refresh:
        Fraction (of top-k) of additional ground-truth evaluations
        drawn from the *rejected* points by a seeded RNG every
        generation, keeping the proxy's corpus unbiased.
    proxy_min_corpus:
        Cold-start gate: screening stays off (plain dispatch,
        byte-identical to an unscreened run) until the harvested
        corpus holds this many points and validation RMSE clears the
        proxy's gate.
    """
    if n_trials < 1 or n_samples < 1:
        raise ArchGymError("n_trials and n_samples must be >= 1")
    validate_agent_names(agents)
    if service_url is not None and not isinstance(service_url, str):
        service_url = tuple(service_url) or None  # empty list == no service
    if resume and out_dir is None:
        raise ArchGymError("resume=True requires out_dir")
    if shared_cache and out_dir is None and service_url is None:
        raise ArchGymError("shared_cache=True requires out_dir or service_url")
    rng = np.random.default_rng(seed)
    probe = env_factory()
    try:
        env_id = probe.env_id
    finally:
        probe.close()

    backend, server_cache_url, shared_cache_dir = resolve_execution_backend(
        service_url,
        shared_cache,
        out_dir,
        env_kwargs=getattr(env_factory, "env_kwargs", None),
        timeout_s=service_timeout_s,
        retries=service_retries,
        batch=service_batch,
        auto_weights=auto_weights,
        async_dispatch=async_dispatch,
        cache_replicas=cache_replicas,
        proxy_screen=proxy_screen,
    )

    # Draw every trial's lottery ticket in the same order the serial
    # loop always has — task outcomes then depend only on the task.
    tasks: List[TrialTask] = []
    for agent_name in agents:
        for _trial in range(n_trials):
            hyperparams = sample_hyperparams(agent_name, rng)
            tasks.append(
                TrialTask(
                    index=len(tasks),
                    agent=agent_name,
                    hyperparams=hyperparams,
                    agent_seed=int(rng.integers(2**31 - 1)),
                    run_seed=int(rng.integers(2**31 - 1)),
                    n_samples=n_samples,
                    env_factory=env_factory,
                    collect=collect_dataset,
                    cache=cache,
                    shared_cache_dir=shared_cache_dir,
                    backend=backend,
                    server_cache_url=server_cache_url,
                    cache_replicas=cache_replicas,
                    generation_dispatch=generation_dispatch,
                    pipeline=pipeline,
                    proxy_screen=proxy_screen,
                    proxy_oversample=proxy_oversample,
                    proxy_topk=proxy_topk,
                    proxy_refresh=proxy_refresh,
                    proxy_min_corpus=proxy_min_corpus,
                )
            )

    if out_dir is None:
        start = time.perf_counter()
        outcomes = execute_trials(tasks, workers=workers)
        wall_time_s = time.perf_counter() - start

        report = SweepReport(env_id=env_id, n_samples=n_samples, workers=workers)
        report.wall_time_s = wall_time_s
        report.results = {a: [] for a in agents}
        for outcome in outcomes:
            report.results[outcome.agent].append(outcome.result)
        if collect_dataset:
            report.dataset = ArchGymDataset.merge_all(
                [ArchGymDataset(o.env_id, o.transitions) for o in outcomes],
                env_id=env_id,
            )
        return report

    from repro.sweeps.shards import execute_durable, sweep_fingerprint

    if env_signature is None:
        env_signature = getattr(env_factory, "fingerprint_signature", None)
    if proxy_screen:
        # Screening changes which design points get simulated, so all
        # five proxy knobs pin the fingerprint. The unscreened call
        # below stays knob-free on purpose: every pre-existing shard
        # directory keeps its historical fingerprint and remains
        # resumable.
        fingerprint = sweep_fingerprint(
            kind="lottery-sweep",
            env_id=env_id,
            env_signature=env_signature,
            agents=list(agents),
            n_trials=n_trials,
            n_samples=n_samples,
            seed=seed,
            collect=collect_dataset,
            proxy_screen=proxy_screen,
            proxy_oversample=proxy_oversample,
            proxy_topk=proxy_topk,
            proxy_refresh=proxy_refresh,
            proxy_min_corpus=proxy_min_corpus,
        )
    else:
        fingerprint = sweep_fingerprint(
            kind="lottery-sweep",
            env_id=env_id,
            env_signature=env_signature,
            agents=list(agents),
            n_trials=n_trials,
            n_samples=n_samples,
            seed=seed,
            collect=collect_dataset,
        )
    manifest = {
        "fingerprint": fingerprint,
        "kind": "lottery-sweep",
        "env_id": env_id,
        "env_signature": env_signature,
        "agents": list(agents),
        "n_trials": n_trials,
        "n_samples": n_samples,
        "seed": seed,
        "collect": collect_dataset,
        "n_tasks": len(tasks),
        "workers": workers,
    }
    if proxy_screen:
        manifest.update(
            proxy_screen=proxy_screen,
            proxy_oversample=proxy_oversample,
            proxy_topk=proxy_topk,
            proxy_refresh=proxy_refresh,
            proxy_min_corpus=proxy_min_corpus,
        )

    start = time.perf_counter()
    # Stream each finished trial straight to disk and drop it — memory
    # stays flat no matter how large the sweep is.
    execute_durable(
        tasks, out_dir, manifest, workers=workers, resume=resume,
        keep_outcomes=False,
    )
    wall_time_s = time.perf_counter() - start

    report = SweepReport.from_shards(out_dir)
    report.workers = workers
    report.wall_time_s = wall_time_s
    return report
