"""Durable sweep state: per-trial result shards + a sweep manifest.

The §6.1 lottery multiplies agents × tickets × samples, and the §7
pipeline wants every trajectory kept — quickly more state than one
process should hold in RAM, and far more than anyone wants to lose to
a crash at trial 900 of 1000. This module makes a sweep durable:

- Every finished :class:`~repro.sweeps.executor.TrialOutcome` is
  written to ``<out_dir>/trial-NNNNN.json`` via atomic write-rename,
  so a shard either exists complete or not at all.
- ``sweep.json`` (the manifest) pins a deterministic **fingerprint**
  of the sweep arguments (environment, agents, trial/sample counts,
  seed). Resuming into a directory whose fingerprint doesn't match
  the requested sweep is rejected — shards only merge with shards
  from the *same* experiment.
- :func:`scan_completed` lists the trial indices already on disk, so
  a re-run schedules only the remainder. Because every task's seeds
  were precomputed in serial order, the resumed trials are
  bit-identical to what the killed run would have produced.
"""

from __future__ import annotations

import hashlib
import json
import os
from functools import partial
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Sequence, Set

from repro.agents.base import SearchResult
from repro.core.dataset import Transition
from repro.core.errors import ShardError
from repro.sweeps.executor import TrialOutcome, TrialTask, execute_trials

__all__ = [
    "MANIFEST_NAME",
    "sweep_fingerprint",
    "FINGERPRINT_EXEMPT",
    "write_manifest",
    "load_manifest",
    "prepare_sweep_dir",
    "scan_completed",
    "shard_path",
    "write_shard",
    "load_shard",
    "iter_shards",
    "load_outcomes",
    "execute_durable",
]

MANIFEST_NAME = "sweep.json"
MANIFEST_FORMAT = "archgym-sweep-manifest-v1"
SHARD_FORMAT = "archgym-trial-shard-v1"
_SHARD_GLOB = "trial-*.json"


def sweep_fingerprint(**fields: Any) -> str:
    """Deterministic identity of a sweep's result-defining arguments.

    Every keyword argument participates; pass exactly the fields that
    determine trial outcomes (env id, agents, counts, seed — *not*
    ``workers`` or cache toggles, which are wall-clock knobs).
    """
    payload = json.dumps(fields, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


#: Sweep knobs that deliberately do NOT participate in the durable-sweep
#: fingerprint, each with the reason. Every ``TrialTask`` field and every
#: sweep/collect CLI flag must either be passed to
#: :func:`sweep_fingerprint` or appear here — the ``fingerprint-coverage``
#: checker (``python -m repro.lint``) enforces the dichotomy, so adding a
#: knob forces an explicit decision about whether it changes results.
FINGERPRINT_EXEMPT = {
    # -- wall-clock / durability knobs: cannot change trial outcomes --
    "workers": "process-pool width; results are bit-identical for any N",
    "cache": "memoization skips re-simulating deterministic cost models",
    "no_cache": "CLI spelling of the cache toggle",
    "shared_cache": "cross-process cache tier; deterministic reuse only",
    "shared_cache_dir": "location of the shared cache tier",
    "backend": "remote execution endpoint; byte-parity enforced by CI",
    "service_url": "CLI spelling of the remote backend",
    "service_batch": "batched transport for the same evaluations",
    "service_timeout": "client transport policy",
    "service_retries": "client transport policy",
    "server_cache_url": "server-side memo tier; deterministic reuse only",
    "cache_replicas": "shared-cache write-through fan-out; deterministic reuse only",
    "auto_weights": "observed-rate host weighting; dispatch placement only",
    "generation_dispatch": "batched generation transport, same results",
    "pipeline": "streaming dispatch with stealing, same results",
    "async_dispatch": "event-loop transport for the same fan-out; "
                      "resume-compatible either way, wall-clock only",
    "out_dir": "names the shard directory itself",
    "resume": "re-runs only missing trials of the same fingerprint",
    # -- presentation-only flags --
    "boxplots": "report rendering",
    "export": "report rendering",
    "out": "collect-mode dataset path",
    # -- derived per-trial fields: already pinned by the fingerprint --
    "index": "trial position; implied by agents x n_trials",
    "agent": "one entry of the fingerprinted agents list",
    "hyperparams": "drawn deterministically from the sweep seed",
    "agent_seed": "drawn deterministically from the sweep seed",
    "run_seed": "drawn deterministically from the sweep seed",
    "env_factory": "identified by env_id + env_signature",
    "env": "CLI spelling of env_id",
    "workload": "folded into env_signature by the env factory",
    "objective": "folded into env_signature by the env factory",
}


# -- manifest ---------------------------------------------------------------------


def write_manifest(out_dir: str | Path, manifest: Dict[str, Any]) -> None:
    """Atomically write the sweep manifest (tmp file + rename)."""
    out_dir = Path(out_dir)
    path = out_dir / MANIFEST_NAME
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps({"format": MANIFEST_FORMAT, **manifest}, indent=2))
    os.replace(tmp, path)


def load_manifest(out_dir: str | Path) -> Dict[str, Any]:
    path = Path(out_dir) / MANIFEST_NAME
    if not path.exists():
        raise ShardError(f"{path.parent} has no sweep manifest ({MANIFEST_NAME})")
    manifest = json.loads(path.read_text())
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ShardError(
            f"{path} is not an ArchGym sweep manifest "
            f"(format {manifest.get('format')!r})"
        )
    return manifest


def prepare_sweep_dir(
    out_dir: str | Path, manifest: Dict[str, Any], resume: bool = False
) -> Set[int]:
    """Set up (or re-enter) a sweep directory; return completed indices.

    - Fresh directory: writes the manifest, returns the empty set.
    - Existing directory: the stored fingerprint must match
      ``manifest["fingerprint"]`` (same sweep arguments), and any
      existing shards require ``resume=True`` — a silent partial
      overwrite would corrupt the merge.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    if (out_dir / MANIFEST_NAME).exists():
        existing = load_manifest(out_dir)
        if existing.get("fingerprint") != manifest["fingerprint"]:
            raise ShardError(
                f"{out_dir} holds a different sweep (fingerprint "
                f"{existing.get('fingerprint')!r}, this run is "
                f"{manifest['fingerprint']!r}) — same out_dir requires the "
                "same env (incl. workload/objective), agents, n_trials, "
                "n_samples, and seed, or a fresh directory"
            )
    elif scan_completed(out_dir):
        raise ShardError(
            f"{out_dir} contains trial shards but no manifest — refusing "
            "to adopt a foreign directory"
        )
    else:
        write_manifest(out_dir, manifest)
    completed = scan_completed(out_dir)
    if completed and not resume:
        raise ShardError(
            f"{out_dir} already holds {len(completed)} completed trial "
            "shard(s); pass resume=True (CLI: --resume) to finish the "
            "sweep, or point at a fresh directory"
        )
    return completed


# -- shards -----------------------------------------------------------------------


def shard_path(out_dir: str | Path, index: int) -> Path:
    return Path(out_dir) / f"trial-{index:05d}.json"


def scan_completed(out_dir: str | Path) -> Set[int]:
    """Trial indices with a completed shard on disk.

    Shards appear via atomic rename, so presence implies completeness;
    in-flight temp files use a different suffix and never match.
    """
    completed: Set[int] = set()
    for path in Path(out_dir).glob(_SHARD_GLOB):
        stem = path.stem  # "trial-00042"
        try:
            completed.add(int(stem.split("-", 1)[1]))
        except (IndexError, ValueError):
            continue
    return completed


def write_shard(out_dir: str | Path, outcome: TrialOutcome) -> Path:
    """Stream one finished trial to disk (atomic write-rename)."""
    path = shard_path(out_dir, outcome.index)
    record = {
        "format": SHARD_FORMAT,
        "index": outcome.index,
        "agent": outcome.agent,
        "env_id": outcome.env_id,
        "result": outcome.result.to_record(),
        "transitions": [t.to_record() for t in outcome.transitions],
    }
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_text(json.dumps(record, separators=(",", ":")))
    os.replace(tmp, path)
    return path


def load_shard(path: str | Path) -> TrialOutcome:
    record = json.loads(Path(path).read_text())
    if record.get("format") != SHARD_FORMAT:
        raise ShardError(
            f"{path} is not an ArchGym trial shard "
            f"(format {record.get('format')!r})"
        )
    return TrialOutcome(
        index=int(record["index"]),
        agent=str(record["agent"]),
        env_id=str(record["env_id"]),
        result=SearchResult.from_record(record["result"]),
        transitions=[Transition.from_record(t) for t in record["transitions"]],
    )


def iter_shards(out_dir: str | Path) -> Iterator[TrialOutcome]:
    """Yield completed outcomes in trial-index order, one at a time —
    the whole sweep never needs to be in memory at once."""
    for index in sorted(scan_completed(out_dir)):
        yield load_shard(shard_path(out_dir, index))


def load_outcomes(
    out_dir: str | Path, expected: Optional[int] = None
) -> Iterator[TrialOutcome]:
    """Like :func:`iter_shards`, but first verifies that exactly
    ``expected`` shards are present (the post-run completeness check)."""
    completed = scan_completed(out_dir)
    if expected is not None and len(completed) != expected:
        missing = sorted(set(range(expected)) - completed)
        raise ShardError(
            f"{out_dir} holds {len(completed)} of {expected} trial shards "
            f"(missing indices {missing[:10]}{'...' if len(missing) > 10 else ''}) "
            "— re-run with resume=True to finish the sweep"
        )
    return iter_shards(out_dir)


# -- durable execution ------------------------------------------------------------


def execute_durable(
    tasks: Sequence[TrialTask],
    out_dir: str | Path,
    manifest: Dict[str, Any],
    workers: int = 1,
    resume: bool = False,
    keep_outcomes: bool = False,
) -> List[TrialOutcome]:
    """Run a task batch against a shard directory.

    Prepares (or re-enters) ``out_dir`` under ``manifest``, skips trial
    indices whose shard is already on disk, and streams every freshly
    finished trial to a shard as it completes.

    With ``keep_outcomes=False`` (the memory-flat mode) the return
    value is empty — rebuild the result from disk, e.g. via
    :meth:`~repro.sweeps.runner.SweepReport.from_shards`. With
    ``keep_outcomes=True`` the full outcome list (previously completed
    shards loaded from disk, fresh ones kept in memory — no re-read of
    what was just written) is returned in trial-index order.
    """
    completed = prepare_sweep_dir(out_dir, manifest, resume=resume)
    pending = [t for t in tasks if t.index not in completed]
    fresh = execute_trials(
        pending,
        workers=workers,
        on_outcome=partial(write_shard, out_dir),
        keep_outcomes=keep_outcomes,
    )
    if not keep_outcomes:
        return []
    prior = [load_shard(shard_path(out_dir, i)) for i in sorted(completed)]
    return sorted(prior + fresh, key=lambda o: o.index)
