"""Terminal box plots for lottery sweeps (the Fig. 4/5 visualization).

The paper presents the hyperparameter lottery as per-agent box plots of
outcome distributions. This module renders the same view as monospace
text so reports are self-contained in logs and CI output:

    aco  |------[====|=====]-------------|      best *
    bo        |--[==|==]--|                     best *

Each row maps the agent's five-number summary onto a shared horizontal
axis: whiskers (min..max), box (Q1..Q3), median bar, and a star at the
agent's best outcome.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.errors import ArchGymError
from repro.sweeps.stats import FiveNumberSummary

__all__ = ["render_boxplot", "render_boxplots"]


def render_boxplot(
    values: Sequence[float],
    lo: float,
    hi: float,
    width: int = 50,
    best_marker: bool = True,
) -> str:
    """Render one distribution as a text box plot on the axis [lo, hi]."""
    if width < 10:
        raise ArchGymError("box plot width must be >= 10")
    if hi <= lo:
        raise ArchGymError("axis needs hi > lo")
    summary = FiveNumberSummary.from_values(values)

    def col(x: float) -> int:
        frac = (x - lo) / (hi - lo)
        return int(round(min(max(frac, 0.0), 1.0) * (width - 1)))

    cells = [" "] * width
    c_min, c_q1 = col(summary.minimum), col(summary.q1)
    c_med, c_q3, c_max = col(summary.median), col(summary.q3), col(summary.maximum)
    for i in range(c_min, c_q1):
        cells[i] = "-"
    for i in range(c_q1, c_q3 + 1):
        cells[i] = "="
    for i in range(c_q3 + 1, c_max + 1):
        cells[i] = "-"
    cells[c_min] = "|"
    cells[c_max] = "|"
    cells[c_q1] = "["
    cells[c_q3] = "]"
    cells[c_med] = "#"
    if best_marker:
        cells[col(summary.maximum)] = "*"
    return "".join(cells)


def render_boxplots(
    distributions: Dict[str, Sequence[float]], width: int = 50
) -> str:
    """Render several labeled distributions on one shared axis."""
    if not distributions:
        raise ArchGymError("no distributions to plot")
    all_values = [v for vs in distributions.values() for v in vs]
    lo, hi = float(np.min(all_values)), float(np.max(all_values))
    if hi <= lo:
        hi = lo + 1.0
    label_w = max(len(k) for k in distributions) + 2
    lines = []
    for label, values in distributions.items():
        plot = render_boxplot(values, lo, hi, width=width)
        lines.append(f"{label:<{label_w}}{plot}")
    axis = f"{'':<{label_w}}{lo:<12.4g}{'':^{max(width - 24, 0)}}{hi:>12.4g}"
    lines.append(axis)
    return "\n".join(lines)
