"""rng-discipline: all randomness must come from the seeded stream.

Byte-parity across executors depends on every random draw flowing
through a generator constructed from the trial's precomputed seed
(``np.random.default_rng(seed)`` / the agent's ``self.rng``). Inside
``agents/``, ``core/`` and ``sweeps/`` this checker flags:

- any call on the stdlib ``random`` module's global state
  (``random.random()``, ``random.seed()``, ...);
- any call on numpy's legacy global state (``np.random.rand()``,
  ``np.random.seed()``, ...);
- *unseeded* construction of a generator: ``random.Random()``,
  ``np.random.default_rng()``, ``np.random.RandomState()`` with no
  arguments.

Seeded constructions (``default_rng(seed)``, ``Random(seed)``,
``Generator(PCG64(seed))``) are fine — that is the discipline.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator

from repro.lint.core import Checker, Finding, SourceFile, register

#: Directories whose code must draw from the seeded per-agent stream.
SCOPED_DIRS = {"agents", "core", "sweeps"}

#: Constructors that are deterministic *when given a seed argument*.
SEEDED_CONSTRUCTORS = {
    "Random",
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


def _module_aliases(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the RNG module they denote.

    ``import random`` -> {"random": "random"}; ``import numpy as np``
    -> {"np": "numpy"}; ``from numpy import random as npr`` ->
    {"npr": "numpy.random"}; ``from random import choice`` ->
    {"choice": "random.choice"} (a function, dotted three-deep).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("random", "numpy", "numpy.random"):
                    aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.module in ("random", "numpy.random"):
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
            elif node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        aliases[alias.asname or "random"] = "numpy.random"
    return aliases


def _dotted(node: ast.AST) -> str:
    """``np.random.default_rng`` -> "np.random.default_rng"; "" if the
    expression is not a plain dotted name."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


@register
class RngDisciplineChecker(Checker):
    name = "rng-discipline"
    description = (
        "agents/, core/ and sweeps/ must draw randomness from the "
        "seeded per-agent stream, never module-level RNG state"
    )

    def relevant(self, sf: SourceFile) -> bool:
        return bool(SCOPED_DIRS.intersection(sf.parts))

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        aliases = _module_aliases(sf.tree)
        if not aliases:
            return
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if not dotted:
                continue
            head, _, rest = dotted.partition(".")
            target = aliases.get(head)
            if target is None:
                continue
            full = f"{target}.{rest}" if rest else target
            finding = self._classify(sf, node, full)
            if finding is not None:
                yield finding

    def _classify(self, sf, node: ast.Call, full: str):
        if full.startswith("random."):
            fn = full.split(".", 1)[1]
        elif full.startswith("numpy.random."):
            fn = full.split(".", 2)[2]
        else:
            return None
        if "." in fn:  # e.g. a method on a stored generator object
            return None
        seeded = bool(node.args) or bool(node.keywords)
        if fn in SEEDED_CONSTRUCTORS:
            if seeded:
                return None
            return sf.finding(
                self.name,
                node,
                f"unseeded RNG construction {full}() — pass the trial's "
                "seed (or derive from the per-agent stream)",
            )
        return sf.finding(
            self.name,
            node,
            f"module-level RNG call {full}(...) — draw from the seeded "
            "per-agent stream (self.rng / np.random.default_rng(seed)) "
            "instead",
        )
