"""async-discipline: no blocking calls inside coroutine bodies.

One event loop drives a whole host pool's fan-out
(``--async-dispatch``), so a single blocking call inside a coroutine
stalls every in-flight request the loop holds — the failure is silent,
just a pool that mysteriously serializes. Inside any ``async def``
under ``src/repro`` this checker flags:

- ``time.sleep(...)`` — blocks the loop thread; coroutines back off
  with ``await asyncio.sleep(...)``;
- anything reached through ``http.client`` — the blocking HTTP
  transport (the loop-native transport is
  :class:`repro.service.aio.AsyncServiceClient`, which never touches
  ``http.client``);
- :class:`~repro.service.client.ServiceClient`'s request methods
  (``evaluate``, ``evaluate_batch``, ``healthz``, ``cache_*``) called
  on a sync client: a local name bound from ``ServiceClient(...)`` or
  an attribute path ending in ``.client`` / ``.probe_client`` (the
  pool's sync transports). The async siblings ``.aio_client`` /
  ``.aio_probe`` answer to the same method names and are exempt by
  construction.

Nested ``def``s inside a coroutine are skipped (they are values, not
loop-thread code until someone calls them); nested ``async def``s are
checked in their own right. A coroutine that must hand off to blocking
code deliberately (e.g. via a thread-pool wrapper) carries
``# repro-lint: allow(async-discipline)`` on the offending line.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.lint.core import Checker, Finding, SourceFile, register

#: The sync client's blocking request surface. The async client answers
#: to the same names on purpose (one wire schema, two transports), so
#: receiver spelling — not the method name — decides what gets flagged.
BLOCKING_METHODS = {
    "evaluate",
    "evaluate_batch",
    "healthz",
    "cache_get",
    "cache_put",
    "cache_size",
    "cache_list",
}

#: Attribute spellings that denote a sync :class:`ServiceClient` in the
#: pool's idiom (``host.client`` / ``host.probe_client`` / bare
#: ``client = ServiceClient(...)`` locals are collected separately).
SYNC_CLIENT_ATTRS = {"client", "probe_client"}


def _module_aliases(tree: ast.AST) -> Dict[str, str]:
    """Local name -> dotted module/function it denotes, for the two
    blocking modules this checker knows (``time``, ``http.client``)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("time", "http", "http.client"):
                    if alias.asname:
                        aliases[alias.asname] = alias.name
                    else:  # `import http.client` binds the name `http`
                        head = alias.name.split(".")[0]
                        aliases[head] = head
        elif isinstance(node, ast.ImportFrom):
            if node.module == "time":
                for alias in node.names:
                    if alias.name == "sleep":
                        aliases[alias.asname or alias.name] = "time.sleep"
            elif node.module == "http":
                for alias in node.names:
                    if alias.name == "client":
                        aliases[alias.asname or "client"] = "http.client"
            elif node.module == "http.client":
                for alias in node.names:
                    if alias.name != "*":
                        aliases[alias.asname or alias.name] = (
                            f"http.client.{alias.name}"
                        )
    return aliases


def _dotted(node: ast.AST) -> str:
    """``host.client.evaluate`` -> "host.client.evaluate"; "" if the
    expression is not a plain dotted name."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return ""
    parts.append(node.id)
    return ".".join(reversed(parts))


def _sync_client_locals(func: ast.AsyncFunctionDef) -> Set[str]:
    """Names bound from ``ServiceClient(...)`` inside the coroutine."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        ctor = _dotted(value.func)
        if ctor == "ServiceClient" or ctor.endswith(".ServiceClient"):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _coroutine_body(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk ``func``'s body without descending into nested ``def``s
    (of either kind — nested ``async def``s get their own pass)."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register
class AsyncDisciplineChecker(Checker):
    name = "async-discipline"
    description = (
        "coroutines must not call blocking transports (time.sleep, "
        "http.client, sync ServiceClient methods)"
    )

    def relevant(self, sf: SourceFile) -> bool:
        return "repro" in sf.parts

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        aliases = _module_aliases(sf.tree)
        for func in ast.walk(sf.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            client_locals = _sync_client_locals(func)
            for node in _coroutine_body(func):
                if not isinstance(node, ast.Call):
                    continue
                finding = self._classify(sf, func, node, aliases, client_locals)
                if finding is not None:
                    yield finding

    def _classify(
        self,
        sf: SourceFile,
        func: ast.AsyncFunctionDef,
        node: ast.Call,
        aliases: Dict[str, str],
        client_locals: Set[str],
    ):
        dotted = _dotted(node.func)
        if dotted:
            head, _, rest = dotted.partition(".")
            target = aliases.get(head)
            if target is not None:
                full = f"{target}.{rest}" if rest else target
                if full == "time.sleep":
                    return sf.finding(
                        self.name,
                        node,
                        f"time.sleep(...) inside coroutine {func.name!r} "
                        "blocks the dispatch loop — use "
                        "`await asyncio.sleep(...)`",
                    )
                if full.startswith("http.client"):
                    return sf.finding(
                        self.name,
                        node,
                        f"blocking http.client transport inside coroutine "
                        f"{func.name!r} — the loop-native transport is "
                        "repro.service.aio.AsyncServiceClient",
                    )
        fn = node.func
        if isinstance(fn, ast.Attribute) and fn.attr in BLOCKING_METHODS:
            receiver = _dotted(fn.value)
            last = receiver.rsplit(".", 1)[-1] if receiver else ""
            if last in SYNC_CLIENT_ATTRS or receiver in client_locals:
                return sf.finding(
                    self.name,
                    node,
                    f"sync ServiceClient call {receiver}.{fn.attr}(...) "
                    f"inside coroutine {func.name!r} blocks the dispatch "
                    "loop — use the aio_client/aio_probe sibling (or "
                    "hand off to a thread and suppress with "
                    "`# repro-lint: allow(async-discipline)`)",
                )
        return None
