"""fingerprint-coverage: every sweep knob is fingerprinted or exempt.

The durable-sweep manifest pins ``sweep_fingerprint(...)`` so resuming
with different *result-defining* arguments is rejected. The flip side
is a standing temptation: add a new ``TrialTask`` field or sweep CLI
flag and forget to decide whether it belongs in the fingerprint. The
``--pipeline`` precedent settled the policy — a knob is either passed
to ``sweep_fingerprint`` or listed, with a reason, in the
``FINGERPRINT_EXEMPT`` mapping next to the fingerprint itself
(``repro/sweeps/shards.py``). This checker enforces the dichotomy:

- every field of the ``TrialTask`` dataclass, and
- every ``--flag`` registered on the sweep/collect parsers
  (``sweep_p`` / ``col_p`` receivers and ``_add_durability_args``)

must appear as a ``sweep_fingerprint`` keyword (``trials`` matches
``n_trials``) or as a ``FINGERPRINT_EXEMPT`` key. The checker is inert
on trees with no ``sweep_fingerprint`` call sites.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.core import Checker, Finding, Project, SourceFile, register

#: Parser variables whose ``add_argument`` calls define sweep knobs.
_SWEEP_PARSER_NAMES = {"sweep_p", "col_p"}
_DURABILITY_FUNC = "_add_durability_args"


def _fingerprint_kwargs(project: Project) -> Set[str]:
    covered: Set[str] = set()
    for sf in project.library_files():
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sweep_fingerprint"
            ):
                covered.update(kw.arg for kw in node.keywords if kw.arg)
    return covered


def _exempt_names(project: Project) -> Set[str]:
    """Keys of the ``FINGERPRINT_EXEMPT = {...}`` mapping, wherever it
    is defined."""
    exempt: Set[str] = set()
    for sf in project.library_files():
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(t, ast.Name) and t.id == "FINGERPRINT_EXEMPT"
                for t in node.targets
            ):
                continue
            if isinstance(node.value, ast.Dict):
                for key in node.value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        exempt.add(key.value)
    return exempt


def _trial_task_fields(
    project: Project,
) -> List[Tuple[SourceFile, str, ast.AST]]:
    found = next(project.find_classes("TrialTask"), None)
    if found is None:
        return []
    sf, cls = found
    return [
        (sf, stmt.target.id, stmt)
        for stmt in cls.body
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
    ]


def _sweep_cli_flags(project: Project) -> List[Tuple[SourceFile, str, ast.AST]]:
    flags: List[Tuple[SourceFile, str, ast.AST]] = []

    def harvest(sf: SourceFile, call: ast.Call) -> None:
        if call.args and isinstance(call.args[0], ast.Constant):
            raw = call.args[0].value
            if isinstance(raw, str) and raw.startswith("--"):
                flags.append((sf, raw[2:].replace("-", "_"), call))

    for sf in project.library_files():
        durability_funcs = [
            node
            for node in ast.walk(sf.tree)
            if isinstance(node, ast.FunctionDef)
            and node.name == _DURABILITY_FUNC
        ]
        for func in durability_funcs:
            for node in ast.walk(func):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add_argument"
                ):
                    harvest(sf, node)
        for node in ast.walk(sf.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_argument"
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in _SWEEP_PARSER_NAMES
            ):
                harvest(sf, node)
    return flags


@register
class FingerprintCoverageChecker(Checker):
    name = "fingerprint-coverage"
    description = (
        "every TrialTask field and sweep CLI flag must be passed to "
        "sweep_fingerprint or listed (with a reason) in FINGERPRINT_EXEMPT"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        covered = _fingerprint_kwargs(project)
        if not covered:
            return  # no fingerprint in this tree; nothing to hold it to
        exempt = _exempt_names(project)
        seen: Set[Tuple[str, str]] = set()
        knobs = [
            (sf, name, node, "TrialTask field")
            for sf, name, node in _trial_task_fields(project)
        ] + [
            (sf, name, node, "sweep CLI flag")
            for sf, name, node in _sweep_cli_flags(project)
        ]
        for sf, name, node, kind in knobs:
            if name in covered or f"n_{name}" in covered or name in exempt:
                continue
            key = (kind, name)
            if key in seen:
                continue
            seen.add(key)
            yield sf.finding(
                self.name,
                node,
                f"{kind} '{name}' is neither passed to sweep_fingerprint "
                "nor exempted in FINGERPRINT_EXEMPT — decide whether it "
                "changes results and record it",
            )
