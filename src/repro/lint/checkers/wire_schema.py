"""wire-schema: client and server must agree on the JSON keys.

The evaluation service speaks hand-rolled JSON over HTTP, so nothing
type-checks the contract: a key the client sends that the server never
parses (or a response key the client reads that the server never
emits) fails only at runtime, possibly only under one dispatch mode.
This checker extracts both sides of the schema from the AST of the
``service/`` modules and enforces containment:

- every key a client (``client.py`` *and* its async sibling
  ``aio.py``) puts in a request body must be parsed somewhere
  server-side (``request["k"]`` / ``request.get("k")`` in
  ``server.py`` or ``wire.py``);
- every key a client — or a shared response parser in ``wire.py`` —
  reads out of a parsed response must be produced somewhere
  server-side (a ``_reply(...)`` payload or the ``health()``
  inventory).

The reverse directions are deliberately open: servers may emit keys
old clients ignore, and may parse optional keys — that is how the
wire format stays forward-compatible.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.lint.core import Checker, Finding, Project, SourceFile, register


def _service_file(project: Project, basename: str) -> Optional[SourceFile]:
    for sf in project.library_files():
        if "service" in sf.parts and sf.display.endswith(f"/{basename}"):
            return sf
    return None


def _dict_keys(node: ast.Dict) -> List[str]:
    return [
        key.value
        for key in node.keys
        if isinstance(key, ast.Constant) and isinstance(key.value, str)
    ]


def _client_sent_keys(sf: SourceFile) -> Dict[str, int]:
    """Key -> first line where the client writes it into a request
    body: dict literals named ``request`` (plus their later
    ``request["k"] = ...`` additions) and dict literals passed
    directly as a request payload."""
    keys: Dict[str, int] = {}

    def note(key: str, lineno: int) -> None:
        keys.setdefault(key, lineno)

    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Assign):
            named_request = any(
                isinstance(t, ast.Name) and t.id == "request"
                for t in node.targets
            )
            if named_request and isinstance(node.value, ast.Dict):
                for key in _dict_keys(node.value):
                    note(key, node.lineno)
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "request"
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    note(target.slice.value, node.lineno)
        elif isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr in (
                "_checked",
                "_request",
            ):
                for arg in node.args:
                    if isinstance(arg, ast.Dict):
                        for key in _dict_keys(arg):
                            note(key, arg.lineno)
    return keys


def _read_keys(sf: SourceFile, receiver: str) -> Dict[str, int]:
    """Key -> line for ``<receiver>["k"]`` / ``<receiver>.get("k")``
    reads, plus ``.get("k")`` chained directly on a call result."""
    keys: Dict[str, int] = {}
    for node in ast.walk(sf.tree):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == receiver
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
            and isinstance(getattr(node, "ctx", None), ast.Load)
        ):
            keys.setdefault(node.slice.value, node.lineno)
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "get"
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                base = func.value
                if (isinstance(base, ast.Name) and base.id == receiver) or (
                    receiver == "parsed" and isinstance(base, ast.Call)
                ):
                    keys.setdefault(node.args[0].value, node.lineno)
    return keys


def _server_produced_keys(sf: SourceFile) -> List[str]:
    """String keys of every ``_reply(...)`` dict payload plus every
    dict literal inside a function named ``health``."""
    produced: List[str] = []
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Call):
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else (
                func.id if isinstance(func, ast.Name) else ""
            )
            if name == "_reply":
                for arg in node.args:
                    if isinstance(arg, ast.Dict):
                        produced.extend(_dict_keys(arg))
        elif isinstance(node, ast.FunctionDef) and node.name == "health":
            for sub in ast.walk(node):
                if isinstance(sub, ast.Dict):
                    produced.extend(_dict_keys(sub))
    return produced


@register
class WireSchemaChecker(Checker):
    name = "wire-schema"
    description = (
        "JSON keys the service client sends/reads must be keys the "
        "server parses/produces"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        # Both transports are clients of the same wire format: the
        # async sibling is held to the identical schema containment.
        clients = [
            sf
            for sf in (
                _service_file(project, "client.py"),
                _service_file(project, "aio.py"),
            )
            if sf is not None
        ]
        server = _service_file(project, "server.py")
        wire = _service_file(project, "wire.py")
        if not clients or server is None:
            return  # need both ends of the wire to compare
        parsed_keys: Dict[str, int] = {}
        produced: List[str] = []
        for sf in (server, wire):
            if sf is None:
                continue
            parsed_keys.update(_read_keys(sf, "request"))
            produced.extend(_server_produced_keys(sf))
        produced_set = set(produced)
        for client in clients:
            sent = _client_sent_keys(client)
            for key, lineno in sorted(sent.items(), key=lambda kv: kv[1]):
                if key not in parsed_keys:
                    yield Finding(
                        self.name,
                        client.display,
                        lineno,
                        f"client sends request key '{key}' that the "
                        "server never parses — drift between "
                        f"{client.display.rsplit('/', 1)[-1]} and "
                        "server.py/wire.py",
                    )
            # Response-key reads: the shared wire.py parsers read most
            # response keys on behalf of both clients, so collect the
            # client's own reads plus wire.py's.
            reads = dict(_read_keys(client, "parsed"))
            for key, lineno in sorted(reads.items(), key=lambda kv: kv[1]):
                if key not in produced_set:
                    yield Finding(
                        self.name,
                        client.display,
                        lineno,
                        f"client reads response key '{key}' that the "
                        "server never produces",
                    )
        if wire is not None:
            for key, lineno in sorted(
                _read_keys(wire, "parsed").items(), key=lambda kv: kv[1]
            ):
                if key not in produced_set:
                    yield Finding(
                        self.name,
                        wire.display,
                        lineno,
                        f"shared response parser reads key '{key}' that "
                        "the server never produces",
                    )
