"""lock-guard: shared mutable state must stay behind its lock.

The threaded layers (``sweeps/hostpool.py``, ``service/server.py``,
``service/client.py``) follow one convention: an attribute that is
*ever* mutated under ``with self._lock`` (or any ``*lock*``-named
context) is shared state, and every other mutation of it must also
hold a lock. This checker learns the guarded set per class from the
code itself and flags:

- a write / augmented write / mutating method call
  (``self.evals += 1``, ``self._registry[k] = v``,
  ``self._connections.add(c)``) on a guarded attribute outside any
  lock, outside ``__init__`` (construction predates the threads);
- nested lock acquisitions taken in inconsistent order anywhere in
  the file (A inside B here, B inside A there — a deadlock recipe).

``threading.local()`` slots are naturally exempt: their writes go
through ``self._local.attr``, whose base is not the bare ``self``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.core import Checker, Finding, SourceFile, register

#: Files whose classes are driven by worker / handler threads.
SCOPED_SUFFIXES = (
    "sweeps/hostpool.py",
    "service/server.py",
    "service/client.py",
)

#: Method names that mutate their receiver in place.
MUTATING_METHODS = {
    "append",
    "appendleft",
    "add",
    "clear",
    "discard",
    "extend",
    "insert",
    "pop",
    "popleft",
    "popitem",
    "remove",
    "setdefault",
    "update",
}


def _lock_name(expr: ast.expr) -> str:
    """The textual identity of a ``with`` context that looks like a
    lock ("" otherwise): ``self._lock`` -> "self._lock"."""
    if isinstance(expr, ast.Attribute) and "lock" in expr.attr.lower():
        base = _lock_name(expr.value) or (
            expr.value.id if isinstance(expr.value, ast.Name) else "?"
        )
        return f"{base}.{expr.attr}"
    if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
        return expr.id
    return ""


def _self_attr_target(node: ast.expr) -> str:
    """The attribute name when ``node`` is a write target rooted at
    bare ``self`` (``self.x``, ``self.x[k]``); "" otherwise."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return ""


class _MutationEvent:
    __slots__ = ("attr", "node", "locks", "in_init")

    def __init__(self, attr: str, node: ast.AST, locks: Tuple[str, ...],
                 in_init: bool) -> None:
        self.attr = attr
        self.node = node
        self.locks = locks
        self.in_init = in_init


class _ClassScanner(ast.NodeVisitor):
    """Collect per-class mutation events and the lock-nesting edges."""

    def __init__(self) -> None:
        self.events: List[_MutationEvent] = []
        self.edges: Dict[Tuple[str, str], int] = {}  # (outer, inner) -> lineno
        self._locks: List[str] = []
        self._func_stack: List[str] = []

    # -- structure ----------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_With(self, node: ast.With) -> None:
        acquired = [
            name
            for item in node.items
            if (name := _lock_name(item.context_expr))
        ]
        for inner in acquired:
            for outer in self._locks:
                if outer != inner:
                    self.edges.setdefault((outer, inner), node.lineno)
        self._locks.extend(acquired)
        self.generic_visit(node)
        for _ in acquired:
            self._locks.pop()

    # -- mutations ----------------------------------------------------------

    def _record(self, attr: str, node: ast.AST) -> None:
        in_init = bool(self._func_stack) and self._func_stack[0] == "__init__"
        self.events.append(
            _MutationEvent(attr, node, tuple(self._locks), in_init)
        )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            elts = target.elts if isinstance(target, ast.Tuple) else [target]
            for elt in elts:
                attr = _self_attr_target(elt)
                if attr:
                    self._record(attr, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        attr = _self_attr_target(node.target)
        if attr:
            self._record(attr, node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in MUTATING_METHODS
        ):
            attr = _self_attr_target(func.value)
            if attr:
                self._record(attr, node)
        self.generic_visit(node)


@register
class LockGuardChecker(Checker):
    name = "lock-guard"
    description = (
        "attributes mutated under a lock anywhere in a threaded-layer "
        "class must be mutated under a lock everywhere (plus consistent "
        "lock-acquisition order)"
    )

    def relevant(self, sf: SourceFile) -> bool:
        return sf.display.endswith(SCOPED_SUFFIXES)

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        reported_pairs: Set[Tuple[str, str]] = set()
        for node in sf.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            scanner = _ClassScanner()
            for stmt in node.body:
                scanner.visit(stmt)
            guarded = {e.attr for e in scanner.events if e.locks}
            for event in scanner.events:
                if event.locks or event.in_init:
                    continue
                if event.attr not in guarded:
                    continue
                yield sf.finding(
                    self.name,
                    event.node,
                    f"'{node.name}.{event.attr}' is mutated under a lock "
                    "elsewhere but written here without one",
                )
            for (outer, inner), lineno in sorted(scanner.edges.items()):
                pair = tuple(sorted((outer, inner)))
                if pair in reported_pairs:
                    continue
                if (inner, outer) in scanner.edges:
                    reported_pairs.add(pair)
                    other = scanner.edges[(inner, outer)]
                    yield Finding(
                        self.name,
                        sf.display,
                        max(lineno, other),
                        f"inconsistent lock order: '{outer}' -> '{inner}' "
                        f"(line {lineno}) but '{inner}' -> '{outer}' "
                        f"(line {other}) — pick one order to avoid deadlock",
                    )
