"""Built-in checkers. Importing this package registers all of them."""

from repro.lint.checkers import (  # noqa: F401  (imported for registration)
    async_discipline,
    counters,
    fingerprint,
    imports,
    locks,
    rng,
    wire_schema,
)
