"""unused-import: the offline F401 approximation, as a checker.

Port of the former ``tools/check_unused_imports.py``: a name bound by
``import``/``from ... import`` that never reappears in the module —
as an ``ast.Name`` or inside any string constant (which covers
``__all__`` re-exports) — is flagged. ``# noqa`` on the import line
still suppresses (ruff parity), as does the framework's own
``# repro-lint: allow(unused-import)``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from repro.lint.core import Checker, Finding, SourceFile, register


def imported_names(tree: ast.AST) -> Iterator[Tuple[str, int]]:
    """Yield ``(bound_name, lineno)`` for every import binding."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                yield bound, node.lineno
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__":
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                yield (alias.asname or alias.name), node.lineno


def used_names(tree: ast.AST) -> Set[str]:
    """Every identifier the module references, plus all string
    constants (so ``__all__`` entries count as uses)."""
    used: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            used.add(node.value)
    return used


@register
class UnusedImportChecker(Checker):
    name = "unused-import"
    description = (
        "imported names must be referenced somewhere in the module "
        "(offline F401 approximation; '# noqa' still suppresses)"
    )

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        used = used_names(sf.tree)
        for bound, lineno in imported_names(sf.tree):
            if bound in used:
                continue
            line = sf.lines[lineno - 1] if lineno <= len(sf.lines) else ""
            if "noqa" in line:
                continue
            yield Finding(
                self.name,
                sf.display,
                lineno,
                f"'{bound}' imported but unused",
            )
