"""counter-threading: EnvStats counters must survive to the report.

Provenance counters are only trustworthy if they travel the whole
chain: ``EnvStats`` (where the env increments them) -> ``SearchResult``
(the per-trial delta) -> ``to_record``/``from_record`` (the shard
round-trip) -> ``SweepReport`` (aggregation) -> ``report_to_rows``
(export). A counter added to ``EnvStats`` but dropped anywhere along
that chain silently vanishes from resumed sweeps — exactly the drift
this checker exists to catch.

A counter is any ``self.X = <literal>`` field in ``EnvStats.__init__``.
Two names change along the chain (:data:`RENAMES`); a counter the env
keeps for itself is suppressed at its definition line with
``# repro-lint: allow(counter-threading)`` plus a rationale.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.core import Checker, Finding, Project, register

#: EnvStats name -> the name it carries from SearchResult onward.
RENAMES = {
    "total_sim_time": "sim_time_s",
    "remote_evals_by_host": "remote_hosts",
}

#: The chain stations, in provenance order.
_STATIONS = (
    "SearchResult field",
    "SearchResult.to_record",
    "SearchResult.from_record",
    "SweepReport aggregation",
    "report_to_rows export",
)


def _counter_fields(cls: ast.ClassDef) -> List[Tuple[str, ast.AST]]:
    """``self.X = <literal>`` assignments in ``__init__``."""
    out: List[Tuple[str, ast.AST]] = []
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets, value = node.targets, node.value
                elif isinstance(node, ast.AnnAssign) and node.value is not None:
                    targets, value = [node.target], node.value
                else:
                    continue
                if not isinstance(value, (ast.Constant, ast.Dict, ast.List)):
                    continue
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        out.append((target.attr, node))
    return out


def _dataclass_fields(cls: ast.ClassDef) -> Set[str]:
    return {
        stmt.target.id
        for stmt in cls.body
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)
    }


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _names_and_strings(node: ast.AST) -> Set[str]:
    """Every identifier, attribute name and string constant under
    ``node`` — the loosest useful notion of "mentions"."""
    out: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
        elif isinstance(sub, ast.keyword) and sub.arg:
            out.add(sub.arg)
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            out.add(sub.value)
    return out


@register
class CounterThreadingChecker(Checker):
    name = "counter-threading"
    description = (
        "every EnvStats counter must be threaded through SearchResult, "
        "to_record/from_record, SweepReport and report_to_rows"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        stats = next(project.find_classes("EnvStats"), None)
        result = next(project.find_classes("SearchResult"), None)
        if stats is None or result is None:
            return  # nothing to anchor on in this tree
        stats_file, stats_cls = stats
        _, result_cls = result

        mentions = [_dataclass_fields(result_cls)]
        for method_name in ("to_record", "from_record"):
            method = _method(result_cls, method_name)
            mentions.append(
                _names_and_strings(method) if method is not None else None
            )
        report = next(project.find_classes("SweepReport"), None)
        mentions.append(
            _names_and_strings(report[1]) if report is not None else None
        )
        rows = next(project.find_functions("report_to_rows"), None)
        mentions.append(
            _names_and_strings(rows[1]) if rows is not None else None
        )

        for counter, node in _counter_fields(stats_cls):
            threaded = RENAMES.get(counter, counter)
            for station, seen in zip(_STATIONS, mentions):
                if seen is None:
                    continue  # that station doesn't exist in this tree
                if threaded not in seen:
                    yield stats_file.finding(
                        self.name,
                        node,
                        f"EnvStats.{counter} (threaded as '{threaded}') "
                        f"is missing from {station} — the counter would "
                        "drop out of shards/reports",
                    )
