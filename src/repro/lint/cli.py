"""Command-line front end for ``python -m repro.lint``."""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.lint.core import (
    all_checkers,
    checker_names,
    format_human,
    format_json,
    run_lint,
)

#: Same sweep as the old ``tools/check_unused_imports.py``: every root
#: that holds first-party python.
DEFAULT_ROOTS = ("src", "tests", "benchmarks", "examples", "tools")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based invariant analyzer for this repository "
        "(determinism, concurrency, provenance).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze "
        f"(default: {' '.join(DEFAULT_ROOTS)}, skipping missing ones)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="output format (default: human)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULES",
        help="comma-separated checker names to run (default: all)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_checkers",
        help="list registered checkers and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_checkers:
        for checker in all_checkers():
            print(f"{checker.name}: {checker.description}")
        return 0
    paths = list(args.paths)
    if not paths:
        paths = [root for root in DEFAULT_ROOTS if os.path.isdir(root)]
        if not paths:
            print("error: no default roots found; pass paths explicitly",
                  file=sys.stderr)
            return 2
    select = None
    if args.select:
        select = [name.strip() for name in args.select.split(",") if name.strip()]
        unknown = set(select) - set(checker_names())
        if unknown:
            print(
                f"error: unknown checker(s): {', '.join(sorted(unknown))} "
                f"(known: {', '.join(checker_names())})",
                file=sys.stderr,
            )
            return 2
    result = run_lint(paths, select=select)
    formatter = format_json if args.format == "json" else format_human
    print(formatter(result))
    return result.exit_code


if __name__ == "__main__":
    sys.exit(main())
