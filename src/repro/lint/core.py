"""Framework core for ``repro.lint``: files, findings, suppressions.

The analyzer is deliberately small: parse every ``*.py`` under the
requested roots once (`SourceFile`), hand the parsed set (`Project`)
to each registered :class:`Checker`, and collect :class:`Finding`
objects. A finding is *suppressed* — reported in the summary but not
fatal — when the flagged line carries a ``# repro-lint: allow(rule)``
comment naming the finding's rule (or ``allow(*)``).

Checkers never import the modules they analyze; everything is pure
``ast`` so the lint runs on any tree, broken imports and all.
"""

from __future__ import annotations

import ast
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "SourceFile",
    "Project",
    "Checker",
    "register",
    "all_checkers",
    "checker_names",
    "load_project",
    "run_lint",
    "LintResult",
    "format_human",
    "format_json",
]

#: ``# repro-lint: allow(rule)`` / ``allow(rule-a, rule-b)`` / ``allow(*)``.
#: Anything after the closing paren is free-form rationale.
_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*allow\(([^)]*)\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    rule: str
    path: str
    line: int
    message: str

    def sort_key(self) -> Tuple[str, int, str]:
        return (self.path, self.line, self.rule)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


class SourceFile:
    """A parsed python file plus its per-line suppression table."""

    def __init__(self, path: Path, display: str, source: str) -> None:
        self.path = path
        self.display = display  # root-relative posix path, used in findings
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=display)
        self.suppressions: Dict[int, Set[str]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                rules = {r.strip() for r in match.group(1).split(",") if r.strip()}
                if rules:
                    self.suppressions[lineno] = rules

    @property
    def parts(self) -> Tuple[str, ...]:
        return tuple(Path(self.display).parts)

    def is_suppressed(self, rule: str, line: int) -> bool:
        allowed = self.suppressions.get(line, ())
        return rule in allowed or "*" in allowed

    def finding(self, rule: str, node: ast.AST, message: str) -> Finding:
        return Finding(rule, self.display, getattr(node, "lineno", 1), message)


class Project:
    """The full set of files under analysis, with lookup helpers."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.files = list(files)
        self._by_display = {f.display: f for f in self.files}

    def get(self, display: str) -> Optional[SourceFile]:
        return self._by_display.get(display)

    def library_files(self) -> List[SourceFile]:
        """Files that define the library's behavior — excludes tests,
        whose scratch calls/classes must not loosen cross-file checks."""
        out = []
        for sf in self.files:
            name = Path(sf.display).name
            if name.startswith("test_") or "tests" in sf.parts:
                continue
            out.append(sf)
        return out

    def find_classes(self, name: str) -> Iterator[Tuple[SourceFile, ast.ClassDef]]:
        for sf in self.library_files():
            for node in ast.walk(sf.tree):
                if isinstance(node, ast.ClassDef) and node.name == name:
                    yield sf, node

    def find_functions(self, name: str) -> Iterator[Tuple[SourceFile, ast.FunctionDef]]:
        for sf in self.library_files():
            for node in ast.walk(sf.tree):
                if isinstance(node, ast.FunctionDef) and node.name == name:
                    yield sf, node


class Checker:
    """Base class: subclass, set ``name``/``description``, override
    :meth:`check_file` (per-file rules) or :meth:`check` (cross-file)."""

    name: str = ""
    description: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        for sf in project.files:
            if self.relevant(sf):
                yield from self.check_file(sf)

    def relevant(self, sf: SourceFile) -> bool:
        return True

    def check_file(self, sf: SourceFile) -> Iterator[Finding]:
        return iter(())


_REGISTRY: Dict[str, type] = {}


def register(cls: type) -> type:
    """Class decorator adding a Checker subclass to the registry."""
    if not getattr(cls, "name", ""):
        raise ValueError(f"checker {cls!r} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def _ensure_builtin_checkers() -> None:
    from repro.lint import checkers  # noqa: F401  (import registers them)


def checker_names() -> List[str]:
    _ensure_builtin_checkers()
    return sorted(_REGISTRY)


def all_checkers(select: Optional[Iterable[str]] = None) -> List[Checker]:
    _ensure_builtin_checkers()
    names = sorted(_REGISTRY) if select is None else list(select)
    unknown = [n for n in names if n not in _REGISTRY]
    if unknown:
        raise KeyError(f"unknown checker(s): {', '.join(unknown)}")
    return [_REGISTRY[n]() for n in names]


def iter_python_files(root: Path) -> Iterator[Path]:
    if root.is_file():
        if root.suffix == ".py":
            yield root
        return
    for path in sorted(root.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        yield path


def load_project(paths: Sequence[str]) -> Tuple[Project, List[Finding]]:
    """Parse every python file under ``paths``. Unparseable files become
    ``syntax`` findings instead of aborting the run."""
    files: List[SourceFile] = []
    errors: List[Finding] = []
    seen: Set[Path] = set()
    for raw in paths:
        root = Path(raw)
        for path in iter_python_files(root):
            resolved = path.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            display = path.as_posix()
            try:
                source = path.read_text(encoding="utf-8")
                files.append(SourceFile(path, display, source))
            except (SyntaxError, UnicodeDecodeError) as exc:
                line = getattr(exc, "lineno", 1) or 1
                errors.append(Finding("syntax", display, line, str(exc)))
    return Project(files), errors


@dataclass
class LintResult:
    findings: List[Finding]
    suppressed: List[Finding]

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0


def run_lint(
    paths: Sequence[str], select: Optional[Iterable[str]] = None
) -> LintResult:
    """Run the (selected) checkers over ``paths`` and split findings
    into active vs suppressed."""
    project, errors = load_project(paths)
    raw: List[Finding] = list(errors)
    for checker in all_checkers(select):
        raw.extend(checker.check(project))
    active: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in sorted(set(raw), key=Finding.sort_key):
        sf = project.get(finding.path)
        if sf is not None and sf.is_suppressed(finding.rule, finding.line):
            suppressed.append(finding)
        else:
            active.append(finding)
    return LintResult(active, suppressed)


def format_human(result: LintResult) -> str:
    lines = [
        f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in result.findings
    ]
    lines.append(
        f"{len(result.findings)} finding(s), "
        f"{len(result.suppressed)} suppressed"
    )
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    return json.dumps(
        {
            "findings": [f.to_dict() for f in result.findings],
            "suppressed": [f.to_dict() for f in result.suppressed],
            "counts": {
                "findings": len(result.findings),
                "suppressed": len(result.suppressed),
            },
        },
        indent=2,
        sort_keys=True,
    )
