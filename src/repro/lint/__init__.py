"""``repro.lint`` — repo-specific static analysis for the parity invariants.

The reproduction's central promise (every distributed mode is
byte-identical to the serial loop) rests on conventions no generic
linter knows about: seeded-RNG discipline, lock-guarded shared state
in the threaded layers, counters threaded end-to-end from ``EnvStats``
into shards and reports, fingerprint coverage of every sweep knob, and
client/server wire-schema symmetry. This package enforces them with
pure-``ast`` checkers — run ``python -m repro.lint`` (or
``tools/check_lint.py`` in CI) and see ``docs/static-analysis.md``.
"""

from repro.lint.core import (
    Checker,
    Finding,
    LintResult,
    Project,
    SourceFile,
    all_checkers,
    checker_names,
    format_human,
    format_json,
    load_project,
    register,
    run_lint,
)

__all__ = [
    "Checker",
    "Finding",
    "LintResult",
    "Project",
    "SourceFile",
    "all_checkers",
    "checker_names",
    "format_human",
    "format_json",
    "load_project",
    "register",
    "run_lint",
]
