"""Online surrogate pre-screening from the shared cache (paper §7).

The offline trainers in :mod:`repro.proxy.trainer` reproduce the
paper's Fig. 11–12 proxies, but never participate in a live sweep.
:class:`OnlineProxy` closes that loop: it incrementally (re)trains a
:class:`~repro.proxy.trainer.ProxyCostModel` forest per target metric
from the corpus the sweep's **shared cache** already accumulates — the
(canonical action key → metrics) entries every trial writes through —
and serves predictions to the oversample-and-rank screening stage in
:func:`repro.agents.base.run_agent`.

Lifecycle:

1. **Harvest.** Each generation, page the shared cache tier
   (file-backed :class:`~repro.core.cache_store.SharedCacheStore` or
   the replicated :class:`~repro.core.cache_store.ServerCacheStore`,
   one ``list_encoded`` contract) into the corpus. Entries that do not
   decode against this environment's action space or lack a target
   metric are foreign — another env's points sharing the store — and
   are skipped, never errors. The driver's own real evaluations stream
   in through :meth:`observe` without a round trip.
2. **Refit.** When the corpus has grown enough since the last fit,
   retrain the forests on a held-out split and record validation RMSE.
3. **Gate.** The proxy only *serves* once the corpus holds at least
   ``min_corpus`` points **and** the worst per-target relative
   validation RMSE clears ``max_relative_rmse`` — until then the
   driver falls back to plain dispatch, byte-identical to an
   unscreened run.

Everything is deterministic given the construction seed and the
sequence of harvested/observed points: refit timing is a pure function
of corpus size, subsampling and train/test splits use seeded
generators, and no wall-clock enters any decision.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.core.errors import ArchGymError, ProxyModelError
from repro.core.spaces import CompositeSpace
from repro.proxy.trainer import ProxyCostModel

__all__ = ["OnlineProxy"]

#: Page size for walking a shared-cache tier's ``list_encoded`` listing.
_HARVEST_PAGE = 500
#: Once the gate is open, only every N-th harvest call re-pages the
#: store — the driver's own evaluations arrive via :meth:`observe`, so
#: warm harvests exist only to pick up *other* trials' points and need
#: not pay a full listing walk (HTTP round trips on the server tier)
#: every generation.
_WARM_HARVEST_EVERY = 8
#: Minimum corpus growth (points) since the last fit before refitting.
_REFIT_MIN_GROWTH = 16


class OnlineProxy:
    """Incrementally retrained surrogate over the shared-cache corpus.

    Parameters
    ----------
    space:
        The environment's action space; features are its unit encoding.
    targets:
        Metric names to predict (the env's ``observation_metrics``).
    min_corpus:
        Cold-start gate: the proxy never serves below this corpus size.
    max_relative_rmse:
        Validation gate: the worst per-target relative RMSE (error as a
        fraction of the target's mean magnitude) of the latest refit
        must clear this before predictions are served.
    seed:
        Seeds the train/test splits and the fit-time subsample —
        everything stochastic about the proxy.
    max_fit_samples:
        Cap on points per refit; a larger corpus is subsampled with a
        seeded generator so refits stay bounded as the cache grows.
    """

    def __init__(
        self,
        space: CompositeSpace,
        targets: Sequence[str],
        min_corpus: int = 64,
        max_relative_rmse: float = 0.35,
        seed: int = 0,
        max_fit_samples: int = 2048,
    ) -> None:
        if min_corpus < 8:
            raise ProxyModelError(
                f"min_corpus must be >= 8 (got {min_corpus}); a forest "
                "fitted on fewer points cannot produce a meaningful "
                "validation split"
            )
        if max_fit_samples < min_corpus:
            raise ProxyModelError(
                f"max_fit_samples ({max_fit_samples}) must be >= "
                f"min_corpus ({min_corpus})"
            )
        self.space = space
        self.targets = list(targets)
        self.min_corpus = int(min_corpus)
        self.max_relative_rmse = float(max_relative_rmse)
        self.seed = int(seed)
        self.max_fit_samples = int(max_fit_samples)
        self._x: List[np.ndarray] = []
        self._y: List[np.ndarray] = []
        self._seen: set = set()
        self._model: Optional[ProxyCostModel] = None
        self._fitted_at = 0
        self._gate_open = False
        self._harvest_calls = 0
        #: How many refits have happened (introspection/tests).
        self.refits = 0

    # -- introspection ------------------------------------------------------------

    @property
    def corpus_size(self) -> int:
        """Distinct design points currently in the training corpus."""
        return len(self._x)

    @property
    def last_rmse(self) -> float:
        """Worst per-target *relative* validation RMSE of the latest
        refit (0.0 before any model has been fitted)."""
        if self._model is None or not self._model.test_rmse_relative:
            return 0.0
        return float(max(self._model.test_rmse_relative.values()))

    @property
    def ready(self) -> bool:
        """Cold-start gate: corpus ≥ ``min_corpus`` and the latest
        refit's validation RMSE cleared ``max_relative_rmse``."""
        return self._gate_open

    def __repr__(self) -> str:
        return (
            f"OnlineProxy(targets={self.targets!r}, "
            f"corpus={self.corpus_size}, refits={self.refits}, "
            f"ready={self.ready}, last_rmse={self.last_rmse:.4f})"
        )

    # -- corpus -------------------------------------------------------------------

    def observe(self, action: Dict[str, Any], metrics: Dict[str, float]) -> bool:
        """Fold one ground-truth evaluation into the corpus.

        Returns whether the point was new. Duplicate keys, actions the
        space cannot encode, and missing/non-finite targets are all
        quietly skipped — the corpus only ever holds clean rows.
        """
        from repro.core.env import canonical_action_key

        try:
            key_str = json.dumps(
                canonical_action_key(action), separators=(",", ":")
            )
        except (TypeError, ValueError, KeyError):
            return False
        return self._add(key_str, action, metrics)

    def ingest_store(self, store: Any) -> int:
        """Page a shared-cache tier's whole listing into the corpus.

        ``store`` is anything serving the
        ``list_encoded(offset, limit) -> (entries, total)`` contract —
        both :class:`~repro.core.cache_store.SharedCacheStore` and
        :class:`~repro.core.cache_store.ServerCacheStore`. Returns how
        many new points were added.
        """
        added = 0
        offset = 0
        while True:
            entries, total = store.list_encoded(offset, limit=_HARVEST_PAGE)
            if not entries:
                break
            for key_str, metrics in entries:
                if self._ingest_entry(key_str, metrics):
                    added += 1
            offset += len(entries)
            if offset >= total:
                break
        return added

    def harvest(self, store: Any) -> int:
        """Round-throttled :meth:`ingest_store`.

        While the gate is closed every call harvests (the corpus is the
        only path to readiness); once the proxy is serving, only every
        ``_WARM_HARVEST_EVERY``-th call pages the store again.
        """
        self._harvest_calls += 1
        if self._gate_open and (self._harvest_calls % _WARM_HARVEST_EVERY) != 1:
            return 0
        return self.ingest_store(store)

    def _ingest_entry(self, key_str: str, metrics: Dict[str, float]) -> bool:
        """One listing entry → corpus row; the key decodes back to an
        action dict (``encode_key`` of a canonical key is JSON of
        ``[[name, value], ...]`` pairs)."""
        if key_str in self._seen:
            return False
        try:
            pairs = json.loads(key_str)
            action = {str(name): value for name, value in pairs}
        except (TypeError, ValueError):
            return False
        return self._add(key_str, action, metrics)

    def _add(
        self, key_str: str, action: Dict[str, Any], metrics: Dict[str, float]
    ) -> bool:
        if key_str in self._seen:
            return False
        try:
            x = np.asarray(self.space.to_unit_vector(action), dtype=np.float64)
            y = np.array(
                [float(metrics[t]) for t in self.targets], dtype=np.float64
            )
        except (ArchGymError, KeyError, TypeError, ValueError):
            return False  # foreign entry: another env sharing the store
        if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
            return False
        self._seen.add(key_str)
        self._x.append(x)
        self._y.append(y)
        return True

    # -- training -----------------------------------------------------------------

    def maybe_refit(self) -> bool:
        """Refit if the corpus warrants it; returns whether it did.

        Deterministic policy: never below ``min_corpus``; after the
        first fit, only once the corpus has grown by at least
        ``max(_REFIT_MIN_GROWTH, previous_size // 4)`` points — refit
        cost stays amortized against corpus growth.
        """
        n = len(self._x)
        if n < self.min_corpus:
            return False
        grown = n - self._fitted_at
        if self._model is not None and grown < max(
            _REFIT_MIN_GROWTH, self._fitted_at // 4
        ):
            return False
        X = np.stack(self._x)
        Y = np.stack(self._y)
        if n > self.max_fit_samples:
            # Seed varies with corpus size so successive subsamples
            # differ, yet any (seed, corpus) pair replays exactly.
            rng = np.random.default_rng(self.seed + n)
            idx = np.sort(
                rng.choice(n, size=self.max_fit_samples, replace=False)
            )
            X, Y = X[idx], Y[idx]
        model = ProxyCostModel(self.space, list(self.targets))
        model.fit_matrices(X, Y, test_fraction=0.2, seed=self.seed)
        self._model = model
        self._fitted_at = n
        self.refits += 1
        self._gate_open = self.last_rmse <= self.max_relative_rmse
        return True

    # -- inference ----------------------------------------------------------------

    def predict_metrics(self, action: Dict[str, Any]) -> Dict[str, float]:
        """Predict all target metrics for one action dict."""
        if self._model is None:
            raise ProxyModelError(
                "online proxy has no fitted model yet (corpus "
                f"{self.corpus_size}/{self.min_corpus})"
            )
        return self._model.predict_metrics(action)

    def predict_batch(
        self, actions: Sequence[Dict[str, Any]]
    ) -> List[Dict[str, float]]:
        """Predict all targets for a list of action dicts (one matrix
        pass through the forests)."""
        if self._model is None:
            raise ProxyModelError(
                "online proxy has no fitted model yet (corpus "
                f"{self.corpus_size}/{self.min_corpus})"
            )
        X = np.stack(
            [
                np.asarray(self.space.to_unit_vector(a), dtype=np.float64)
                for a in actions
            ]
        )
        pred = self._model.predict_matrix(X)
        return [
            {t: float(pred[i, j]) for j, t in enumerate(self.targets)}
            for i in range(len(actions))
        ]
