"""CART regression tree (numpy implementation).

scikit-learn is unavailable in this environment, so the random-forest
proxy models of §7.2 are built on this from-scratch tree: greedy
variance-reduction splits found with vectorized prefix-sum scans, with
the usual depth / leaf-size / feature-subsampling controls the forest
needs.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.errors import ProxyModelError

__all__ = ["DecisionTreeRegressor"]


class _Node:
    __slots__ = ("feature", "threshold", "left", "right", "value")

    def __init__(self, value: float):
        self.feature: int = -1
        self.threshold: float = 0.0
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.value: float = value

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _best_split(
    X: np.ndarray, y: np.ndarray, features: np.ndarray, min_leaf: int
):
    """Find the (feature, threshold) minimizing total child SSE.

    For each feature the samples are sorted once; prefix sums of y and
    y^2 yield every split's SSE in O(n).
    """
    n = len(y)
    best_gain = 0.0
    best_feature = -1
    best_threshold = 0.0

    total_sum = y.sum()
    total_sq = (y * y).sum()
    parent_sse = total_sq - total_sum * total_sum / n

    for j in features:
        order = np.argsort(X[:, j], kind="stable")
        xs = X[order, j]
        ys = y[order]
        csum = np.cumsum(ys)
        csq = np.cumsum(ys * ys)

        # split after position k (left = first k+1 samples)
        k = np.arange(min_leaf - 1, n - min_leaf)
        if len(k) == 0:
            continue
        left_n = k + 1.0
        right_n = n - left_n
        left_sse = csq[k] - csum[k] ** 2 / left_n
        right_sum = total_sum - csum[k]
        right_sse = (total_sq - csq[k]) - right_sum**2 / right_n
        gain = parent_sse - (left_sse + right_sse)

        # forbid splits between equal feature values
        valid = xs[k] < xs[k + 1]
        gain = np.where(valid, gain, -np.inf)
        idx = int(np.argmax(gain))
        if gain[idx] > best_gain + 1e-12:
            best_gain = float(gain[idx])
            best_feature = int(j)
            best_threshold = float((xs[k[idx]] + xs[k[idx] + 1]) / 2.0)

    return best_feature, best_threshold, best_gain


class DecisionTreeRegressor:
    """Greedy CART regressor.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_leaf:
        Minimum samples in each child of a split.
    max_features:
        Features considered per split: ``None`` (all), ``"sqrt"``, or an
        integer count. Random subsets make forest trees decorrelated.
    """

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: Optional[object] = None,
        seed: int = 0,
    ) -> None:
        if max_depth < 1:
            raise ProxyModelError("max_depth must be >= 1")
        if min_samples_leaf < 1:
            raise ProxyModelError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = np.random.default_rng(seed)
        self._root: Optional[_Node] = None
        self.n_features_: int = 0
        self.n_nodes_: int = 0

    def _feature_subset(self, d: int) -> np.ndarray:
        if self.max_features is None:
            return np.arange(d)
        if self.max_features == "sqrt":
            m = max(1, int(np.sqrt(d)))
        else:
            m = max(1, min(int(self.max_features), d))
        return self.rng.choice(d, size=m, replace=False)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2 or len(X) != len(y):
            raise ProxyModelError(f"bad training shapes X{X.shape} y{y.shape}")
        if len(y) == 0:
            raise ProxyModelError("cannot fit on zero samples")
        self.n_features_ = X.shape[1]
        self.n_nodes_ = 0
        self._root = self._grow(X, y, depth=0)
        self._flatten()
        return self

    def _flatten(self) -> None:
        """Pack the node tree into flat arrays for vectorized prediction."""
        feats: List[int] = []
        thresh: List[float] = []
        left: List[int] = []
        right: List[int] = []
        value: List[float] = []

        def visit(node: _Node) -> int:
            idx = len(feats)
            feats.append(node.feature)
            thresh.append(node.threshold)
            left.append(-1)
            right.append(-1)
            value.append(node.value)
            if not node.is_leaf:
                left[idx] = visit(node.left)
                right[idx] = visit(node.right)
            return idx

        visit(self._root)
        self._feats = np.array(feats, dtype=np.int64)
        self._thresh = np.array(thresh, dtype=np.float64)
        self._left = np.array(left, dtype=np.int64)
        self._right = np.array(right, dtype=np.int64)
        self._value = np.array(value, dtype=np.float64)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        self.n_nodes_ += 1
        if (
            depth >= self.max_depth
            or len(y) < 2 * self.min_samples_leaf
            or np.ptp(y) < 1e-15
        ):
            return node
        feature, threshold, gain = _best_split(
            X, y, self._feature_subset(X.shape[1]), self.min_samples_leaf
        )
        if feature < 0 or gain <= 0.0:
            return node
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise ProxyModelError("tree is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != self.n_features_:
            raise ProxyModelError(
                f"expected X with {self.n_features_} features, got {X.shape}"
            )
        # vectorized descent: every row walks the flat arrays in lockstep
        rows = np.arange(len(X))
        idx = np.zeros(len(X), dtype=np.int64)
        while True:
            feats = self._feats[idx]
            active = feats >= 0
            if not active.any():
                break
            f = np.where(active, feats, 0)
            go_left = X[rows, f] <= self._thresh[idx]
            child = np.where(go_left, self._left[idx], self._right[idx])
            idx = np.where(active, child, idx)
        return self._value[idx]

    @property
    def depth_(self) -> int:
        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)
