"""Proxy cost models trained on ArchGym datasets (paper §7)."""

from repro.proxy.forest import RandomForestRegressor
from repro.proxy.online import OnlineProxy
from repro.proxy.proxy_env import ProxyEnv
from repro.proxy.trainer import ProxyCostModel, rmse, train_test_split
from repro.proxy.tree import DecisionTreeRegressor

__all__ = [
    "RandomForestRegressor",
    "OnlineProxy",
    "ProxyEnv",
    "ProxyCostModel",
    "rmse",
    "train_test_split",
    "DecisionTreeRegressor",
]
