"""Simulator-free environment backed by a trained proxy model (§7, §8).

``ProxyEnv`` exposes the *same* gym interface and action space as the
environment its training data came from, but answers ``evaluate`` with
random-forest predictions instead of simulation — the paper's
"2000x speedup at <1% RMSE" artifact (Fig. 12). Because the interface
is identical, any agent can search against the proxy and the resulting
designs can be re-validated on the real simulator.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

from repro.core.env import ArchGymEnv
from repro.core.errors import ProxyModelError
from repro.core.rewards import RewardSpec
from repro.proxy.trainer import ProxyCostModel

__all__ = ["ProxyEnv"]


class ProxyEnv(ArchGymEnv):
    """An ArchGym environment whose cost model is a trained proxy."""

    env_id = "ProxyEnv-v0"

    def __init__(
        self,
        proxy: ProxyCostModel,
        reward_spec: RewardSpec,
        episode_length: int = 1,
        terminate_on_target: bool = False,
        env_id: str = "ProxyEnv-v0",
    ) -> None:
        if not proxy.models:
            raise ProxyModelError("proxy model must be fitted before wrapping")
        self.env_id = env_id
        super().__init__(
            action_space=proxy.space,
            observation_metrics=list(proxy.targets),
            reward_spec=reward_spec,
            episode_length=episode_length,
            terminate_on_target=terminate_on_target,
        )
        self.proxy = proxy

    @classmethod
    def from_env(cls, env: ArchGymEnv, proxy: ProxyCostModel) -> "ProxyEnv":
        """Build a proxy twin of ``env`` (same reward, same episode shape)."""
        return cls(
            proxy=proxy,
            reward_spec=env.reward_spec,
            episode_length=env.episode_length,
            terminate_on_target=env.terminate_on_target,
            env_id=f"Proxy({env.env_id})",
        )

    def evaluate(self, action: Mapping[str, Any]) -> Dict[str, float]:
        return self.proxy.predict_metrics(action)
