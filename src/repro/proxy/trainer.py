"""Proxy cost-model training on ArchGym datasets (paper §7).

``ProxyCostModel`` trains one random forest per target metric on a
dataset's (unit-encoded action, metric) pairs. ``fit_with_search`` runs
the paper's random hyperparameter search, keeping the forest with the
lowest validation RMSE per target. RMSE is reported both absolutely and
relative to the target's mean (the paper quotes 0.61% for its power
model).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.dataset import ArchGymDataset
from repro.core.errors import ProxyModelError
from repro.core.spaces import CompositeSpace
from repro.proxy.forest import RandomForestRegressor

__all__ = ["ProxyCostModel", "train_test_split", "rmse"]


def rmse(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Root mean square error."""
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_pred = np.asarray(y_pred, dtype=np.float64).ravel()
    if y_true.shape != y_pred.shape:
        raise ProxyModelError(f"shape mismatch {y_true.shape} vs {y_pred.shape}")
    return float(np.sqrt(np.mean((y_true - y_pred) ** 2)))


def train_test_split(
    X: np.ndarray, Y: np.ndarray, test_fraction: float, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffled split into train and test partitions."""
    if not 0.0 < test_fraction < 1.0:
        raise ProxyModelError("test_fraction must be in (0, 1)")
    n = len(X)
    if n < 2:
        raise ProxyModelError("need at least 2 samples to split")
    perm = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test, train = perm[:n_test], perm[n_test:]
    if len(train) == 0:
        raise ProxyModelError("train split is empty; lower test_fraction")
    return X[train], Y[train], X[test], Y[test]


#: Random-search grid for forest hyperparameters (§7.2).
_SEARCH_GRID = {
    "n_estimators": [10, 20, 40],
    "max_depth": [8, 12, 16],
    "min_samples_leaf": [1, 2, 4],
}


@dataclass
class ProxyCostModel:
    """Per-metric random-forest proxy for an architecture simulator.

    Parameters
    ----------
    space:
        The environment's action space (features are unit encodings).
    targets:
        Metric names to predict (e.g. ``["latency", "power", "energy"]``).
    """

    space: CompositeSpace
    targets: Sequence[str]
    models: Dict[str, RandomForestRegressor] = field(default_factory=dict)
    train_rmse: Dict[str, float] = field(default_factory=dict)
    test_rmse: Dict[str, float] = field(default_factory=dict)
    test_rmse_relative: Dict[str, float] = field(default_factory=dict)

    # -- training -------------------------------------------------------------------

    def fit(
        self,
        dataset: ArchGymDataset,
        test_fraction: float = 0.2,
        seed: int = 0,
        **forest_kwargs,
    ) -> "ProxyCostModel":
        """Train one forest per target with fixed hyperparameters."""
        X, Y = dataset.to_matrices(self.space, self.targets)
        return self.fit_matrices(
            X, Y, test_fraction=test_fraction, seed=seed, **forest_kwargs
        )

    def fit_matrices(
        self,
        X: np.ndarray,
        Y: np.ndarray,
        test_fraction: float = 0.2,
        seed: int = 0,
        **forest_kwargs,
    ) -> "ProxyCostModel":
        """Train from pre-built ``(unit-encoded X, target Y)`` matrices.

        The online screening loop harvests its corpus straight from the
        shared cache rather than an :class:`ArchGymDataset`, so training
        must accept raw matrices too.
        """
        X = np.asarray(X, dtype=np.float64)
        Y = np.asarray(Y, dtype=np.float64)
        if Y.ndim != 2 or Y.shape[1] != len(self.targets):
            raise ProxyModelError(
                f"expected (n, {len(self.targets)}) target matrix, got "
                f"shape {Y.shape}"
            )
        rng = np.random.default_rng(seed)
        Xtr, Ytr, Xte, Yte = train_test_split(X, Y, test_fraction, rng)
        for j, target in enumerate(self.targets):
            forest = RandomForestRegressor(seed=seed + j, **forest_kwargs)
            forest.fit(Xtr, Ytr[:, j])
            self.models[target] = forest
            self._record_errors(target, forest, Xtr, Ytr[:, j], Xte, Yte[:, j])
        return self

    def fit_with_search(
        self,
        dataset: ArchGymDataset,
        n_trials: int = 6,
        test_fraction: float = 0.2,
        seed: int = 0,
    ) -> "ProxyCostModel":
        """Random hyperparameter search per target (paper §7.2)."""
        if n_trials < 1:
            raise ProxyModelError("n_trials must be >= 1")
        X, Y = dataset.to_matrices(self.space, self.targets)
        rng = np.random.default_rng(seed)
        Xtr, Ytr, Xte, Yte = train_test_split(X, Y, test_fraction, rng)
        keys = sorted(_SEARCH_GRID)
        for j, target in enumerate(self.targets):
            best_rmse = np.inf
            best_forest: Optional[RandomForestRegressor] = None
            for trial in range(n_trials):
                params = {
                    k: _SEARCH_GRID[k][int(rng.integers(len(_SEARCH_GRID[k])))]
                    for k in keys
                }
                forest = RandomForestRegressor(seed=seed * 1000 + trial, **params)
                forest.fit(Xtr, Ytr[:, j])
                err = rmse(Yte[:, j], forest.predict(Xte))
                if err < best_rmse:
                    best_rmse, best_forest = err, forest
            assert best_forest is not None
            self.models[target] = best_forest
            self._record_errors(target, best_forest, Xtr, Ytr[:, j], Xte, Yte[:, j])
        return self

    def _record_errors(self, target, forest, Xtr, ytr, Xte, yte) -> None:
        self.train_rmse[target] = rmse(ytr, forest.predict(Xtr))
        err = rmse(yte, forest.predict(Xte))
        self.test_rmse[target] = err
        mean = float(np.abs(yte).mean())
        self.test_rmse_relative[target] = err / mean if mean > 0 else np.inf

    # -- evaluation on external data ----------------------------------------------------

    def evaluate_matrices(self, X: np.ndarray, Y: np.ndarray) -> Dict[str, float]:
        """RMSE per target on an *external* test set.

        The Fig. 10/11 diversity comparison requires scoring every proxy
        against the same simulator-labeled test set drawn uniformly from
        the design space — a proxy trained on a narrow dataset scores
        well on its own held-out split but extrapolates poorly here.
        """
        if not self.models:
            raise ProxyModelError("proxy model is not fitted")
        if Y.shape[1] != len(self.targets):
            raise ProxyModelError(
                f"expected {len(self.targets)} target columns, got {Y.shape[1]}"
            )
        pred = self.predict_matrix(X)
        return {
            t: rmse(Y[:, j], pred[:, j]) for j, t in enumerate(self.targets)
        }

    def evaluate_relative(self, X: np.ndarray, Y: np.ndarray) -> Dict[str, float]:
        """Relative RMSE (fraction of mean magnitude) on an external set."""
        absolute = self.evaluate_matrices(X, Y)
        out = {}
        for j, t in enumerate(self.targets):
            mean = float(np.abs(Y[:, j]).mean())
            out[t] = absolute[t] / mean if mean > 0 else np.inf
        return out

    # -- inference --------------------------------------------------------------------

    def predict_metrics(self, action) -> Dict[str, float]:
        """Predict all target metrics for one action dict."""
        if not self.models:
            raise ProxyModelError("proxy model is not fitted")
        x = self.space.to_unit_vector(action)[None, :]
        return {t: float(self.models[t].predict(x)[0]) for t in self.targets}

    def predict_matrix(self, X: np.ndarray) -> np.ndarray:
        """Predict all targets for a batch of unit-encoded actions."""
        if not self.models:
            raise ProxyModelError("proxy model is not fitted")
        return np.column_stack([self.models[t].predict(X) for t in self.targets])
