"""Random forest regressor (bagged CART trees) — the §7.2 proxy model."""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.errors import ProxyModelError
from repro.proxy.tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bootstrap-aggregated regression trees with feature subsampling.

    The paper trains one random forest per predicted metric (latency,
    power, energy) on ArchGym datasets; this implementation mirrors the
    scikit-learn estimator the authors used.
    """

    def __init__(
        self,
        n_estimators: int = 30,
        max_depth: int = 12,
        min_samples_leaf: int = 2,
        max_features: Optional[object] = "sqrt",
        bootstrap: bool = True,
        seed: int = 0,
    ) -> None:
        if n_estimators < 1:
            raise ProxyModelError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.bootstrap = bootstrap
        self.seed = seed
        self._trees: List[DecisionTreeRegressor] = []

    def fit(self, X: np.ndarray, y: np.ndarray) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if len(X) != len(y) or len(y) == 0:
            raise ProxyModelError(f"bad training shapes X{X.shape} y{y.shape}")
        rng = np.random.default_rng(self.seed)
        self._trees = []
        n = len(y)
        for t in range(self.n_estimators):
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                seed=int(rng.integers(2**31 - 1)),
            )
            if self.bootstrap:
                idx = rng.integers(n, size=n)
                tree.fit(X[idx], y[idx])
            else:
                tree.fit(X, y)
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if not self._trees:
            raise ProxyModelError("forest is not fitted")
        preds = np.stack([tree.predict(X) for tree in self._trees])
        return preds.mean(axis=0)

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees)
