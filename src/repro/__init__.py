"""ArchGym reproduction — an open-source gymnasium for ML-assisted
architecture design space exploration (Krishnan et al., ISCA 2023).

Quickstart::

    import numpy as np
    import repro

    env = repro.make("DRAMGym-v0", workload="stream", objective="power")
    obs, info = env.reset(seed=0)
    action = env.action_space.sample(np.random.default_rng(0))
    obs, reward, terminated, truncated, info = env.step(action)

See ``repro.agents`` for the five search algorithms and
``repro.proxy`` for dataset-driven proxy cost models.
"""

from repro.core import (
    ArchGymDataset,
    ArchGymEnv,
    ArchGymError,
    CompositeSpace,
    Transition,
    make,
    register,
    registered_ids,
)

# importing repro.envs registers the four paper environments
import repro.envs  # noqa: F401  (import for registration side effect)

__version__ = "1.0.0"

__all__ = [
    "ArchGymDataset",
    "ArchGymEnv",
    "ArchGymError",
    "CompositeSpace",
    "Transition",
    "make",
    "register",
    "registered_ids",
    "__version__",
]
