"""Wire-format canonicalization for the evaluation service.

Both sides of the wire — :mod:`repro.service.server` and
:mod:`repro.service.client` — serialize through this module so the
formats cannot drift apart. The invariants that make a remote sweep
bit-identical to an in-process one all live here:

- **Actions** are JSON objects. Numpy scalars are unwrapped to native
  Python values and arrays/tuples become lists — exactly the
  normalization :func:`repro.core.env.canonical_action_key` applies to
  cache keys, so a design point has one identity on both sides.
- **Metrics** are ``{name: float}`` objects. Python floats survive a
  JSON round-trip exactly (``json`` emits ``repr``-faithful doubles),
  so the metrics an agent observes through the service are the same
  bits an in-process ``evaluate()`` would have produced.
- **Cache keys** travel inside URL paths as padding-free urlsafe
  base64 of the :func:`repro.core.cache_store.encode_key` string, so
  arbitrary key content (quotes, brackets, unicode) never fights URL
  quoting rules.
"""

from __future__ import annotations

import base64
import json
import math
from typing import Any, Dict, Mapping, Tuple
from urllib.parse import parse_qsl

import numpy as np

from repro.core.errors import ServiceError

__all__ = [
    "WIRE_FORMAT",
    "DEFAULT_CACHE_PAGE",
    "MAX_CACHE_PAGE",
    "jsonify",
    "canonical_dumps",
    "dump_body",
    "load_body",
    "clean_metrics",
    "parse_batch_request",
    "parse_cache_query",
    "parse_metrics_response",
    "parse_batch_response",
    "parse_cache_listing",
    "key_to_token",
    "token_to_key",
]

#: Protocol identifier served by ``GET /healthz``; clients may check it.
#: Still v1: ``/evaluate_batch`` and keep-alive are strict additions —
#: every v1 request body remains valid and answered identically.
WIRE_FORMAT = "archgym-service-v1"

#: Page size ``GET /cache?offset=N`` uses when no ``limit`` is given.
DEFAULT_CACHE_PAGE = 500
#: Hard ceiling on one listing page — a reply must stay a bounded
#: allocation however greedy the requested ``limit`` is.
MAX_CACHE_PAGE = 5000


def jsonify(value: Any) -> Any:
    """Recursively convert a value to JSON-native types.

    Numpy scalars unwrap to Python ints/floats/bools and arrays,
    tuples, and lists all become lists — the same normalization the
    evaluation-cache key applies, so one design point serializes one
    way everywhere.
    """
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    return value


def canonical_dumps(obj: Any) -> str:
    """Canonical JSON text: jsonified values, sorted keys, no spaces.

    For *identities* (e.g. the server's per-``(env, kwargs)`` instance
    keying) where two spellings of the same mapping must collide.
    """
    return json.dumps(jsonify(obj), sort_keys=True, separators=(",", ":"))


def dump_body(obj: Any) -> bytes:
    """Encode one HTTP request/response body.

    Insertion order is preserved (no key sorting): a metrics dict must
    come back in the cost model's own order, so artifacts serialized
    from a remote run — dataset JSONL lines, shard files — stay
    *byte*-identical to in-process ones, not merely value-identical.
    """
    return json.dumps(jsonify(obj), separators=(",", ":")).encode("utf-8")


def load_body(raw: bytes) -> Any:
    """Decode one HTTP body; raises :class:`ServiceError` on torn or
    non-JSON bytes so transport corruption never parses as a metric."""
    try:
        return json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        snippet = raw[:80].decode("utf-8", errors="replace")
        raise ServiceError(f"malformed service body {snippet!r}: {exc}") from exc


def clean_metrics(metrics: Mapping[str, Any]) -> Dict[str, float]:
    """Coerce a cost-model result to the wire metric schema.

    Non-finite values are rejected: ``json.dumps`` would emit them as
    the non-standard ``NaN``/``Infinity`` tokens, which strict parsers
    refuse — a body that cannot round-trip is a schema violation here,
    not a transport surprise on the other side.
    """
    try:
        clean = {str(k): float(v) for k, v in metrics.items()}
    except (TypeError, ValueError, AttributeError) as exc:
        raise ServiceError(
            f"metrics are not a name->float mapping: {metrics!r}"
        ) from exc
    for name, value in clean.items():
        if not math.isfinite(value):
            raise ServiceError(
                f"metric {name!r} is non-finite ({value!r}); the wire "
                "format carries finite floats only"
            )
    return clean


def parse_batch_request(request: Any) -> tuple:
    """Validate one ``POST /evaluate_batch`` body.

    Returns ``(env, actions, kwargs, memoize)`` or raises
    :class:`ServiceError` naming the schema violation — the shape both
    sides agree on lives here so client and server cannot drift.
    """
    if not isinstance(request, dict) or "env" not in request:
        raise ServiceError(
            f"evaluate_batch body must name an 'env': {request!r}"
        )
    actions = request.get("actions")
    if not isinstance(actions, list) or not actions:
        raise ServiceError(
            "evaluate_batch body needs a non-empty 'actions' list: "
            f"{request!r}"
        )
    for i, action in enumerate(actions):
        if not isinstance(action, Mapping):
            raise ServiceError(
                f"evaluate_batch action {i} is not an object: {action!r}"
            )
    kwargs = request.get("kwargs")
    if kwargs is not None and not isinstance(kwargs, Mapping):
        raise ServiceError(
            f"evaluate_batch 'kwargs' must be an object: {kwargs!r}"
        )
    memoize = request.get("memoize", True)
    if not isinstance(memoize, bool):
        raise ServiceError(
            f"evaluate_batch 'memoize' must be a boolean: {memoize!r}"
        )
    return str(request["env"]), actions, dict(kwargs or {}), memoize


def parse_cache_query(query: str) -> Tuple[int, int]:
    """Validate a ``GET /cache?offset=N&limit=M`` query string.

    Returns ``(offset, limit)`` with the defaults filled in and the
    limit clamped to :data:`MAX_CACHE_PAGE`; raises
    :class:`ServiceError` on unknown parameters or non-integer values
    — both sides of the listing pagination agree on this shape, like
    every other schema in this module.
    """
    offset, limit = 0, DEFAULT_CACHE_PAGE
    for name, value in parse_qsl(query, keep_blank_values=True):
        if name not in ("offset", "limit"):
            raise ServiceError(
                f"cache listing got unknown query parameter {name!r} "
                "(expected 'offset' and/or 'limit')"
            )
        try:
            number = int(value)
        except ValueError as exc:
            raise ServiceError(
                f"cache listing parameter {name}={value!r} is not an "
                "integer"
            ) from exc
        if name == "offset":
            offset = number
        else:
            limit = number
    if offset < 0:
        raise ServiceError(f"cache listing offset must be >= 0, got {offset}")
    if limit < 1:
        raise ServiceError(f"cache listing limit must be >= 1, got {limit}")
    return offset, min(limit, MAX_CACHE_PAGE)


def parse_metrics_response(parsed: Dict[str, Any], what: str) -> Dict[str, float]:
    """Validate one ``{"metrics": {...}}`` response body.

    Shared by the sync and async clients so both enforce — and report —
    exactly the same schema; ``what`` names the call for the error.
    """
    metrics = parsed.get("metrics")
    if not isinstance(metrics, dict):
        raise ServiceError(f"{what} has no metrics object: {parsed!r}")
    return {str(k): float(v) for k, v in metrics.items()}


def parse_batch_response(
    parsed: Dict[str, Any], env: str, n_actions: int
) -> list:
    """Validate one ``/evaluate_batch`` response body: a ``metrics``
    list carrying one object per requested action, in request order."""
    metrics_list = parsed.get("metrics")
    if not isinstance(metrics_list, list) or len(metrics_list) != n_actions:
        raise ServiceError(
            f"evaluate_batch response for env {env!r} must carry "
            f"{n_actions} metric objects: {parsed!r}"
        )
    out = []
    for i, metrics in enumerate(metrics_list):
        if not isinstance(metrics, dict):
            raise ServiceError(
                f"evaluate_batch entry {i} is not a metrics object: {metrics!r}"
            )
        out.append({str(k): float(v) for k, v in metrics.items()})
    return out


def parse_cache_listing(parsed: Dict[str, Any]) -> Tuple[list, int]:
    """Validate one ``GET /cache?offset=...`` listing page: returns
    ``(entries, total)`` with entries as ``(key_str, metrics)`` pairs."""
    raw_entries = parsed.get("entries")
    if not isinstance(raw_entries, list):
        raise ServiceError(
            f"cache listing response has no entries list: {parsed!r}"
        )
    entries = []
    for i, item in enumerate(raw_entries):
        if (
            not isinstance(item, (list, tuple))
            or len(item) != 2
            or not isinstance(item[1], dict)
        ):
            raise ServiceError(
                f"cache listing entry {i} is not a [key, metrics] "
                f"pair: {item!r}"
            )
        entries.append(
            (str(item[0]), {str(k): float(v) for k, v in item[1].items()})
        )
    return entries, int(parsed.get("size", 0))


def key_to_token(key_str: str) -> str:
    """URL-path-safe token for an encoded cache key (no padding)."""
    return base64.urlsafe_b64encode(key_str.encode("utf-8")).decode("ascii").rstrip("=")


def token_to_key(token: str) -> str:
    """Invert :func:`key_to_token`; raises :class:`ServiceError` on a
    token that is not valid base64 text."""
    try:
        padded = token + "=" * (-len(token) % 4)
        return base64.urlsafe_b64decode(padded.encode("ascii")).decode("utf-8")
    except (ValueError, UnicodeDecodeError) as exc:
        raise ServiceError(f"malformed cache-key token {token!r}") from exc
