"""The evaluation service: design-point evaluation over HTTP.

The paper's wall-clock argument (§6, Fig. 8) is that *simulator* cost
dominates search; :class:`EvaluationService` lets that cost live in a
separate process — or on a separate machine — behind three endpoints:

``GET /healthz``
    Liveness + inventory: wire format, registered environment names,
    how many evaluations this server has run, and the size of its
    design-point cache.
``POST /evaluate``
    Body ``{"env": name, "action": {...}, "kwargs": {...}?}``; the
    server builds (and keeps) the named environment, runs its
    ``evaluate`` cost model, and answers ``{"metrics": {...}}``.
    ``kwargs`` are environment construction arguments (workload,
    objective, …); each distinct ``(env, kwargs)`` pair gets its own
    long-lived instance, serialized by a per-instance lock because
    cost models are not promised to be thread-safe.
``GET/PUT /cache/<token>`` and ``GET /cache``
    A ``canonical_action_key -> metrics`` map shared by every client —
    the server-backed twin of the file-backed
    :class:`~repro.core.cache_store.SharedCacheStore` (and the backing
    for its drop-in variant ``ServerCacheStore``). ``<token>`` is the
    urlsafe-base64 form of the encoded key (see
    :mod:`repro.service.wire`); ``GET /cache`` reports the entry count.
    With ``cache_dir`` the map is durably file-backed (a
    ``SharedCacheStore`` the server owns); otherwise it is in-memory.

Everything is stdlib: ``http.server.ThreadingHTTPServer`` + ``json``.
Server-side failures are reported as JSON ``{"error": ...}`` bodies
with 4xx/5xx statuses — the client maps them onto
:class:`~repro.core.errors.ServiceError`.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple, Union

from repro.core.cache_store import SharedCacheStore
from repro.core.env import ArchGymEnv
from repro.core.errors import ServiceError
from repro.service.wire import (
    WIRE_FORMAT,
    canonical_dumps,
    clean_metrics,
    dump_body,
    load_body,
    token_to_key,
)

__all__ = ["EvaluationService"]

EnvFactory = Callable[..., ArchGymEnv]


class _UnknownEnvironment(ServiceError):
    """Typed marker so the handler maps unknown-env to HTTP 404 without
    sniffing exception message text."""


class EvaluationService:
    """Host registered environments behind the HTTP evaluation API.

    Parameters
    ----------
    host, port:
        Bind address. ``port=0`` (the default) picks a free port;
        read the bound address back from :attr:`url` after
        :meth:`start`.
    cache_dir:
        Optional directory for the ``/cache`` map. When given, the map
        is a file-backed :class:`SharedCacheStore` that survives server
        restarts; otherwise entries live in memory for the server's
        lifetime.

    Use as a context manager (``with EvaluationService() as svc:``) or
    call :meth:`start`/:meth:`stop` explicitly; :meth:`serve_forever`
    is the blocking entry point the ``repro serve`` CLI uses.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self._host = host
        self._requested_port = port
        self._registry: Dict[str, EnvFactory] = {}
        self._instances: Dict[Tuple[str, str], ArchGymEnv] = {}
        self._instance_locks: Dict[Tuple[str, str], threading.Lock] = {}
        self._state_lock = threading.Lock()
        # durable=True: a server-side store is a long-lived artifact
        # (the --cache-dir contract is "survives restarts"), so pay the
        # fsync per append. The lock is required either way: the file
        # store's offset bookkeeping is safe across *processes*, not
        # across this server's handler threads.
        self._cache_store: Optional[SharedCacheStore] = (
            SharedCacheStore(cache_dir, durable=True)
            if cache_dir is not None
            else None
        )
        self._mem_cache: Dict[str, Dict[str, float]] = {}
        self._cache_lock = threading.Lock()
        self.evaluations = 0
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # -- registry -----------------------------------------------------------------

    def register(self, name: str, factory: EnvFactory) -> None:
        """Expose ``factory`` (an env class or callable) as ``name``."""
        if not name:
            raise ServiceError("environment name must be non-empty")
        with self._state_lock:
            if name in self._registry:
                raise ServiceError(f"environment {name!r} already registered")
            self._registry[name] = factory

    @property
    def env_names(self) -> Tuple[str, ...]:
        with self._state_lock:
            return tuple(sorted(self._registry))

    # -- request semantics (handler delegates here) ---------------------------------

    def evaluate(
        self,
        name: str,
        action: Dict[str, Any],
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, float]:
        """Run one design point through the named environment."""
        kwargs = kwargs or {}
        instance_key = (name, canonical_dumps(kwargs))
        with self._state_lock:
            try:
                factory = self._registry[name]
            except KeyError:
                raise _UnknownEnvironment(
                    f"unknown environment {name!r}; serving "
                    f"{sorted(self._registry)}"
                ) from None
            lock = self._instance_locks.setdefault(instance_key, threading.Lock())
        # Construct and evaluate under the per-instance lock only — a
        # slow env build or simulation must never stall requests for
        # other instances (or /healthz) behind the global state lock.
        with lock:
            with self._state_lock:
                env = self._instances.get(instance_key)
            if env is None:
                env = factory(**kwargs)
                with self._state_lock:
                    self._instances[instance_key] = env
            metrics = env.evaluate(action)
        with self._state_lock:  # instance locks differ per (env, kwargs)
            self.evaluations += 1
        return clean_metrics(metrics)

    def cache_get(self, key_str: str) -> Optional[Dict[str, float]]:
        with self._cache_lock:
            if self._cache_store is not None:
                return self._cache_store.get_encoded(key_str)
            found = self._mem_cache.get(key_str)
            return dict(found) if found is not None else None

    def cache_put(self, key_str: str, metrics: Dict[str, float]) -> None:
        clean = clean_metrics(metrics)
        with self._cache_lock:
            if self._cache_store is not None:
                self._cache_store.put_encoded(key_str, clean)
            else:
                self._mem_cache[key_str] = clean

    def cache_size(self) -> int:
        with self._cache_lock:
            if self._cache_store is not None:
                return len(self._cache_store)
            return len(self._mem_cache)

    def health(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "format": WIRE_FORMAT,
            "envs": list(self.env_names),
            "evaluations": self.evaluations,
            "cache_size": self.cache_size(),
        }

    # -- lifecycle -----------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise ServiceError("service is not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def _make_httpd(self) -> ThreadingHTTPServer:
        handler = type("_BoundHandler", (_Handler,), {"service": self})
        httpd = ThreadingHTTPServer((self._host, self._requested_port), handler)
        httpd.daemon_threads = True
        return httpd

    def start(self) -> str:
        """Serve in a daemon thread; returns the bound base URL."""
        if self._httpd is not None:
            raise ServiceError("service already started")
        self._httpd = self._make_httpd()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="archgym-evaluation-service",
            daemon=True,
        )
        self._thread.start()
        return self.url

    def wait(self) -> None:
        """Block the calling thread until :meth:`stop` (or interrupt).

        The CLI's serve loop: ``start()`` to bind and learn the port,
        print the URL, then ``wait()``.
        """
        thread = self._thread
        if thread is not None:
            thread.join()

    def serve_forever(self) -> None:
        """Bind and serve on the calling thread (the CLI entry point)."""
        if self._httpd is not None:
            raise ServiceError("service already started")
        self._httpd = self._make_httpd()
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()

    def stop(self) -> None:
        """Stop accepting requests and release the socket (idempotent).

        Safe to call from any thread — including a handler thread, which
        the fault-injection tests use to kill the server mid-sweep.
        """
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10)

    def __enter__(self) -> "EvaluationService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the owning :class:`EvaluationService`."""

    #: Injected by :meth:`EvaluationService._make_httpd`.
    service: EvaluationService

    # Quiet: a sweep makes thousands of requests.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        body = dump_body(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        return load_body(self.rfile.read(length))

    def _dispatch(self, handler: Callable[[], None]) -> None:
        try:
            handler()
        except ServiceError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # cost-model crash → explicit 500
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- verbs ---------------------------------------------------------------------

    def do_GET(self) -> None:
        def handle() -> None:
            if self.path == "/healthz":
                self._reply(200, self.service.health())
            elif self.path == "/cache":
                self._reply(200, {"size": self.service.cache_size()})
            elif self.path.startswith("/cache/"):
                key_str = token_to_key(self.path[len("/cache/"):])
                found = self.service.cache_get(key_str)
                if found is None:
                    self._reply(404, {"error": "cache miss"})
                else:
                    self._reply(200, {"metrics": found})
            else:
                self._reply(404, {"error": f"no route {self.path!r}"})

        self._dispatch(handle)

    def do_POST(self) -> None:
        def handle() -> None:
            if self.path != "/evaluate":
                self._reply(404, {"error": f"no route {self.path!r}"})
                return
            request = self._read_json()
            if not isinstance(request, dict) or "env" not in request:
                raise ServiceError(f"evaluate body must name an 'env': {request!r}")
            action = request.get("action")
            if not isinstance(action, dict):
                raise ServiceError(f"evaluate body needs an 'action' object: {request!r}")
            try:
                metrics = self.service.evaluate(
                    str(request["env"]), action, request.get("kwargs")
                )
            except _UnknownEnvironment as exc:
                self._reply(404, {"error": str(exc)})
                return
            except ServiceError as exc:
                self._reply(400, {"error": str(exc)})
                return
            self._reply(200, {"metrics": metrics})

        self._dispatch(handle)

    def do_PUT(self) -> None:
        def handle() -> None:
            if not self.path.startswith("/cache/"):
                self._reply(404, {"error": f"no route {self.path!r}"})
                return
            key_str = token_to_key(self.path[len("/cache/"):])
            request = self._read_json()
            if not isinstance(request, dict) or not isinstance(
                request.get("metrics"), dict
            ):
                raise ServiceError(f"cache PUT body needs a 'metrics' object: {request!r}")
            self.service.cache_put(key_str, request["metrics"])
            self._reply(200, {"stored": True})

        self._dispatch(handle)
