"""The evaluation service: design-point evaluation over HTTP.

The paper's wall-clock argument (§6, Fig. 8) is that *simulator* cost
dominates search; :class:`EvaluationService` lets that cost live in a
separate process — or on a separate machine — behind three endpoints:

``GET /healthz``
    Liveness + inventory: wire format, registered environment names,
    how many evaluations this server has run, and the size of its
    design-point cache.
``POST /evaluate``
    Body ``{"env": name, "action": {...}, "kwargs": {...}?}``; the
    server builds (and keeps) the named environment, runs its
    ``evaluate`` cost model, and answers ``{"metrics": {...}}``.
    ``kwargs`` are environment construction arguments (workload,
    objective, …); each distinct ``(env, kwargs)`` pair gets its own
    long-lived instance, serialized by a per-instance lock because
    cost models are not promised to be thread-safe.
``POST /evaluate_batch``
    Body ``{"env": name, "actions": [{...}, ...], "kwargs": {...}?,
    "memoize": bool?}``; answers ``{"metrics": [...], "memo_hits": n}``
    with one metric object per action, in request order. The whole
    batch runs under **one** acquisition of the instance lock, so N
    design points pay one round trip and one lock handoff instead of
    N. With ``memoize`` (the default) every fresh evaluation is also
    written into the ``/cache`` store — under exactly the key an
    explicit ``PUT /cache/<token>`` of that design point would use —
    and repeat points are answered from it without touching the cost
    model (counted in ``memo_hits`` and on ``/healthz``). Because the
    ``/cache`` map is keyed on the design point alone, memoization is
    auto-disabled on servers hosting more than one environment.
``GET/PUT /cache/<token>`` and ``GET /cache``
    A ``canonical_action_key -> metrics`` map shared by every client —
    the server-backed twin of the file-backed
    :class:`~repro.core.cache_store.SharedCacheStore` (and the backing
    for its drop-in variant ``ServerCacheStore``). ``<token>`` is the
    urlsafe-base64 form of the encoded key (see
    :mod:`repro.service.wire`); ``GET /cache`` reports the entry
    count, and ``GET /cache?offset=N&limit=M`` pages through the whole
    map in sorted-key order (``{"size": total, "entries": [[key,
    metrics], ...]}``) — the listing the
    :class:`~repro.sweeps.hostpool.HostPool` anti-entropy backfill
    replays into a revived replica. With ``cache_dir`` the map is
    durably file-backed (a ``SharedCacheStore`` the server owns);
    otherwise it is in-memory.

Everything is stdlib: ``http.server.ThreadingHTTPServer`` + ``json``.
Server-side failures are reported as JSON ``{"error": ...}`` bodies
with 4xx/5xx statuses — the client maps them onto
:class:`~repro.core.errors.ServiceError`.
"""

from __future__ import annotations

import socket
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Set, Tuple, Union
from urllib.parse import urlsplit

from repro.core.cache_store import SharedCacheStore, encode_key
from repro.core.env import ArchGymEnv, canonical_action_key
from repro.core.errors import ServiceError
from repro.service.wire import (
    DEFAULT_CACHE_PAGE,
    WIRE_FORMAT,
    canonical_dumps,
    clean_metrics,
    dump_body,
    load_body,
    parse_batch_request,
    parse_cache_query,
    token_to_key,
)

__all__ = ["EvaluationService"]

EnvFactory = Callable[..., ArchGymEnv]


class _UnknownEnvironment(ServiceError):
    """Typed marker so the handler maps unknown-env to HTTP 404 without
    sniffing exception message text."""


class EvaluationService:
    """Host registered environments behind the HTTP evaluation API.

    Parameters
    ----------
    host, port:
        Bind address. ``port=0`` (the default) picks a free port;
        read the bound address back from :attr:`url` after
        :meth:`start`.
    cache_dir:
        Optional directory for the ``/cache`` map. When given, the map
        is a file-backed :class:`SharedCacheStore` that survives server
        restarts; otherwise entries live in memory for the server's
        lifetime.

    Use as a context manager (``with EvaluationService() as svc:``) or
    call :meth:`start`/:meth:`stop` explicitly; :meth:`serve_forever`
    is the blocking entry point the ``repro serve`` CLI uses.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self._host = host
        self._requested_port = port
        self._registry: Dict[str, EnvFactory] = {}
        self._instances: Dict[Tuple[str, str], ArchGymEnv] = {}
        self._instance_locks: Dict[Tuple[str, str], threading.Lock] = {}
        self._state_lock = threading.Lock()
        # durable=True: a server-side store is a long-lived artifact
        # (the --cache-dir contract is "survives restarts"), so pay the
        # fsync per append. The lock is required either way: the file
        # store's offset bookkeeping is safe across *processes*, not
        # across this server's handler threads.
        self._cache_store: Optional[SharedCacheStore] = (
            SharedCacheStore(cache_dir, durable=True)
            if cache_dir is not None
            else None
        )
        self._mem_cache: Dict[str, Dict[str, float]] = {}
        self._cache_lock = threading.Lock()
        self.evaluations = 0
        #: ``/evaluate_batch`` requests served.
        self.batch_requests = 0
        #: Batch design points answered from the memo instead of the
        #: cost model.
        self.memo_hits = 0
        #: Cumulative seconds the cost models spent simulating (memo
        #: hits cost ~0 and are excluded) — with ``evaluations`` this
        #: gives observers the host's service *rate*, which is what
        #: :class:`~repro.sweeps.hostpool.HostPool` auto-weights read.
        self.busy_s = 0.0
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        # Live keep-alive sockets: HTTP/1.1 handler threads block on
        # the next request, so stop() must close these to actually die.
        self._connections: Set[socket.socket] = set()
        self._conn_lock = threading.Lock()
        #: Once set, handlers drop every request unanswered — a
        #: stopping server must not keep serving a fast keep-alive
        #: client racing the listener teardown.
        self._stopping = False

    # -- registry -----------------------------------------------------------------

    def register(self, name: str, factory: EnvFactory) -> None:
        """Expose ``factory`` (an env class or callable) as ``name``."""
        if not name:
            raise ServiceError("environment name must be non-empty")
        with self._state_lock:
            if name in self._registry:
                raise ServiceError(f"environment {name!r} already registered")
            self._registry[name] = factory

    @property
    def env_names(self) -> Tuple[str, ...]:
        with self._state_lock:
            return tuple(sorted(self._registry))

    # -- request semantics (handler delegates here) ---------------------------------

    def _instance_lock(
        self, name: str, kwargs: Dict[str, Any]
    ) -> Tuple[Tuple[str, str], Callable[..., ArchGymEnv], threading.Lock]:
        """Resolve the factory and per-instance lock for (env, kwargs)."""
        instance_key = (name, canonical_dumps(kwargs))
        with self._state_lock:
            try:
                factory = self._registry[name]
            except KeyError:
                raise _UnknownEnvironment(
                    f"unknown environment {name!r}; serving "
                    f"{sorted(self._registry)}"
                ) from None
            lock = self._instance_locks.setdefault(instance_key, threading.Lock())
        return instance_key, factory, lock

    def _instance(
        self,
        instance_key: Tuple[str, str],
        factory: Callable[..., ArchGymEnv],
        kwargs: Dict[str, Any],
    ) -> ArchGymEnv:
        """Get-or-build the long-lived env (instance lock must be held)."""
        with self._state_lock:
            env = self._instances.get(instance_key)
        if env is None:
            env = factory(**kwargs)
            with self._state_lock:
                self._instances[instance_key] = env
        return env

    def evaluate(
        self,
        name: str,
        action: Dict[str, Any],
        kwargs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, float]:
        """Run one design point through the named environment."""
        kwargs = kwargs or {}
        instance_key, factory, lock = self._instance_lock(name, kwargs)
        # Construct and evaluate under the per-instance lock only — a
        # slow env build or simulation must never stall requests for
        # other instances (or /healthz) behind the global state lock.
        with lock:
            env = self._instance(instance_key, factory, kwargs)
            t0 = time.perf_counter()
            metrics = env.evaluate(action)
            busy = time.perf_counter() - t0
        with self._state_lock:  # instance locks differ per (env, kwargs)
            self.evaluations += 1
            self.busy_s += busy
        return clean_metrics(metrics)

    def evaluate_batch(
        self,
        name: str,
        actions: List[Dict[str, Any]],
        kwargs: Optional[Dict[str, Any]] = None,
        memoize: bool = True,
    ) -> Tuple[List[Dict[str, float]], int]:
        """Run many design points under one instance-lock acquisition.

        Returns ``(metrics_list, memo_hits)`` with one entry per action
        in request order. With ``memoize`` every fresh evaluation also
        lands in the ``/cache`` store — keyed exactly as an explicit
        ``PUT /cache`` of the same design point (the urlsafe token of
        ``encode_key(canonical_action_key(action))``), so batch traffic
        and explicit cache writes are indistinguishable to readers —
        and repeat design points are answered from that store without
        touching the cost model.

        The memo shares the server-wide ``/cache`` map, which is keyed
        on the design point alone (the
        :class:`~repro.core.cache_store.SharedCacheStore` contract), so
        memoization requires one server to serve one deterministic
        environment configuration. The part of that assumption the
        server can verify, it enforces: a server with **more than one
        registered environment** auto-disables memoization (two envs
        sharing an action shape would silently serve each other's
        metrics); serving one env under two different ``kwargs``
        configurations is the caller's contract to keep — the same one
        ``--shared-cache`` / ``ServerCacheStore`` has always carried.
        Pass ``memoize=False`` per request to opt out.
        """
        kwargs = kwargs or {}
        instance_key, factory, lock = self._instance_lock(name, kwargs)
        with self._state_lock:
            memoize = memoize and len(self._registry) == 1
        results: List[Optional[Dict[str, float]]] = [None] * len(actions)
        pending: List[Tuple[int, Dict[str, Any], str]] = []
        memo_hits = 0
        for i, action in enumerate(actions):
            key_str = encode_key(canonical_action_key(action))
            if memoize:
                found = self.cache_get(key_str)
                if found is not None:
                    results[i] = found
                    memo_hits += 1
                    continue
            pending.append((i, dict(action), key_str))
        evaluated = 0
        busy = 0.0
        if pending:
            with lock:
                env = self._instance(instance_key, factory, kwargs)
                fresh: Dict[str, Dict[str, float]] = {}
                for i, action, key_str in pending:
                    metrics = fresh.get(key_str) if memoize else None
                    if metrics is None:
                        t0 = time.perf_counter()
                        raw = env.evaluate(action)
                        busy += time.perf_counter() - t0
                        metrics = clean_metrics(raw)
                        evaluated += 1
                        if memoize:
                            self.cache_put(key_str, metrics)
                            fresh[key_str] = metrics
                    else:  # same design point twice in one batch
                        memo_hits += 1
                    results[i] = metrics
        with self._state_lock:
            self.evaluations += evaluated
            self.batch_requests += 1
            self.memo_hits += memo_hits
            self.busy_s += busy
        # results is fully populated: every index either hit the memo
        # or was in pending
        return [r for r in results if r is not None], memo_hits

    def cache_get(self, key_str: str) -> Optional[Dict[str, float]]:
        with self._cache_lock:
            if self._cache_store is not None:
                return self._cache_store.get_encoded(key_str)
            found = self._mem_cache.get(key_str)
            return dict(found) if found is not None else None

    def cache_put(self, key_str: str, metrics: Dict[str, float]) -> None:
        clean = clean_metrics(metrics)
        with self._cache_lock:
            if self._cache_store is not None:
                self._cache_store.put_encoded(key_str, clean)
            else:
                self._mem_cache[key_str] = clean

    def cache_size(self) -> int:
        with self._cache_lock:
            if self._cache_store is not None:
                return len(self._cache_store)
            return len(self._mem_cache)

    def cache_list(
        self, offset: int = 0, limit: int = DEFAULT_CACHE_PAGE
    ) -> Tuple[int, List[Tuple[str, Dict[str, float]]]]:
        """One page of the ``/cache`` map in sorted-key order.

        Returns ``(total_entries, [(key_str, metrics), ...])``. The
        ordering is deterministic, so a reader advancing ``offset`` by
        each page's length walks every entry that existed when it
        started — the map is append-only, so entries never move
        backwards past a cursor. This is the listing the anti-entropy
        backfill pages through to rebuild a revived replica.
        """
        with self._cache_lock:
            if self._cache_store is not None:
                keys = self._cache_store.keys_encoded()
                page = [
                    (k, self._cache_store.get_encoded(k))
                    for k in keys[offset:offset + limit]
                ]
            else:
                keys = sorted(self._mem_cache)
                page = [
                    (k, dict(self._mem_cache[k]))
                    for k in keys[offset:offset + limit]
                ]
        return len(keys), [(k, m) for k, m in page if m is not None]

    def health(self) -> Dict[str, Any]:
        # env_names and cache_size() take their own (non-reentrant)
        # locks — resolve them before the counter snapshot. The four
        # counters are mutated together under _state_lock, so reading
        # them unlocked could tear (e.g. evaluations from before a
        # batch landed, busy_s from after) and feed auto-weights a
        # rate computed from mismatched deltas.
        envs = list(self.env_names)
        cache_size = self.cache_size()
        with self._state_lock:
            evaluations = self.evaluations
            batch_requests = self.batch_requests
            memo_hits = self.memo_hits
            busy_s = self.busy_s
        return {
            "status": "ok",
            "format": WIRE_FORMAT,
            "envs": envs,
            "evaluations": evaluations,
            "batch_requests": batch_requests,
            "memo_hits": memo_hits,
            "busy_s": busy_s,
            "cache_size": cache_size,
        }

    # -- connection tracking -------------------------------------------------------

    def _track_connection(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._connections.add(conn)

    def _untrack_connection(self, conn: socket.socket) -> None:
        with self._conn_lock:
            self._connections.discard(conn)

    def _close_connections(self) -> None:
        """Shut down every live keep-alive socket so blocked handler
        threads see EOF and exit (stop() must mean *stopped*).

        ``shutdown`` only, not ``close``: the owning handler thread may
        be mid-write, and a shut-down socket fails its I/O with
        EOF/EPIPE (benign, filtered) while the fd stays valid until the
        handler's own ``finish`` releases it.
        """
        with self._conn_lock:
            conns = list(self._connections)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    # -- lifecycle -----------------------------------------------------------------

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise ServiceError("service is not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def _make_httpd(self) -> ThreadingHTTPServer:
        handler = type("_BoundHandler", (_Handler,), {"service": self})
        httpd = _QuietServer((self._host, self._requested_port), handler)
        httpd.daemon_threads = True
        return httpd

    def start(self) -> str:
        """Serve in a daemon thread; returns the bound base URL."""
        if self._httpd is not None:
            raise ServiceError("service already started")
        self._stopping = False
        self._httpd = self._make_httpd()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="archgym-evaluation-service",
            daemon=True,
        )
        self._thread.start()
        return self.url

    def wait(self) -> None:
        """Block the calling thread until :meth:`stop` (or interrupt).

        The CLI's serve loop: ``start()`` to bind and learn the port,
        print the URL, then ``wait()``.
        """
        thread = self._thread
        if thread is not None:
            thread.join()

    def serve_forever(self) -> None:
        """Bind and serve on the calling thread (the CLI entry point)."""
        if self._httpd is not None:
            raise ServiceError("service already started")
        self._stopping = False
        self._httpd = self._make_httpd()
        try:
            self._httpd.serve_forever()
        finally:
            self._httpd.server_close()
            self._close_connections()

    def stop(self) -> None:
        """Stop accepting requests and release the socket (idempotent).

        Safe to call from any thread — including a handler thread, which
        the fault-injection tests use to kill the server mid-sweep.
        """
        # Order matters against a fast keep-alive client: first refuse
        # further requests (handlers drop them unanswered) and kill the
        # live sockets, *then* tear down the listener — otherwise the
        # client could race through many more requests during the
        # shutdown() poll window. A second sweep catches connections
        # the listener accepted while it was going down.
        self._stopping = True
        self._close_connections()
        httpd, self._httpd = self._httpd, None
        thread, self._thread = self._thread, None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        self._close_connections()
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10)

    def __enter__(self) -> "EvaluationService":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


class _QuietServer(ThreadingHTTPServer):
    """ThreadingHTTPServer that does not traceback-spam when a client
    (or :meth:`EvaluationService.stop`) drops a keep-alive socket —
    disconnects are business as usual for an evaluation host. Every
    other handler exception still reports normally."""

    def handle_error(self, request: Any, client_address: Any) -> None:
        import sys

        exc = sys.exc_info()[1]
        if isinstance(exc, (ConnectionError, TimeoutError)):
            return
        super().handle_error(request, client_address)


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the owning :class:`EvaluationService`."""

    #: Injected by :meth:`EvaluationService._make_httpd`.
    service: EvaluationService

    #: Keep-alive: one TCP connection carries a whole sweep's requests
    #: (every reply states Content-Length, which HTTP/1.1 requires).
    protocol_version = "HTTP/1.1"

    #: The handler writes status/headers and body as separate segments;
    #: with Nagle on, the body waits out the client's delayed ACK
    #: (~40ms per request). TCP_NODELAY makes per-point latency the
    #: handler cost, not a timer.
    disable_nagle_algorithm = True

    #: Socket timeout for this connection's reads/writes: a client that
    #: stalls mid-body (or idles a keep-alive socket) releases the
    #: handler thread instead of pinning it forever. Generously above
    #: any honest request; an idle client just reconnects — its next
    #: request rides the free stale-socket re-send.
    timeout = 120.0

    #: Largest unread request body an early error reply will drain to
    #: keep the keep-alive socket in sync; anything bigger closes the
    #: connection instead (no legitimate request body comes close).
    _drain_cap = 1 << 20

    # Quiet: a sweep makes thousands of requests.
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass

    def setup(self) -> None:
        super().setup()
        self.service._track_connection(self.connection)

    def finish(self) -> None:
        try:
            super().finish()
        finally:
            self.service._untrack_connection(self.connection)

    def _drain_request_body(self) -> None:
        """Consume any unread request body before replying.

        Keep-alive discipline: an early error reply (unknown route,
        malformed token) that leaves body bytes in the socket would
        desync the connection — the leftovers would parse as the next
        request line and poison every later request on it. A body too
        large to drain cheaply (an abusive Content-Length) is not read
        at all; the connection is closed after the reply instead, which
        re-syncs just as well.
        """
        if self._body_consumed:
            return
        self._body_consumed = True
        length = int(self.headers.get("Content-Length") or 0)
        if 0 < length <= self._drain_cap:
            self.rfile.read(length)
        elif length > self._drain_cap:
            self.close_connection = True

    def _reply(self, status: int, payload: Dict[str, Any]) -> None:
        self._drain_request_body()
        body = dump_body(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        self._body_consumed = True
        return load_body(self.rfile.read(length))

    def _dispatch(self, handler: Callable[[], None]) -> None:
        self._body_consumed = False  # per-request; _reply drains leftovers
        if self.service._stopping:
            # A dying server answers nothing — dropping the request is
            # what makes stop() prompt even against a keep-alive client
            # racing the listener teardown. The client sees a transport
            # failure, which its policy retries/fails over honestly.
            self.close_connection = True
            return
        try:
            handler()
        except ServiceError as exc:
            self._reply(400, {"error": str(exc)})
        except Exception as exc:  # cost-model crash → explicit 500
            self._reply(500, {"error": f"{type(exc).__name__}: {exc}"})

    # -- verbs ---------------------------------------------------------------------

    def do_GET(self) -> None:
        def handle() -> None:
            split = urlsplit(self.path)
            if split.path == "/healthz":
                self._reply(200, self.service.health())
            elif split.path == "/cache":
                if split.query:
                    offset, limit = parse_cache_query(split.query)
                    total, page = self.service.cache_list(offset, limit)
                    self._reply(
                        200,
                        {
                            "size": total,
                            "entries": [[k, m] for k, m in page],
                        },
                    )
                else:
                    self._reply(200, {"size": self.service.cache_size()})
            elif split.path.startswith("/cache/"):
                key_str = token_to_key(split.path[len("/cache/"):])
                found = self.service.cache_get(key_str)
                if found is None:
                    self._reply(404, {"error": "cache miss"})
                else:
                    self._reply(200, {"metrics": found})
            else:
                self._reply(404, {"error": f"no route {self.path!r}"})

        self._dispatch(handle)

    def do_POST(self) -> None:
        def handle() -> None:
            if self.path == "/evaluate":
                self._handle_evaluate()
            elif self.path == "/evaluate_batch":
                self._handle_evaluate_batch()
            else:
                self._reply(404, {"error": f"no route {self.path!r}"})

        self._dispatch(handle)

    def _handle_evaluate(self) -> None:
        request = self._read_json()
        if not isinstance(request, dict) or "env" not in request:
            raise ServiceError(f"evaluate body must name an 'env': {request!r}")
        action = request.get("action")
        if not isinstance(action, dict):
            raise ServiceError(f"evaluate body needs an 'action' object: {request!r}")
        try:
            metrics = self.service.evaluate(
                str(request["env"]), action, request.get("kwargs")
            )
        except _UnknownEnvironment as exc:
            self._reply(404, {"error": str(exc)})
            return
        except ServiceError as exc:
            self._reply(400, {"error": str(exc)})
            return
        self._reply(200, {"metrics": metrics})

    def _handle_evaluate_batch(self) -> None:
        name, actions, kwargs, memoize = parse_batch_request(self._read_json())
        try:
            metrics_list, memo_hits = self.service.evaluate_batch(
                name, actions, kwargs, memoize=memoize
            )
        except _UnknownEnvironment as exc:
            self._reply(404, {"error": str(exc)})
            return
        except ServiceError as exc:
            self._reply(400, {"error": str(exc)})
            return
        self._reply(200, {"metrics": metrics_list, "memo_hits": memo_hits})

    def do_PUT(self) -> None:
        def handle() -> None:
            if not self.path.startswith("/cache/"):
                self._reply(404, {"error": f"no route {self.path!r}"})
                return
            key_str = token_to_key(self.path[len("/cache/"):])
            request = self._read_json()
            if not isinstance(request, dict) or not isinstance(
                request.get("metrics"), dict
            ):
                raise ServiceError(f"cache PUT body needs a 'metrics' object: {request!r}")
            self.service.cache_put(key_str, request["metrics"])
            self._reply(200, {"stored": True})

        self._dispatch(handle)
