"""Asyncio-native HTTP client for the evaluation service.

:class:`AsyncServiceClient` is the coroutine sibling of
:class:`~repro.service.client.ServiceClient`: the same REST surface,
the same retry/timeout/backoff policy, the same typed errors — but
every request rides :func:`asyncio.open_connection` instead of a
blocking ``http.client`` socket, so one event loop (and therefore one
OS thread) can hold hundreds of requests in flight at once. That is
the scaling step the paper's §6 regime demands: a pool of hundreds of
simulator hosts driven by thread-per-host workers burns an OS thread
(and GIL churn) apiece, while the async transport drives the whole
fleet from a single runner thread.

The wire protocol is hand-rolled HTTP/1.1 — deliberately: the server
(:mod:`repro.service.server`) always answers with a ``Content-Length``
header and keep-alive, so request/response framing is a status line,
a header block, and ``readexactly(content_length)``. No stdlib HTTP
stack is missing; we already speak this dialect on the sync side.

Connection pool
---------------
Each client keeps a bounded pool of persistent connections to its one
host: at most ``max_connections`` sockets are ever checked out
concurrently (an :class:`asyncio.Semaphore`, created lazily inside the
running loop for 3.9 compatibility), and idle connections are parked
for reuse. A *stale* socket — the server closed an idle keep-alive
connection between requests — is re-sent exactly once without
consuming a retry, mirroring the sync client: the bytes never reached
a live peer. ``requests_sent`` / ``connections_opened`` count round
trips and sockets exactly like the sync client's counters (no lock:
all mutation happens on the owning event loop).

Retry policy
------------
Identical to the sync client, coroutine-shaped: transport failures
(connection refused/reset, timeout, torn body) retry up to ``retries``
times with exponential backoff capped at ``backoff_cap_s`` total
sleep (``await asyncio.sleep``), exhaustion raises
:class:`~repro.core.errors.ServiceTransportError` with the same
message shape, and server-produced 4xx/5xx bodies are never retried.
Response bodies are validated through the same
:mod:`repro.service.wire` parsers the sync client uses, so the two
transports cannot drift on schema — which is half of what keeps async
dispatch byte-identical to threaded dispatch.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.core.errors import ServiceError, ServiceTransportError
from repro.service.wire import (
    dump_body,
    jsonify,
    key_to_token,
    parse_batch_response,
    parse_cache_listing,
    parse_metrics_response,
)

__all__ = ["AsyncServiceClient"]


class _TransportFailure(Exception):
    """Transport-level failure below the retry policy: malformed
    framing, a connection that died mid-response — retryable, like an
    ``OSError`` on the sync side."""


class _StaleSocket(_TransportFailure):
    """A reused keep-alive connection was closed by the server between
    requests; nothing reached a live peer, so one transparent re-send
    does not consume a retry (the async twin of the sync client's
    ``_STALE_SOCKET_ERRORS``)."""


#: Exceptions one attempt may raise that the retry loop absorbs.
#: ``TimeoutError`` covers 3.11+ (where ``asyncio.TimeoutError`` is the
#: builtin, an ``OSError`` sibling); ``asyncio.TimeoutError`` covers
#: 3.9/3.10 where it is a distinct class. ``EOFError`` is
#: ``asyncio.IncompleteReadError``'s base (torn body mid-read).
_RETRYABLE = (
    OSError,
    EOFError,
    TimeoutError,
    asyncio.TimeoutError,
    _TransportFailure,
)


class _Conn:
    """One open connection: a reader/writer pair."""

    __slots__ = ("reader", "writer")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer


class AsyncServiceClient:
    """Talk to one evaluation service from an event loop.

    Parameters mirror :class:`~repro.service.client.ServiceClient`
    (``base_url``, ``timeout_s``, ``retries``, ``backoff_s``,
    ``backoff_cap_s``) plus:

    max_connections:
        Ceiling on concurrently checked-out sockets to this host. The
        pool parks idle connections for keep-alive reuse; a caller
        needing more than ``max_connections`` simultaneous requests
        waits on the pool semaphore instead of opening more sockets.

    Single-loop by contract: all coroutines must run on one event
    loop (the pool's runner loop). Counters are plain ints for the
    same reason — no cross-thread access, no lock.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 60.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
        max_connections: int = 8,
    ) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ServiceError(
                f"service url must start with http:// or https://, got {base_url!r}"
            )
        if timeout_s <= 0:
            raise ServiceError(f"timeout_s must be > 0, got {timeout_s}")
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        if backoff_cap_s < 0:
            raise ServiceError(f"backoff_cap_s must be >= 0, got {backoff_cap_s}")
        if max_connections < 1:
            raise ServiceError(
                f"max_connections must be >= 1, got {max_connections}"
            )
        split = urlsplit(base_url)
        if not split.netloc:
            raise ServiceError(f"service url has no host: {base_url!r}")
        self._scheme = split.scheme
        self._netloc = split.netloc
        self._host = split.hostname or ""
        self._port = split.port or (443 if split.scheme == "https" else 80)
        self._path_prefix = split.path.rstrip("/")
        self.base_url = f"{split.scheme}://{split.netloc}{self._path_prefix}"
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        self.max_connections = max_connections
        #: Round trips attempted (including retries) — same meaning as
        #: the sync client's counter.
        self.requests_sent = 0
        #: Sockets opened; stays low while keep-alive reuse holds.
        self.connections_opened = 0
        self._idle: "deque[_Conn]" = deque()
        # Created lazily inside the running loop: on 3.9 an
        # asyncio.Semaphore binds its event loop at construction time.
        self._sem: Optional[asyncio.Semaphore] = None

    # -- connection pool ----------------------------------------------------------

    def _bound(self) -> asyncio.Semaphore:
        if self._sem is None:
            self._sem = asyncio.Semaphore(self.max_connections)
        return self._sem

    async def _get_conn(self) -> Tuple[_Conn, bool]:
        """An idle pooled connection (reused) or a fresh one."""
        while self._idle:
            conn = self._idle.popleft()
            if not conn.writer.is_closing():
                return conn, True
            self._discard(conn)
        kwargs: Dict[str, Any] = {}
        if self._scheme == "https":
            kwargs["ssl"] = True
        reader, writer = await asyncio.open_connection(
            self._host, self._port, **kwargs
        )
        self.connections_opened += 1
        return _Conn(reader, writer), False

    def _discard(self, conn: _Conn) -> None:
        try:
            conn.writer.close()
        except OSError:
            pass

    async def close(self) -> None:
        """Close every idle pooled connection. Resource hygiene only —
        the next request transparently opens a fresh socket."""
        while self._idle:
            self._discard(self._idle.popleft())

    # -- transport ----------------------------------------------------------------

    async def _roundtrip(
        self, conn: _Conn, method: str, path: str, body: Optional[bytes],
        reused: bool,
    ) -> Tuple[int, bytes, bool]:
        """One request/response; returns (status, body, will_close)."""
        self.requests_sent += 1
        payload = body or b""
        head = (
            f"{method} {self._path_prefix + path} HTTP/1.1\r\n"
            f"Host: {self._netloc}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "\r\n"
        ).encode("ascii")
        conn.writer.write(head + payload)
        await conn.writer.drain()
        status_line = await conn.reader.readline()
        if not status_line:
            if reused:
                # The server closed the idle socket between requests.
                raise _StaleSocket("connection closed before the status line")
            raise _TransportFailure("no status line from a fresh connection")
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise _TransportFailure(f"malformed status line {status_line!r}")
        status = int(parts[1])
        http10 = parts[0].upper().startswith("HTTP/1.0")
        headers: Dict[str, str] = {}
        while True:
            line = await conn.reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            if not line:
                raise _TransportFailure("connection closed mid-headers")
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length")
        if length_text is None or not length_text.isdigit():
            # The server always frames replies with Content-Length
            # (HTTP/1.1 keep-alive requires it); anything else is a
            # framing failure we cannot safely read past.
            raise _TransportFailure(
                f"response has no usable Content-Length: {length_text!r}"
            )
        raw = await conn.reader.readexactly(int(length_text))
        will_close = http10 or headers.get("connection", "").lower() == "close"
        return status, raw, will_close

    async def _send(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, bytes]:
        """One attempt, with the free stale-socket re-send."""
        async with self._bound():
            conn, reused = await self._get_conn()
            try:
                status, raw, will_close = await self._roundtrip(
                    conn, method, path, body, reused
                )
            except _StaleSocket:
                self._discard(conn)
                # _StaleSocket is only raised on a reused connection:
                # re-send once on a fresh socket, not as a retry.
                conn, _ = await self._get_conn()
                try:
                    status, raw, will_close = await self._roundtrip(
                        conn, method, path, body, False
                    )
                except BaseException:
                    self._discard(conn)
                    raise
            except BaseException:
                # Timeout cancellation, ConnectionReset, torn read —
                # the socket's state is unknown; never park it.
                self._discard(conn)
                raise
            if will_close:
                self._discard(conn)
            else:
                self._idle.append(conn)
            return status, raw

    async def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """One API call under the retry policy; returns (status, body).

        Mirrors the sync client's loop line for line: capped
        exponential backoff, transport failures and torn success
        bodies retried, server-produced non-JSON error bodies not.
        """
        body = dump_body(payload) if payload is not None else None
        attempts = self.retries + 1
        slept_total = 0.0
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                delay = min(
                    self.backoff_s * (2 ** (attempt - 1)),
                    self.backoff_cap_s - slept_total,
                )
                if delay > 0:
                    await asyncio.sleep(delay)
                    slept_total += delay
            try:
                status, raw = await asyncio.wait_for(
                    self._send(method, path, body), self.timeout_s
                )
            except _RETRYABLE as exc:
                last_error = exc
                continue
            try:
                parsed = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError) as exc:
                if status >= 400:
                    return status, {
                        "error": raw[:200].decode("utf-8", errors="replace")
                    }
                last_error = exc
                continue
            if not isinstance(parsed, dict):
                if status >= 400:
                    return status, {"error": str(parsed)}
                last_error = ValueError(f"expected a JSON object, got {parsed!r}")
                continue
            return status, parsed
        raise ServiceTransportError(
            f"{method} {self.base_url + path} failed after {attempts} attempt(s) "
            f"(timeout {self.timeout_s}s/attempt): {last_error!r}"
        )

    async def _checked(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, parsed = await self._request(method, path, payload)
        if status >= 400:
            raise ServiceError(
                f"{method} {self.base_url + path} -> HTTP {status}: "
                f"{parsed.get('error', parsed)}"
            )
        return parsed

    # -- API ----------------------------------------------------------------------

    async def healthz(self) -> Dict[str, Any]:
        """The server's liveness/inventory document."""
        return await self._checked("GET", "/healthz")

    async def evaluate(
        self,
        env: str,
        action: Dict[str, Any],
        env_kwargs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, float]:
        """Evaluate one design point on the server's ``env``."""
        request: Dict[str, Any] = {"env": env, "action": jsonify(action)}
        if env_kwargs:
            request["kwargs"] = jsonify(env_kwargs)
        parsed = await self._checked("POST", "/evaluate", request)
        return parse_metrics_response(parsed, f"evaluate response for env {env!r}")

    async def evaluate_batch(
        self,
        env: str,
        actions: Sequence[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]] = None,
        memoize: bool = True,
    ) -> List[Dict[str, float]]:
        """Evaluate many design points in one round trip (request
        order in, request order out — the same contract as the sync
        client, down to the parser that validates the reply)."""
        if not actions:
            raise ServiceError("evaluate_batch needs at least one action")
        request: Dict[str, Any] = {
            "env": env,
            "actions": [jsonify(a) for a in actions],
        }
        if env_kwargs:
            request["kwargs"] = jsonify(env_kwargs)
        if not memoize:
            request["memoize"] = False
        parsed = await self._checked("POST", "/evaluate_batch", request)
        return parse_batch_response(parsed, env, len(actions))

    async def cache_get(self, key_str: str) -> Optional[Dict[str, float]]:
        """Server-cache lookup by encoded key; ``None`` on a miss."""
        status, parsed = await self._request(
            "GET", f"/cache/{key_to_token(key_str)}"
        )
        if status == 404:
            return None
        if status >= 400:
            raise ServiceError(
                f"cache GET -> HTTP {status}: {parsed.get('error', parsed)}"
            )
        return parse_metrics_response(parsed, "cache response")

    async def cache_put(self, key_str: str, metrics: Dict[str, float]) -> None:
        """Store one entry in the server cache."""
        await self._checked(
            "PUT", f"/cache/{key_to_token(key_str)}", {"metrics": jsonify(metrics)}
        )

    async def cache_size(self) -> int:
        """Distinct keys currently held by the server cache."""
        parsed = await self._checked("GET", "/cache")
        return int(parsed.get("size", 0))

    async def cache_list(
        self, offset: int = 0, limit: int = 500
    ) -> Tuple[List[Tuple[str, Dict[str, float]]], int]:
        """One page of the server cache in sorted-key order — the same
        ``(entries, total)`` pagination contract as the sync client
        (what the pool's async anti-entropy backfill walks)."""
        parsed = await self._checked(
            "GET", f"/cache?offset={int(offset)}&limit={int(limit)}"
        )
        return parse_cache_listing(parsed)

    def __repr__(self) -> str:
        return (
            f"AsyncServiceClient(base_url={self.base_url!r}, "
            f"timeout_s={self.timeout_s}, retries={self.retries})"
        )
