"""Client-side evaluation backends: point ``ArchGymEnv.evaluate`` at a
remote service (or a pool of them).

An :class:`~repro.core.env.ArchGymEnv` dispatches every cost-model call
through its attached *backend* (``None`` means the env's own
``evaluate``). :class:`RemoteBackend` is the over-the-wire
implementation: the action crosses HTTP to an
:class:`~repro.service.server.EvaluationService` hosting the same
environment, and the metrics come back bit-exact (floats survive the
JSON round trip). The agent above the env is untouched — reward
computation, episode accounting, caching tiers, and dataset logging all
stay client-side, so a remote sweep is bit-identical to an in-process
one except for the ``remote_evals`` counter and timing.

The transport underneath is pluggable: a URL builds a
:class:`ServiceClient` (persistent keep-alive connection); a list of
URLs builds a :class:`~repro.sweeps.hostpool.HostPool` (least-load
scheduling with failover); an existing client or pool is used as-is.
With ``batch=True`` every dispatch rides ``POST /evaluate_batch``
instead of ``POST /evaluate``, which turns on the server-side
memoization that feeds the service's ``/cache`` store.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Union

from repro.core.env import ArchGymEnv
from repro.service.client import ServiceClient

__all__ = ["RemoteBackend", "RemoteEnv"]


class RemoteBackend:
    """Evaluate design points on a remote evaluation service.

    Parameters
    ----------
    service:
        A base URL (``"http://host:port"``), a sequence of base URLs
        (a multi-host pool with least-load scheduling and failover),
        or an existing :class:`ServiceClient` /
        :class:`~repro.sweeps.hostpool.HostPool` (whose retry/timeout
        policy is reused).
    env_kwargs:
        Environment construction arguments (workload, objective, …)
        forwarded with every request, so the server instantiates the
        same environment the client built locally.
    batch:
        Route dispatches through ``POST /evaluate_batch`` (server-side
        memoization feeding the service ``/cache`` store) instead of
        per-point ``POST /evaluate``.
    weights:
        Per-host capacity weights aligned with ``service`` when it is
        a sequence of URLs — forwarded to the
        :class:`~repro.sweeps.hostpool.HostPool` so least-load
        dispatch and generation scatter divide work accordingly.
    auto_weights:
        Let a multi-host pool self-tune those weights from each host's
        observed service rate (``/healthz`` counters, EWMA-smoothed) —
        see :class:`~repro.sweeps.hostpool.HostPool`. Ignored for a
        single URL, where there is nothing to balance.
    async_dispatch:
        Run a multi-host pool's scatter/stream fan-out as coroutine
        tasks on one event loop instead of worker threads — see
        :class:`~repro.sweeps.hostpool.HostPool`. A pure thread-count/
        wall-clock knob (results byte-identical either way); ignored
        for a single URL, where there is no fan-out.
    client_kwargs:
        ``timeout_s`` / ``retries`` / ``backoff_s`` when ``service`` is
        a URL or a sequence of URLs.
    """

    def __init__(
        self,
        service: Union[str, Sequence[str], ServiceClient, Any],
        env_kwargs: Optional[Dict[str, Any]] = None,
        batch: bool = False,
        weights: Optional[Sequence[float]] = None,
        auto_weights: bool = False,
        async_dispatch: bool = False,
        **client_kwargs: Any,
    ) -> None:
        if isinstance(service, str):
            self.client: Any = ServiceClient(service, **client_kwargs)
        elif isinstance(service, (list, tuple)):
            urls = list(service)
            if len(urls) == 1:
                self.client = ServiceClient(urls[0], **client_kwargs)
            else:
                # Imported lazily: repro.service must stay importable
                # without pulling in the whole sweeps package.
                from repro.sweeps.hostpool import HostPool

                self.client = HostPool(
                    urls, weights=weights, auto_weights=auto_weights,
                    async_dispatch=async_dispatch,
                    **client_kwargs,
                )
        else:  # a ready-made ServiceClient or HostPool: policy is theirs
            self.client = service
        self.env_kwargs = dict(env_kwargs) if env_kwargs else None
        self.batch = batch
        #: Per-point host provenance of the most recent
        #: :meth:`evaluate_batch` — what a scattering pool reports, and
        #: what :meth:`ArchGymEnv._dispatch_evaluate_batch` records.
        self.last_hosts: Optional[list] = None

    @property
    def last_host(self) -> Optional[str]:
        """URL that served the most recent evaluation — a pool reports
        its per-call choice, a single client its base URL."""
        pooled = getattr(self.client, "last_host", None)
        if pooled is not None:
            return pooled
        return getattr(self.client, "base_url", None)

    def evaluate(self, env_name: str, action: Dict[str, Any]) -> Dict[str, float]:
        """The backend hook :meth:`ArchGymEnv.step` dispatches through."""
        if self.batch:
            return self.evaluate_batch(env_name, [action])[0]
        return self.client.evaluate(env_name, action, env_kwargs=self.env_kwargs)

    def evaluate_batch(
        self, env_name: str, actions: Sequence[Dict[str, Any]]
    ) -> list:
        """Evaluate many design points in one round trip per host.

        A multi-host pool scatters the batch over its living hosts by
        capacity weight (parallel chunks, results reassembled in
        request order); a single client sends one round trip. Either
        way ``last_hosts`` afterwards names, per point, the host that
        answered it. Server-side memoization stays opt-in: it is
        requested only when this backend was built with ``batch=True``
        (the ``--service-batch`` contract), so generation dispatch
        alone never grows a server's memo map.
        """
        actions = list(actions)
        scatter = getattr(self.client, "evaluate_batch_scatter", None)
        if scatter is not None:
            metrics, hosts = scatter(
                env_name, actions, env_kwargs=self.env_kwargs,
                memoize=self.batch,
            )
            self.last_hosts = hosts
            return metrics
        metrics = self.client.evaluate_batch(
            env_name, actions, env_kwargs=self.env_kwargs,
            memoize=self.batch,
        )
        self.last_hosts = (
            [getattr(self.client, "base_url", None)] * len(actions)
        )
        return metrics

    def evaluate_batch_stream(self, env_name: str, actions: Sequence[Dict[str, Any]]):
        """Streaming sibling of :meth:`evaluate_batch`: yield
        ``(start_index, metrics_list, host_url)`` chunks as hosts
        finish, in completion order.

        A multi-host pool streams per work unit with work stealing
        (:meth:`~repro.sweeps.hostpool.HostPool.evaluate_batch_stream`),
        so the generator finishes as soon as every result is known —
        no barrier on the slowest host. A single client degenerates to
        one blocking whole-batch round trip yielded as a single chunk.
        ``last_hosts`` is rebuilt per point as chunks land, matching
        the barrier path's provenance contract once the stream is
        drained. Server-side memoization follows the same ``batch=True``
        opt-in as :meth:`evaluate_batch`.
        """
        actions = list(actions)
        self.last_hosts = [None] * len(actions)
        stream = getattr(self.client, "evaluate_batch_stream", None)
        if stream is None:
            metrics = self.client.evaluate_batch(
                env_name, actions, env_kwargs=self.env_kwargs,
                memoize=self.batch,
            )
            host = getattr(self.client, "base_url", None)
            self.last_hosts = [host] * len(actions)
            yield 0, metrics, host
            return
        for start, metrics_list, host in stream(
            env_name, actions, env_kwargs=self.env_kwargs, memoize=self.batch,
        ):
            for offset in range(len(metrics_list)):
                self.last_hosts[start + offset] = host
            yield start, metrics_list, host

    def close(self) -> None:
        """Close the transport's persistent resources: a single
        client's keep-alive sockets (every thread's, not just the
        caller's), or a pool's whole complement — each host's clients
        plus the async dispatch loop. The backend itself stays usable;
        connections reopen lazily on the next dispatch."""
        close = getattr(self.client, "close", None)
        if close is not None:
            close()

    def __repr__(self) -> str:
        target = getattr(self.client, "base_url", None) or getattr(
            self.client, "urls", self.client
        )
        return f"RemoteBackend(service={target!r}, batch={self.batch})"


def RemoteEnv(  # noqa: N802 - constructor-style helper, returns the env
    env: ArchGymEnv,
    service: Union[str, Sequence[str], ServiceClient, Any],
    env_kwargs: Optional[Dict[str, Any]] = None,
    **client_kwargs: Any,
) -> ArchGymEnv:
    """Attach a :class:`RemoteBackend` to ``env`` and return it.

    The environment is still constructed locally — agents need its
    action space, reward spec, and episode bookkeeping — but every
    ``evaluate`` now runs on the service::

        env = RemoteEnv(repro.make("DRAMGym-v0"), "http://127.0.0.1:8023")
        obs, reward, *_ = env.step(action)   # cost model ran remotely

    ``service`` may also be a list of URLs — the evaluations then
    spread over a least-load :class:`~repro.sweeps.hostpool.HostPool`
    with automatic failover. ``env_kwargs`` must mirror the
    construction arguments so the server evaluates the same
    environment configuration.
    """
    env.attach_backend(
        RemoteBackend(service, env_kwargs=env_kwargs, **client_kwargs)
    )
    return env
