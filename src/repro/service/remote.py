"""Client-side evaluation backends: point ``ArchGymEnv.evaluate`` at a
remote service.

An :class:`~repro.core.env.ArchGymEnv` dispatches every cost-model call
through its attached *backend* (``None`` means the env's own
``evaluate``). :class:`RemoteBackend` is the over-the-wire
implementation: the action crosses HTTP to an
:class:`~repro.service.server.EvaluationService` hosting the same
environment, and the metrics come back bit-exact (floats survive the
JSON round trip). The agent above the env is untouched — reward
computation, episode accounting, caching tiers, and dataset logging all
stay client-side, so a remote sweep is bit-identical to an in-process
one except for the ``remote_evals`` counter and timing.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Union

from repro.core.env import ArchGymEnv
from repro.service.client import ServiceClient

__all__ = ["RemoteBackend", "RemoteEnv"]


class RemoteBackend:
    """Evaluate design points on a remote evaluation service.

    Parameters
    ----------
    service:
        A base URL (``"http://host:port"``) or an existing
        :class:`ServiceClient` (whose retry/timeout policy is reused).
    env_kwargs:
        Environment construction arguments (workload, objective, …)
        forwarded with every request, so the server instantiates the
        same environment the client built locally.
    client_kwargs:
        ``timeout_s`` / ``retries`` / ``backoff_s`` when ``service`` is
        a URL.
    """

    def __init__(
        self,
        service: Union[str, ServiceClient],
        env_kwargs: Optional[Dict[str, Any]] = None,
        **client_kwargs: Any,
    ) -> None:
        self.client = (
            service
            if isinstance(service, ServiceClient)
            else ServiceClient(service, **client_kwargs)
        )
        self.env_kwargs = dict(env_kwargs) if env_kwargs else None

    def evaluate(self, env_name: str, action: Dict[str, Any]) -> Dict[str, float]:
        """The backend hook :meth:`ArchGymEnv.step` dispatches through."""
        return self.client.evaluate(env_name, action, env_kwargs=self.env_kwargs)

    def __repr__(self) -> str:
        return f"RemoteBackend(url={self.client.base_url!r})"


def RemoteEnv(  # noqa: N802 - constructor-style helper, returns the env
    env: ArchGymEnv,
    service: Union[str, ServiceClient],
    env_kwargs: Optional[Dict[str, Any]] = None,
    **client_kwargs: Any,
) -> ArchGymEnv:
    """Attach a :class:`RemoteBackend` to ``env`` and return it.

    The environment is still constructed locally — agents need its
    action space, reward spec, and episode bookkeeping — but every
    ``evaluate`` now runs on the service::

        env = RemoteEnv(repro.make("DRAMGym-v0"), "http://127.0.0.1:8023")
        obs, reward, *_ = env.step(action)   # cost model ran remotely

    ``env_kwargs`` must mirror the construction arguments so the server
    evaluates the same environment configuration.
    """
    env.attach_backend(
        RemoteBackend(service, env_kwargs=env_kwargs, **client_kwargs)
    )
    return env
