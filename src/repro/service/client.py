"""HTTP client for the evaluation service, with an explicit
retry/timeout policy and persistent keep-alive connections.

Every request either returns a parsed, schema-checked JSON body or
raises :class:`~repro.core.errors.ServiceError` — the client never
hangs (every socket operation carries ``timeout_s``) and never lets a
torn response body masquerade as a metric.

Connection reuse
----------------
A sweep makes thousands of small requests; paying a TCP handshake per
request is the dominant cost for cheap cost models. The client keeps
one persistent :class:`http.client.HTTPConnection` per thread (the
server speaks HTTP/1.1 keep-alive) and re-sends on a *stale* socket —
a server that closed an idle connection between requests — exactly
once, without consuming a retry: the bytes never reached a live peer,
so the re-send is indistinguishable from a first attempt. Every other
transport failure goes through the normal retry policy.
``requests_sent`` counts round trips and ``connections_opened`` counts
sockets, so callers (and the CI microbenchmark) can verify both
batching and reuse.

Retry policy
------------
The evaluation API is deterministic and idempotent (``evaluate`` memoizes
a pure cost model; cache ``PUT`` is last-writer-wins), so *transport*
failures — connection refused/reset, socket timeout, a body that does
not parse — are retried up to ``retries`` times with exponential
backoff, capped so the total time asleep never exceeds
``backoff_cap_s`` regardless of the retry count; a ``retries=0``
client never sleeps at all. Exhaustion raises
:class:`~repro.core.errors.ServiceTransportError` (a
:class:`ServiceError` subtype schedulers key failover on). Responses
the server actually produced (4xx/5xx with an ``error`` body) are
**not** retried: re-sending the same request would deterministically
fail the same way.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from repro.core.errors import ServiceError, ServiceTransportError
from repro.service.wire import (
    dump_body,
    jsonify,
    key_to_token,
    parse_batch_response,
    parse_cache_listing,
    parse_metrics_response,
)

__all__ = ["ServiceClient"]

#: Failures that mean "the server went away between keep-alive
#: requests" — the request bytes never reached a live peer, so one
#: transparent reconnect + re-send does not consume a retry. A socket
#: timeout is deliberately absent: the peer *was* alive and slow.
_STALE_SOCKET_ERRORS = (
    http.client.BadStatusLine,  # includes RemoteDisconnected
    ConnectionResetError,
    ConnectionAbortedError,
    BrokenPipeError,
)


class ServiceClient:
    """Talk to one :class:`~repro.service.server.EvaluationService`.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8023"`` (trailing slash tolerated).
    timeout_s:
        Per-attempt socket timeout; a server that stalls longer fails
        the attempt instead of hanging the sweep.
    retries:
        Extra attempts after the first, for transport-level failures.
    backoff_s:
        First retry delay; doubles per subsequent retry.
    backoff_cap_s:
        Ceiling on the *total* time one request may spend asleep in
        backoff across all its retries.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 60.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        backoff_cap_s: float = 2.0,
    ) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ServiceError(
                f"service url must start with http:// or https://, got {base_url!r}"
            )
        if timeout_s <= 0:
            raise ServiceError(f"timeout_s must be > 0, got {timeout_s}")
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        if backoff_cap_s < 0:
            raise ServiceError(f"backoff_cap_s must be >= 0, got {backoff_cap_s}")
        split = urlsplit(base_url)
        if not split.netloc:
            raise ServiceError(f"service url has no host: {base_url!r}")
        self._scheme = split.scheme
        self._netloc = split.netloc
        self._path_prefix = split.path.rstrip("/")
        self.base_url = f"{split.scheme}://{split.netloc}{self._path_prefix}"
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s
        self.backoff_cap_s = backoff_cap_s
        #: Round trips attempted (including retries) — the denominator
        #: the batching microbenchmark compares against.
        self.requests_sent = 0
        #: Sockets opened; stays at 1 per thread while keep-alive holds.
        self.connections_opened = 0
        # Counters are shared across threads (connections are not), so
        # their read-modify-writes sit under a lock.
        self._stats_lock = threading.Lock()
        # One persistent connection per thread: http.client connections
        # are not thread-safe, and a thread-local pool gives reuse
        # without socket-level locking on the hot path.
        self._conn_local = threading.local()
        # Every live connection, across all threads (under _stats_lock).
        # A dispatch thread that exits leaves its thread-local socket
        # unreachable but open; close() walks this registry so teardown
        # reclaims them all, not just the calling thread's.
        self._all_conns: set = set()

    # -- connection pool ----------------------------------------------------------

    def _get_conn(self) -> Tuple[http.client.HTTPConnection, bool]:
        """This thread's connection and whether it is being *reused*."""
        conn = getattr(self._conn_local, "conn", None)
        if conn is not None:
            return conn, True
        conn_cls = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        conn = conn_cls(self._netloc, timeout=self.timeout_s)
        self._conn_local.conn = conn
        with self._stats_lock:
            self.connections_opened += 1
            self._all_conns.add(conn)
        return conn, False

    def _drop_conn(self) -> None:
        conn = getattr(self._conn_local, "conn", None)
        self._conn_local.conn = None
        if conn is not None:
            with self._stats_lock:
                self._all_conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        """Close every persistent connection this client ever opened —
        including those belonging to dispatch threads that have since
        exited, which a per-thread close could never reach.

        Teardown-only by contract: no other thread may be mid-request.
        Purely a resource-hygiene call either way — the next request
        transparently opens (and counts) a fresh socket.
        """
        self._drop_conn()
        with self._stats_lock:
            conns, self._all_conns = list(self._all_conns), set()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass

    # -- transport ----------------------------------------------------------------

    def _roundtrip(
        self, conn: http.client.HTTPConnection, method: str, path: str,
        body: Optional[bytes],
    ) -> Tuple[int, bytes]:
        """One request/response on an open connection."""
        with self._stats_lock:
            self.requests_sent += 1
        conn.request(
            method,
            self._path_prefix + path,
            body=body,
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        try:
            status = resp.status
            raw = resp.read()  # drain fully so the socket stays reusable
        finally:
            resp.close()
        if resp.will_close:  # HTTP/1.0 peer or Connection: close
            self._drop_conn()
        return status, raw

    def _send(self, method: str, path: str, body: Optional[bytes]) -> Tuple[int, bytes]:
        """One attempt, with the free stale-socket re-send."""
        conn, reused = self._get_conn()
        try:
            return self._roundtrip(conn, method, path, body)
        except _STALE_SOCKET_ERRORS:
            self._drop_conn()
            if not reused:
                raise
            # The server closed an idle keep-alive socket between
            # requests. Nothing reached a live peer, so reconnecting
            # and re-sending once is not a retry.
            conn, _ = self._get_conn()
            try:
                return self._roundtrip(conn, method, path, body)
            except (OSError, http.client.HTTPException):
                self._drop_conn()
                raise
        except (OSError, http.client.HTTPException):
            self._drop_conn()  # unknown socket state: never reuse it
            raise

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """One API call under the retry policy; returns (status, body)."""
        body = dump_body(payload) if payload is not None else None
        attempts = self.retries + 1
        slept_total = 0.0
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                # Exponential backoff after *any* retryable failure —
                # transport or body-parse alike — capped so the total
                # sleep never exceeds backoff_cap_s.
                delay = min(
                    self.backoff_s * (2 ** (attempt - 1)),
                    self.backoff_cap_s - slept_total,
                )
                if delay > 0:
                    time.sleep(delay)
                    slept_total += delay
            try:
                status, raw = self._send(method, path, body)
            except (OSError, http.client.HTTPException) as exc:
                # Connection refused/reset, DNS failure, socket
                # timeout, torn chunked transfer.
                last_error = exc
                continue
            try:
                parsed = json.loads(raw.decode("utf-8")) if raw else {}
            except (ValueError, UnicodeDecodeError) as exc:
                if status >= 400:
                    # The server answered an error with a non-JSON
                    # body; deterministic, so do not retry.
                    return status, {
                        "error": raw[:200].decode("utf-8", errors="replace")
                    }
                # Torn/truncated success body: the bytes arrived but do
                # not parse — retryable, the API is idempotent.
                last_error = exc
                continue
            if not isinstance(parsed, dict):
                if status >= 400:
                    return status, {"error": str(parsed)}
                last_error = ValueError(f"expected a JSON object, got {parsed!r}")
                continue
            return status, parsed
        raise ServiceTransportError(
            f"{method} {self.base_url + path} failed after {attempts} attempt(s) "
            f"(timeout {self.timeout_s}s/attempt): {last_error!r}"
        )

    def _checked(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, parsed = self._request(method, path, payload)
        if status >= 400:
            raise ServiceError(
                f"{method} {self.base_url + path} -> HTTP {status}: "
                f"{parsed.get('error', parsed)}"
            )
        return parsed

    # -- API ----------------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """The server's liveness/inventory document."""
        return self._checked("GET", "/healthz")

    def evaluate(
        self,
        env: str,
        action: Dict[str, Any],
        env_kwargs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, float]:
        """Evaluate one design point on the server's ``env``."""
        request: Dict[str, Any] = {"env": env, "action": jsonify(action)}
        if env_kwargs:
            request["kwargs"] = jsonify(env_kwargs)
        parsed = self._checked("POST", "/evaluate", request)
        return parse_metrics_response(parsed, f"evaluate response for env {env!r}")

    def evaluate_batch(
        self,
        env: str,
        actions: Sequence[Dict[str, Any]],
        env_kwargs: Optional[Dict[str, Any]] = None,
        memoize: bool = True,
    ) -> List[Dict[str, float]]:
        """Evaluate many design points in one round trip.

        The server runs the whole batch under a single env-instance
        lock and (with ``memoize``, the default) answers repeat design
        points from its ``/cache`` store instead of re-simulating.
        Results come back in request order, one metric dict per action.
        """
        if not actions:
            raise ServiceError("evaluate_batch needs at least one action")
        request: Dict[str, Any] = {
            "env": env,
            "actions": [jsonify(a) for a in actions],
        }
        if env_kwargs:
            request["kwargs"] = jsonify(env_kwargs)
        if not memoize:
            request["memoize"] = False
        parsed = self._checked("POST", "/evaluate_batch", request)
        return parse_batch_response(parsed, env, len(actions))

    def cache_get(self, key_str: str) -> Optional[Dict[str, float]]:
        """Server-cache lookup by encoded key; ``None`` on a miss."""
        status, parsed = self._request("GET", f"/cache/{key_to_token(key_str)}")
        if status == 404:
            return None
        if status >= 400:
            raise ServiceError(
                f"cache GET -> HTTP {status}: {parsed.get('error', parsed)}"
            )
        return parse_metrics_response(parsed, "cache response")

    def cache_put(self, key_str: str, metrics: Dict[str, float]) -> None:
        """Store one entry in the server cache."""
        self._checked(
            "PUT", f"/cache/{key_to_token(key_str)}", {"metrics": jsonify(metrics)}
        )

    def cache_size(self) -> int:
        """Distinct keys currently held by the server cache."""
        return int(self._checked("GET", "/cache").get("size", 0))

    def cache_list(
        self, offset: int = 0, limit: int = 500
    ) -> Tuple[List[Tuple[str, Dict[str, float]]], int]:
        """One page of the server cache in sorted-key order.

        Returns ``(entries, total)`` where ``entries`` is a list of
        ``(key_str, metrics)`` pairs starting at ``offset`` and
        ``total`` is the map's full entry count — advance ``offset``
        by each page's length until it reaches ``total`` to walk the
        whole map (what the host pool's anti-entropy backfill does).
        """
        parsed = self._checked(
            "GET", f"/cache?offset={int(offset)}&limit={int(limit)}"
        )
        return parse_cache_listing(parsed)

    def __repr__(self) -> str:
        return (
            f"ServiceClient(base_url={self.base_url!r}, "
            f"timeout_s={self.timeout_s}, retries={self.retries})"
        )
