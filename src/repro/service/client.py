"""HTTP client for the evaluation service, with an explicit
retry/timeout policy.

Every request either returns a parsed, schema-checked JSON body or
raises :class:`~repro.core.errors.ServiceError` — the client never
hangs (every socket operation carries ``timeout_s``) and never lets a
torn response body masquerade as a metric.

Retry policy
------------
The evaluation API is deterministic and idempotent (``evaluate`` memoizes
a pure cost model; cache ``PUT`` is last-writer-wins over identical
values), so *transport* failures — connection refused/reset, socket
timeout, a body that does not parse — are retried up to ``retries``
times with exponential backoff. Responses the server actually produced
(4xx/5xx with an ``error`` body) are **not** retried: re-sending the
same request would deterministically fail the same way.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from repro.core.errors import ServiceError
from repro.service.wire import dump_body, jsonify, key_to_token

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talk to one :class:`~repro.service.server.EvaluationService`.

    Parameters
    ----------
    base_url:
        E.g. ``"http://127.0.0.1:8023"`` (trailing slash tolerated).
    timeout_s:
        Per-attempt socket timeout; a server that stalls longer fails
        the attempt instead of hanging the sweep.
    retries:
        Extra attempts after the first, for transport-level failures.
    backoff_s:
        First retry delay; doubles per subsequent retry.
    """

    def __init__(
        self,
        base_url: str,
        timeout_s: float = 60.0,
        retries: int = 2,
        backoff_s: float = 0.05,
    ) -> None:
        if not base_url.startswith(("http://", "https://")):
            raise ServiceError(
                f"service url must start with http:// or https://, got {base_url!r}"
            )
        if timeout_s <= 0:
            raise ServiceError(f"timeout_s must be > 0, got {timeout_s}")
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_s = backoff_s

    # -- transport ----------------------------------------------------------------

    def _request(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Tuple[int, Dict[str, Any]]:
        """One API call under the retry policy; returns (status, body)."""
        url = self.base_url + path
        body = dump_body(payload) if payload is not None else None
        attempts = self.retries + 1
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                time.sleep(self.backoff_s * (2 ** (attempt - 1)))
            request = urllib.request.Request(
                url,
                data=body,
                method=method,
                headers={"Content-Type": "application/json"},
            )
            try:
                with urllib.request.urlopen(request, timeout=self.timeout_s) as resp:
                    status = resp.status
                    raw = resp.read()
            except urllib.error.HTTPError as err:
                # The server answered with an error status — parse its
                # JSON error body if there is one; do not retry.
                with err:
                    raw = err.read()
                try:
                    parsed = json.loads(raw.decode("utf-8")) if raw else {}
                except (ValueError, UnicodeDecodeError):
                    parsed = {"error": raw[:200].decode("utf-8", errors="replace")}
                if not isinstance(parsed, dict):
                    parsed = {"error": str(parsed)}
                return err.code, parsed
            except (OSError, http.client.HTTPException) as exc:
                # Connection refused/reset, DNS failure, socket timeout
                # (urllib wraps it in URLError), torn chunked transfer.
                last_error = exc
                continue
            try:
                parsed = json.loads(raw.decode("utf-8")) if raw else {}
                if not isinstance(parsed, dict):
                    raise ValueError(f"expected a JSON object, got {parsed!r}")
                return status, parsed
            except (ValueError, UnicodeDecodeError) as exc:
                # Torn/truncated body: the bytes arrived but do not
                # parse — retryable, the API is idempotent.
                last_error = exc
                continue
        raise ServiceError(
            f"{method} {url} failed after {attempts} attempt(s) "
            f"(timeout {self.timeout_s}s/attempt): {last_error!r}"
        )

    def _checked(
        self, method: str, path: str, payload: Optional[Dict[str, Any]] = None
    ) -> Dict[str, Any]:
        status, parsed = self._request(method, path, payload)
        if status >= 400:
            raise ServiceError(
                f"{method} {self.base_url + path} -> HTTP {status}: "
                f"{parsed.get('error', parsed)}"
            )
        return parsed

    # -- API ----------------------------------------------------------------------

    def healthz(self) -> Dict[str, Any]:
        """The server's liveness/inventory document."""
        return self._checked("GET", "/healthz")

    def evaluate(
        self,
        env: str,
        action: Dict[str, Any],
        env_kwargs: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, float]:
        """Evaluate one design point on the server's ``env``."""
        request: Dict[str, Any] = {"env": env, "action": jsonify(action)}
        if env_kwargs:
            request["kwargs"] = jsonify(env_kwargs)
        parsed = self._checked("POST", "/evaluate", request)
        metrics = parsed.get("metrics")
        if not isinstance(metrics, dict):
            raise ServiceError(
                f"evaluate response for env {env!r} has no metrics object: {parsed!r}"
            )
        return {str(k): float(v) for k, v in metrics.items()}

    def cache_get(self, key_str: str) -> Optional[Dict[str, float]]:
        """Server-cache lookup by encoded key; ``None`` on a miss."""
        status, parsed = self._request("GET", f"/cache/{key_to_token(key_str)}")
        if status == 404:
            return None
        if status >= 400:
            raise ServiceError(
                f"cache GET -> HTTP {status}: {parsed.get('error', parsed)}"
            )
        metrics = parsed.get("metrics")
        if not isinstance(metrics, dict):
            raise ServiceError(f"cache response has no metrics object: {parsed!r}")
        return {str(k): float(v) for k, v in metrics.items()}

    def cache_put(self, key_str: str, metrics: Dict[str, float]) -> None:
        """Store one entry in the server cache."""
        self._checked(
            "PUT", f"/cache/{key_to_token(key_str)}", {"metrics": jsonify(metrics)}
        )

    def cache_size(self) -> int:
        """Distinct keys currently held by the server cache."""
        return int(self._checked("GET", "/cache").get("size", 0))

    def __repr__(self) -> str:
        return (
            f"ServiceClient(base_url={self.base_url!r}, "
            f"timeout_s={self.timeout_s}, retries={self.retries})"
        )
