"""Remote evaluation service: host environments behind HTTP so any
agent — unmodified — evaluates design points over the network.

Server side: :class:`EvaluationService` (stdlib ``ThreadingHTTPServer``)
serves ``POST /evaluate``, ``POST /evaluate_batch`` (many design
points per round trip, memoized server-side into the cache store),
``GET /healthz``, and ``GET/PUT /cache/<key>``.
Client side: :class:`ServiceClient` (persistent keep-alive
connections, retry/timeout policy), its coroutine sibling
:class:`AsyncServiceClient` (one event loop holds a whole fleet's
requests in flight — the ``--async-dispatch`` transport),
:class:`RemoteBackend` (adapts a
client — or a :class:`repro.sweeps.HostPool` — to ``ArchGymEnv``'s
``evaluate`` / ``evaluate_batch`` / ``evaluate_batch_stream`` backend
hooks), and :func:`RemoteEnv` (attach-and-return convenience). The
wire format is canonicalized in :mod:`repro.service.wire`; metrics
survive the JSON round trip bit-exactly, which is what lets every
remote mode stay byte-identical to an in-process run (see
``docs/ARCHITECTURE.md``).
"""

from repro.service.aio import AsyncServiceClient
from repro.service.client import ServiceClient
from repro.service.remote import RemoteBackend, RemoteEnv
from repro.service.server import EvaluationService
from repro.service.wire import WIRE_FORMAT

__all__ = [
    "EvaluationService",
    "ServiceClient",
    "AsyncServiceClient",
    "RemoteBackend",
    "RemoteEnv",
    "WIRE_FORMAT",
]
