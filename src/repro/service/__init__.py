"""Remote evaluation service: host environments behind HTTP so any
agent — unmodified — evaluates design points over the network.

Server side: :class:`EvaluationService` (stdlib ``ThreadingHTTPServer``)
serves ``POST /evaluate``, ``GET /healthz``, and ``GET/PUT /cache/<key>``.
Client side: :class:`ServiceClient` (retry/timeout policy),
:class:`RemoteBackend` (the ``ArchGymEnv`` evaluation hook), and
:func:`RemoteEnv` (attach-and-return convenience). The wire format is
canonicalized in :mod:`repro.service.wire`.
"""

from repro.service.client import ServiceClient
from repro.service.remote import RemoteBackend, RemoteEnv
from repro.service.server import EvaluationService
from repro.service.wire import WIRE_FORMAT

__all__ = [
    "EvaluationService",
    "ServiceClient",
    "RemoteBackend",
    "RemoteEnv",
    "WIRE_FORMAT",
]
