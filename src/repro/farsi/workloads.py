"""AR/VR workload task graphs (FARSI's packaged applications).

FARSI ships audio/image-processing pipelines from an AR/VR use case; the
paper's experiments use the audio decoder and edge detection apps. The
graphs below mirror those pipelines' structure: a decode/filter chain
with data-parallel middle stages, compute demands in mega-ops and edge
volumes in KiB sized like real 48 kHz audio frames / VGA video frames.

Each workload also defines the paper's optimization *budgets*
(performance in ms, power in mW, area in mm^2) used by the
distance-to-budget reward.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.errors import SimulationError
from repro.farsi.taskgraph import Task, TaskGraph

__all__ = ["FarsiWorkload", "FARSI_WORKLOADS", "get_farsi_workload", "FARSI_WORKLOAD_NAMES"]


@dataclass(frozen=True)
class FarsiWorkload:
    """A task graph plus its design budgets."""

    graph: TaskGraph
    perf_budget_ms: float
    power_budget_mw: float
    area_budget_mm2: float

    @property
    def budgets(self) -> Dict[str, float]:
        return {
            "performance": self.perf_budget_ms,
            "power": self.power_budget_mw,
            "area": self.area_budget_mm2,
        }


def _audio_decoder() -> TaskGraph:
    g = TaskGraph("audio_decoder")
    g.add_task(Task("bitstream_parse", mops=600.0))
    g.add_task(Task("huffman_decode", mops=3000.0))
    g.add_task(Task("dequantize_L", mops=1800.0, kind="dsp"))
    g.add_task(Task("dequantize_R", mops=1800.0, kind="dsp"))
    g.add_task(Task("imdct_L", mops=9000.0, kind="dsp"))
    g.add_task(Task("imdct_R", mops=9000.0, kind="dsp"))
    g.add_task(Task("window_overlap_L", mops=2400.0, kind="dsp"))
    g.add_task(Task("window_overlap_R", mops=2400.0, kind="dsp"))
    g.add_task(Task("stereo_mix", mops=1200.0, kind="dsp"))
    g.add_task(Task("post_filter", mops=3600.0, kind="dsp"))
    g.add_task(Task("output_pcm", mops=400.0))
    g.add_edge("bitstream_parse", "huffman_decode", kib=24.0)
    g.add_edge("huffman_decode", "dequantize_L", kib=48.0)
    g.add_edge("huffman_decode", "dequantize_R", kib=48.0)
    g.add_edge("dequantize_L", "imdct_L", kib=64.0)
    g.add_edge("dequantize_R", "imdct_R", kib=64.0)
    g.add_edge("imdct_L", "window_overlap_L", kib=64.0)
    g.add_edge("imdct_R", "window_overlap_R", kib=64.0)
    g.add_edge("window_overlap_L", "stereo_mix", kib=64.0)
    g.add_edge("window_overlap_R", "stereo_mix", kib=64.0)
    g.add_edge("stereo_mix", "post_filter", kib=128.0)
    g.add_edge("post_filter", "output_pcm", kib=128.0)
    return g


def _edge_detection() -> TaskGraph:
    g = TaskGraph("edge_detection")
    g.add_task(Task("capture", mops=800.0))
    g.add_task(Task("debayer", mops=11000.0, kind="imaging"))
    g.add_task(Task("grayscale", mops=5500.0, kind="imaging"))
    g.add_task(Task("gaussian_blur", mops=26000.0, kind="imaging"))
    g.add_task(Task("sobel_x", mops=18000.0, kind="imaging"))
    g.add_task(Task("sobel_y", mops=18000.0, kind="imaging"))
    g.add_task(Task("gradient_mag", mops=9500.0, kind="imaging"))
    g.add_task(Task("non_max_suppress", mops=12000.0, kind="imaging"))
    g.add_task(Task("hysteresis", mops=7500.0))
    g.add_task(Task("overlay_render", mops=4000.0))
    g.add_edge("capture", "debayer", kib=900.0)
    g.add_edge("debayer", "grayscale", kib=900.0)
    g.add_edge("grayscale", "gaussian_blur", kib=300.0)
    g.add_edge("gaussian_blur", "sobel_x", kib=300.0)
    g.add_edge("gaussian_blur", "sobel_y", kib=300.0)
    g.add_edge("sobel_x", "gradient_mag", kib=300.0)
    g.add_edge("sobel_y", "gradient_mag", kib=300.0)
    g.add_edge("gradient_mag", "non_max_suppress", kib=300.0)
    g.add_edge("non_max_suppress", "hysteresis", kib=300.0)
    g.add_edge("hysteresis", "overlay_render", kib=300.0)
    return g


def _hand_tracking() -> TaskGraph:
    """Stereo hand-tracking pipeline: two camera streams converge into a
    model-inference stage followed by gesture classification."""
    g = TaskGraph("hand_tracking")
    g.add_task(Task("capture_L", mops=400.0))
    g.add_task(Task("capture_R", mops=400.0))
    g.add_task(Task("rectify_L", mops=6000.0, kind="imaging"))
    g.add_task(Task("rectify_R", mops=6000.0, kind="imaging"))
    g.add_task(Task("feature_extract_L", mops=14000.0, kind="imaging"))
    g.add_task(Task("feature_extract_R", mops=14000.0, kind="imaging"))
    g.add_task(Task("stereo_match", mops=20000.0, kind="imaging"))
    g.add_task(Task("hand_pose_dnn", mops=30000.0, kind="dsp"))
    g.add_task(Task("gesture_classify", mops=4000.0, kind="dsp"))
    g.add_task(Task("render_overlay", mops=2500.0))
    g.add_edge("capture_L", "rectify_L", kib=600.0)
    g.add_edge("capture_R", "rectify_R", kib=600.0)
    g.add_edge("rectify_L", "feature_extract_L", kib=600.0)
    g.add_edge("rectify_R", "feature_extract_R", kib=600.0)
    g.add_edge("feature_extract_L", "stereo_match", kib=200.0)
    g.add_edge("feature_extract_R", "stereo_match", kib=200.0)
    g.add_edge("stereo_match", "hand_pose_dnn", kib=150.0)
    g.add_edge("hand_pose_dnn", "gesture_classify", kib=32.0)
    g.add_edge("gesture_classify", "render_overlay", kib=16.0)
    return g


FARSI_WORKLOADS: Dict[str, FarsiWorkload] = {
    "audio_decoder": FarsiWorkload(
        graph=_audio_decoder(),
        perf_budget_ms=2.0,
        power_budget_mw=60.0,
        area_budget_mm2=12.0,
    ),
    "edge_detection": FarsiWorkload(
        graph=_edge_detection(),
        perf_budget_ms=4.5,
        power_budget_mw=90.0,
        area_budget_mm2=13.0,
    ),
    "hand_tracking": FarsiWorkload(
        graph=_hand_tracking(),
        perf_budget_ms=4.5,
        power_budget_mw=95.0,
        area_budget_mm2=12.0,
    ),
}

#: Names accepted by :func:`get_farsi_workload`.
FARSI_WORKLOAD_NAMES = tuple(FARSI_WORKLOADS)


def get_farsi_workload(name: str) -> FarsiWorkload:
    """Return a named AR/VR workload (graph + budgets)."""
    try:
        return FARSI_WORKLOADS[name]
    except KeyError:
        raise SimulationError(
            f"unknown FARSI workload {name!r}; have {sorted(FARSI_WORKLOADS)}"
        ) from None
