"""SoC substrate — the FARSI stand-in (paper Table 3)."""

from repro.farsi.simulator import INFEASIBLE_SOC_PENALTY, FarsiSimulator, SocResult
from repro.farsi.soc import N_SLOTS, PE_CATALOG, PEType, SoCConfig, soc_space
from repro.farsi.taskgraph import TASK_KINDS, Task, TaskGraph
from repro.farsi.workloads import (
    FARSI_WORKLOAD_NAMES,
    FARSI_WORKLOADS,
    FarsiWorkload,
    get_farsi_workload,
)

__all__ = [
    "INFEASIBLE_SOC_PENALTY",
    "FarsiSimulator",
    "SocResult",
    "N_SLOTS",
    "PE_CATALOG",
    "PEType",
    "SoCConfig",
    "soc_space",
    "TASK_KINDS",
    "Task",
    "TaskGraph",
    "FARSI_WORKLOAD_NAMES",
    "FARSI_WORKLOADS",
    "FarsiWorkload",
    "get_farsi_workload",
]
