"""SoC hardware model — PE catalog, NoC, memory (the FARSI stand-in).

A design point allocates a processing element (or nothing) to each of
``N_SLOTS`` sockets and sizes the shared bus and memory system. PE types
trade throughput against power and area, and carry per-task-kind
speedups, so the right SoC depends on the workload's task mix — the
heterogeneity FARSI's DSE is about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from repro.core.errors import SimulationError
from repro.core.spaces import Categorical, CompositeSpace, Discrete

__all__ = ["PEType", "PE_CATALOG", "SoCConfig", "soc_space", "N_SLOTS"]

#: Number of PE sockets in the SoC template.
N_SLOTS = 6


@dataclass(frozen=True)
class PEType:
    """One processing element option for a socket."""

    name: str
    gops: float                      # base throughput, generic ops
    active_mw: float                 # power while executing
    idle_mw: float                   # static power when instantiated
    area_mm2: float
    speedups: Mapping[str, float]    # per task-kind multiplier

    def speedup(self, kind: str) -> float:
        return self.speedups.get(kind, 1.0)

    def exec_time_ms(self, mops: float, kind: str) -> float:
        """Execution time of a task of ``mops`` mega-ops on this PE."""
        effective_gops = self.gops * self.speedup(kind)
        return mops / (effective_gops * 1e3)


PE_CATALOG: Dict[str, PEType] = {
    "LittleCore": PEType(
        "LittleCore", gops=4.0, active_mw=15.0, idle_mw=1.0, area_mm2=0.8,
        speedups={"generic": 1.0, "dsp": 1.0, "imaging": 1.0, "crypto": 1.0},
    ),
    "BigCore": PEType(
        "BigCore", gops=16.0, active_mw=120.0, idle_mw=8.0, area_mm2=3.5,
        speedups={"generic": 1.0, "dsp": 1.0, "imaging": 1.0, "crypto": 1.0},
    ),
    "DSP": PEType(
        "DSP", gops=8.0, active_mw=40.0, idle_mw=2.0, area_mm2=1.6,
        speedups={"generic": 0.8, "dsp": 6.0, "imaging": 2.0, "crypto": 1.0},
    ),
    "ImagingIP": PEType(
        "ImagingIP", gops=10.0, active_mw=30.0, idle_mw=1.5, area_mm2=1.2,
        speedups={"generic": 0.25, "dsp": 1.5, "imaging": 10.0, "crypto": 0.5},
    ),
}

#: Socket options: any catalog PE, or leave the socket empty.
SLOT_OPTIONS = tuple(PE_CATALOG) + ("None",)


@dataclass(frozen=True)
class SoCConfig:
    """One SoC design point: socket assignment + interconnect + memory."""

    slots: Tuple[str, ...] = ("BigCore", "DSP", "ImagingIP", "None", "None", "None")
    noc_bus_width_bits: int = 64
    noc_freq_ghz: float = 0.8
    mem_freq_ghz: float = 0.8
    mem_channels: int = 2

    def __post_init__(self) -> None:
        if len(self.slots) != N_SLOTS:
            raise SimulationError(f"expected {N_SLOTS} PE slots, got {len(self.slots)}")
        for s in self.slots:
            if s not in SLOT_OPTIONS:
                raise SimulationError(f"unknown slot option {s!r}; valid: {SLOT_OPTIONS}")
        if self.noc_bus_width_bits < 8:
            raise SimulationError("noc_bus_width_bits must be >= 8")
        if self.noc_freq_ghz <= 0 or self.mem_freq_ghz <= 0:
            raise SimulationError("frequencies must be positive")
        if self.mem_channels < 1:
            raise SimulationError("mem_channels must be >= 1")

    # -- derived hardware properties ------------------------------------------------

    @property
    def pes(self) -> Tuple[PEType, ...]:
        """Instantiated PEs (empty sockets skipped)."""
        return tuple(PE_CATALOG[s] for s in self.slots if s != "None")

    @property
    def noc_bw_gbps(self) -> float:
        return self.noc_bus_width_bits / 8.0 * self.noc_freq_ghz

    @property
    def mem_bw_gbps(self) -> float:
        return self.mem_channels * 2.0 * self.mem_freq_ghz

    @property
    def transfer_bw_gbps(self) -> float:
        """Effective PE-to-PE transfer bandwidth (bus and memory in series)."""
        return min(self.noc_bw_gbps, self.mem_bw_gbps)

    @property
    def static_mw(self) -> float:
        pe_idle = sum(pe.idle_mw for pe in self.pes)
        noc = 2.0 + 0.05 * self.noc_bus_width_bits * self.noc_freq_ghz
        mem = 5.0 + 2.0 * self.mem_channels * self.mem_freq_ghz
        return pe_idle + noc + mem

    @property
    def area_mm2(self) -> float:
        pe_area = sum(pe.area_mm2 for pe in self.pes)
        noc_area = 0.3 + 0.002 * self.noc_bus_width_bits
        mem_area = 0.8 * self.mem_channels
        return pe_area + noc_area + mem_area

    # -- action codec -----------------------------------------------------------------

    @classmethod
    def from_action(cls, action: Mapping[str, Any]) -> "SoCConfig":
        return cls(
            slots=tuple(action[f"PE_Slot{i}"] for i in range(N_SLOTS)),
            noc_bus_width_bits=int(action["NoC_BusWidth"]),
            noc_freq_ghz=float(action["NoC_Freq"]),
            mem_freq_ghz=float(action["Mem_Freq"]),
            mem_channels=int(action["Mem_Channels"]),
        )

    def to_action(self) -> Dict[str, Any]:
        action: Dict[str, Any] = {
            f"PE_Slot{i}": self.slots[i] for i in range(N_SLOTS)
        }
        action.update(
            NoC_BusWidth=self.noc_bus_width_bits,
            NoC_Freq=self.noc_freq_ghz,
            Mem_Freq=self.mem_freq_ghz,
            Mem_Channels=self.mem_channels,
        )
        return action


def soc_space() -> CompositeSpace:
    """The FARSIGym action space (paper Fig. 3)."""
    parameters = [
        Categorical(f"PE_Slot{i}", SLOT_OPTIONS) for i in range(N_SLOTS)
    ]
    parameters += [
        Discrete.pow2("NoC_BusWidth", 16, 256),
        Discrete("NoC_Freq", low=0.2, high=1.6, step=0.2, integer=False),
        Discrete("Mem_Freq", low=0.2, high=1.6, step=0.2, integer=False),
        Discrete("Mem_Channels", low=1, high=4, step=1),
    ]
    return CompositeSpace(parameters)
