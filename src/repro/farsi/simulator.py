"""FARSI-style SoC simulator: list scheduling + roofline estimation.

Given a :class:`SoCConfig` and a :class:`TaskGraph`, the simulator maps
tasks to PEs with an earliest-finish-time (HEFT-like) list scheduler,
serializes cross-PE transfers on the shared bus, and produces the
``<power, performance, area>`` observation of Table 3.

- **performance** — the schedule makespan in milliseconds,
- **power** — dynamic energy / makespan plus the static power of every
  instantiated component, in milliwatts,
- **area** — summed component area in mm^2.

SoCs with no PEs are *infeasible* and receive penalty metrics (the
paper's search spaces contain such points; agents must learn around
them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.errors import SimulationError
from repro.farsi.soc import SoCConfig
from repro.farsi.taskgraph import TaskGraph

__all__ = ["SocResult", "FarsiSimulator", "INFEASIBLE_SOC_PENALTY"]

#: Metric value reported for SoCs that cannot run the workload at all.
INFEASIBLE_SOC_PENALTY = 1e9

#: Energy per byte moved across the bus / through memory (nanojoules).
E_NOC_NJ_PER_BYTE = 0.05
E_MEM_NJ_PER_BYTE = 0.12


@dataclass(frozen=True)
class SocResult:
    """Outcome of scheduling one task graph onto one SoC."""

    makespan_ms: float
    power_mw: float
    area_mm2: float
    feasible: bool
    assignment: Dict[str, str]           # task -> PE name (with slot index)
    pe_busy_ms: Dict[str, float]
    comm_ms: float

    def metrics(self) -> Dict[str, float]:
        """The FARSIGym observation dictionary."""
        return {
            "performance": self.makespan_ms,
            "power": self.power_mw,
            "area": self.area_mm2,
            "feasible": 1.0 if self.feasible else 0.0,
        }


class FarsiSimulator:
    """Schedules task graphs onto SoC design points."""

    def simulate(self, config: SoCConfig, graph: TaskGraph) -> SocResult:
        """Map ``graph`` onto ``config`` and estimate cost."""
        if len(graph) == 0:
            raise SimulationError("cannot simulate an empty task graph")
        pes = config.pes
        if not pes:
            return SocResult(
                makespan_ms=INFEASIBLE_SOC_PENALTY,
                power_mw=INFEASIBLE_SOC_PENALTY,
                area_mm2=config.area_mm2,
                feasible=False,
                assignment={},
                pe_busy_ms={},
                comm_ms=0.0,
            )

        labels = [f"{pe.name}#{i}" for i, pe in enumerate(pes)]
        pe_free = [0.0] * len(pes)
        pe_busy = [0.0] * len(pes)
        bus_free = 0.0
        finish: Dict[str, float] = {}
        assign: Dict[str, int] = {}
        dynamic_energy_mj = 0.0
        comm_total_ms = 0.0
        bw = config.transfer_bw_gbps  # GB/s == KiB/us * 1024/1e3 — see below

        def transfer_ms(kib: float) -> float:
            # KiB -> bytes, GB/s -> bytes/ms (1 GB/s = 1e6 bytes/ms)
            return (kib * 1024.0) / (bw * 1e6)

        for task in graph.topological_order():
            preds = graph.predecessors(task.name)

            # pick the PE with the earliest finish time (ties: lower power)
            best_pe = -1
            best_eft = float("inf")
            best_power = float("inf")
            for idx, pe in enumerate(pes):
                data_ready = 0.0
                for pred, kib in preds:
                    ready = finish[pred.name]
                    if assign[pred.name] != idx:
                        ready += transfer_ms(kib)
                    data_ready = max(data_ready, ready)
                est = max(pe_free[idx], data_ready)
                eft = est + pe.exec_time_ms(task.mops, task.kind)
                if eft < best_eft - 1e-12 or (
                    abs(eft - best_eft) <= 1e-12 and pe.active_mw < best_power
                ):
                    best_pe, best_eft, best_power = idx, eft, pe.active_mw
            pe = pes[best_pe]

            # commit: serialize this task's inbound transfers on the bus
            data_ready = 0.0
            for pred, kib in preds:
                ready = finish[pred.name]
                if assign[pred.name] != best_pe:
                    t0 = max(bus_free, ready)
                    dt = transfer_ms(kib)
                    bus_free = t0 + dt
                    comm_total_ms += dt
                    bytes_moved = kib * 1024.0
                    dynamic_energy_mj += bytes_moved * (
                        E_NOC_NJ_PER_BYTE + E_MEM_NJ_PER_BYTE
                    ) * 1e-6
                    ready = bus_free
                data_ready = max(data_ready, ready)

            start = max(pe_free[best_pe], data_ready)
            exec_ms = pe.exec_time_ms(task.mops, task.kind)
            end = start + exec_ms
            pe_free[best_pe] = end
            pe_busy[best_pe] += exec_ms
            finish[task.name] = end
            assign[task.name] = best_pe
            # mW * ms = microjoules; store as millijoules
            dynamic_energy_mj += pe.active_mw * exec_ms * 1e-3

        makespan = max(finish.values())
        # mJ / ms = W; *1e3 -> mW
        dynamic_mw = dynamic_energy_mj * 1e3 / max(makespan, 1e-9) if makespan > 0 else 0.0
        power_mw = dynamic_mw + config.static_mw

        return SocResult(
            makespan_ms=makespan,
            power_mw=power_mw,
            area_mm2=config.area_mm2,
            feasible=True,
            assignment={t: labels[i] for t, i in assign.items()},
            pe_busy_ms=dict(zip(labels, pe_busy)),
            comm_ms=comm_total_ms,
        )
