"""Task dependency graphs — the FARSI workload representation.

FARSI models an AR/VR application as a DAG of tasks; each task carries a
compute demand (mega-operations) and a *kind* that determines which IPs
can accelerate it; each edge carries the data volume (KiB) the consumer
reads from the producer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import networkx as nx

from repro.core.errors import SimulationError

__all__ = ["Task", "TaskGraph", "TASK_KINDS"]

#: Task kinds; accelerator IPs advertise speedups per kind.
TASK_KINDS = ("generic", "dsp", "imaging", "crypto")


@dataclass(frozen=True)
class Task:
    """One node of the application DAG."""

    name: str
    mops: float                 # compute demand in mega-operations
    kind: str = "generic"

    def __post_init__(self) -> None:
        if self.mops <= 0:
            raise SimulationError(f"task {self.name!r} needs mops > 0")
        if self.kind not in TASK_KINDS:
            raise SimulationError(
                f"task {self.name!r} has unknown kind {self.kind!r}; "
                f"valid: {TASK_KINDS}"
            )


class TaskGraph:
    """A named DAG of :class:`Task` nodes with data-volume edges."""

    def __init__(self, name: str):
        self.name = name
        self._graph = nx.DiGraph()
        self._tasks: Dict[str, Task] = {}

    # -- construction -------------------------------------------------------------

    def add_task(self, task: Task) -> None:
        if task.name in self._tasks:
            raise SimulationError(f"duplicate task {task.name!r}")
        self._tasks[task.name] = task
        self._graph.add_node(task.name)

    def add_edge(self, producer: str, consumer: str, kib: float) -> None:
        """Declare that ``consumer`` reads ``kib`` KiB from ``producer``."""
        for name in (producer, consumer):
            if name not in self._tasks:
                raise SimulationError(f"unknown task {name!r}")
        if kib < 0:
            raise SimulationError("edge data volume must be >= 0")
        self._graph.add_edge(producer, consumer, kib=float(kib))
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(producer, consumer)
            raise SimulationError(
                f"edge {producer!r}->{consumer!r} would create a cycle"
            )

    # -- queries ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tasks)

    @property
    def tasks(self) -> List[Task]:
        return [self._tasks[n] for n in self._graph.nodes]

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise SimulationError(f"unknown task {name!r}") from None

    def topological_order(self) -> List[Task]:
        return [self._tasks[n] for n in nx.topological_sort(self._graph)]

    def predecessors(self, name: str) -> List[Tuple[Task, float]]:
        """(producer task, KiB transferred) pairs feeding ``name``."""
        return [
            (self._tasks[p], self._graph.edges[p, name]["kib"])
            for p in self._graph.predecessors(name)
        ]

    def edges(self) -> Iterable[Tuple[str, str, float]]:
        for u, v, data in self._graph.edges(data=True):
            yield u, v, data["kib"]

    @property
    def total_mops(self) -> float:
        return sum(t.mops for t in self._tasks.values())

    @property
    def total_traffic_kib(self) -> float:
        return sum(kib for _, _, kib in self.edges())

    def critical_path_mops(self) -> float:
        """Compute demand along the heaviest dependency chain — a lower
        bound on serialized work regardless of PE count."""
        best: Dict[str, float] = {}
        for task in self.topological_order():
            preds = [best[p.name] for p, _ in self.predecessors(task.name)]
            best[task.name] = task.mops + (max(preds) if preds else 0.0)
        return max(best.values()) if best else 0.0

    def __repr__(self) -> str:
        return (
            f"TaskGraph({self.name!r}, tasks={len(self)}, "
            f"mops={self.total_mops:.0f}, traffic={self.total_traffic_kib:.0f}KiB)"
        )
