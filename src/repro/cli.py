"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``envs``
    List registered environments and their action-space sizes.
``agents``
    List available agents and their hyperparameter grids.
``run``
    Run one agent on one environment and print the best design.
``sweep``
    Run a hyperparameter-lottery sweep and print the Fig. 4/5-style
    distribution table.
``collect``
    Run several agents, log all trajectories, and write an ArchGym
    dataset (JSONL) — the §3.4 pipeline.
``serve``
    Host registered environments as an HTTP evaluation service
    (``POST /evaluate`` + ``GET /healthz`` + ``GET/PUT /cache/<key>``)
    that remote sweeps point ``--service-url`` at.

``sweep`` and ``collect`` accept ``--workers N`` to fan trials out over
a process pool (results are bit-identical for any worker count) and
``--no-cache`` to disable the per-environment design-point evaluation
cache. ``--out-dir DIR`` streams every finished trial to disk as an
atomic shard (killed runs keep their progress), ``--resume`` re-enters
such a directory and runs only the missing trials, and
``--shared-cache`` adds a cross-process design-point cache under the
out-dir so concurrent trials reuse each other's evaluations.
``--service-url URL[=WEIGHT]`` dispatches every cost-model call to a
running ``repro serve`` instance instead of evaluating in-process —
results stay bit-identical (same seeds, same trial order); repeat the
flag to spread one sweep over several hosts (least-load scheduling,
automatic failover when a host dies), with ``=WEIGHT`` declaring a
host's relative capacity (or let ``--auto-weights`` tune the weights
from each host's observed service rate). With ``--shared-cache`` the
(first) service also hosts the shared design-point cache, so sweeps
on different machines reuse each other's evaluations — writes are
replicated to ``--cache-replicas`` pool hosts (default 2), reads
fail over to a replica if the cache host dies, and revived hosts are
backfilled, so no entry is ever lost. ``--service-batch`` routes
evaluations through the batched endpoint with server-side
memoization, and ``--generation-dispatch`` lets population-based
agents (GA/ACO) evaluate whole generations per round trip —
scattered across the host pool by weight. ``--pipeline`` upgrades
that scatter to streaming dispatch with work stealing: hosts pull
work units as they finish, idle hosts steal a straggler's remainder,
and the next generation starts while the straggler's abandoned
request drains (results stay byte-identical).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

import repro
from repro.agents import (
    AGENT_NAMES,
    HYPERPARAM_GRIDS,
    make_agent,
    run_agent,
)
from repro.core.dataset import ArchGymDataset
from repro.sweeps import (
    TrialTask,
    execute_trials,
    resolve_execution_backend,
    run_lottery_sweep,
    validate_agent_names,
)

__all__ = ["main", "build_parser"]


class RegistryEnvFactory:
    """A picklable ``env_factory``: ``repro.make`` deferred to call time.

    ``--workers`` sends trial tasks across a process boundary, so the
    factory must pickle — a lambda closed over argparse values cannot.
    """

    def __init__(self, env_id: str, **kwargs: object) -> None:
        self.env_id = env_id
        self.kwargs = kwargs

    def __call__(self) -> repro.ArchGymEnv:
        return repro.make(self.env_id, **self.kwargs)

    @property
    def env_kwargs(self) -> dict:
        """Construction kwargs a remote backend forwards to the server,
        so ``repro serve`` builds the same workload/objective variant."""
        return dict(self.kwargs)

    @property
    def fingerprint_signature(self) -> str:
        """Folds the construction kwargs (workload, objective, …) into
        the durable-sweep fingerprint — same env_id with a different
        workload is a different experiment and must not resume-merge."""
        return json.dumps(
            {"env_id": self.env_id, "kwargs": self.kwargs},
            sort_keys=True, default=str,
        )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ArchGym reproduction: ML-assisted architecture DSE.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("envs", help="list registered environments")

    sub.add_parser("agents", help="list agents and hyperparameter grids")

    run_p = sub.add_parser("run", help="run one agent on one environment")
    run_p.add_argument("--env", required=True, help="environment id (see `envs`)")
    run_p.add_argument("--agent", required=True, choices=sorted(HYPERPARAM_GRIDS))
    run_p.add_argument("--workload", default=None, help="environment workload")
    run_p.add_argument("--objective", default=None, help="environment objective")
    run_p.add_argument("--samples", type=int, default=200)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--hyperparams", default=None,
                       help="JSON dict of agent hyperparameters")

    sweep_p = sub.add_parser("sweep", help="hyperparameter-lottery sweep")
    sweep_p.add_argument("--env", required=True)
    sweep_p.add_argument("--agents", default=",".join(AGENT_NAMES),
                         help="comma-separated agent names")
    sweep_p.add_argument("--workload", default=None)
    sweep_p.add_argument("--objective", default=None)
    sweep_p.add_argument("--trials", type=int, default=4)
    sweep_p.add_argument("--samples", type=int, default=150)
    sweep_p.add_argument("--seed", type=int, default=0)
    sweep_p.add_argument("--workers", type=int, default=1,
                         help="process-pool width; trial results are "
                              "bit-identical for any worker count")
    sweep_p.add_argument("--no-cache", action="store_true",
                         help="disable the design-point evaluation cache")
    _add_durability_args(sweep_p)
    sweep_p.add_argument("--boxplots", action="store_true",
                         help="render per-agent distribution box plots")
    sweep_p.add_argument("--export", default=None,
                         help="write all trials to this path (.json or .csv)")

    col_p = sub.add_parser("collect", help="collect a multi-agent dataset")
    col_p.add_argument("--env", required=True)
    col_p.add_argument("--agents", default="rw,ga,aco")
    col_p.add_argument("--workload", default=None)
    col_p.add_argument("--samples", type=int, default=200,
                       help="samples per agent")
    col_p.add_argument("--seed", type=int, default=0)
    col_p.add_argument("--workers", type=int, default=1,
                       help="process-pool width (one task per agent)")
    col_p.add_argument("--no-cache", action="store_true",
                       help="disable the design-point evaluation cache")
    _add_durability_args(col_p)
    col_p.add_argument("--out", required=True, help="output JSONL path")

    serve_p = sub.add_parser(
        "serve", help="host environments as an HTTP evaluation service"
    )
    serve_p.add_argument("--envs", default=None,
                         help="comma-separated environment ids to serve "
                              "(default: every registered environment)")
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="bind port (0 picks a free one; the bound "
                              "url is printed on startup)")
    serve_p.add_argument("--cache-dir", default=None,
                         help="back the /cache design-point store with "
                              "this directory so it survives restarts "
                              "(default: in-memory)")
    return parser


def _add_durability_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--out-dir", default=None,
                        help="stream per-trial result shards into this "
                             "directory (atomic writes; killed runs keep "
                             "their progress)")
    parser.add_argument("--resume", action="store_true",
                        help="with --out-dir: skip trials whose shard is "
                             "already on disk and run only the remainder")
    parser.add_argument("--shared-cache", action="store_true",
                        help="share design-point evaluations across "
                             "trials/processes via a file-backed cache "
                             "under --out-dir (or, with --service-url, "
                             "the service's /cache store)")
    parser.add_argument("--service-url", default=None, action="append",
                        metavar="URL[=WEIGHT]",
                        help="dispatch cost-model evaluations to the "
                             "`repro serve` instance at this URL instead "
                             "of running them in-process (results stay "
                             "bit-identical); repeat the flag to spread "
                             "the sweep over several hosts with "
                             "least-load scheduling and failover. Append "
                             "=WEIGHT (default 1) to declare a host's "
                             "relative capacity: a weight-2 host takes "
                             "twice the load and twice the share of "
                             "every scattered generation")
    parser.add_argument("--service-batch", action="store_true",
                        help="route service evaluations through "
                             "POST /evaluate_batch so the server "
                             "memoizes design points into its /cache "
                             "store (results stay bit-identical)")
    parser.add_argument("--generation-dispatch", action="store_true",
                        help="drive trials generation-natively: GA/ACO "
                             "propose whole populations, cache hits are "
                             "resolved per point, and the misses ride "
                             "one batched backend call per generation — "
                             "one HTTP round trip per host on a service "
                             "pool (results stay byte-identical)")
    parser.add_argument("--pipeline", action="store_true",
                        help="stream generations instead of scattering "
                             "behind a barrier (implies "
                             "--generation-dispatch): hosts pull work "
                             "units as they finish and idle hosts steal "
                             "a straggler's remainder, so the next "
                             "generation starts without waiting on the "
                             "slowest host (results stay byte-identical)")
    parser.add_argument("--auto-weights", action="store_true",
                        help="self-tune the pool's dispatch weights "
                             "from each host's observed service rate "
                             "(/healthz counters, EWMA-smoothed, "
                             "clamped so no host starves) — "
                             "heterogeneous fleets rebalance "
                             "automatically (results stay "
                             "byte-identical); requires --service-url")
    parser.add_argument("--async-dispatch", action="store_true",
                        help="run the pool's scatter/stream fan-out as "
                             "coroutine tasks on one event loop instead "
                             "of one worker thread per chunk/host — a "
                             "32-host pool costs one OS thread, the "
                             "step to pools of hundreds of hosts "
                             "(results stay byte-identical); requires "
                             "--service-url")
    parser.add_argument("--cache-replicas", type=int, default=None,
                        metavar="N",
                        help="with --shared-cache and --service-url: "
                             "replicate every shared-cache write to N "
                             "pool hosts (default: min(2, pool size)) "
                             "so a dying cache host loses no entries — "
                             "reads fail over to a replica and revived "
                             "hosts are backfilled")
    parser.add_argument("--proxy-screen", action="store_true",
                        help="pre-screen generations with an online "
                             "surrogate trained from the shared cache: "
                             "agents' proposals are ranked by predicted "
                             "fitness and only the top slice is really "
                             "simulated (requires --shared-cache plus "
                             "--out-dir or --service-url; results change "
                             "— the decision is fingerprinted)")
    parser.add_argument("--proxy-oversample", type=int, default=4,
                        metavar="X",
                        help="with --proxy-screen: evaluate roughly 1/X "
                             "of each generation for real, the surrogate "
                             "answers the rest (default: 4)")
    parser.add_argument("--proxy-topk", type=int, default=None,
                        metavar="K",
                        help="with --proxy-screen: simulate exactly the "
                             "K best-predicted proposals per generation "
                             "(overrides --proxy-oversample)")
    parser.add_argument("--proxy-refresh", type=float, default=0.1,
                        metavar="FRAC",
                        help="with --proxy-screen: always ground-truth a "
                             "seeded random FRAC (of the accepted count) "
                             "of proxy-rejected proposals so the "
                             "surrogate cannot drift unchallenged "
                             "(default: 0.1)")
    parser.add_argument("--proxy-min-corpus", type=int, default=64,
                        metavar="N",
                        help="with --proxy-screen: fall back to plain "
                             "dispatch until the shared cache holds at "
                             "least N design points and the surrogate's "
                             "validation RMSE clears the gate "
                             "(default: 64)")
    parser.add_argument("--service-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="per-attempt socket timeout for service "
                             "requests; size it above your slowest "
                             "single evaluation (default: 60)")
    parser.add_argument("--service-retries", type=int, default=None,
                        help="transport-failure retries per service "
                             "request (default: 2)")


def _env_kwargs(args: argparse.Namespace) -> dict:
    kwargs = {}
    if getattr(args, "workload", None):
        kwargs["workload"] = args.workload
    if getattr(args, "objective", None):
        kwargs["objective"] = args.objective
    return kwargs


def _cmd_envs() -> int:
    for env_id in repro.registered_ids():
        env = repro.make(env_id)
        print(f"{env_id:18s} dim={env.action_space.dimension:3d} "
              f"|A|={env.action_space.cardinality:.3g} "
              f"obs={env.observation_metrics}")
    return 0


def _cmd_agents() -> int:
    for name in sorted(HYPERPARAM_GRIDS):
        print(f"{name}:")
        for key, values in HYPERPARAM_GRIDS[name].items():
            print(f"    {key} in {values}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    env = repro.make(args.env, **_env_kwargs(args))
    hyperparams = json.loads(args.hyperparams) if args.hyperparams else {}
    agent = make_agent(args.agent, env.action_space, seed=args.seed, **hyperparams)
    result = run_agent(agent, env, n_samples=args.samples, seed=args.seed)
    print(f"agent:       {agent.hyperparam_tag()}")
    print(f"samples:     {result.n_samples}")
    print(f"best reward: {result.best_reward:.6g}")
    print(f"target met:  {result.target_met}")
    print("best metrics:")
    for key, value in sorted(result.best_metrics.items()):
        print(f"    {key:14s} = {value:.6g}")
    print("best design:")
    for key, value in sorted(result.best_action.items()):
        print(f"    {key:22s} = {value}")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    agents = tuple(a.strip() for a in args.agents.split(",") if a.strip())
    report = run_lottery_sweep(
        RegistryEnvFactory(args.env, **_env_kwargs(args)),
        agents=agents, n_trials=args.trials,
        n_samples=args.samples, seed=args.seed,
        workers=args.workers, cache=False if args.no_cache else None,
        out_dir=args.out_dir, resume=args.resume,
        shared_cache=args.shared_cache, service_url=args.service_url,
        service_timeout_s=args.service_timeout,
        service_retries=args.service_retries,
        service_batch=args.service_batch,
        generation_dispatch=args.generation_dispatch,
        pipeline=args.pipeline,
        auto_weights=args.auto_weights,
        async_dispatch=args.async_dispatch,
        cache_replicas=args.cache_replicas,
        proxy_screen=args.proxy_screen,
        proxy_oversample=args.proxy_oversample,
        proxy_topk=args.proxy_topk,
        proxy_refresh=args.proxy_refresh,
        proxy_min_corpus=args.proxy_min_corpus,
    )
    print(report.print_table(boxplots=args.boxplots))
    if args.export:
        from repro.sweeps.export import save_report_csv, save_report_json

        if str(args.export).endswith(".csv"):
            save_report_csv(report, args.export)
        else:
            save_report_json(report, args.export)
        print(f"exported trials to {args.export}")
    return 0


def _cmd_collect(args: argparse.Namespace) -> int:
    from repro.core.errors import ArchGymError

    agents = tuple(a.strip() for a in args.agents.split(",") if a.strip())
    validate_agent_names(agents)
    if args.resume and not args.out_dir:
        raise ArchGymError("--resume requires --out-dir")
    if args.shared_cache and not (args.out_dir or args.service_url):
        raise ArchGymError("--shared-cache requires --out-dir or --service-url")
    factory = RegistryEnvFactory(args.env, **_env_kwargs(args))
    backend, server_cache_url, shared_cache_dir = resolve_execution_backend(
        args.service_url, args.shared_cache, args.out_dir,
        env_kwargs=factory.env_kwargs,
        timeout_s=args.service_timeout, retries=args.service_retries,
        batch=args.service_batch,
        auto_weights=args.auto_weights,
        async_dispatch=args.async_dispatch,
        cache_replicas=args.cache_replicas,
        proxy_screen=args.proxy_screen,
    )
    tasks = [
        TrialTask(
            index=i, agent=name, hyperparams={},
            agent_seed=args.seed, run_seed=args.seed,
            n_samples=args.samples, env_factory=factory,
            collect=True, cache=False if args.no_cache else None,
            shared_cache_dir=shared_cache_dir,
            backend=backend, server_cache_url=server_cache_url,
            cache_replicas=args.cache_replicas,
            generation_dispatch=args.generation_dispatch,
            pipeline=args.pipeline,
            proxy_screen=args.proxy_screen,
            proxy_oversample=args.proxy_oversample,
            proxy_topk=args.proxy_topk,
            proxy_refresh=args.proxy_refresh,
            proxy_min_corpus=args.proxy_min_corpus,
        )
        for i, name in enumerate(agents)
    ]
    if args.out_dir:
        from repro.sweeps.shards import execute_durable, sweep_fingerprint

        probe = factory()
        try:
            env_id = probe.env_id
        finally:
            probe.close()
        # Two call sites on purpose: adding the proxy kwargs
        # unconditionally would change every historical fingerprint and
        # strand pre-existing --out-dir shards. Only proxy-screened
        # collections carry the extra keys.
        if args.proxy_screen:
            fingerprint = sweep_fingerprint(
                kind="collect", env_id=env_id,
                env_signature=factory.fingerprint_signature,
                agents=list(agents), n_samples=args.samples, seed=args.seed,
                proxy_screen=args.proxy_screen,
                proxy_oversample=args.proxy_oversample,
                proxy_topk=args.proxy_topk,
                proxy_refresh=args.proxy_refresh,
                proxy_min_corpus=args.proxy_min_corpus,
            )
        else:
            fingerprint = sweep_fingerprint(
                kind="collect", env_id=env_id,
                env_signature=factory.fingerprint_signature,
                agents=list(agents), n_samples=args.samples, seed=args.seed,
            )
        manifest = {
            "fingerprint": fingerprint, "kind": "collect", "env_id": env_id,
            "env_signature": factory.fingerprint_signature,
            "agents": list(agents), "n_trials": 1, "n_samples": args.samples,
            "seed": args.seed, "collect": True, "n_tasks": len(tasks),
            "workers": args.workers,
        }
        outcomes = execute_durable(
            tasks, args.out_dir, manifest, workers=args.workers,
            resume=args.resume, keep_outcomes=True,
        )
    else:
        outcomes = execute_trials(tasks, workers=args.workers)
    dataset = ArchGymDataset.merge_all(
        [ArchGymDataset(o.env_id, o.transitions) for o in outcomes]
    )
    # Per-task environments restart their step counters; restore the
    # single-process global numbering before writing.
    dataset.renumber_steps()
    dataset.save_jsonl(args.out)
    print(f"wrote {len(dataset)} transitions from {len(dataset.sources)} "
          f"sources to {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import functools

    from repro.core.errors import ArchGymError
    from repro.service import EvaluationService

    if args.envs:
        env_ids = [e.strip() for e in args.envs.split(",") if e.strip()]
        unknown = [e for e in env_ids if e not in repro.registered_ids()]
        if unknown:
            raise ArchGymError(
                f"unknown environment id(s) {unknown}; "
                f"registered: {repro.registered_ids()}"
            )
    else:
        env_ids = list(repro.registered_ids())
    service = EvaluationService(
        host=args.host, port=args.port, cache_dir=args.cache_dir
    )
    for env_id in env_ids:
        service.register(env_id, functools.partial(repro.make, env_id))
    url = service.start()
    # The exact phrase tools/check_service.py (and humans) parse for.
    print(f"serving {len(env_ids)} environment(s) at {url}", flush=True)
    for env_id in env_ids:
        print(f"    {env_id}", flush=True)
    try:
        service.wait()
    except KeyboardInterrupt:
        print("shutting down", flush=True)
        service.stop()
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "envs":
        return _cmd_envs()
    if args.command == "agents":
        return _cmd_agents()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "collect":
        return _cmd_collect(args)
    if args.command == "serve":
        return _cmd_serve(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
