"""MAESTRO-style data-centric mapping cost model.

Evaluates a :class:`~repro.maestro.mapping.Mapping` on a fixed spatial
accelerator (256 PEs, per-PE L1 scratchpads, shared L2 buffer) for a DNN
layer, using reuse-based traffic analysis:

For each tensor T with index set I(T) (weights: {K, C}; inputs:
{C, P, Q}; outputs: {K, P, Q}), the number of times T is re-fetched
across a tiled loop nest equals the product of trip counts of loops that
(a) do not index T and (b) sit outside T's innermost indexing loop —
those iterations change the live working set beneath them. Applying
this at the DRAM->L2 and L2->L1 boundaries gives traffic per level;
runtime is the max of compute and bandwidth rooflines; energy follows
the access-count x per-level-cost sum.

Mappings whose tiles overflow a buffer level are *infeasible* and get
penalty costs — the MaestroGym search space is dominated by such points
(the paper quotes 1e24 raw points), so agents must navigate validity.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.core.errors import SimulationError
from repro.dnn.layers import ConvLayer
from repro.maestro.mapping import LOOP_DIMS, Mapping

__all__ = [
    "MaestroAccelerator",
    "MaestroLayerCost",
    "MaestroModel",
    "MAESTRO_INFEASIBLE",
    "CLOUD_ACCELERATOR",
    "EDGE_ACCELERATOR",
]

#: Penalty runtime/energy for infeasible mappings.
MAESTRO_INFEASIBLE = 1e9

#: Tensor index sets over the tiled loop dims.
_TENSOR_DIMS = {
    "W": ("K", "C"),
    "I": ("C", "P", "Q"),
    "O": ("K", "P", "Q"),
}


@dataclass(frozen=True)
class MaestroAccelerator:
    """The fixed accelerator MAESTRO mappings target."""

    num_pes: int = 256
    l1_words: int = 512            # per PE
    l2_words: int = 512 * 1024     # shared buffer (1 MiB of 16-bit words)
    dram_bw: float = 16.0          # words / cycle
    l2_bw: float = 64.0            # words / cycle
    clock_ghz: float = 1.0
    e_mac_pj: float = 0.2
    e_l1_pj: float = 0.15
    e_l2_pj: float = 1.8
    e_dram_pj: float = 35.0
    area_mm2: float = 14.0

    def __post_init__(self) -> None:
        if self.num_pes < 1 or self.l1_words < 1 or self.l2_words < 1:
            raise SimulationError("accelerator sizes must be positive")


#: The default cloud-scale target (256 PEs, 1 MiB shared buffer).
CLOUD_ACCELERATOR = MaestroAccelerator()

#: An edge-scale target: fewer PEs, smaller buffers, tighter bandwidth.
#: Mappings that win on the cloud target often overflow this one — useful
#: for studying mapping portability.
EDGE_ACCELERATOR = MaestroAccelerator(
    num_pes=64,
    l1_words=256,
    l2_words=128 * 1024,
    dram_bw=4.0,
    l2_bw=16.0,
    clock_ghz=0.8,
    area_mm2=4.5,
)


@dataclass(frozen=True)
class MaestroLayerCost:
    """Cost of one (mapping, layer) pair."""

    layer: str
    feasible: bool
    cycles: float
    runtime_ms: float
    energy_mj: float
    dram_words: float
    l2_words: float
    pes_used: int
    utilization: float


class MaestroModel:
    """Evaluates mappings on layers and whole networks."""

    def __init__(self, accelerator: MaestroAccelerator = MaestroAccelerator()):
        self.acc = accelerator

    # -- reuse analysis helpers ---------------------------------------------------

    @staticmethod
    def _refetch_multiplier(order: str, tensor: str, trips: Dict[str, float]) -> float:
        """Product of trip counts of loops outside the tensor's innermost
        indexing loop that do not index the tensor."""
        dims = _TENSOR_DIMS[tensor]
        innermost = max(order.index(d) for d in dims)
        mult = 1.0
        for pos, d in enumerate(order):
            if pos < innermost and d not in dims:
                mult *= trips[d]
        return mult

    @staticmethod
    def _tensor_words(tensor: str, sizes: Dict[str, float], layer: ConvLayer) -> float:
        if tensor == "W":
            return sizes["K"] * sizes["C"] * layer.R * layer.S
        if tensor == "I":
            ih = (sizes["P"] - 1) * layer.stride + layer.R
            iw = (sizes["Q"] - 1) * layer.stride + layer.S
            return sizes["C"] * ih * iw
        return sizes["K"] * sizes["P"] * sizes["Q"]

    # -- single layer ----------------------------------------------------------------

    def evaluate_layer(self, mapping: Mapping, layer: ConvLayer) -> MaestroLayerCost:
        """Cost one layer under ``mapping`` (tiles clipped to layer dims)."""
        acc = self.acc
        dims: Dict[str, int] = {
            "K": layer.K,
            "C": 1 if layer.depthwise else layer.C,
            "P": layer.P,
            "Q": layer.Q,
        }
        # clip tiles to the layer and enforce L1 <= L2 <= dim
        t1 = {d: min(mapping.l1_tile(d), dims[d]) for d in LOOP_DIMS}
        t2 = {d: min(max(mapping.l2_tile(d), t1[d]), dims[d]) for d in LOOP_DIMS}

        # buffer footprints
        l1_fill = sum(
            self._tensor_words(t, {d: float(t1[d]) for d in LOOP_DIMS}, layer)
            for t in _TENSOR_DIMS
        )
        l2_fill = sum(
            self._tensor_words(t, {d: float(t2[d]) for d in LOOP_DIMS}, layer)
            for t in _TENSOR_DIMS
        )
        if l1_fill > acc.l1_words or l2_fill > acc.l2_words:
            return MaestroLayerCost(
                layer=layer.name, feasible=False,
                cycles=MAESTRO_INFEASIBLE, runtime_ms=MAESTRO_INFEASIBLE,
                energy_mj=MAESTRO_INFEASIBLE, dram_words=MAESTRO_INFEASIBLE,
                l2_words=MAESTRO_INFEASIBLE, pes_used=0, utilization=0.0,
            )

        macs = float(layer.macs)
        trips2 = {d: math.ceil(dims[d] / t2[d]) for d in LOOP_DIMS}   # DRAM->L2
        trips1 = {d: math.ceil(t2[d] / t1[d]) for d in LOOP_DIMS}     # L2->L1
        n_l2_iters = math.prod(trips2.values())

        # spatial mapping: the parallel dim's L2 tile is split into L1-tile
        # chunks across clusters of PEs
        par = mapping.parallel_dim
        spatial_ways = math.ceil(t2[par] / t1[par])
        pes_used = min(spatial_ways * mapping.cluster, acc.num_pes)
        utilization = pes_used / acc.num_pes

        # traffic
        dram = 0.0
        l2 = 0.0
        for tensor in _TENSOR_DIMS:
            full = self._tensor_words(tensor, {d: float(dims[d]) for d in LOOP_DIMS}, layer)
            tile2 = self._tensor_words(tensor, {d: float(t2[d]) for d in LOOP_DIMS}, layer)
            dram += full * self._refetch_multiplier(mapping.order, tensor, trips2)
            l2 += tile2 * self._refetch_multiplier(mapping.order, tensor, trips1) * n_l2_iters
        # outputs are also written back once
        dram += dims["K"] * dims["P"] * dims["Q"]

        # the parallel dim's spatial split removes its temporal trips at L1
        compute_cycles = macs / max(pes_used, 1)
        dram_cycles = dram / acc.dram_bw
        l2_cycles = l2 / acc.l2_bw
        cycles = max(compute_cycles, dram_cycles, l2_cycles)

        l1_accesses = 3.0 * macs
        energy_pj = (
            macs * acc.e_mac_pj
            + l1_accesses * acc.e_l1_pj
            + l2 * acc.e_l2_pj
            + dram * acc.e_dram_pj
        )
        runtime_ms = cycles / (acc.clock_ghz * 1e9) * 1e3
        return MaestroLayerCost(
            layer=layer.name, feasible=True,
            cycles=cycles, runtime_ms=runtime_ms,
            energy_mj=energy_pj * 1e-9,
            dram_words=dram, l2_words=l2,
            pes_used=pes_used, utilization=utilization,
        )

    # -- whole network -----------------------------------------------------------------

    def evaluate_network(
        self, mapping: Mapping, layers: Sequence[ConvLayer]
    ) -> Dict[str, float]:
        """Sum layer costs into the MaestroGym observation:
        runtime (ms), throughput (GMACs/s), energy (mJ), area (mm^2)."""
        runtime = 0.0
        energy = 0.0
        feasible = True
        total_macs = 0.0
        for layer in layers:
            cost = self.evaluate_layer(mapping, layer)
            feasible &= cost.feasible
            runtime += cost.runtime_ms * layer.repeat
            energy += cost.energy_mj * layer.repeat
            total_macs += layer.macs * layer.repeat
        throughput = total_macs / (runtime * 1e6) if runtime > 0 else 0.0
        return {
            "runtime": runtime,
            "throughput": throughput,
            "energy": energy,
            "area": self.acc.area_mm2,
            "feasible": float(feasible),
        }
