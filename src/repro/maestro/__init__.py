"""DNN mapping substrate — the MAESTRO stand-in (paper Table 3)."""

from repro.maestro.mapping import LOOP_DIMS, LOOP_ORDERS, Mapping, mapping_space
from repro.maestro.model import (
    CLOUD_ACCELERATOR,
    EDGE_ACCELERATOR,
    MAESTRO_INFEASIBLE,
    MaestroAccelerator,
    MaestroLayerCost,
    MaestroModel,
)

__all__ = [
    "LOOP_DIMS",
    "LOOP_ORDERS",
    "Mapping",
    "mapping_space",
    "MAESTRO_INFEASIBLE",
    "CLOUD_ACCELERATOR",
    "EDGE_ACCELERATOR",
    "MaestroAccelerator",
    "MaestroLayerCost",
    "MaestroModel",
]
