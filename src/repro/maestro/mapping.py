"""Data-centric DNN mapping directives — the MaestroGym action space.

MAESTRO describes a mapping as per-dimension tile sizes at two buffer
levels (L1 per-PE scratchpads, L2 shared buffer), a spatial
parallelization dimension with a cluster size, and the temporal loop
order. GAMMA searches exactly this genome; the Fig. 3 MaestroGym space
(1e24 raw design points for a VGG16 layer) is this product space.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations
from typing import Any, Dict, Mapping as TMapping

from repro.core.errors import SimulationError
from repro.core.spaces import Categorical, CompositeSpace, Discrete

__all__ = ["Mapping", "mapping_space", "LOOP_DIMS", "LOOP_ORDERS"]

#: The temporally tiled loop dimensions (filter dims R/S stay unrolled).
LOOP_DIMS = ("K", "C", "P", "Q")

#: All 24 temporal orderings of the tiled dimensions, outermost first.
LOOP_ORDERS = tuple("".join(p) for p in permutations(LOOP_DIMS))


@dataclass(frozen=True)
class Mapping:
    """One mapping design point (applied layer-wise with clipping)."""

    parallel_dim: str = "K"
    cluster: int = 16
    order: str = "KCPQ"
    tile_k1: int = 2
    tile_c1: int = 2
    tile_p1: int = 2
    tile_q1: int = 2
    tile_k2: int = 64
    tile_c2: int = 32
    tile_p2: int = 8
    tile_q2: int = 8

    def __post_init__(self) -> None:
        if self.parallel_dim not in LOOP_DIMS:
            raise SimulationError(f"parallel_dim must be one of {LOOP_DIMS}")
        if self.order not in LOOP_ORDERS:
            raise SimulationError(f"order {self.order!r} is not a permutation of {LOOP_DIMS}")
        if self.cluster < 1:
            raise SimulationError("cluster must be >= 1")
        for name in (
            "tile_k1", "tile_c1", "tile_p1", "tile_q1",
            "tile_k2", "tile_c2", "tile_p2", "tile_q2",
        ):
            if getattr(self, name) < 1:
                raise SimulationError(f"{name} must be >= 1")

    def l1_tile(self, dim: str) -> int:
        return {"K": self.tile_k1, "C": self.tile_c1,
                "P": self.tile_p1, "Q": self.tile_q1}[dim]

    def l2_tile(self, dim: str) -> int:
        return {"K": self.tile_k2, "C": self.tile_c2,
                "P": self.tile_p2, "Q": self.tile_q2}[dim]

    @classmethod
    def from_action(cls, action: TMapping[str, Any]) -> "Mapping":
        return cls(
            parallel_dim=action["ParallelDim"],
            cluster=int(action["ClusterSize"]),
            order=action["LoopOrder"],
            tile_k1=int(action["TileK_L1"]),
            tile_c1=int(action["TileC_L1"]),
            tile_p1=int(action["TileP_L1"]),
            tile_q1=int(action["TileQ_L1"]),
            tile_k2=int(action["TileK_L2"]),
            tile_c2=int(action["TileC_L2"]),
            tile_p2=int(action["TileP_L2"]),
            tile_q2=int(action["TileQ_L2"]),
        )

    def to_action(self) -> Dict[str, Any]:
        return {
            "ParallelDim": self.parallel_dim,
            "ClusterSize": self.cluster,
            "LoopOrder": self.order,
            "TileK_L1": self.tile_k1,
            "TileC_L1": self.tile_c1,
            "TileP_L1": self.tile_p1,
            "TileQ_L1": self.tile_q1,
            "TileK_L2": self.tile_k2,
            "TileC_L2": self.tile_c2,
            "TileP_L2": self.tile_p2,
            "TileQ_L2": self.tile_q2,
        }


def mapping_space() -> CompositeSpace:
    """The MaestroGym action space (paper Fig. 3)."""
    return CompositeSpace(
        [
            Categorical("ParallelDim", LOOP_DIMS),
            Discrete.pow2("ClusterSize", 1, 64),
            Categorical("LoopOrder", LOOP_ORDERS),
            Discrete.pow2("TileK_L1", 1, 64),
            Discrete.pow2("TileC_L1", 1, 64),
            Discrete.pow2("TileP_L1", 1, 16),
            Discrete.pow2("TileQ_L1", 1, 16),
            Discrete.pow2("TileK_L2", 1, 512),
            Discrete.pow2("TileC_L2", 1, 512),
            Discrete.pow2("TileP_L2", 1, 64),
            Discrete.pow2("TileQ_L2", 1, 64),
        ]
    )
