"""Eyeriss-style accelerator architecture description (TimeloopGym).

The Fig. 3 TimeloopGym action space tunes the accelerator's PE array
dimensions, per-PE scratchpad sizes, shared global buffer, interconnect
bandwidths and clock. ``AcceleratorConfig`` is one design point; energy
constants follow the Eyeriss relative-cost hierarchy (register file <<
global buffer << DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping

from repro.core.errors import SimulationError
from repro.core.spaces import CompositeSpace, Discrete

__all__ = ["AcceleratorConfig", "EnergyModel", "accelerator_space", "EYERISS_LIKE"]


@dataclass(frozen=True)
class EnergyModel:
    """Energy per event in picojoules (16-bit words)."""

    e_mac: float = 0.2
    e_spad: float = 0.15       # per register-file/scratchpad word access
    e_glb: float = 1.8         # per global-buffer word access
    e_dram: float = 35.0       # per DRAM word access
    e_noc: float = 0.5         # per word traversing the array NoC

    def __post_init__(self) -> None:
        if not (self.e_spad < self.e_glb < self.e_dram):
            raise SimulationError(
                "energy hierarchy must satisfy spad < glb < dram"
            )


@dataclass(frozen=True)
class AcceleratorConfig:
    """One DNN accelerator design point (Eyeriss-like template)."""

    pe_rows: int = 12
    pe_cols: int = 14
    ifmap_spad_entries: int = 24       # words per PE
    weight_spad_entries: int = 224     # words per PE
    psum_spad_entries: int = 24        # words per PE
    glb_kb: int = 128
    glb_bw: int = 16                   # words per cycle
    dram_bw: int = 8                   # words per cycle
    clock_ghz: float = 1.0
    word_bytes: int = 2

    def __post_init__(self) -> None:
        for attr in (
            "pe_rows", "pe_cols", "ifmap_spad_entries", "weight_spad_entries",
            "psum_spad_entries", "glb_kb", "glb_bw", "dram_bw",
        ):
            if getattr(self, attr) < 1:
                raise SimulationError(f"{attr} must be >= 1")
        if self.clock_ghz <= 0:
            raise SimulationError("clock_ghz must be positive")
        if self.word_bytes not in (1, 2, 4):
            raise SimulationError("word_bytes must be 1, 2 or 4")

    @property
    def num_pes(self) -> int:
        return self.pe_rows * self.pe_cols

    @property
    def glb_words(self) -> int:
        return self.glb_kb * 1024 // self.word_bytes

    @property
    def weight_l1_words(self) -> int:
        """Aggregate weight scratchpad capacity across the array."""
        return self.weight_spad_entries * self.num_pes

    @property
    def ifmap_l1_words(self) -> int:
        return self.ifmap_spad_entries * self.num_pes

    @property
    def psum_l1_words(self) -> int:
        return self.psum_spad_entries * self.num_pes

    @property
    def area_mm2(self) -> float:
        """Analytical area: PEs + scratchpads + global buffer + overhead."""
        spad_bytes_per_pe = self.word_bytes * (
            self.ifmap_spad_entries + self.weight_spad_entries + self.psum_spad_entries
        )
        pe_area = self.num_pes * (0.010 + spad_bytes_per_pe * 2.0e-5)
        glb_area = self.glb_kb * 0.020
        noc_area = 0.002 * self.num_pes
        return pe_area + glb_area + noc_area + 1.5

    @classmethod
    def from_action(cls, action: Mapping[str, Any]) -> "AcceleratorConfig":
        """Build a config from a TimeloopGym action dict."""
        return cls(
            pe_rows=int(action["NumPEsX"]),
            pe_cols=int(action["NumPEsY"]),
            ifmap_spad_entries=int(action["IfmapSpadEntries"]),
            weight_spad_entries=int(action["WeightsSpadEntries"]),
            psum_spad_entries=int(action["PsumSpadEntries"]),
            glb_kb=int(action["GlbSizeKB"]),
            glb_bw=int(action["GlbBwWordsPerCycle"]),
            dram_bw=int(action["DramBwWordsPerCycle"]),
            clock_ghz=float(action["ClockGHz"]),
        )

    def to_action(self) -> Dict[str, Any]:
        return {
            "NumPEsX": self.pe_rows,
            "NumPEsY": self.pe_cols,
            "IfmapSpadEntries": self.ifmap_spad_entries,
            "WeightsSpadEntries": self.weight_spad_entries,
            "PsumSpadEntries": self.psum_spad_entries,
            "GlbSizeKB": self.glb_kb,
            "GlbBwWordsPerCycle": self.glb_bw,
            "DramBwWordsPerCycle": self.dram_bw,
            "ClockGHz": self.clock_ghz,
        }


#: The Eyeriss-like reference design the paper searches around (§6.1).
EYERISS_LIKE = AcceleratorConfig()


def accelerator_space() -> CompositeSpace:
    """The TimeloopGym action space (paper Fig. 3)."""
    return CompositeSpace(
        [
            Discrete.pow2("NumPEsX", 2, 32),
            Discrete.pow2("NumPEsY", 2, 32),
            Discrete.pow2("IfmapSpadEntries", 8, 128),
            Discrete.pow2("WeightsSpadEntries", 16, 512),
            Discrete.pow2("PsumSpadEntries", 8, 128),
            Discrete.pow2("GlbSizeKB", 32, 2048),
            Discrete.pow2("GlbBwWordsPerCycle", 4, 64),
            Discrete.pow2("DramBwWordsPerCycle", 2, 32),
            Discrete("ClockGHz", low=0.6, high=1.8, step=0.2, integer=False),
        ]
    )
