"""DNN accelerator substrate — the Timeloop stand-in (paper Table 3)."""

from repro.timeloop.arch import (
    EYERISS_LIKE,
    AcceleratorConfig,
    EnergyModel,
    accelerator_space,
)
from repro.timeloop.model import INFEASIBLE_PENALTY, LayerCost, TimeloopModel

__all__ = [
    "EYERISS_LIKE",
    "AcceleratorConfig",
    "EnergyModel",
    "accelerator_space",
    "INFEASIBLE_PENALTY",
    "LayerCost",
    "TimeloopModel",
]
