"""Analytical DNN-accelerator cost model with an internal mapper.

This is the Timeloop stand-in: for one :class:`AcceleratorConfig` and one
:class:`ConvLayer` it searches a space of loop tilings (the "mapper"),
evaluates each candidate with reuse-based access counting (the "model"),
and returns the best mapping's ``<latency, energy, area>`` — exactly the
role Timeloop plays inside TimeloopGym.

Model structure (three-level hierarchy: DRAM -> global buffer -> per-PE
scratchpads -> MACs), loop order ``P (outer) -> K -> C (inner)``:

- weights are re-fetched from DRAM once per P-tile unless the whole
  weight tensor fits in (half of) the global buffer,
- inputs are re-fetched once per K-tile (with a halo-overlap factor),
- partial sums accumulate in the psum scratchpad across the C loop and
  are written to DRAM exactly once,
- scratchpad traffic is 3 accesses per MAC (read W, read I, update O),
  with an extra input-replay factor when the ifmap scratchpad cannot
  hold the sliding window,
- cycles = max(compute, DRAM bandwidth, GLB bandwidth) under perfect
  double buffering.

The candidate tilings are power-of-two grids per dimension, evaluated
fully vectorized in numpy; the mapper picks the feasible candidate with
the lowest energy-delay product.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.dnn.layers import ConvLayer
from repro.timeloop.arch import AcceleratorConfig, EnergyModel

__all__ = ["LayerCost", "TimeloopModel"]

#: Cost assigned to layers no mapping can fit (the paper's "infeasible
#: design points" — they must be representable, not crash the search).
INFEASIBLE_PENALTY = 1e9


@dataclass(frozen=True)
class LayerCost:
    """Mapper output for one layer on one architecture."""

    layer: str
    feasible: bool
    cycles: float
    latency_ms: float
    energy_mj: float
    dram_words: float
    glb_words: float
    utilization: float
    tile_k: int = 1
    tile_c: int = 1
    tile_p: int = 1


def _pow2_upto(n: int, cap: int = 4096) -> np.ndarray:
    vals = [1]
    while vals[-1] * 2 <= min(n, cap):
        vals.append(vals[-1] * 2)
    if vals[-1] != n and n <= cap:
        vals.append(n)
    return np.array(vals, dtype=np.int64)


class TimeloopModel:
    """Evaluates layers (and whole networks) on accelerator configs."""

    def __init__(self, energy: EnergyModel = EnergyModel()):
        self.energy = energy

    # -- single layer -------------------------------------------------------------

    def evaluate_layer(self, arch: AcceleratorConfig, layer: ConvLayer) -> LayerCost:
        """Map and cost one layer; returns the best feasible mapping."""
        channels = 1 if layer.depthwise else layer.C
        tk = _pow2_upto(layer.K)
        tc = _pow2_upto(channels)
        tp = _pow2_upto(layer.P)
        TK, TC, TP = (a.reshape(-1) for a in np.meshgrid(tk, tc, tp, indexing="ij"))
        TK, TC, TP = (
            np.repeat(tk, len(tc) * len(tp)),
            np.tile(np.repeat(tc, len(tp)), len(tk)),
            np.tile(tp, len(tk) * len(tc)),
        )

        R, S, P, Q, stride = layer.R, layer.S, layer.P, layer.Q, layer.stride
        in_w = (Q - 1) * stride + S
        macs = float(layer.macs)

        # tile footprints (words)
        wt = TK * TC * R * S
        pt = TK * TP * Q
        it = TC * ((TP - 1) * stride + R) * in_w

        feasible = (
            (wt <= arch.weight_l1_words)
            & (pt <= arch.psum_l1_words)
            & (wt + pt + np.minimum(it, arch.glb_words) <= arch.glb_words)
        )
        if not feasible.any():
            return LayerCost(
                layer=layer.name,
                feasible=False,
                cycles=INFEASIBLE_PENALTY,
                latency_ms=INFEASIBLE_PENALTY,
                energy_mj=INFEASIBLE_PENALTY,
                dram_words=INFEASIBLE_PENALTY,
                glb_words=INFEASIBLE_PENALTY,
                utilization=0.0,
            )

        n_k = np.ceil(layer.K / TK)
        n_c = np.ceil(channels / TC)
        n_p = np.ceil(P / TP)

        w_words = float(layer.weight_words)
        i_words = float(layer.input_words)
        o_words = float(layer.output_words)

        # halo: input rows refetched at P-tile boundaries
        halo = ((TP - 1) * stride + R) / np.maximum(TP * stride, 1)
        halo = np.maximum(halo, 1.0)

        # DRAM traffic
        w_resident = w_words <= 0.5 * arch.glb_words
        dram_w = np.where(w_resident, w_words, w_words * n_p)
        i_resident = i_words <= 0.5 * arch.glb_words
        dram_i = np.where(i_resident, i_words * halo, i_words * halo * n_k)
        dram_o = o_words
        dram = dram_w + dram_i + dram_o

        # GLB traffic: spad refills + psum write-through
        glb_w = w_words * n_p
        glb_i = i_words * halo * n_k
        # input replay when the ifmap spad cannot hold the reuse window
        window = TC * R * S
        replay = np.clip(np.ceil(window / max(arch.ifmap_l1_words / arch.num_pes, 1.0)), 1, R * S)
        glb_i = glb_i * replay
        glb_o = o_words
        glb = glb_w + glb_i + glb_o

        # spad traffic: two operand reads + one psum update per MAC
        spad = 3.0 * macs
        # NoC traffic: every GLB word crosses the array interconnect
        noc = glb

        # cycles: spatial work per pass bounds PE utilization
        spatial = np.minimum(TK * TP * Q, arch.num_pes)
        util = spatial / arch.num_pes
        compute_cycles = macs / np.maximum(spatial, 1)
        dram_cycles = dram / arch.dram_bw
        glb_cycles = glb / arch.glb_bw
        cycles = np.maximum.reduce([compute_cycles, dram_cycles, glb_cycles])

        e = self.energy
        energy_pj = (
            macs * e.e_mac + spad * e.e_spad + glb * e.e_glb
            + dram * e.e_dram + noc * e.e_noc
        )
        latency_s = cycles / (arch.clock_ghz * 1e9)
        edp = np.where(feasible, energy_pj * latency_s, np.inf)

        best = int(np.argmin(edp))
        return LayerCost(
            layer=layer.name,
            feasible=True,
            cycles=float(cycles[best]),
            latency_ms=float(latency_s[best] * 1e3),
            energy_mj=float(energy_pj[best] * 1e-9),
            dram_words=float(dram[best]),
            glb_words=float(glb[best]),
            utilization=float(util[best]),
            tile_k=int(TK[best]),
            tile_c=int(TC[best]),
            tile_p=int(TP[best]),
        )

    # -- whole network --------------------------------------------------------------

    def evaluate_network(
        self, arch: AcceleratorConfig, layers: Sequence[ConvLayer]
    ) -> Dict[str, float]:
        """Sum layer costs (honoring ``repeat``) into the TimeloopGym
        observation: latency (ms), energy (mJ), area (mm^2)."""
        latency = 0.0
        energy = 0.0
        feasible = True
        utilization = 0.0
        total_macs = sum(layer.macs * layer.repeat for layer in layers)
        for layer in layers:
            cost = self.evaluate_layer(arch, layer)
            feasible &= cost.feasible
            latency += cost.latency_ms * layer.repeat
            energy += cost.energy_mj * layer.repeat
            utilization += cost.utilization * layer.macs * layer.repeat / max(total_macs, 1)
        return {
            "latency": latency,
            "energy": energy,
            "area": arch.area_mm2,
            "feasible": float(feasible),
            "utilization": utilization,
        }
