"""Dataset analytics: coverage and diversity measures (paper §7.3).

The diversity argument of §7.3 — different agents explore the design
space differently, so merged datasets cover more of it — is made
quantitative here:

- :func:`parameter_coverage` — per-dimension fraction of admissible
  values that appear in the dataset,
- :func:`action_entropy` — mean normalized entropy of each dimension's
  empirical value distribution (1.0 = uniform exploration, 0.0 = a
  single value),
- :func:`unique_design_fraction` — deduplicated share of design points,
- :func:`pairwise_source_overlap` — Jaccard overlap of the design sets
  visited by two agents (low overlap = complementary exploration).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.dataset import ArchGymDataset
from repro.core.errors import DatasetError
from repro.core.spaces import CompositeSpace

__all__ = [
    "parameter_coverage",
    "action_entropy",
    "unique_design_fraction",
    "pairwise_source_overlap",
    "diversity_report",
]


def _encoded(dataset: ArchGymDataset, space: CompositeSpace) -> np.ndarray:
    if len(dataset) == 0:
        raise DatasetError("dataset is empty")
    return np.stack([space.encode(t.action) for t in dataset])


def parameter_coverage(
    dataset: ArchGymDataset, space: CompositeSpace
) -> Dict[str, float]:
    """Fraction of each parameter's admissible values seen at least once."""
    E = _encoded(dataset, space)
    return {
        p.name: len(np.unique(E[:, i])) / p.cardinality
        for i, p in enumerate(space.parameters)
    }


def action_entropy(dataset: ArchGymDataset, space: CompositeSpace) -> float:
    """Mean normalized entropy of the per-dimension value distributions."""
    E = _encoded(dataset, space)
    entropies = []
    for i, p in enumerate(space.parameters):
        if p.cardinality < 2:
            continue
        counts = np.bincount(E[:, i], minlength=p.cardinality).astype(float)
        probs = counts / counts.sum()
        nonzero = probs[probs > 0]
        h = -(nonzero * np.log(nonzero)).sum() / np.log(p.cardinality)
        entropies.append(h)
    return float(np.mean(entropies)) if entropies else 0.0


def unique_design_fraction(dataset: ArchGymDataset, space: CompositeSpace) -> float:
    """Share of logged transitions that are distinct design points."""
    E = _encoded(dataset, space)
    unique = len({tuple(row) for row in E})
    return unique / len(E)


def pairwise_source_overlap(
    dataset: ArchGymDataset, space: CompositeSpace, source_a: str, source_b: str
) -> float:
    """Jaccard overlap of the design-point sets of two sources."""
    set_a = {
        tuple(space.encode(t.action))
        for t in dataset
        if t.source == source_a
    }
    set_b = {
        tuple(space.encode(t.action))
        for t in dataset
        if t.source == source_b
    }
    if not set_a or not set_b:
        raise DatasetError(
            f"sources {source_a!r}/{source_b!r} missing or empty in dataset"
        )
    union = set_a | set_b
    return len(set_a & set_b) / len(union)


def diversity_report(
    dataset: ArchGymDataset, space: CompositeSpace
) -> Dict[str, float]:
    """Summary used by the diversity benches: entropy, uniqueness, and
    mean per-parameter coverage."""
    coverage = parameter_coverage(dataset, space)
    return {
        "n": float(len(dataset)),
        "n_sources": float(len(dataset.sources)),
        "mean_coverage": float(np.mean(list(coverage.values()))),
        "action_entropy": action_entropy(dataset, space),
        "unique_fraction": unique_design_fraction(dataset, space),
    }
