"""Parameter spaces for architecture design space exploration.

The ArchGym interface (paper §3.3, Fig. 3) exposes each environment's
tunable architecture parameters as a mixed categorical/numeric space.
Every agent — whether it reasons over integer indices (GA genomes, ACO
pheromone tables), unit-interval vectors (Bayesian optimization, RL
policies) or raw parameter dictionaries (random walker) — interacts with
the *same* space object, which provides lossless conversions between the
three representations:

``dict``  <->  ``index vector`` (one integer per dimension)
          <->  ``unit vector``  (one float in [0, 1] per dimension)

The design mirrors Fig. 3 of the paper: numeric parameters are specified
in ``(min, max, step)`` tuple format and categorical parameters as an
explicit choice list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

import numpy as np

from repro.core.errors import SpaceError

__all__ = [
    "Parameter",
    "Categorical",
    "Discrete",
    "Continuous",
    "CompositeSpace",
]


class Parameter:
    """A single named design parameter.

    Subclasses implement a finite (or discretized) set of admissible
    values, ordered so that each value has a stable integer index. Agents
    that operate on indices or unit floats use :meth:`to_index`,
    :meth:`from_index`, :meth:`to_unit`, :meth:`from_unit`.
    """

    name: str

    @property
    def cardinality(self) -> int:
        """Number of admissible values."""
        raise NotImplementedError

    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a uniformly random admissible value."""
        return self.from_index(int(rng.integers(self.cardinality)))

    def contains(self, value: Any) -> bool:
        """Return True if ``value`` is admissible for this parameter."""
        raise NotImplementedError

    def to_index(self, value: Any) -> int:
        """Map an admissible value to its ordinal index."""
        raise NotImplementedError

    def from_index(self, index: int) -> Any:
        """Map an ordinal index back to the parameter value."""
        raise NotImplementedError

    def to_unit(self, value: Any) -> float:
        """Map an admissible value to the unit interval [0, 1].

        The mapping places the ``k``-th of ``n`` values at the *center* of
        the ``k``-th of ``n`` equal bins, so that :meth:`from_unit` of any
        float in that bin recovers the value (round-trip stability).
        """
        n = self.cardinality
        if n == 1:
            return 0.5
        return (self.to_index(value) + 0.5) / n

    def from_unit(self, u: float) -> Any:
        """Map a float in [0, 1] to the nearest admissible value."""
        n = self.cardinality
        u = min(max(float(u), 0.0), 1.0)
        index = min(int(u * n), n - 1)
        return self.from_index(index)

    def values(self) -> Iterator[Any]:
        """Iterate over all admissible values in index order."""
        for i in range(self.cardinality):
            yield self.from_index(i)


@dataclass(frozen=True)
class Categorical(Parameter):
    """A parameter drawn from an explicit, ordered list of choices.

    Example: the DRAM controller page policy
    ``Categorical("PagePolicy", ("Open", "OpenAdaptive", "Closed",
    "ClosedAdaptive"))``.
    """

    name: str
    choices: Tuple[Any, ...]

    def __post_init__(self) -> None:
        if len(self.choices) == 0:
            raise SpaceError(f"categorical parameter {self.name!r} has no choices")
        if len(set(map(repr, self.choices))) != len(self.choices):
            raise SpaceError(f"categorical parameter {self.name!r} has duplicate choices")

    @property
    def cardinality(self) -> int:
        return len(self.choices)

    def contains(self, value: Any) -> bool:
        return value in self.choices

    def to_index(self, value: Any) -> int:
        try:
            return self.choices.index(value)
        except ValueError:
            raise SpaceError(
                f"value {value!r} is not a choice of parameter {self.name!r}; "
                f"choices are {self.choices!r}"
            ) from None

    def from_index(self, index: int) -> Any:
        if not 0 <= index < len(self.choices):
            raise SpaceError(
                f"index {index} out of range for parameter {self.name!r} "
                f"with {len(self.choices)} choices"
            )
        return self.choices[index]


@dataclass(frozen=True)
class Discrete(Parameter):
    """A numeric parameter on the grid ``low, low+step, ..., <= high``.

    This is the paper's ``(min, max, step)`` tuple format from Fig. 3.
    ``log2`` grids (1, 2, 4, 8, ...) common in buffer sizing are expressed
    by ``Discrete.pow2(name, low, high)``.
    """

    name: str
    low: float
    high: float
    step: float = 1.0
    integer: bool = True

    def __post_init__(self) -> None:
        if self.step <= 0:
            raise SpaceError(f"parameter {self.name!r} needs step > 0, got {self.step}")
        if self.high < self.low:
            raise SpaceError(
                f"parameter {self.name!r} needs high >= low, got "
                f"[{self.low}, {self.high}]"
            )

    @classmethod
    def pow2(cls, name: str, low: int, high: int) -> "Categorical":
        """A power-of-two grid expressed as a categorical over 2**k values."""
        if low <= 0 or high < low:
            raise SpaceError(f"pow2 parameter {name!r} needs 0 < low <= high")
        values = []
        v = low
        while v <= high:
            values.append(v)
            v *= 2
        return Categorical(name, tuple(values))

    @property
    def cardinality(self) -> int:
        return int(math.floor((self.high - self.low) / self.step + 1e-9)) + 1

    def contains(self, value: Any) -> bool:
        if not isinstance(value, (int, float, np.integer, np.floating)):
            return False
        if value < self.low - 1e-9 or value > self.high + 1e-9:
            return False
        k = (float(value) - self.low) / self.step
        return abs(k - round(k)) < 1e-6

    def to_index(self, value: Any) -> int:
        if not self.contains(value):
            raise SpaceError(
                f"value {value!r} is not on the grid of parameter {self.name!r} "
                f"(low={self.low}, high={self.high}, step={self.step})"
            )
        return int(round((float(value) - self.low) / self.step))

    def from_index(self, index: int) -> Any:
        if not 0 <= index < self.cardinality:
            raise SpaceError(
                f"index {index} out of range for parameter {self.name!r} "
                f"with cardinality {self.cardinality}"
            )
        value = self.low + index * self.step
        if self.integer:
            return int(round(value))
        # round away float-step accumulation noise (0.6000000000000001)
        return float(round(value, 10))


@dataclass(frozen=True)
class Continuous(Parameter):
    """A real-valued parameter in ``[low, high]``, discretized on demand.

    Agents that need a finite grid (GA/ACO index representations) see
    ``resolution`` evenly spaced values; agents operating on unit vectors
    get the full continuous range.
    """

    name: str
    low: float
    high: float
    resolution: int = 64

    def __post_init__(self) -> None:
        if self.high <= self.low:
            raise SpaceError(f"parameter {self.name!r} needs high > low")
        if self.resolution < 2:
            raise SpaceError(f"parameter {self.name!r} needs resolution >= 2")

    @property
    def cardinality(self) -> int:
        return self.resolution

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def contains(self, value: Any) -> bool:
        return isinstance(value, (int, float, np.integer, np.floating)) and (
            self.low - 1e-12 <= float(value) <= self.high + 1e-12
        )

    def to_index(self, value: Any) -> int:
        if not self.contains(value):
            raise SpaceError(f"value {value!r} outside [{self.low}, {self.high}] for {self.name!r}")
        frac = (float(value) - self.low) / (self.high - self.low)
        return min(int(frac * self.resolution), self.resolution - 1)

    def from_index(self, index: int) -> float:
        if not 0 <= index < self.resolution:
            raise SpaceError(f"index {index} out of range for parameter {self.name!r}")
        frac = (index + 0.5) / self.resolution
        return self.low + frac * (self.high - self.low)

    def to_unit(self, value: Any) -> float:
        if not self.contains(value):
            raise SpaceError(f"value {value!r} outside [{self.low}, {self.high}] for {self.name!r}")
        return (float(value) - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> float:
        u = min(max(float(u), 0.0), 1.0)
        return self.low + u * (self.high - self.low)


@dataclass
class CompositeSpace:
    """An ordered collection of named parameters — one DSE action space.

    An *action* is a ``dict`` mapping each parameter name to an admissible
    value. The composite provides the vector codecs every agent family
    relies on (Table 2 of the paper):

    - :meth:`encode` / :meth:`decode` — integer index vectors (GA, ACO)
    - :meth:`to_unit_vector` / :meth:`from_unit_vector` — floats in [0,1]
      (BO, RL)
    - :meth:`sample` — uniform random actions (random walker)
    - :meth:`neighbors` — single-parameter perturbations (local search)
    """

    parameters: List[Parameter] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise SpaceError(f"duplicate parameter names in space: {names}")
        self._by_name = {p.name: p for p in self.parameters}

    # -- basic introspection -------------------------------------------------

    @property
    def names(self) -> List[str]:
        return [p.name for p in self.parameters]

    @property
    def dimension(self) -> int:
        return len(self.parameters)

    @property
    def cardinality(self) -> float:
        """Total number of design points (may be astronomically large)."""
        total = 1.0
        for p in self.parameters:
            total *= p.cardinality
        return total

    @property
    def cardinalities(self) -> List[int]:
        return [p.cardinality for p in self.parameters]

    def __len__(self) -> int:
        return len(self.parameters)

    def __iter__(self) -> Iterator[Parameter]:
        return iter(self.parameters)

    def __getitem__(self, name: str) -> Parameter:
        try:
            return self._by_name[name]
        except KeyError:
            raise SpaceError(f"unknown parameter {name!r}; have {self.names}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    # -- membership ----------------------------------------------------------

    def contains(self, action: Mapping[str, Any]) -> bool:
        """Return True if ``action`` assigns an admissible value to every
        parameter (extra keys make the action invalid)."""
        if set(action.keys()) != set(self._by_name.keys()):
            return False
        return all(self._by_name[k].contains(v) for k, v in action.items())

    def validate(self, action: Mapping[str, Any]) -> None:
        """Raise :class:`SpaceError` describing why ``action`` is invalid."""
        missing = set(self._by_name) - set(action)
        if missing:
            raise SpaceError(f"action missing parameters: {sorted(missing)}")
        extra = set(action) - set(self._by_name)
        if extra:
            raise SpaceError(f"action has unknown parameters: {sorted(extra)}")
        for k, v in action.items():
            if not self._by_name[k].contains(v):
                raise SpaceError(f"value {v!r} invalid for parameter {k!r}")

    # -- sampling ------------------------------------------------------------

    def sample(self, rng: np.random.Generator) -> Dict[str, Any]:
        """Draw a uniformly random action."""
        return {p.name: p.sample(rng) for p in self.parameters}

    def sample_batch(self, rng: np.random.Generator, n: int) -> List[Dict[str, Any]]:
        return [self.sample(rng) for _ in range(n)]

    # -- codecs ---------------------------------------------------------------

    def encode(self, action: Mapping[str, Any]) -> np.ndarray:
        """Action dict -> integer index vector (dtype int64)."""
        return np.array(
            [p.to_index(action[p.name]) for p in self.parameters], dtype=np.int64
        )

    def decode(self, indices: Sequence[int]) -> Dict[str, Any]:
        """Integer index vector -> action dict."""
        if len(indices) != len(self.parameters):
            raise SpaceError(
                f"index vector length {len(indices)} != space dimension {len(self.parameters)}"
            )
        return {
            p.name: p.from_index(int(i)) for p, i in zip(self.parameters, indices)
        }

    def to_unit_vector(self, action: Mapping[str, Any]) -> np.ndarray:
        """Action dict -> float vector in [0, 1]^d."""
        return np.array(
            [p.to_unit(action[p.name]) for p in self.parameters], dtype=np.float64
        )

    def from_unit_vector(self, u: Sequence[float]) -> Dict[str, Any]:
        """Float vector in [0, 1]^d -> action dict (snapping to the grid)."""
        if len(u) != len(self.parameters):
            raise SpaceError(
                f"unit vector length {len(u)} != space dimension {len(self.parameters)}"
            )
        return {p.name: p.from_unit(float(x)) for p, x in zip(self.parameters, u)}

    # -- local moves ----------------------------------------------------------

    def neighbors(
        self, action: Mapping[str, Any], rng: np.random.Generator, n: int = 1
    ) -> List[Dict[str, Any]]:
        """Return ``n`` neighbors of ``action``, each differing in exactly
        one randomly chosen parameter (set to a different admissible value
        when one exists)."""
        self.validate(action)
        out: List[Dict[str, Any]] = []
        for _ in range(n):
            neighbor = dict(action)
            p = self.parameters[int(rng.integers(len(self.parameters)))]
            if p.cardinality > 1:
                current = p.to_index(action[p.name])
                offset = 1 + int(rng.integers(p.cardinality - 1))
                neighbor[p.name] = p.from_index((current + offset) % p.cardinality)
            out.append(neighbor)
        return out

    def mutate(
        self,
        action: Mapping[str, Any],
        rng: np.random.Generator,
        rate: float,
    ) -> Dict[str, Any]:
        """Independently resample each parameter with probability ``rate``."""
        mutated = dict(action)
        for p in self.parameters:
            if rng.random() < rate:
                mutated[p.name] = p.sample(rng)
        return mutated
