"""Reward / fitness formulations used by the ArchGym environments.

Table 3 of the paper defines one reward per environment family:

- ``TargetReward`` — ``r = target / |target - observed|`` (DRAMGym and
  TimeloopGym). Larger is better; the reward diverges as the observed
  metric approaches the user-specified target, so we cap it.
- ``BudgetDistanceReward`` — ``distance = sum_m alpha_m * (D_m - B_m)/B_m``
  over performance/power/area (FARSIGym). Smaller is better.
- ``InverseReward`` — ``r = 1 / X`` (MaestroGym). Larger is better.
- ``JointTargetReward`` — the multi-objective combination used for the
  "joint latency+power" experiments of Fig. 4.

All reward objects expose ``compute(metrics) -> float`` plus a
``higher_is_better`` flag so sweep analytics can normalize consistently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from repro.core.errors import ArchGymError

__all__ = [
    "RewardSpec",
    "TargetReward",
    "JointTargetReward",
    "BudgetDistanceReward",
    "InverseReward",
    "REWARD_CAP",
]

# Reward value reported when the observed metric hits the target exactly.
# Table 3's formula diverges there; a finite cap keeps agents numerically
# stable while preserving "hit the target" as the unique best outcome.
REWARD_CAP = 1e6


class RewardSpec:
    """Interface shared by all reward formulations."""

    #: True when larger reward values indicate better designs.
    higher_is_better: bool = True

    def compute(self, metrics: Mapping[str, float]) -> float:
        """Map a cost-model output dictionary to a scalar reward."""
        raise NotImplementedError

    def meets_target(self, metrics: Mapping[str, float]) -> bool:
        """Whether the design satisfies the user-defined criteria.

        The paper calls a design *optimal* "as long as it meets all
        user-defined criteria for a target hardware" (§1, footnote 2).
        """
        raise NotImplementedError

    def _get(self, metrics: Mapping[str, float], key: str) -> float:
        try:
            return float(metrics[key])
        except KeyError:
            raise ArchGymError(
                f"reward needs metric {key!r} but cost model returned "
                f"{sorted(metrics)}"
            ) from None


@dataclass
class TargetReward(RewardSpec):
    """``r = target / |target - observed|`` for a single metric.

    ``tolerance`` is the relative deviation below which the target counts
    as met (used by :meth:`meets_target` and early termination).
    """

    metric: str
    target: float
    tolerance: float = 0.01
    higher_is_better: bool = field(default=True, init=False)

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ArchGymError(f"target for {self.metric!r} must be positive")

    def compute(self, metrics: Mapping[str, float]) -> float:
        observed = self._get(metrics, self.metric)
        gap = abs(self.target - observed)
        if gap < self.target / REWARD_CAP:
            return REWARD_CAP
        return min(self.target / gap, REWARD_CAP)

    def meets_target(self, metrics: Mapping[str, float]) -> bool:
        observed = self._get(metrics, self.metric)
        return abs(observed - self.target) <= self.tolerance * self.target


@dataclass
class JointTargetReward(RewardSpec):
    """Multi-objective target reward: weighted geometric-style combination.

    Fig. 4's "joint optimization of latency and power" scores a design by
    how close it is to *every* target simultaneously. We combine the
    per-metric ``TargetReward`` values with a weighted harmonic mean, which
    (a) stays on the same scale as the single-metric reward and (b) cannot
    be gamed by excelling at one objective while ignoring the other.
    """

    components: Tuple[TargetReward, ...]
    weights: Tuple[float, ...] = ()
    higher_is_better: bool = field(default=True, init=False)

    def __post_init__(self) -> None:
        if not self.components:
            raise ArchGymError("JointTargetReward needs at least one component")
        if not self.weights:
            self.weights = tuple(1.0 for _ in self.components)
        if len(self.weights) != len(self.components):
            raise ArchGymError("weights/components length mismatch")
        if any(w <= 0 for w in self.weights):
            raise ArchGymError("weights must be positive")

    def compute(self, metrics: Mapping[str, float]) -> float:
        total_weight = sum(self.weights)
        denom = 0.0
        for component, weight in zip(self.components, self.weights):
            r = component.compute(metrics)
            denom += weight / max(r, 1.0 / REWARD_CAP)
        return min(total_weight / denom, REWARD_CAP)

    def meets_target(self, metrics: Mapping[str, float]) -> bool:
        return all(c.meets_target(metrics) for c in self.components)


@dataclass
class BudgetDistanceReward(RewardSpec):
    """FARSI's distance-to-budget: ``sum_m alpha_m * (D_m - B_m) / B_m``.

    ``D_m`` is the observed metric and ``B_m`` the budget. Only budget
    *violations* contribute when ``penalize_only_excess`` is True (the
    FARSI convention: a design under budget on every axis has distance 0
    and satisfies the specification). Smaller distance is better.
    """

    budgets: Dict[str, float]
    alphas: Dict[str, float] = field(default_factory=dict)
    penalize_only_excess: bool = True
    higher_is_better: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        if not self.budgets:
            raise ArchGymError("BudgetDistanceReward needs at least one budget")
        for name, budget in self.budgets.items():
            if budget <= 0:
                raise ArchGymError(f"budget for {name!r} must be positive")
        for name in self.budgets:
            self.alphas.setdefault(name, 1.0)

    def compute(self, metrics: Mapping[str, float]) -> float:
        distance = 0.0
        for name, budget in self.budgets.items():
            observed = self._get(metrics, name)
            term = (observed - budget) / budget
            if self.penalize_only_excess:
                term = max(term, 0.0)
            distance += self.alphas[name] * term
        return distance

    def meets_target(self, metrics: Mapping[str, float]) -> bool:
        return all(
            self._get(metrics, name) <= budget
            for name, budget in self.budgets.items()
        )


@dataclass
class InverseReward(RewardSpec):
    """``r = 1 / X`` — Maestro's reward for minimizing a metric.

    ``target`` optionally defines the "good enough" threshold for
    :meth:`meets_target` (observed <= target).
    """

    metric: str
    target: float = 0.0
    higher_is_better: bool = field(default=True, init=False)

    def compute(self, metrics: Mapping[str, float]) -> float:
        observed = self._get(metrics, self.metric)
        if observed <= 0:
            return REWARD_CAP
        return min(1.0 / observed, REWARD_CAP)

    def meets_target(self, metrics: Mapping[str, float]) -> bool:
        if self.target <= 0:
            return False
        return self._get(metrics, self.metric) <= self.target
