"""Environment registry: ``register`` factories, ``make`` instances.

Mirrors the OpenAI gym ``gym.make`` convention the paper adopts so that
experiments can name environments by id string:

    env = repro.make("DRAMGym-v0", workload="stream", objective="power")
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from repro.core.env import ArchGymEnv
from repro.core.errors import RegistryError

__all__ = ["register", "make", "registered_ids", "EnvRegistry"]

EnvFactory = Callable[..., ArchGymEnv]


class EnvRegistry:
    """A mapping from environment id to factory callable."""

    def __init__(self) -> None:
        self._factories: Dict[str, EnvFactory] = {}

    def register(self, env_id: str, factory: EnvFactory, overwrite: bool = False) -> None:
        if not env_id:
            raise RegistryError("environment id must be a non-empty string")
        if env_id in self._factories and not overwrite:
            raise RegistryError(f"environment {env_id!r} is already registered")
        self._factories[env_id] = factory

    def make(self, env_id: str, **kwargs: Any) -> ArchGymEnv:
        try:
            factory = self._factories[env_id]
        except KeyError:
            raise RegistryError(
                f"unknown environment {env_id!r}; registered: {sorted(self._factories)}"
            ) from None
        env = factory(**kwargs)
        if not isinstance(env, ArchGymEnv):
            raise RegistryError(
                f"factory for {env_id!r} returned {type(env).__name__}, "
                "expected an ArchGymEnv"
            )
        return env

    def ids(self) -> List[str]:
        return sorted(self._factories)

    def __contains__(self, env_id: str) -> bool:
        return env_id in self._factories


#: The process-global registry used by :func:`register` / :func:`make`.
_GLOBAL = EnvRegistry()


def register(env_id: str, factory: EnvFactory, overwrite: bool = False) -> None:
    """Register ``factory`` under ``env_id`` in the global registry."""
    _GLOBAL.register(env_id, factory, overwrite=overwrite)


def make(env_id: str, **kwargs: Any) -> ArchGymEnv:
    """Instantiate a registered environment by id."""
    return _GLOBAL.make(env_id, **kwargs)


def registered_ids() -> List[str]:
    """All environment ids known to the global registry."""
    return _GLOBAL.ids()
